// Regenerates the §4.4 keyword-filter ablation: without the "retry"/"retries"
// naming filter, the CodeQL-style loop query reports ~3.5x more candidate
// loops, most of which are not retry.

#include <iostream>

#include "bench/bench_util.h"
#include "src/analysis/retry_finder.h"

int main() {
  using namespace wasabi;
  PrintHeading("Ablation: CodeQL loop query with vs. without keyword filtering",
               "Section 4.4");

  TablePrinter table({"App", "Candidate loops (no filter)", "Retry loops (filtered)",
                      "Inflation"});
  size_t total_candidates = 0;
  size_t total_filtered = 0;
  for (const std::string& name : CorpusAppNames()) {
    CorpusApp app = BuildCorpusApp(name);
    RetryFinder finder(app.program, *app.index);
    size_t candidates = finder.FindCandidateLoops().size();
    size_t filtered = finder.FindLoopStructures().size();
    total_candidates += candidates;
    total_filtered += filtered;
    std::ostringstream ratio;
    if (filtered > 0) {
      ratio << std::fixed << std::setprecision(1)
            << static_cast<double>(candidates) / static_cast<double>(filtered) << "x";
    } else {
      ratio << "n/a";
    }
    table.AddRow({app.short_code, std::to_string(candidates), std::to_string(filtered),
                  ratio.str()});
  }
  table.Print();

  std::cout << "\nAggregate: " << total_candidates << " candidate loops vs "
            << total_filtered << " keyword-filtered retry loops ("
            << std::fixed << std::setprecision(1)
            << (total_filtered > 0
                    ? static_cast<double>(total_candidates) / static_cast<double>(total_filtered)
                    : 0.0)
            << "x).\n"
            << "Paper reference: 725 vs 205 (3.5x); the excess loops iterate items, poll\n"
            << "status, or log-and-skip — not retry. The corpus seeds the same look-alike\n"
            << "population (iteration with per-item catches, poll loops).\n";
  return 0;
}
