// Regenerates the §4.4 oracle ablation: without the three retry-specific test
// oracles, WHEN bugs vanish (false negatives) and re-thrown injected
// exceptions flood the reports (false positives).

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace wasabi;
  PrintHeading("Ablation: WASABI unit testing with vs. without the retry oracles",
               "Section 4.4");

  TablePrinter table({"App", "Reports w/ oracles", "FP w/ oracles", "Cap+delay found",
                      "Reports w/o oracles", "Cap+delay w/o oracles"});
  int with_total = 0;
  int without_total = 0;
  for (const std::string& name : CorpusAppNames()) {
    CorpusApp app = BuildCorpusApp(name);

    WasabiOptions with_opts = DefaultOptionsFor(app);
    Wasabi with_tool(app.program, *app.index, with_opts);
    DynamicResult with_result = with_tool.RunDynamicWorkflow();
    Scorecard with_score = ScoreReports(
        with_result.bugs, DetectableBugs(app.bugs, DetectionTechnique::kUnitTesting));

    WasabiOptions without_opts = DefaultOptionsFor(app);
    without_opts.use_oracles = false;
    Wasabi without_tool(app.program, *app.index, without_opts);
    DynamicResult without_result = without_tool.RunDynamicWorkflow();

    int with_when = 0;
    for (const BugReport& bug : with_result.bugs) {
      if (bug.type != BugType::kHow) {
        ++with_when;
      }
    }
    int without_when = 0;
    for (const BugReport& bug : without_result.bugs) {
      if (bug.type != BugType::kHow) {
        ++without_when;
      }
    }
    with_total += static_cast<int>(with_result.bugs.size());
    without_total += static_cast<int>(without_result.bugs.size());
    table.AddRow({app.short_code, std::to_string(with_result.bugs.size()),
                  std::to_string(with_score.TotalAll().false_positives),
                  std::to_string(with_when), std::to_string(without_result.bugs.size()),
                  std::to_string(without_when)});
  }
  table.Print();

  std::cout << "\nAggregate: " << with_total << " oracle-classified reports vs "
            << without_total << " naive any-crash reports.\n"
            << "Paper reference: without the oracles, all missing-delay and most\n"
            << "missing-cap bugs are missed, and ~90% of crashes are just the injected\n"
            << "exception re-thrown (filtered by the different-exception oracle).\n";
  return 0;
}
