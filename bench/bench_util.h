// Shared helpers for the reproduction benches: corpus-wide workflow execution
// and plain-text table rendering matching the paper's layout.

#ifndef WASABI_BENCH_BENCH_UTIL_H_
#define WASABI_BENCH_BENCH_UTIL_H_

#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/scoring.h"
#include "src/core/wasabi.h"
#include "src/corpus/corpus.h"

namespace wasabi {

// One application with every workflow executed on it.
struct AppRun {
  CorpusApp app;
  IdentificationResult identification;
  DynamicResult dynamic;
  StaticResult statics;
};

inline WasabiOptions DefaultOptionsFor(const CorpusApp& app) {
  WasabiOptions options;
  options.app_name = app.name;
  options.default_configs = app.default_configs;
  options.jobs = 0;  // Benches use every hardware thread; output is identical.
  return options;
}

// `jobs`: campaign workers (0 = all hardware threads, 1 = serial). Reports
// are byte-identical for any value; only wall-clock changes.
inline AppRun RunAppWorkflows(const std::string& name, int jobs = 0) {
  AppRun run;
  run.app = BuildCorpusApp(name);
  WasabiOptions options = DefaultOptionsFor(run.app);
  options.jobs = jobs;
  Wasabi wasabi(run.app.program, *run.app.index, options);
  run.identification = wasabi.IdentifyRetryStructures();
  run.dynamic = wasabi.RunDynamicWorkflow();
  run.statics = wasabi.RunStaticWorkflow();
  return run;
}

inline std::vector<AppRun> RunFullCorpusWorkflows(int jobs = 0) {
  std::vector<AppRun> runs;
  for (const std::string& name : CorpusAppNames()) {
    runs.push_back(RunAppWorkflows(name, jobs));
  }
  return runs;
}

// --- Table rendering ---------------------------------------------------------

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print(std::ostream& out = std::cout) const {
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t i = 0; i < headers_.size(); ++i) {
      widths[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < headers_.size(); ++i) {
        out << (i == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[i]))
            << (i < row.size() ? row[i] : "");
      }
      out << " |\n";
    };
    print_row(headers_);
    out << "|";
    for (size_t width : widths) {
      out << std::string(width + 2, '-') << "|";
    }
    out << "\n";
    for (const auto& row : rows_) {
      print_row(row);
    }
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// "N_f" style cell: reported count with false-positive subscript, matching the
// paper's Table 3/4 notation (here rendered as "N (f FP)").
inline std::string CellWithFp(int reported, int false_positives) {
  if (reported == 0) {
    return "-";
  }
  std::ostringstream out;
  out << reported << " (" << false_positives << " FP)";
  return out.str();
}

inline std::string Percent(double numerator, double denominator) {
  if (denominator == 0) {
    return "n/a";
  }
  std::ostringstream out;
  out << std::fixed << std::setprecision(0) << 100.0 * numerator / denominator << "%";
  return out.str();
}

inline void PrintHeading(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "(reproduces " << paper_ref << " of the WASABI paper, SOSP'24)\n\n";
}

}  // namespace wasabi

#endif  // WASABI_BENCH_BENCH_UTIL_H_
