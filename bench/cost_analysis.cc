// Regenerates the §4.3 cost analysis: LLM call/token accounting and the cost
// structure of WASABI unit testing (coverage pass vs. injected runs, planner
// savings).

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace wasabi;
  PrintHeading("Cost of WASABI: testing runs and LLM usage", "Section 4.3");

  std::vector<AppRun> runs = RunFullCorpusWorkflows();

  std::cout << "LLM usage per application (identification + WHEN prompts):\n";
  TablePrinter llm({"App", "API calls", "Bytes sent", "Est. tokens", "Est. cost (USD)"});
  int64_t total_tokens = 0;
  for (const AppRun& run : runs) {
    // Identification usage + static WHEN-judgment usage.
    LlmUsage usage = run.identification.llm_usage;
    usage.calls += run.statics.llm_usage.calls;
    usage.bytes_sent += run.statics.llm_usage.bytes_sent;
    usage.prompt_tokens += run.statics.llm_usage.prompt_tokens;
    total_tokens += usage.prompt_tokens;
    // The paper quotes ~8 USD per application for ~3.3M tokens: ~2.4 USD/M.
    std::ostringstream cost;
    cost << std::fixed << std::setprecision(4)
         << static_cast<double>(usage.prompt_tokens) * 2.4e-6;
    llm.AddRow({run.app.short_code, std::to_string(usage.calls),
                std::to_string(usage.bytes_sent), std::to_string(usage.prompt_tokens),
                cost.str()});
  }
  llm.Print();
  std::cout << "Paper reference: median ~2600 calls, ~16 MB, ~3.3M tokens, ~8 USD per\n"
            << "application. The corpus here is ~100x smaller than the Java systems, so\n"
            << "absolute volumes scale down accordingly; the per-file call pattern (Q1 +\n"
            << "follow-up + Q2/Q3/Q4 per coordinator) is identical.\n";

  std::cout << "\nUnit-testing run counts:\n";
  TablePrinter tests({"App", "Coverage-pass runs", "Injected runs", "Runs w/o planning",
                      "Planner saving"});
  for (const AppRun& run : runs) {
    const DynamicResult& d = run.dynamic;
    std::ostringstream saving;
    if (d.planned_runs > 0) {
      saving << std::fixed << std::setprecision(1)
             << static_cast<double>(d.naive_runs) / static_cast<double>(d.planned_runs) << "x";
    } else {
      saving << "n/a";
    }
    tests.AddRow({run.app.short_code, std::to_string(d.total_tests),
                  std::to_string(d.planned_runs), std::to_string(d.naive_runs),
                  saving.str()});
  }
  tests.Print();

  std::cout << "\nWall-clock phase breakdown of the dynamic workflow:\n";
  TablePrinter phases({"App", "Identification", "Coverage pass", "Injected runs",
                       "Coverage share"});
  for (const AppRun& run : runs) {
    const DynamicResult& d = run.dynamic;
    double total = d.identification_seconds + d.coverage_seconds + d.injection_seconds;
    auto ms = [](double s) {
      std::ostringstream out;
      out << std::fixed << std::setprecision(1) << s * 1000.0 << " ms";
      return out.str();
    };
    phases.AddRow({run.app.short_code, ms(d.identification_seconds), ms(d.coverage_seconds),
                   ms(d.injection_seconds),
                   Percent(d.coverage_seconds, total > 0 ? total : 1.0)});
  }
  phases.Print();
  std::cout << "Paper reference: the coverage pass takes 18-32% of total run time; planning\n"
            << "cuts injected runs by 27x-170x; repurposed testing costs 2x-5x the original\n"
            << "suite because only 4-27% of tests cover retry locations.\n";
  (void)total_tokens;
  return 0;
}
