// Evaluates the §4.5 "Mitigating false positives" extensions, which the paper
// sketches as future work and this reproduction implements:
//   1. exception-wrapping-chain analysis (prunes the HOW-oracle FPs),
//   2. call-context-aware cap counting (prunes the harness-loop cap FPs),
//   3. collating static WHEN reports with dynamic results.

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace wasabi;
  PrintHeading("Extensions: the paper's false-positive mitigations, implemented",
               "Section 4.5 (future work)");

  TablePrinter table({"App", "Unit FP (proto)", "Unit FP (mitigated)", "Unit TP kept",
                      "LLM FP (proto)", "LLM FP (collated)", "LLM TP kept"});
  int proto_unit_fp = 0;
  int mitigated_unit_fp = 0;
  int proto_llm_fp = 0;
  int collated_llm_fp = 0;
  bool tp_lost = false;

  for (const std::string& name : CorpusAppNames()) {
    CorpusApp app = BuildCorpusApp(name);

    // --- Prototype configuration (the paper's evaluated tool). ---------------
    WasabiOptions proto = DefaultOptionsFor(app);
    Wasabi proto_tool(app.program, *app.index, proto);
    DynamicResult proto_dynamic = proto_tool.RunDynamicWorkflow();
    StaticResult proto_static = proto_tool.RunStaticWorkflow();
    Scorecard proto_unit = ScoreReports(
        proto_dynamic.bugs, DetectableBugs(app.bugs, DetectionTechnique::kUnitTesting));
    Scorecard proto_llm = ScoreReports(
        proto_static.when_bugs, DetectableBugs(app.bugs, DetectionTechnique::kLlmStatic));

    // --- Mitigated configuration. ------------------------------------------------
    WasabiOptions mitigated = DefaultOptionsFor(app);
    mitigated.oracles.prune_wrapped_exceptions = true;
    mitigated.oracles.context_aware_cap = true;
    Wasabi mitigated_tool(app.program, *app.index, mitigated);
    DynamicResult mitigated_dynamic = mitigated_tool.RunDynamicWorkflow();
    Scorecard mitigated_unit = ScoreReports(
        mitigated_dynamic.bugs, DetectableBugs(app.bugs, DetectionTechnique::kUnitTesting));

    std::vector<BugReport> collated =
        CollateStaticWithDynamic(proto_static.when_bugs, proto_dynamic);
    Scorecard collated_llm =
        ScoreReports(collated, DetectableBugs(app.bugs, DetectionTechnique::kLlmStatic));

    proto_unit_fp += proto_unit.TotalAll().false_positives;
    mitigated_unit_fp += mitigated_unit.TotalAll().false_positives;
    proto_llm_fp += proto_llm.TotalAll().false_positives;
    collated_llm_fp += collated_llm.TotalAll().false_positives;
    if (mitigated_unit.TotalAll().true_positives < proto_unit.TotalAll().true_positives) {
      tp_lost = true;
    }

    table.AddRow({app.short_code, std::to_string(proto_unit.TotalAll().false_positives),
                  std::to_string(mitigated_unit.TotalAll().false_positives),
                  std::to_string(mitigated_unit.TotalAll().true_positives) + "/" +
                      std::to_string(proto_unit.TotalAll().true_positives),
                  std::to_string(proto_llm.TotalAll().false_positives),
                  std::to_string(collated_llm.TotalAll().false_positives),
                  std::to_string(collated_llm.TotalAll().true_positives) + "/" +
                      std::to_string(proto_llm.TotalAll().true_positives)});
  }
  table.Print();

  std::cout << "\nAggregate: unit-testing FPs " << proto_unit_fp << " -> "
            << mitigated_unit_fp << " with wrapping-chain + context-aware-cap analysis; "
            << "LLM FPs " << proto_llm_fp << " -> " << collated_llm_fp
            << " after collation with dynamic results.\n";
  std::cout << (tp_lost ? "WARNING: some true positives were lost by the mitigations.\n"
                        : "No unit-testing true positives lost.\n");
  std::cout << "\nPaper reference (§4.5): \"Most of WASABI's unit testing false positives\n"
            << "may be removed through further analysis of the call and exception\n"
            << "contexts\"; \"many of the static detection false positives may be removed\n"
            << "by collating the results of static detection with unit testing results.\"\n";
  return 0;
}
