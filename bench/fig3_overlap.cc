// Regenerates Figure 3: the Venn composition of bugs found by WASABI unit
// testing vs. static checking.

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace wasabi;
  PrintHeading("Figure 3: Bugs found by unit testing and static checking", "Figure 3");

  std::vector<AppRun> runs = RunFullCorpusWorkflows();

  OverlapSummary total;
  int if_bugs = 0;
  int how_unit_only = 0;
  int when_unit = 0;
  int when_static = 0;
  for (const AppRun& run : runs) {
    OverlapSummary overlap = ComputeOverlap(run.dynamic.bugs, run.statics.when_bugs);
    total.unit_only += overlap.unit_only;
    total.static_only += overlap.static_only;
    total.both += overlap.both;
    if_bugs += static_cast<int>(run.statics.if_bugs.size());
    for (const BugReport& bug : run.dynamic.bugs) {
      if (bug.type == BugType::kHow) {
        ++how_unit_only;
      } else {
        ++when_unit;
      }
    }
    when_static += static_cast<int>(run.statics.when_bugs.size());
  }

  std::cout << "Unit testing only : " << total.unit_only << " reports\n";
  std::cout << "Found by both     : " << total.both << " reports\n";
  std::cout << "Static (LLM) only : " << total.static_only << " reports\n";
  std::cout << "IF bugs (retry-ratio checker, disjoint by construction): " << if_bugs << "\n";

  std::cout << "\nComposition detail:\n"
            << "  WHEN reports from unit testing : " << when_unit - 0 << " (of which HOW: 0)\n"
            << "  HOW reports (unit testing only): " << how_unit_only << "\n"
            << "  WHEN reports from the LLM      : " << when_static << "\n";

  std::cout << "\nPaper shape: 42 unit-testing bugs and 87 static bugs with 20 found by\n"
            << "both. Unit testing's unique share is HOW bugs plus WHEN bugs the LLM\n"
            << "cannot see (large files, config-dependent caps); the static side's unique\n"
            << "share is code not covered by any unit test plus error-code retry.\n";
  return 0;
}
