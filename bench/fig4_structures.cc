// Regenerates Figure 4: retry code structures identified, by mechanism and by
// identification technique (CodeQL-style control-flow analysis vs. the LLM).

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace wasabi;
  PrintHeading("Figure 4: Retry code structures identified", "Figure 4");

  std::vector<AppRun> runs = RunFullCorpusWorkflows();

  int loops = 0;
  int queues = 0;
  int state_machines = 0;
  int codeql_only = 0;
  int llm_only = 0;
  int both = 0;
  int loops_missed_by_llm = 0;
  size_t truncated_files = 0;
  for (const AppRun& run : runs) {
    truncated_files += run.identification.files_truncated_by_llm;
    for (const RetryStructure& s : run.identification.structures) {
      switch (s.mechanism) {
        case RetryMechanism::kLoop:
          ++loops;
          break;
        case RetryMechanism::kQueue:
          ++queues;
          break;
        case RetryMechanism::kStateMachine:
          ++state_machines;
          break;
      }
      if (s.found_by.both()) {
        ++both;
      } else if (s.found_by.codeql) {
        ++codeql_only;
      } else {
        ++llm_only;
      }
      if (s.mechanism == RetryMechanism::kLoop && s.found_by.codeql && !s.found_by.llm) {
        ++loops_missed_by_llm;
      }
    }
  }
  int total = loops + queues + state_machines;

  TablePrinter table({"Mechanism", "Structures", "Share"});
  table.AddRow({"loop", std::to_string(loops), Percent(loops, total)});
  table.AddRow({"queue (task re-enqueueing)", std::to_string(queues),
                Percent(queues, total)});
  table.AddRow({"state machine", std::to_string(state_machines),
                Percent(state_machines, total)});
  table.AddRow({"Total", std::to_string(total), ""});
  table.Print();

  std::cout << "\nBy technique:\n";
  TablePrinter tech({"Technique", "Structures"});
  tech.AddRow({"CodeQL-style only", std::to_string(codeql_only)});
  tech.AddRow({"LLM only", std::to_string(llm_only)});
  tech.AddRow({"Both", std::to_string(both)});
  tech.Print();

  std::cout << "\nKey Figure-4 properties:\n"
            << "  * control-flow analysis found 0 non-loop structures (all queue/state-\n"
            << "    machine structures are LLM-only);\n"
            << "  * the LLM missed " << loops_missed_by_llm
            << " loop structures, concentrated in the " << truncated_files
            << " files larger than its attention window;\n"
            << "  * paper shape: 323 structures, ~70% loops; CodeQL found >85% of loops\n"
            << "    but no non-loop retry; GPT-4 missed 100 loops in large files.\n"
            << "  * measured loop share: " << Percent(loops, total) << "\n";
  return 0;
}
