// Flakiness-prober bench (docs/FLAKINESS.md): classification accuracy on the
// ground-truth "flakylab" app and probe overhead on the full Table 3 corpus.
//
// Accuracy: flakylab seeds exactly one failing verdict per stability class
// (stable / flaky / chaos-induced); the bench scores the prober's
// classifications against the manifest and reports exact-match precision.
//
// Overhead: the full dynamic workflow over all corpus applications with the
// prober off versus N in {1, 2, 4} repetitions, all at full parallelism. The
// prober reuses the campaign's warm per-worker arenas, so the marginal cost
// per repetition is the probe reruns themselves, not re-setup — the ratio
// column makes that visible. A JSON record (first argument, default
// flakiness_probe.json) captures both halves for CI tracking.

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace wasabi;
  using Clock = std::chrono::steady_clock;
  const std::string json_path = argc > 1 ? argv[1] : "flakiness_probe.json";

  PrintHeading("Flakiness-aware verdicts: classification accuracy and probe overhead",
               "the flaky-test discussion in Section 6");

  // --- Accuracy on the ground-truth app -------------------------------------
  CorpusApp lab = BuildCorpusApp("flakylab");
  WasabiOptions lab_options = DefaultOptionsFor(lab);
  lab_options.prober.repetitions = 3;
  lab_options.robust.chaos.enabled = true;
  lab_options.robust.chaos.seed = 42;
  lab_options.robust.chaos.rate = 0.0;  // Degraded env only, no host faults.
  lab_options.robust.chaos.env_rate = 1.0;
  Wasabi lab_tool(lab.program, *lab.index, lab_options);
  DynamicResult lab_result = lab_tool.RunDynamicWorkflow();

  std::vector<SeededBug> truth;
  for (const SeededBug& bug : lab.bugs) {
    if (bug.type != BugType::kIfOutlier) {
      truth.push_back(bug);
    }
  }
  Scorecard scores = ScoreReports(lab_result.bugs, truth);
  ScoreCell total = scores.TotalAll();
  const int mismatches = static_cast<int>(scores.stability_mismatched_ids.size());

  TablePrinter accuracy({"Ground truth", "Probed runs", "Stable", "Flaky", "Chaos-induced",
                         "Exact matches", "Mismatches"});
  accuracy.AddRow({"flakylab (" + std::to_string(truth.size()) + " seeded)",
                   std::to_string(lab_result.probed_runs),
                   std::to_string(lab_result.stable_runs),
                   std::to_string(lab_result.flaky_runs),
                   std::to_string(lab_result.chaos_induced_runs),
                   Percent(total.stability_matches, static_cast<double>(truth.size())),
                   std::to_string(mismatches)});
  accuracy.Print();
  const bool exact = mismatches == 0 &&
                     total.stability_matches == static_cast<int>(truth.size());
  std::cout << "\nclassification against the manifest: "
            << (exact ? "exact" : "INEXACT — ground-truth regression") << "\n\n";

  // --- Overhead on the Table 3 corpus ---------------------------------------
  std::vector<CorpusApp> apps = BuildFullCorpus();
  std::vector<std::unique_ptr<Wasabi>> tools;
  tools.reserve(apps.size());
  for (CorpusApp& app : apps) {
    tools.push_back(std::make_unique<Wasabi>(app.program, *app.index, DefaultOptionsFor(app)));
  }
  auto run_all = [&](int repetitions) {
    size_t probed = 0;
    for (size_t i = 0; i < tools.size(); ++i) {
      WasabiOptions options = DefaultOptionsFor(apps[i]);
      options.prober.repetitions = repetitions;
      // Fresh instance per pass: a different prober config is a different
      // campaign identity, and the identification memo is cheap to refill.
      tools[i] = std::make_unique<Wasabi>(apps[i].program, *apps[i].index, options);
      probed += tools[i]->RunDynamicWorkflow().probed_runs;
    }
    return probed;
  };

  run_all(0);  // Warmup: interning pools, allocator, page cache.
  const int kLevels[] = {0, 1, 2, 4};
  double level_seconds[4] = {0, 0, 0, 0};
  size_t level_probed[4] = {0, 0, 0, 0};
  const int kReps = 3;
  for (size_t level = 0; level < 4; ++level) {
    double best = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      Clock::time_point start = Clock::now();
      size_t probed = run_all(kLevels[level]);
      double seconds = std::chrono::duration<double>(Clock::now() - start).count();
      if (rep == 0 || seconds < best) {
        best = seconds;
      }
      level_probed[level] = probed;
    }
    level_seconds[level] = best;
  }

  TablePrinter overhead({"Repetitions", "Seconds (best of 3)", "vs prober off",
                         "Failing runs probed"});
  for (size_t level = 0; level < 4; ++level) {
    std::ostringstream sec;
    sec << std::fixed << std::setprecision(3) << level_seconds[level];
    std::ostringstream ratio;
    if (level == 0) {
      ratio << "1.00x (baseline)";
    } else if (level_seconds[0] > 0) {
      ratio << std::fixed << std::setprecision(2)
            << level_seconds[level] / level_seconds[0] << "x";
    } else {
      ratio << "n/a";
    }
    overhead.AddRow({std::to_string(kLevels[level]), sec.str(), ratio.str(),
                     std::to_string(level_probed[level])});
  }
  overhead.Print();

  std::ofstream out(json_path);
  out << "{\"bench\":\"flakiness_probe\",\"exact_classification\":"
      << (exact ? "true" : "false")
      << ",\"stability_matches\":" << total.stability_matches
      << ",\"seeded\":" << truth.size() << ",\"levels\":[";
  for (size_t level = 0; level < 4; ++level) {
    out << (level > 0 ? "," : "") << "{\"repetitions\":" << kLevels[level]
        << ",\"seconds\":" << level_seconds[level]
        << ",\"probed_runs\":" << level_probed[level] << "}";
  }
  out << "]}\n";
  std::cout << "\nwrote " << json_path << "\n";
  return exact ? 0 : 1;
}
