// Evaluates retry-structure identification accuracy against the corpus's
// structure-level ground truth — the §4.2 paragraph where the paper samples
// identified locations by hand (CodeQL: 3 FPs in 40 sampled loops; GPT-4: 16
// FPs in 100 sampled locations). Here every structure is labeled, so precision
// and recall are exact rather than sampled.

#include <iostream>
#include <unordered_set>

#include "bench/bench_util.h"
#include "src/analysis/retry_finder.h"

int main() {
  using namespace wasabi;
  PrintHeading("Identification accuracy: CodeQL-style vs LLM vs ground truth",
               "Section 4.2");

  TablePrinter table({"App", "True structures", "CodeQL TP/FP", "LLM TP/FP",
                      "Combined recall"});
  int codeql_tp = 0;
  int codeql_fp = 0;
  int llm_tp = 0;
  int llm_fp = 0;
  int truth_total = 0;
  int combined_found = 0;

  for (const std::string& name : CorpusAppNames()) {
    AppRun run = RunAppWorkflows(name);
    std::unordered_set<std::string> truth(run.app.true_retry_coordinators.begin(),
                                          run.app.true_retry_coordinators.end());
    truth_total += static_cast<int>(truth.size());

    int app_codeql_tp = 0;
    int app_codeql_fp = 0;
    int app_llm_tp = 0;
    int app_llm_fp = 0;
    std::unordered_set<std::string> found;
    for (const RetryStructure& structure : run.identification.structures) {
      bool real = truth.count(structure.coordinator) > 0;
      if (real) {
        found.insert(structure.coordinator);
      }
      if (structure.found_by.codeql) {
        (real ? app_codeql_tp : app_codeql_fp) += 1;
      }
      if (structure.found_by.llm) {
        (real ? app_llm_tp : app_llm_fp) += 1;
      }
    }
    combined_found += static_cast<int>(found.size());
    codeql_tp += app_codeql_tp;
    codeql_fp += app_codeql_fp;
    llm_tp += app_llm_tp;
    llm_fp += app_llm_fp;

    table.AddRow({run.app.short_code, std::to_string(truth.size()),
                  std::to_string(app_codeql_tp) + "/" + std::to_string(app_codeql_fp),
                  std::to_string(app_llm_tp) + "/" + std::to_string(app_llm_fp),
                  Percent(static_cast<double>(found.size()),
                          static_cast<double>(truth.size()))});
  }
  table.Print();

  std::cout << "\nAggregate precision:\n"
            << "  CodeQL-style: " << codeql_tp << " TP / " << codeql_fp << " FP ("
            << Percent(codeql_tp, codeql_tp + codeql_fp) << ")\n"
            << "  LLM:          " << llm_tp << " TP / " << llm_fp << " FP ("
            << Percent(llm_tp, llm_tp + llm_fp) << ")\n"
            << "Combined recall over " << truth_total << " true structures: "
            << Percent(combined_found, truth_total) << "\n";

  std::cout << "\nPaper reference: CodeQL sampling showed 3 FP / 40 loops (92.5% precise) —\n"
            << "a lock-retry loop, a unique-id minting loop, and a retryOnConflict\n"
            << "parameter parser, all of which this corpus seeds verbatim; GPT-4 sampling\n"
            << "showed 16 FP / 100 locations (84% precise), its FPs being queue iteration,\n"
            << "status polling, and retry-named parameter handling. The LLM should measure\n"
            << "less precise than the control-flow query here too.\n";
  return 0;
}
