// Regenerates the §4.1 IF-bug results: retry-ratio outliers found by the
// CodeQL-style checker, with per-exception ratios.

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace wasabi;
  PrintHeading("IF-bug detection via application-wide retry ratios", "Section 4.1 / 3.2.2");

  std::vector<AppRun> runs = RunFullCorpusWorkflows();

  TablePrinter table({"App", "Exception", "Retried/Caught", "Outlier sites", "True bug?"});
  int reports = 0;
  int true_bugs = 0;
  for (const AppRun& run : runs) {
    Scorecard score = ScoreReports(
        run.statics.if_bugs, DetectableBugs(run.app.bugs, DetectionTechnique::kCodeQlStatic));
    for (const IfOutlierReport& outlier : run.statics.if_outliers) {
      ++reports;
      // An outlier report is a true bug if any of its sites matches a seeded bug.
      bool is_true = false;
      for (const CatchSite& site : outlier.outlier_sites) {
        for (const SeededBug& bug : run.app.bugs) {
          if (bug.type == BugType::kIfOutlier && bug.coordinator == site.coordinator) {
            is_true = true;
          }
        }
      }
      if (is_true) {
        ++true_bugs;
      }
      table.AddRow({run.app.short_code, outlier.exception,
                    std::to_string(outlier.retried) + "/" +
                        std::to_string(outlier.caught_in_retry_loops),
                    std::to_string(outlier.outlier_sites.size()), is_true ? "yes" : "no"});
    }
    (void)score;
  }
  table.Print();

  std::cout << "\nTotal outlier exceptions reported: " << reports << " (" << true_bugs
            << " true)\n"
            << "Paper shape: 9 outlier cases, 8 truly problematic, e.g. KeeperException\n"
            << "retried in 17/20 loops where it is caught.\n";
  return 0;
}
