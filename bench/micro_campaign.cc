// Scaling benchmark for the parallel injection-campaign executor: the Table 3
// campaign (the full dynamic workflow over all eight corpus applications) at
// 1/2/4/8 workers. Identification is memoized per Wasabi instance, so after a
// warmup pass the timed region is the coverage pass + injected runs — the two
// phases §4.3 shows dominate wall clock — fanned out by the executor.
//
// Besides the human-readable table, a JSON record (first argument, default
// micro_campaign.json) captures seconds/speedup per worker level plus the
// host's hardware concurrency, so CI can track scaling and interpret runs on
// machines with fewer cores than workers.
//
// Every level's bug reports are checked byte-identical against the serial
// JSON — the executor's determinism contract, enforced here too, not just in
// the unit tests.

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/report_json.h"
#include "src/exec/task_pool.h"
#include "src/obs/metrics.h"

int main(int argc, char** argv) {
  using namespace wasabi;
  using Clock = std::chrono::steady_clock;
  const std::string json_path = argc > 1 ? argv[1] : "micro_campaign.json";

  PrintHeading("Campaign-executor scaling on the Table 3 workload", "Section 4.3");
  std::cout << "hardware threads available: " << DefaultJobCount() << "\n\n";

  // Front-load the corpus: parse + index once, one Wasabi per app whose
  // identification memo is filled by the warmup pass below.
  std::vector<CorpusApp> apps = BuildFullCorpus();
  std::vector<std::unique_ptr<Wasabi>> tools;
  tools.reserve(apps.size());
  for (CorpusApp& app : apps) {
    WasabiOptions options = DefaultOptionsFor(app);
    options.jobs = 1;
    tools.push_back(std::make_unique<Wasabi>(app.program, *app.index, options));
  }

  // A fresh registry per timed pass: pool.* counters from the facade's
  // ExportPoolMetrics give per-level worker utilization (busy time over
  // wall time x workers), steals, and task counts.
  auto run_all = [&](int jobs, MetricsRegistry* metrics) {
    std::string json;
    for (auto& tool : tools) {
      tool->set_jobs(jobs);
      tool->set_observability(nullptr, metrics);
      json += BugReportsToJson(tool->RunDynamicWorkflow().bugs);
      tool->set_observability(nullptr, nullptr);
    }
    return json;
  };

  const std::string reference_json = run_all(1, nullptr);  // Warmup; fills the memos.

  struct PoolSample {
    int64_t tasks = 0;
    int64_t steals = 0;
    double utilization = 0;  // Mean across the 8 per-app campaigns.
  };
  const int kLevels[] = {1, 2, 4, 8};
  const int kReps = 3;
  double level_seconds[4] = {0, 0, 0, 0};
  PoolSample level_pool[4];
  bool deterministic = true;
  for (size_t level = 0; level < 4; ++level) {
    double best = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      MetricsRegistry metrics;
      Clock::time_point start = Clock::now();
      std::string json = run_all(kLevels[level], &metrics);
      double seconds = std::chrono::duration<double>(Clock::now() - start).count();
      if (rep == 0 || seconds < best) {
        best = seconds;
        level_pool[level].tasks = metrics.CounterValue("pool.tasks_total");
        level_pool[level].steals = metrics.CounterValue("pool.steals_total");
        // busy/(wall*workers), both summed across the per-app campaigns.
        double busy = static_cast<double>(metrics.CounterValue("pool.busy_us_total"));
        double wall = static_cast<double>(metrics.CounterValue("pool.wall_us_total"));
        level_pool[level].utilization = wall > 0 ? busy / (wall * kLevels[level]) : 0;
      }
      if (json != reference_json) {
        deterministic = false;
      }
    }
    level_seconds[level] = best;
  }

  TablePrinter table({"Workers", "Seconds (best of 3)", "Speedup vs serial", "Efficiency",
                      "Utilization", "Tasks", "Steals"});
  for (size_t level = 0; level < 4; ++level) {
    double speedup = level_seconds[level] > 0 ? level_seconds[0] / level_seconds[level] : 0;
    std::ostringstream sec;
    sec << std::fixed << std::setprecision(3) << level_seconds[level];
    std::ostringstream spd;
    spd << std::fixed << std::setprecision(2) << speedup << "x";
    table.AddRow({std::to_string(kLevels[level]), sec.str(), spd.str(),
                  Percent(speedup, kLevels[level]),
                  Percent(level_pool[level].utilization, 1.0),
                  std::to_string(level_pool[level].tasks),
                  std::to_string(level_pool[level].steals)});
  }
  table.Print();
  std::cout << "\nAll worker levels produced byte-identical bug reports: "
            << (deterministic ? "yes" : "NO — DETERMINISM VIOLATION") << "\n";
  if (DefaultJobCount() < 4) {
    std::cout << "note: host has fewer than 4 hardware threads; wall-clock speedup is\n"
              << "bounded by the cores actually available, not by the executor.\n";
  }

  std::ofstream out(json_path);
  out << "{\"bench\":\"micro_campaign\",\"hardware_concurrency\":" << DefaultJobCount()
      << ",\"deterministic\":" << (deterministic ? "true" : "false") << ",\"levels\":[";
  for (size_t level = 0; level < 4; ++level) {
    double speedup = level_seconds[level] > 0 ? level_seconds[0] / level_seconds[level] : 0;
    out << (level > 0 ? "," : "") << "{\"jobs\":" << kLevels[level] << ",\"seconds\":"
        << level_seconds[level] << ",\"speedup\":" << speedup
        << ",\"utilization\":" << level_pool[level].utilization
        << ",\"tasks\":" << level_pool[level].tasks
        << ",\"steals\":" << level_pool[level].steals << "}";
  }
  out << "]}\n";
  std::cout << "\nwrote " << json_path << "\n";
  return deterministic ? 0 : 1;
}
