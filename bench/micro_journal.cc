// Microbenchmark for the retry journal (docs/OBSERVABILITY.md): the full
// dynamic workflow over every corpus app with journaling off vs on, plus the
// derivation pass and the HTML render on the collected stream. Journaling is
// default-off and its hot-path cost is one null-pointer test per event site,
// so the "on" column should stay within noise of the "off" column (minus the
// campaign-cache interaction: journaled runs always execute cold). Also
// verifies the journal is byte-identical across worker counts on every app,
// which is the determinism contract the tests pin on flakylab alone.

#include <chrono>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/exec/task_pool.h"
#include "src/obs/journal.h"
#include "src/obs/report_html.h"
#include "src/obs/retry_stats.h"

int main() {
  using namespace wasabi;
  using Clock = std::chrono::steady_clock;

  PrintHeading("Retry-journal overhead and derivation cost", "docs/OBSERVABILITY.md");
  std::cout << "hardware threads available: " << DefaultJobCount() << "\n\n";

  TablePrinter table({"app", "plain (ms)", "journaled (ms)", "events", "derive (ms)",
                      "render (ms)", "report KB", "deterministic"});

  double total_plain = 0;
  double total_journaled = 0;
  for (const std::string& name : CorpusAppNames()) {
    CorpusApp app = BuildCorpusApp(name);
    WasabiOptions options = DefaultOptionsFor(app);

    auto run_once = [&](RetryJournal* journal) {
      Wasabi tool(app.program, *app.index, options);
      if (journal != nullptr) {
        tool.set_observability(nullptr, nullptr, nullptr, journal);
      }
      const auto start = Clock::now();
      tool.RunDynamicWorkflow();
      return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
    };

    const double plain_ms = run_once(nullptr);
    RetryJournal journal;
    const double journaled_ms = run_once(&journal);
    total_plain += plain_ms;
    total_journaled += journaled_ms;

    auto derive_start = Clock::now();
    std::vector<JournalEvent> events = journal.Collect();
    RetryStatsReport stats = ComputeRetryStats(events);
    const double derive_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - derive_start).count();

    auto render_start = Clock::now();
    const std::string html = RenderHtmlReport(app.name, events, stats, "", "");
    const double render_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - render_start).count();

    // Worker-count determinism across the corpus, not just flakylab.
    RetryJournal serial_journal;
    WasabiOptions serial = options;
    serial.jobs = 1;
    Wasabi serial_tool(app.program, *app.index, serial);
    serial_tool.set_observability(nullptr, nullptr, nullptr, &serial_journal);
    serial_tool.RunDynamicWorkflow();
    const bool deterministic =
        serial_journal.ToJson(app.name) == journal.ToJson(app.name);

    auto ms = [](double value) {
      std::ostringstream out;
      out << std::fixed << std::setprecision(1) << value;
      return out.str();
    };
    table.AddRow({name, ms(plain_ms), ms(journaled_ms), std::to_string(events.size()),
                  ms(derive_ms), ms(render_ms), std::to_string(html.size() / 1024),
                  deterministic ? "yes" : "NO"});
    if (!deterministic) {
      std::cerr << "FAIL: journal for " << name << " differs across worker counts\n";
      return 1;
    }
  }
  table.Print();
  std::cout << "\ncorpus total: plain " << std::fixed << std::setprecision(1) << total_plain
            << " ms, journaled " << total_journaled << " ms\n";
  return 0;
}
