// Repair-loop cost benchmark (docs/REPAIR.md): the full detect -> synthesize
// -> validate loop over every corpus app plus the repairlab ground-truth app,
// run two ways:
//
//   cold    — no cache: every validation re-campaign recomputes the whole
//             pipeline from scratch for every patch,
//   sliced  — a fresh per-app CacheStore: the baseline populates the per-file
//             q1/when namespaces once, and each validation re-campaign then
//             reuses the unpatched slice, recomputing only the entries the
//             patch's digest change invalidated.
//
// The committed BENCH_repair.json records per-app seconds for both passes,
// the validation-phase cache traffic (the hits/misses split is the slicing
// signature), and the byte-identity verdict — the sliced report must equal
// the cold report byte for byte, which is the whole point of slicing: same
// answer, less work.
//
// Usage: micro_repair [out.json] [cache-dir-root]

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cache/store.h"
#include "src/repair/repair.h"

namespace wasabi {
namespace {

using Clock = std::chrono::steady_clock;

struct AppRecord {
  std::string app;
  int confirmed = 0;
  int fixed = 0;
  double cold_seconds = 0;
  double sliced_seconds = 0;
  uint64_t validation_hits = 0;
  uint64_t validation_misses = 0;
  bool byte_identical = false;
};

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

AppRecord MeasureApp(const std::string& name, const std::string& cache_root) {
  CorpusApp app = BuildCorpusApp(name);
  AppRecord record;
  record.app = name;

  RepairOptions cold_options;
  cold_options.wasabi = DefaultOptionsFor(app);
  Clock::time_point cold_begin = Clock::now();
  RepairReport cold = RunRepair(app.program, *app.index, cold_options);
  record.cold_seconds = Seconds(cold_begin, Clock::now());

  std::string error;
  std::unique_ptr<CacheStore> store = CacheStore::Open(cache_root + "/" + name, &error);
  if (store == nullptr) {
    std::cerr << "cache disabled for " << name << ": " << error << "\n";
  }
  RepairOptions sliced_options;
  sliced_options.wasabi = DefaultOptionsFor(app);
  sliced_options.wasabi.cache = store.get();
  Clock::time_point sliced_begin = Clock::now();
  RepairReport sliced = RunRepair(app.program, *app.index, sliced_options);
  record.sliced_seconds = Seconds(sliced_begin, Clock::now());

  record.confirmed = cold.totals.confirmed;
  record.fixed = cold.totals.fixed;
  record.validation_hits = sliced.validation_cache_delta.hits;
  record.validation_misses = sliced.validation_cache_delta.misses;
  record.byte_identical = RepairReportToJson(cold) == RepairReportToJson(sliced);
  return record;
}

}  // namespace
}  // namespace wasabi

int main(int argc, char** argv) {
  using namespace wasabi;
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_repair.json";
  const std::string cache_root = argc > 2 ? argv[2] : ".micro-repair-cache";

  PrintHeading("Repair-loop cost: cold vs cache-sliced validation", "docs/REPAIR.md");
  std::cout << "hardware threads available: " << DefaultJobCount() << "\n\n";

  std::vector<std::string> names = CorpusAppNames();
  names.push_back("repairlab");

  std::filesystem::remove_all(cache_root);
  TablePrinter table({"app", "confirmed", "fixed", "cold (ms)", "sliced (ms)",
                      "val hits", "val misses", "byte-identical"});
  std::vector<AppRecord> records;
  bool all_identical = true;
  bool any_hits = false;
  double total_cold = 0;
  double total_sliced = 0;
  for (const std::string& name : names) {
    AppRecord record = MeasureApp(name, cache_root);
    auto ms = [](double seconds) {
      std::ostringstream out;
      out << std::fixed << std::setprecision(1) << seconds * 1000.0;
      return out.str();
    };
    table.AddRow({record.app, std::to_string(record.confirmed), std::to_string(record.fixed),
                  ms(record.cold_seconds), ms(record.sliced_seconds),
                  std::to_string(record.validation_hits),
                  std::to_string(record.validation_misses),
                  record.byte_identical ? "yes" : "NO"});
    all_identical = all_identical && record.byte_identical;
    any_hits = any_hits || record.validation_hits > 0;
    total_cold += record.cold_seconds;
    total_sliced += record.sliced_seconds;
    records.push_back(record);
  }
  table.Print();
  std::filesystem::remove_all(cache_root);

  std::cout << "\ncorpus total: cold " << std::fixed << std::setprecision(1)
            << total_cold * 1000.0 << " ms, sliced " << total_sliced * 1000.0 << " ms\n";
  if (!all_identical) {
    std::cerr << "FAIL: a sliced repair report differs from its cold reference\n";
  }
  if (!any_hits) {
    std::cerr << "FAIL: no validation re-campaign hit the unpatched cache slice\n";
  }

  std::ofstream out(json_path);
  out << "{\"bench\":\"micro_repair\",\"hardware_concurrency\":" << DefaultJobCount()
      << ",\"byte_identical\":" << (all_identical ? "true" : "false") << ",\"apps\":[";
  bool first = true;
  for (const AppRecord& record : records) {
    if (!first) out << ",";
    first = false;
    out << "{\"app\":\"" << record.app << "\",\"confirmed\":" << record.confirmed
        << ",\"fixed\":" << record.fixed << ",\"cold_seconds\":" << record.cold_seconds
        << ",\"sliced_seconds\":" << record.sliced_seconds
        << ",\"validation_hits\":" << record.validation_hits
        << ",\"validation_misses\":" << record.validation_misses << "}";
  }
  out << "]}\n";
  std::cout << "record: " << json_path << "\n";

  return all_identical && any_hits ? 0 : 1;
}
