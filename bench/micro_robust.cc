// Microbenchmark for the fault-containment layer (docs/ROBUSTNESS.md): the
// full dynamic workflow over the corpus with the self-chaos harness killing a
// growing fraction of run attempts. Reports, per chaos rate, the wall-clock
// cost of containment (retry waves + quarantine bookkeeping) and the
// resilience counters — how much was retried, recovered, and given up — plus
// the determinism check: every rate must produce byte-identical output at 2
// and 4 workers.
//
// The 0% row doubles as the overhead probe: with nothing failing, the robust
// executor must cost roughly what the legacy executor costs (one extra
// admission/reduce pass over the specs).

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/report_json.h"
#include "src/exec/task_pool.h"

int main(int argc, char** argv) {
  using namespace wasabi;
  using Clock = std::chrono::steady_clock;
  const std::string json_path = argc > 1 ? argv[1] : "micro_robust.json";

  PrintHeading("Fault-containment overhead and recovery under self-chaos",
               "docs/ROBUSTNESS.md");
  std::cout << "hardware threads available: " << DefaultJobCount() << "\n\n";

  std::vector<CorpusApp> apps = BuildFullCorpus();

  struct Sample {
    double rate = 0;
    double seconds = 0;
    int64_t retries = 0;
    int64_t recovered = 0;
    int64_t quarantined = 0;
    int64_t chaos_faults = 0;
    bool deterministic = true;
  };

  auto run_all = [&](double rate, int jobs, Sample* sample) {
    std::ostringstream fingerprint;
    for (CorpusApp& app : apps) {
      WasabiOptions options = DefaultOptionsFor(app);
      options.jobs = jobs;
      if (rate > 0) {
        options.robust.chaos.enabled = true;
        options.robust.chaos.seed = 42;
        options.robust.chaos.rate = rate;
      }
      Wasabi tool(app.program, *app.index, options);
      DynamicResult result = tool.RunDynamicWorkflow();
      fingerprint << BugReportsToJson(result.bugs);
      fingerprint << "quarantined=" << result.quarantined.size() << "\n";
      if (sample != nullptr) {
        sample->retries += result.robustness.retries;
        sample->recovered += result.robustness.recovered;
        sample->quarantined += result.robustness.quarantined;
        sample->chaos_faults += result.robustness.chaos_faults;
      }
    }
    return fingerprint.str();
  };

  run_all(0.0, 1, nullptr);  // Warmup: touches every code path once.

  const double kRates[] = {0.0, 0.05, 0.1, 0.25};
  std::vector<Sample> samples;
  for (double rate : kRates) {
    Sample sample;
    sample.rate = rate;
    Clock::time_point start = Clock::now();
    std::string four_workers = run_all(rate, 4, &sample);
    sample.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    sample.deterministic = run_all(rate, 2, nullptr) == four_workers;
    samples.push_back(sample);
  }

  TablePrinter table({"Chaos rate", "Seconds (4 workers)", "Retries", "Recovered",
                      "Quarantined", "Chaos faults", "Deterministic"});
  bool all_deterministic = true;
  for (const Sample& sample : samples) {
    std::ostringstream rate;
    rate << std::fixed << std::setprecision(2) << sample.rate;
    std::ostringstream sec;
    sec << std::fixed << std::setprecision(3) << sample.seconds;
    table.AddRow({rate.str(), sec.str(), std::to_string(sample.retries),
                  std::to_string(sample.recovered), std::to_string(sample.quarantined),
                  std::to_string(sample.chaos_faults),
                  sample.deterministic ? "yes" : "NO"});
    all_deterministic = all_deterministic && sample.deterministic;
  }
  table.Print();
  std::cout << "\nAll chaos rates byte-identical across 2 and 4 workers: "
            << (all_deterministic ? "yes" : "NO — DETERMINISM VIOLATION") << "\n";

  std::ofstream out(json_path);
  out << "{\"bench\":\"micro_robust\",\"deterministic\":"
      << (all_deterministic ? "true" : "false") << ",\"rates\":[";
  for (size_t i = 0; i < samples.size(); ++i) {
    const Sample& sample = samples[i];
    out << (i > 0 ? "," : "") << "{\"rate\":" << sample.rate << ",\"seconds\":"
        << sample.seconds << ",\"retries\":" << sample.retries << ",\"recovered\":"
        << sample.recovered << ",\"quarantined\":" << sample.quarantined
        << ",\"chaos_faults\":" << sample.chaos_faults << "}";
  }
  out << "]}\n";
  std::cout << "\nwrote " << json_path << "\n";
  return all_deterministic ? 0 : 1;
}
