// Google-benchmark microbenchmarks for the substrate: parsing, CFG
// construction, retry-finder queries, SimLLM analysis, interpretation, and
// fault-injected test execution. These quantify the cost structure behind the
// table benches (the paper's §4.3 observation that test execution dominates
// and static analysis is <1% holds here too).

#include <benchmark/benchmark.h>

#include <memory>

#include "src/analysis/cfg.h"
#include "src/analysis/retry_finder.h"
#include "src/corpus/corpus.h"
#include "src/corpus/generator.h"
#include "src/inject/injector.h"
#include "src/lang/parser.h"
#include "src/llm/sim_llm.h"
#include "src/testing/runner.h"

namespace wasabi {
namespace {

const GeneratedApp& SampleApp() {
  static const GeneratedApp* kApp = [] {
    GeneratorSpec spec;
    spec.app = "benchapp";
    spec.display_name = "BenchApp";
    spec.seed = 99;
    spec.counts.ok_loops = 5;
    spec.counts.nodelay_loops = 2;
    spec.counts.ok_queues = 2;
    spec.counts.ok_state_machines = 2;
    spec.counts.unrelated_util_files = 5;
    return new GeneratedApp(GenerateApp(spec));
  }();
  return *kApp;
}

const CorpusApp& SampleCorpusApp() {
  static const CorpusApp* kApp = new CorpusApp(BuildCorpusApp("hacommon"));
  return *kApp;
}

void BM_ParseApp(benchmark::State& state) {
  const GeneratedApp& app = SampleApp();
  int64_t bytes = 0;
  for (auto _ : state) {
    mj::DiagnosticEngine diag;
    mj::Program program;
    for (const auto& [file, source] : app.files) {
      program.AddUnit(mj::ParseSource(file, source, diag));
      bytes += static_cast<int64_t>(source.size());
    }
    benchmark::DoNotOptimize(program.units().size());
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_ParseApp);

void BM_BuildAllCfgs(benchmark::State& state) {
  const CorpusApp& app = SampleCorpusApp();
  for (auto _ : state) {
    CfgBuilder builder;
    size_t nodes = 0;
    for (const mj::MethodDecl* method : app.index->all_methods()) {
      Cfg cfg = builder.Build(*method);
      nodes += cfg.size();
    }
    benchmark::DoNotOptimize(nodes);
  }
}
BENCHMARK(BM_BuildAllCfgs);

void BM_RetryFinderLoopQuery(benchmark::State& state) {
  const CorpusApp& app = SampleCorpusApp();
  for (auto _ : state) {
    RetryFinder finder(app.program, *app.index);
    benchmark::DoNotOptimize(finder.FindLoopStructures().size());
  }
}
BENCHMARK(BM_RetryFinderLoopQuery);

void BM_SimLlmAnalyzeApp(benchmark::State& state) {
  const CorpusApp& app = SampleCorpusApp();
  for (auto _ : state) {
    SimLlm llm;
    size_t coordinators = 0;
    for (const auto& unit : app.program.units()) {
      coordinators += llm.AnalyzeFile(*unit).coordinators.size();
    }
    benchmark::DoNotOptimize(coordinators);
  }
}
BENCHMARK(BM_SimLlmAnalyzeApp);

void BM_RunCleanTestSuite(benchmark::State& state) {
  const CorpusApp& app = SampleCorpusApp();
  RunnerOptions options;
  options.config_overrides = app.default_configs;
  TestRunner runner(app.program, *app.index, options);
  std::vector<TestCase> tests = runner.DiscoverTests();
  for (auto _ : state) {
    int passed = 0;
    for (const TestCase& test : tests) {
      TestRunRecord record = runner.RunTest(test);
      passed += record.outcome.status == TestStatus::kPassed ? 1 : 0;
    }
    benchmark::DoNotOptimize(passed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tests.size()));
}
BENCHMARK(BM_RunCleanTestSuite);

void BM_InjectedTestSuite(benchmark::State& state) {
  // The whole suite with a K=100 injector armed on the shared RPC client —
  // the cost shape of one planned WASABI injection campaign.
  const CorpusApp& app = SampleCorpusApp();
  RunnerOptions options;
  options.config_overrides = app.default_configs;
  TestRunner runner(app.program, *app.index, options);
  std::vector<TestCase> tests = runner.DiscoverTests();
  for (auto _ : state) {
    int outcomes = 0;
    for (const TestCase& test : tests) {
      FaultInjector injector({InjectionPoint{"HacommonRpcClient.call",
                                             "HacommonRpcClient.ping", "ConnectException",
                                             kInjectRepeatedly}});
      TestRunRecord record = runner.RunTest(test, {&injector});
      outcomes += static_cast<int>(record.outcome.status);
    }
    benchmark::DoNotOptimize(outcomes);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tests.size()));
}
BENCHMARK(BM_InjectedTestSuite);

void BM_InterpreterArithmeticThroughput(benchmark::State& state) {
  mj::DiagnosticEngine diag;
  mj::Program program;
  program.AddUnit(mj::ParseSource("hot.mj", R"(
    class Hot {
      int spin(n) {
        var acc = 0;
        for (var i = 0; i < n; i++) {
          acc = (acc + i * 3) % 1000003;
        }
        return acc;
      }
    }
  )", diag));
  mj::ProgramIndex index(program);
  for (auto _ : state) {
    Interpreter interp(program, index);
    benchmark::DoNotOptimize(interp.Invoke("Hot.spin", {Value{int64_t{10000}}}));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
}
BENCHMARK(BM_InterpreterArithmeticThroughput);

}  // namespace
}  // namespace wasabi

BENCHMARK_MAIN();
