// Google-benchmark microbenchmarks for the substrate: parsing, CFG
// construction, retry-finder queries, SimLLM analysis, interpretation, and
// fault-injected test execution. These quantify the cost structure behind the
// table benches (the paper's §4.3 observation that test execution dominates
// and static analysis is <1% holds here too).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <thread>

#include "src/analysis/cfg.h"
#include "src/analysis/retry_finder.h"
#include "src/corpus/corpus.h"
#include "src/corpus/generator.h"
#include "src/exec/campaign.h"
#include "src/inject/injector.h"
#include "src/lang/parser.h"
#include "src/llm/sim_llm.h"
#include "src/testing/coverage.h"
#include "src/testing/runner.h"
#include "src/vm/bytecode.h"

namespace wasabi {
namespace {

const GeneratedApp& SampleApp() {
  static const GeneratedApp* kApp = [] {
    GeneratorSpec spec;
    spec.app = "benchapp";
    spec.display_name = "BenchApp";
    spec.seed = 99;
    spec.counts.ok_loops = 5;
    spec.counts.nodelay_loops = 2;
    spec.counts.ok_queues = 2;
    spec.counts.ok_state_machines = 2;
    spec.counts.unrelated_util_files = 5;
    return new GeneratedApp(GenerateApp(spec));
  }();
  return *kApp;
}

const CorpusApp& SampleCorpusApp() {
  static const CorpusApp* kApp = new CorpusApp(BuildCorpusApp("hacommon"));
  return *kApp;
}

void BM_ParseApp(benchmark::State& state) {
  const GeneratedApp& app = SampleApp();
  int64_t bytes = 0;
  for (auto _ : state) {
    mj::DiagnosticEngine diag;
    mj::Program program;
    for (const auto& [file, source] : app.files) {
      program.AddUnit(mj::ParseSource(file, source, diag));
      bytes += static_cast<int64_t>(source.size());
    }
    benchmark::DoNotOptimize(program.units().size());
  }
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_ParseApp);

void BM_BuildAllCfgs(benchmark::State& state) {
  const CorpusApp& app = SampleCorpusApp();
  for (auto _ : state) {
    CfgBuilder builder;
    size_t nodes = 0;
    for (const mj::MethodDecl* method : app.index->all_methods()) {
      Cfg cfg = builder.Build(*method);
      nodes += cfg.size();
    }
    benchmark::DoNotOptimize(nodes);
  }
}
BENCHMARK(BM_BuildAllCfgs);

void BM_RetryFinderLoopQuery(benchmark::State& state) {
  const CorpusApp& app = SampleCorpusApp();
  for (auto _ : state) {
    RetryFinder finder(app.program, *app.index);
    benchmark::DoNotOptimize(finder.FindLoopStructures().size());
  }
}
BENCHMARK(BM_RetryFinderLoopQuery);

void BM_SimLlmAnalyzeApp(benchmark::State& state) {
  const CorpusApp& app = SampleCorpusApp();
  for (auto _ : state) {
    SimLlm llm;
    size_t coordinators = 0;
    for (const auto& unit : app.program.units()) {
      coordinators += llm.AnalyzeFile(*unit).coordinators.size();
    }
    benchmark::DoNotOptimize(coordinators);
  }
}
BENCHMARK(BM_SimLlmAnalyzeApp);

void BM_RunCleanTestSuite(benchmark::State& state, EngineKind engine) {
  const CorpusApp& app = SampleCorpusApp();
  RunnerOptions options;
  options.interp.engine = engine;
  options.config_overrides = app.default_configs;
  TestRunner runner(app.program, *app.index, options);
  std::vector<TestCase> tests = runner.DiscoverTests();
  int64_t steps = 0;
  for (auto _ : state) {
    int passed = 0;
    for (const TestCase& test : tests) {
      TestRunRecord record = runner.RunTest(test);
      passed += record.outcome.status == TestStatus::kPassed ? 1 : 0;
      steps += record.steps;
    }
    benchmark::DoNotOptimize(passed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tests.size()));
  state.counters["steps_per_sec"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
// The engine dimension (docs/PERFORMANCE.md): every interpretation benchmark
// runs under both the bytecode VM (the default engine) and the reference
// tree-walker, so BENCH_interp.json carries the speedup alongside the
// tree-walker numbers the earlier hot-path PRs recorded.
BENCHMARK_CAPTURE(BM_RunCleanTestSuite, vm, EngineKind::kVm);
BENCHMARK_CAPTURE(BM_RunCleanTestSuite, tree, EngineKind::kTree);

void BM_RunCleanTestSuiteArena(benchmark::State& state, EngineKind engine) {
  // Same workload through a per-worker arena: the campaign executors' hot
  // configuration (warm frames + dispatch cache, ResetForRun isolation).
  const CorpusApp& app = SampleCorpusApp();
  RunnerOptions options;
  options.interp.engine = engine;
  options.config_overrides = app.default_configs;
  TestRunner runner(app.program, *app.index, options);
  std::vector<TestCase> tests = runner.DiscoverTests();
  InterpreterArena arena;
  int64_t steps = 0;
  for (auto _ : state) {
    int passed = 0;
    for (const TestCase& test : tests) {
      TestRunRecord record = runner.RunTest(test, {}, &arena);
      passed += record.outcome.status == TestStatus::kPassed ? 1 : 0;
      steps += record.steps;
    }
    benchmark::DoNotOptimize(passed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tests.size()));
  state.counters["steps_per_sec"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_RunCleanTestSuiteArena, vm, EngineKind::kVm);
BENCHMARK_CAPTURE(BM_RunCleanTestSuiteArena, tree, EngineKind::kTree);

void BM_InjectedTestSuite(benchmark::State& state) {
  // The whole suite with a K=100 injector armed on the shared RPC client —
  // the cost shape of one planned WASABI injection campaign.
  const CorpusApp& app = SampleCorpusApp();
  RunnerOptions options;
  options.config_overrides = app.default_configs;
  TestRunner runner(app.program, *app.index, options);
  std::vector<TestCase> tests = runner.DiscoverTests();
  int64_t steps = 0;
  for (auto _ : state) {
    int outcomes = 0;
    for (const TestCase& test : tests) {
      FaultInjector injector({InjectionPoint{"HacommonRpcClient.call",
                                             "HacommonRpcClient.ping", "ConnectException",
                                             kInjectRepeatedly}});
      TestRunRecord record = runner.RunTest(test, {&injector});
      outcomes += static_cast<int>(record.outcome.status);
      steps += record.steps;
    }
    benchmark::DoNotOptimize(outcomes);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(tests.size()));
  state.counters["steps_per_sec"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InjectedTestSuite);

void BM_CampaignRunsPerSecond(benchmark::State& state) {
  // End-to-end planned injection campaign over the corpus app, serial pool —
  // the runs/sec figure BENCH_interp.json reports (campaign throughput is the
  // quantity the §4.3 cost observation is about; the interpreter dominates
  // it). Uses the same coverage → plan → expand path as the dynamic workflow.
  const CorpusApp& app = SampleCorpusApp();
  RunnerOptions options;
  options.config_overrides = app.default_configs;
  TestRunner runner(app.program, *app.index, options);
  std::vector<TestCase> tests = runner.DiscoverTests();

  RetryFinder finder(app.program, *app.index);
  std::vector<RetryLocation> locations;
  for (const RetryStructure& structure : finder.FindLoopStructures()) {
    locations.insert(locations.end(), structure.locations.begin(), structure.locations.end());
  }
  TaskPool pool(1);
  CoverageMap coverage = MapCoverageParallel(runner, tests, locations, pool);
  std::vector<PlanEntry> plan = PlanInjections(coverage, locations.size());
  std::vector<CampaignRunSpec> specs =
      ExpandPlan(plan, locations, {kInjectOnce, kInjectRepeatedly});

  int64_t runs = 0;
  int64_t steps = 0;
  for (auto _ : state) {
    std::vector<CampaignRunResult> results = ExecuteCampaign(runner, locations, specs, pool);
    runs += static_cast<int64_t>(results.size());
    for (const CampaignRunResult& result : results) {
      steps += result.record.steps;
    }
    benchmark::DoNotOptimize(results.size());
  }
  state.SetItemsProcessed(runs);
  state.counters["campaign_runs_per_sec"] =
      benchmark::Counter(static_cast<double>(runs), benchmark::Counter::kIsRate);
  state.counters["steps_per_sec"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CampaignRunsPerSecond);

void BM_InterpreterArithmeticThroughput(benchmark::State& state, EngineKind engine) {
  mj::DiagnosticEngine diag;
  mj::Program program;
  program.AddUnit(mj::ParseSource("hot.mj", R"(
    class Hot {
      int spin(n) {
        var acc = 0;
        for (var i = 0; i < n; i++) {
          acc = (acc + i * 3) % 1000003;
        }
        return acc;
      }
    }
  )", diag));
  mj::ProgramIndex index(program);
  InterpOptions interp_options;
  interp_options.engine = engine;
  int64_t steps = 0;
  for (auto _ : state) {
    Interpreter interp(program, index, interp_options);
    benchmark::DoNotOptimize(interp.Invoke("Hot.spin", {Value{int64_t{10000}}}));
    steps += interp.steps();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
  state.counters["steps_per_sec"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_InterpreterArithmeticThroughput, vm, EngineKind::kVm);
BENCHMARK_CAPTURE(BM_InterpreterArithmeticThroughput, tree, EngineKind::kTree);

void BM_InterpreterArenaReuseThroughput(benchmark::State& state, EngineKind engine) {
  // Same hot loop, but reusing one interpreter via ResetForRun the way a
  // campaign worker does — isolates the per-run construction overhead the
  // arena removes.
  mj::DiagnosticEngine diag;
  mj::Program program;
  program.AddUnit(mj::ParseSource("hot.mj", R"(
    class Hot {
      int spin(n) {
        var acc = 0;
        for (var i = 0; i < n; i++) {
          acc = (acc + i * 3) % 1000003;
        }
        return acc;
      }
    }
  )", diag));
  mj::ProgramIndex index(program);
  InterpOptions interp_options;
  interp_options.engine = engine;
  Interpreter interp(program, index, interp_options);
  int64_t steps = 0;
  for (auto _ : state) {
    interp.ResetForRun();
    benchmark::DoNotOptimize(interp.Invoke("Hot.spin", {Value{int64_t{10000}}}));
    steps += interp.steps();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 10000);
  state.counters["steps_per_sec"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK_CAPTURE(BM_InterpreterArenaReuseThroughput, vm, EngineKind::kVm);
BENCHMARK_CAPTURE(BM_InterpreterArenaReuseThroughput, tree, EngineKind::kTree);

}  // namespace
}  // namespace wasabi

int main(int argc, char** argv) {
  // Same caveat micro_campaign records: throughput numbers from hosts with
  // few hardware threads are interpretable only alongside this value.
  benchmark::AddCustomContext("hardware_concurrency",
                              std::to_string(std::thread::hardware_concurrency()));
  // Which dispatch strategy the VM was compiled with (docs/PERFORMANCE.md):
  // "computed-goto" where the compiler probe found the GNU labels-as-values
  // extension, "switch" on the portable fallback. VM numbers from the two
  // strategies are not directly comparable, so the record carries the probe.
  benchmark::AddCustomContext("vm_dispatch", wasabi::vm::DispatchKindName());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
