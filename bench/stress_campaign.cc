// Cache cold/warm benchmark (docs/CACHING.md): the full dynamic campaign over
// the seed corpus (the paper's 8 applications) and over a ~10x scaled corpus
// (`BuildScaledCorpus`, deterministic seeded variants), each run three ways:
//
//   cold  — empty --cache-dir: every lookup misses, everything executes, the
//           store is populated and flushed,
//   warm  — a fresh process image (fresh stores, fresh Wasabi instances)
//           re-running the identical workload: per-file SimLLM results,
//           coverage runs, and whole-campaign verdicts all replay,
//   off   — no cache at all, the byte-identity reference.
//
// The committed BENCH_cache.json records the cold/warm seconds and speedup
// for both corpora plus the byte-identity verdicts; the acceptance bar is a
// warm re-run >= 5x faster than cold across the seed corpus.
//
// Usage: stress_campaign [out.json] [cache-dir-root] [scale]

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cache/store.h"
#include "src/core/report_json.h"
#include "src/exec/task_pool.h"

namespace wasabi {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

struct PassResult {
  double seconds = 0;
  std::string fingerprint;  // Bug reports + raw firing counts, all apps.
};

// One full campaign pass over `apps`. `cache_root` empty = cache off;
// otherwise each app gets `<cache_root>/<app>` (opened fresh, flushed after).
PassResult RunPass(std::vector<CorpusApp>& apps, const std::string& cache_root) {
  PassResult pass;
  std::ostringstream fingerprint;
  Clock::time_point begin = Clock::now();
  for (CorpusApp& app : apps) {
    WasabiOptions options = DefaultOptionsFor(app);
    Wasabi tool(app.program, *app.index, options);
    std::unique_ptr<CacheStore> store;
    if (!cache_root.empty()) {
      std::string error;
      store = CacheStore::Open(cache_root + "/" + app.name, &error);
      if (store == nullptr) {
        std::cerr << "cache disabled for " << app.name << ": " << error << "\n";
      }
      tool.set_cache(store.get());
    }
    DynamicResult result = tool.RunDynamicWorkflow();
    fingerprint << app.name << "|" << BugReportsToJson(result.bugs) << "|"
                << result.raw_reports.size() << "|" << result.planned_runs << "\n";
    if (store != nullptr) {
      std::string error;
      if (!store->Flush(&error)) {
        std::cerr << "cache flush failed for " << app.name << ": " << error << "\n";
      }
    }
  }
  pass.seconds = Seconds(begin, Clock::now());
  pass.fingerprint = fingerprint.str();
  return pass;
}

struct CorpusRecord {
  std::string label;
  size_t apps = 0;
  double cold_seconds = 0;
  double warm_seconds = 0;
  double speedup = 0;
  bool byte_identical = false;
};

// Best-of-N wall clock per pass, standard bench hygiene: the fingerprint is
// asserted identical across repetitions, the minimum time is recorded.
constexpr int kRepetitions = 3;

CorpusRecord MeasureCorpus(const std::string& label, std::vector<CorpusApp>& apps,
                           const std::string& cache_root) {
  std::filesystem::remove_all(cache_root);
  CorpusRecord record;
  record.label = label;
  record.apps = apps.size();

  PassResult off, cold, warm;
  for (int i = 0; i < kRepetitions; ++i) {
    PassResult pass = RunPass(apps, "");
    if (i == 0 || pass.seconds < off.seconds) off.seconds = pass.seconds;
    off.fingerprint = pass.fingerprint;
  }
  for (int i = 0; i < kRepetitions; ++i) {
    std::filesystem::remove_all(cache_root);  // Every cold repetition starts empty.
    PassResult pass = RunPass(apps, cache_root);
    if (i == 0 || pass.seconds < cold.seconds) cold.seconds = pass.seconds;
    cold.fingerprint = pass.fingerprint;
  }
  for (int i = 0; i < kRepetitions; ++i) {
    PassResult pass = RunPass(apps, cache_root);
    if (i == 0 || pass.seconds < warm.seconds) warm.seconds = pass.seconds;
    warm.fingerprint = pass.fingerprint;
  }
  record.cold_seconds = cold.seconds;
  record.warm_seconds = warm.seconds;
  record.speedup = warm.seconds > 0 ? cold.seconds / warm.seconds : 0;
  record.byte_identical =
      off.fingerprint == cold.fingerprint && off.fingerprint == warm.fingerprint;

  TablePrinter table({"Pass", "Seconds", "Speedup vs cold", "Byte-identical"});
  std::ostringstream cold_s, warm_s, off_s, speed;
  off_s << std::fixed << std::setprecision(3) << off.seconds;
  cold_s << std::fixed << std::setprecision(3) << cold.seconds;
  warm_s << std::fixed << std::setprecision(3) << warm.seconds;
  speed << std::fixed << std::setprecision(1) << record.speedup << "x";
  table.AddRow({"cache off", off_s.str(), "-", "reference"});
  table.AddRow({"cold (populate)", cold_s.str(), "1.0x", off.fingerprint == cold.fingerprint ? "yes" : "NO"});
  table.AddRow({"warm (replay)", warm_s.str(), speed.str(), off.fingerprint == warm.fingerprint ? "yes" : "NO"});
  std::cout << "\n" << label << " (" << apps.size() << " apps):\n";
  table.Print();

  std::filesystem::remove_all(cache_root);
  return record;
}

void AppendRecordJson(std::ostream& out, const CorpusRecord& record) {
  out << "{\"label\":\"" << record.label << "\",\"apps\":" << record.apps
      << ",\"cold_seconds\":" << record.cold_seconds
      << ",\"warm_seconds\":" << record.warm_seconds << ",\"speedup\":" << record.speedup
      << ",\"byte_identical\":" << (record.byte_identical ? "true" : "false") << "}";
}

}  // namespace
}  // namespace wasabi

int main(int argc, char** argv) {
  using namespace wasabi;
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_cache.json";
  const std::string cache_root = argc > 2 ? argv[2] : ".stress-campaign-cache";
  const int scale = argc > 3 ? std::atoi(argv[3]) : 10;

  PrintHeading("Result-cache cold/warm campaign benchmark", "docs/CACHING.md");

  std::vector<CorpusApp> seed = BuildFullCorpus();
  CorpusRecord seed_record = MeasureCorpus("seed corpus", seed, cache_root + "/seed");
  seed.clear();

  std::vector<CorpusApp> scaled = BuildScaledCorpus(scale);
  CorpusRecord stress_record =
      MeasureCorpus("stress corpus (scale " + std::to_string(scale) + ")", scaled,
                    cache_root + "/stress");
  scaled.clear();
  std::filesystem::remove_all(cache_root);

  const bool meets_bar = seed_record.speedup >= 5.0;
  std::cout << "\nwarm seed-corpus re-run speedup: " << std::fixed << std::setprecision(1)
            << seed_record.speedup << "x (acceptance bar: >= 5x) — "
            << (meets_bar ? "met" : "NOT MET") << "\n";

  std::ofstream out(json_path);
  out << "{\"bench\":\"stress_campaign\",\"hardware_concurrency\":" << DefaultJobCount()
      << ",\"scale\":" << scale << ",\"warm_meets_5x\":" << (meets_bar ? "true" : "false")
      << ",\"corpora\":[";
  AppendRecordJson(out, seed_record);
  out << ",";
  AppendRecordJson(out, stress_record);
  out << "]}\n";
  std::cout << "record: " << json_path << "\n";

  return seed_record.byte_identical && stress_record.byte_identical && meets_bar ? 0 : 1;
}
