// Storm-simulation determinism stress (docs/STORM.md): runs the full
// `wasabi storm` pipeline — profile extraction, discrete-event simulation,
// report + journal serialization — over the stormlab ground-truth app at
// --jobs 1/2/4/8 and across repeated same-seed runs, and fails (exit 1) on
// the first byte that differs. Also prints the oracle scorecard against the
// seeded manifest; the acceptance bar is exact TP=3 / FP=0 / FN=0.
//
// Usage: stress_storm [repeats-per-jobs-level]   (default 3)

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/scoring.h"
#include "src/corpus/corpus.h"
#include "src/obs/journal.h"
#include "src/storm/profile.h"
#include "src/storm/storm.h"

namespace wasabi {
namespace {

using Clock = std::chrono::steady_clock;

struct StormArtifacts {
  std::string report_json;
  std::string journal_json;
  StormReport report;
};

StormArtifacts RunPipeline(const CorpusApp& app, int jobs) {
  StormArtifacts artifacts;
  std::vector<EdgeRetryProfile> profiles = ExtractRetryProfiles(app.program, *app.index, jobs);
  RetryJournal journal;
  StormOptions options;
  artifacts.report = RunStormSim(app.name, profiles, options, &journal);
  artifacts.report_json = StormReportToJson(artifacts.report);
  artifacts.journal_json = journal.ToJson(app.name);
  return artifacts;
}

int Run(int repeats) {
  CorpusApp app = BuildCorpusApp("stormlab");
  std::cout << "##### storm determinism stress: app=stormlab repeats=" << repeats
            << " per jobs level\n";

  Clock::time_point begin = Clock::now();
  StormArtifacts baseline = RunPipeline(app, /*jobs=*/1);
  double baseline_s = std::chrono::duration<double>(Clock::now() - begin).count();
  std::cout << "jobs=1 pipeline: " << baseline_s << "s, report=" << baseline.report_json.size()
            << "B, journal=" << baseline.journal_json.size() << "B\n";

  int runs = 0;
  for (int jobs : {1, 2, 4, 8}) {
    for (int r = 0; r < repeats; ++r) {
      StormArtifacts run = RunPipeline(app, jobs);
      ++runs;
      if (run.report_json != baseline.report_json) {
        std::cerr << "FAIL: storm report diverged at jobs=" << jobs << " repeat=" << r << "\n";
        return 1;
      }
      if (run.journal_json != baseline.journal_json) {
        std::cerr << "FAIL: storm journal diverged at jobs=" << jobs << " repeat=" << r << "\n";
        return 1;
      }
    }
  }
  std::cout << "byte-identity: " << runs << "/" << runs
            << " runs matched the jobs=1 baseline (report + journal)\n";

  std::vector<SeededBug> truth = DetectableBugs(app.bugs, DetectionTechnique::kStormSim);
  Scorecard scorecard = ScoreReports(baseline.report.bugs, truth);
  ScoreCell total = scorecard.TotalAll();
  std::cout << "oracle scorecard vs seeded manifest:\n";
  std::cout << "  class                     TP  FP  FN\n";
  struct Row {
    const char* label;
    BugType type;
  };
  for (const Row& row : {Row{"STORM/missing-jitter    ", BugType::kStormMissingJitter},
                         Row{"STORM/unbounded-fanout  ", BugType::kStormUnboundedFanout},
                         Row{"STORM/retry-on-overload ", BugType::kStormRetryOnOverload}}) {
    ScoreCell cell = scorecard.Total(row.type);
    std::cout << "  " << row.label << "  " << cell.true_positives << "   "
              << cell.false_positives << "   " << cell.false_negatives << "\n";
  }
  std::cout << "  total                       " << total.true_positives << "   "
            << total.false_positives << "   " << total.false_negatives << "\n";
  std::cout << "amplification=" << baseline.report.amplification_x1000 / 1000.0
            << "x goodput=" << baseline.report.goodput_x1000 / 10 << "% metastable="
            << (baseline.report.metastable ? "yes" : "no") << "\n";
  if (total.true_positives != 3 || total.false_positives != 0 || total.false_negatives != 0) {
    std::cerr << "FAIL: storm oracles are not exact against the stormlab manifest\n";
    return 1;
  }
  std::cout << "PASS\n";
  return 0;
}

}  // namespace
}  // namespace wasabi

int main(int argc, char** argv) {
  int repeats = 3;
  if (argc > 1) {
    repeats = std::max(1, std::atoi(argv[1]));
  }
  return wasabi::Run(repeats);
}
