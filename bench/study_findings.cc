// Regenerates the §2.5 "Other study findings": bug severity distribution,
// retry-mechanism split, trigger kinds, and the regression-test share.

#include <iostream>

#include "bench/bench_util.h"
#include "src/study/study.h"

int main() {
  using namespace wasabi;
  PrintHeading("Study findings: severity, mechanisms, triggers, unit tests", "Section 2.5");

  const double total = static_cast<double>(StudyDataset().size());

  std::cout << "Bug severity (paper: blocker 5%, critical 10%, major 65%, minor 5%, "
               "rest unlabeled):\n";
  TablePrinter severity({"Severity", "Issues", "Share"});
  for (auto [label, count] : StudyCountBySeverity()) {
    severity.AddRow({StudySeverityName(label), std::to_string(count),
                     Percent(count, total)});
  }
  severity.Print();

  std::cout << "\nRetry mechanisms (paper: ~55% loop, 25% async re-enqueueing, 20% "
               "state-machine):\n";
  TablePrinter mechanism({"Mechanism", "Issues", "Share"});
  for (auto [label, count] : StudyCountByMechanism()) {
    mechanism.AddRow({RetryMechanismName(label), std::to_string(count),
                      Percent(count, total)});
  }
  mechanism.Print();

  int exceptions = StudyExceptionTriggeredCount();
  std::cout << "\nRetry triggers (paper: 70% exceptions, 30% error codes):\n"
            << "  exceptions:  " << exceptions << " (" << Percent(exceptions, total) << ")\n"
            << "  error codes: " << (70 - exceptions) << " ("
            << Percent(70 - exceptions, total) << ")\n";

  int regressions = StudyRegressionTestCount();
  std::cout << "\nRegression unit tests added after the fix (paper: 42 of 70): " << regressions
            << " of 70 (" << Percent(regressions, total) << ")\n";
  return 0;
}
