// Replays the paper's §2 code listings: for each one, the buggy code as
// reported and the developers' patch run side by side, showing either WASABI's
// verdict flipping (detectable classes) or the observable behavior difference
// (the IF wrong-policy classes WASABI cannot detect).

#include <iostream>

#include "bench/bench_util.h"
#include "src/lang/parser.h"
#include "src/study/listings.h"

namespace {

using namespace wasabi;

struct Loaded {
  mj::Program program;
  std::unique_ptr<mj::ProgramIndex> index;
};

Loaded Load(const PaperListing& listing, bool fixed) {
  Loaded loaded;
  mj::DiagnosticEngine diag;
  loaded.program.AddUnit(mj::ParseSource(
      listing.file_name, fixed ? listing.fixed_source : listing.buggy_source, diag));
  loaded.program.AddUnit(
      mj::ParseSource("test/" + listing.file_name, listing.test_source, diag));
  if (diag.has_errors()) {
    std::cerr << diag.FormatAll(nullptr);
  }
  loaded.index = std::make_unique<mj::ProgramIndex>(loaded.program);
  return loaded;
}

void RunScenario(const PaperListing& listing, const std::string& scenario, bool fixed) {
  Loaded loaded = Load(listing, fixed);
  Interpreter interp(loaded.program, *loaded.index);
  std::cout << "  " << (fixed ? "patched" : "buggy  ") << ": ";
  try {
    Value result = interp.Invoke(scenario);
    std::cout << (IsString(result) ? std::get<std::string>(result) : ValueToString(result))
              << "\n";
  } catch (const ThrownException& thrown) {
    std::cout << "uncaught " << thrown.exception->class_name() << " ("
              << thrown.exception->message() << ")\n";
  } catch (const ExecutionAborted& aborted) {
    std::cout << "NEVER TERMINATES — " << AbortReasonName(aborted.reason)
              << " after " << interp.now_ms() / 1000 << " virtual seconds\n";
  }
}

void RunWasabi(const PaperListing& listing, bool fixed) {
  Loaded loaded = Load(listing, fixed);
  WasabiOptions options;
  options.app_name = listing.issue_id;
  options.llm.comprehension_noise_percent = 0;
  Wasabi wasabi(loaded.program, *loaded.index, options);
  DynamicResult dynamic = wasabi.RunDynamicWorkflow();
  StaticResult statics = wasabi.RunStaticWorkflow();
  std::cout << "  " << (fixed ? "patched" : "buggy  ") << ": ";
  if (dynamic.bugs.empty() && statics.when_bugs.empty()) {
    std::cout << "no WASABI reports\n";
    return;
  }
  bool first = true;
  for (const BugReport& bug : dynamic.bugs) {
    std::cout << (first ? "" : "; ") << BugTypeName(bug.type) << " via unit testing";
    first = false;
  }
  for (const BugReport& bug : statics.when_bugs) {
    std::cout << (first ? "" : "; ") << BugTypeName(bug.type) << " via the LLM";
    first = false;
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  PrintHeading("The paper's code listings, buggy vs. patched", "Section 2 listings");

  for (const PaperListing& listing : PaperListings()) {
    std::cout << "--- " << listing.id << " (" << listing.issue_id << "): " << listing.title
              << " ---\n"
              << listing.description << "\n\n";
    if (listing.evidence == ListingEvidence::kWasabiReport) {
      RunWasabi(listing, /*fixed=*/false);
      RunWasabi(listing, /*fixed=*/true);
    } else {
      std::string scenario;
      if (listing.issue_id == "KAFKA-6829") {
        scenario = "Listing1Scenario.run";
      } else if (listing.issue_id == "HADOOP-16683") {
        scenario = "Listing2Scenario.run";
      } else {
        scenario = "Listing3Scenario.run";
      }
      RunScenario(listing, scenario, /*fixed=*/false);
      RunScenario(listing, scenario, /*fixed=*/true);
    }
    std::cout << "\n";
  }
  return 0;
}
