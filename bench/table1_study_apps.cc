// Regenerates Table 1: the applications included in the §2 issue study and
// the number of studied retry bugs per application.

#include <iostream>

#include "bench/bench_util.h"
#include "src/study/study.h"

int main() {
  using namespace wasabi;
  PrintHeading("Table 1: Applications included in our study", "Table 1");

  struct Row {
    const char* app;
    const char* category;
    const char* stars;
  };
  // Category/stars are descriptive context from the paper.
  const Row kRows[] = {
      {"elasticsearch", "Full-text search", "66K"},
      {"hadoop", "Distr. storage/processing", "14K"},
      {"hbase", "Database", "5K"},
      {"hive", "Data warehousing", "5K"},
      {"kafka", "Stream processing", "26K"},
      {"spark", "Data processing", "37K"},
  };

  auto counts = StudyCountByApp();
  TablePrinter table({"Application", "Category", "Stars", "Bugs"});
  int total = 0;
  for (const Row& row : kRows) {
    table.AddRow({row.app, row.category, row.stars, std::to_string(counts[row.app])});
    total += counts[row.app];
  }
  table.AddRow({"Total", "", "", std::to_string(total)});
  table.Print();

  std::cout << "\nPaper reference: ES 11, Hadoop 15 (Common+HDFS+Yarn), HBase 15, Hive 11, "
               "Kafka 9, Spark 9; total 70.\n";
  return 0;
}
