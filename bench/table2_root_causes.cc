// Regenerates Table 2: root causes of the 70 studied retry bugs.

#include <iostream>

#include "bench/bench_util.h"
#include "src/study/study.h"

int main() {
  using namespace wasabi;
  PrintHeading("Table 2: Root causes of retry bugs", "Table 2");

  auto by_cause = StudyCountByRootCause();
  auto by_category = StudyCountByCategory();

  TablePrinter table({"Root Cause Category", "# of Issues"});
  table.AddRow({"IF retry should be performed",
                "(" + std::to_string(by_category[StudyCategory::kIf]) + ")"});
  table.AddRow({"  - Wrong retry policy",
                std::to_string(by_cause[StudyRootCause::kWrongPolicy])});
  table.AddRow({"  - Missing or disabled retry mechanism",
                std::to_string(by_cause[StudyRootCause::kMissingMechanism])});
  table.AddRow({"WHEN retry should be performed",
                "(" + std::to_string(by_category[StudyCategory::kWhen]) + ")"});
  table.AddRow({"  - Delay problem", std::to_string(by_cause[StudyRootCause::kDelay])});
  table.AddRow({"  - Cap problem", std::to_string(by_cause[StudyRootCause::kCap])});
  table.AddRow({"HOW to execute retry",
                "(" + std::to_string(by_category[StudyCategory::kHow]) + ")"});
  table.AddRow({"  - Improper state reset",
                std::to_string(by_cause[StudyRootCause::kStateReset])});
  table.AddRow({"  - Broken/raced job tracking",
                std::to_string(by_cause[StudyRootCause::kJobTracking])});
  table.AddRow({"  - Other", std::to_string(by_cause[StudyRootCause::kOther])});
  table.AddRow({"Total", std::to_string(StudyDataset().size())});
  table.Print();

  std::cout << "\nPaper reference: 17 / 8 / 10 / 13 / 12 / 8 / 2; IF 36%, WHEN 33%, HOW 31%.\n";
  std::cout << "Measured shares: IF " << Percent(by_category[StudyCategory::kIf], 70)
            << ", WHEN " << Percent(by_category[StudyCategory::kWhen], 70) << ", HOW "
            << Percent(by_category[StudyCategory::kHow], 70) << "\n";
  return 0;
}
