// Regenerates Table 3: retry bugs reported by WASABI's repurposed unit
// testing, per application and bug class, with false-positive subscripts.
// Ground truth comes from the corpus manifest instead of manual inspection.

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace wasabi;
  PrintHeading("Table 3: Retry bugs reported by WASABI unit testing", "Table 3");

  std::vector<AppRun> runs = RunFullCorpusWorkflows();

  TablePrinter table({"Retry Bug Type", "HA", "HD", "MA", "YA", "HB", "HI", "CA", "EL",
                      "Total"});
  const BugType kTypes[] = {BugType::kWhenMissingCap, BugType::kWhenMissingDelay,
                            BugType::kHow};
  const char* kLabels[] = {"WHEN bugs: missing cap", "WHEN bugs: missing delay",
                           "HOW retry bugs"};

  // Score each app once.
  std::vector<Scorecard> scores;
  for (const AppRun& run : runs) {
    scores.push_back(ScoreReports(
        run.dynamic.bugs, DetectableBugs(run.app.bugs, DetectionTechnique::kUnitTesting)));
  }

  int grand_reported = 0;
  int grand_fp = 0;
  for (int t = 0; t < 3; ++t) {
    std::vector<std::string> row = {kLabels[t]};
    int total_reported = 0;
    int total_fp = 0;
    for (size_t a = 0; a < runs.size(); ++a) {
      ScoreCell cell = scores[a].cells[runs[a].app.name][kTypes[t]];
      row.push_back(CellWithFp(cell.reported(), cell.false_positives));
      total_reported += cell.reported();
      total_fp += cell.false_positives;
    }
    row.push_back(CellWithFp(total_reported, total_fp));
    grand_reported += total_reported;
    grand_fp += total_fp;
    table.AddRow(std::move(row));
  }
  std::vector<std::string> totals = {"Total"};
  for (size_t a = 0; a < runs.size(); ++a) {
    int reported = 0;
    int fp = 0;
    for (BugType type : kTypes) {
      ScoreCell cell = scores[a].cells[runs[a].app.name][type];
      reported += cell.reported();
      fp += cell.false_positives;
    }
    totals.push_back(CellWithFp(reported, fp));
  }
  totals.push_back(CellWithFp(grand_reported, grand_fp));
  table.AddRow(std::move(totals));
  table.Print();

  std::cout << "\nPaper shape: 63 reports, 21 FP (2 true bugs : 1 FP); HBase/HDFS dominate;\n"
            << "Yarn's only unit-testing report is a false positive.\n"
            << "Measured: " << grand_reported << " reports, " << grand_fp
            << " FP (precision " << Percent(grand_reported - grand_fp, grand_reported)
            << ").\n";

  std::cout << "\nFalse-positive reports (paper modes: capped retry + task-looping harness;\n"
            << "benign no-delay retry that rotates replicas; wrapped exceptions):\n";
  for (size_t a = 0; a < runs.size(); ++a) {
    for (const BugReport& fp : scores[a].false_positive_reports) {
      std::cout << "  [" << runs[a].app.short_code << "] " << BugTypeName(fp.type) << " at "
                << fp.coordinator << " — " << fp.detail << "\n";
    }
  }

  // False negatives, for the §4.5 discussion.
  std::cout << "\nSeeded bugs missed by unit testing (expected: untested modules, "
               "error-code retry, designed FNs):\n";
  for (size_t a = 0; a < runs.size(); ++a) {
    for (const SeededBug& missed : scores[a].missed_bugs) {
      std::cout << "  " << missed.id << " [" << BugTypeName(missed.type) << "] "
                << missed.coordinator << " — " << missed.note << "\n";
    }
  }
  return 0;
}
