// Regenerates Table 4: WHEN bugs reported by the (simulated) GPT-4 detector,
// per application, with false-positive subscripts.

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace wasabi;
  PrintHeading("Table 4: Retry bugs reported by the WASABI LLM detector", "Table 4");

  std::vector<AppRun> runs = RunFullCorpusWorkflows();

  std::vector<Scorecard> scores;
  for (const AppRun& run : runs) {
    scores.push_back(ScoreReports(
        run.statics.when_bugs, DetectableBugs(run.app.bugs, DetectionTechnique::kLlmStatic)));
  }

  TablePrinter table({"Retry Bug Type", "HA", "HD", "MA", "YA", "HB", "HI", "CA", "EL",
                      "Total"});
  const BugType kTypes[] = {BugType::kWhenMissingCap, BugType::kWhenMissingDelay};
  const char* kLabels[] = {"WHEN bugs: missing cap", "WHEN bugs: missing delay"};

  int grand_reported = 0;
  int grand_fp = 0;
  for (int t = 0; t < 2; ++t) {
    std::vector<std::string> row = {kLabels[t]};
    int total_reported = 0;
    int total_fp = 0;
    for (size_t a = 0; a < runs.size(); ++a) {
      ScoreCell cell = scores[a].cells[runs[a].app.name][kTypes[t]];
      row.push_back(CellWithFp(cell.reported(), cell.false_positives));
      total_reported += cell.reported();
      total_fp += cell.false_positives;
    }
    row.push_back(CellWithFp(total_reported, total_fp));
    grand_reported += total_reported;
    grand_fp += total_fp;
    table.AddRow(std::move(row));
  }
  std::vector<std::string> totals = {"Total"};
  for (size_t a = 0; a < runs.size(); ++a) {
    int reported = 0;
    int fp = 0;
    for (BugType type : kTypes) {
      ScoreCell cell = scores[a].cells[runs[a].app.name][type];
      reported += cell.reported();
      fp += cell.false_positives;
    }
    totals.push_back(CellWithFp(reported, fp));
  }
  totals.push_back(CellWithFp(grand_reported, grand_fp));
  table.AddRow(std::move(totals));
  table.Print();

  std::cout << "\nPaper shape: 139 reports, 60 FP (1.4 true bugs : 1 FP); the LLM reports\n"
            << "more WHEN bugs than unit testing but with more false positives, and\n"
            << "Hive/ElasticSearch carry the heaviest FP load (error-code retry, large\n"
            << "files, poll/policy mislabeling).\n"
            << "Measured: " << grand_reported << " reports, " << grand_fp << " FP (precision "
            << Percent(grand_reported - grand_fp, grand_reported) << ").\n";

  std::cout << "\nFalse-positive breakdown (the paper's three FP modes: non-retry files\n"
            << "labeled as retry; single-file context hides cross-file delays;\n"
            << "comprehension errors):\n";
  for (size_t a = 0; a < runs.size(); ++a) {
    for (const BugReport& fp : scores[a].false_positive_reports) {
      std::cout << "  [" << runs[a].app.short_code << "] " << BugTypeName(fp.type) << " at "
                << fp.coordinator << "\n";
    }
  }
  return 0;
}
