// Regenerates Table 5: static retry code structures identified per
// application, and how many of them WASABI's repurposed unit tests cover.

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace wasabi;
  PrintHeading("Table 5: Retry code structures identified and covered in unit tests",
               "Table 5");

  std::vector<AppRun> runs = RunFullCorpusWorkflows();

  TablePrinter table({"App.", "HA", "HD", "MA", "YA", "HB", "HI", "CA", "EL"});
  std::vector<std::string> identified = {"Identified"};
  std::vector<std::string> tested = {"Tested"};
  std::vector<std::string> share = {"Coverage"};
  for (const AppRun& run : runs) {
    identified.push_back(std::to_string(run.dynamic.structures_identified));
    tested.push_back(std::to_string(run.dynamic.structures_covered));
    share.push_back(Percent(static_cast<double>(run.dynamic.structures_covered),
                            static_cast<double>(run.dynamic.structures_identified)));
  }
  table.AddRow(std::move(identified));
  table.AddRow(std::move(tested));
  table.AddRow(std::move(share));
  table.Print();

  std::cout << "\nPaper shape: HBase has by far the most structures; Hive and ElasticSearch\n"
            << "have the lowest covered share because much of their retry is error-code\n"
            << "driven (not exception-injectable) or untested.\n";

  std::cout << "\nPer-app detail:\n";
  for (const AppRun& run : runs) {
    std::cout << "  " << run.app.short_code << ": " << run.dynamic.locations.size()
              << " injectable retry locations, " << run.dynamic.tests_covering_retry
              << " of " << run.dynamic.total_tests << " unit tests cover retry\n";
  }
  return 0;
}
