// Regenerates Table 6: unit-test counts and the number of WASABI fault-
// injection runs without vs. with test planning.

#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace wasabi;
  PrintHeading("Table 6: Details of WASABI unit testing", "Table 6");

  std::vector<AppRun> runs = RunFullCorpusWorkflows();

  TablePrinter table({"App.", "# Unit Tests Total", "CoverRetry", "Runs w/o planning",
                      "Runs w/ planning", "Reduction"});
  size_t total_naive = 0;
  size_t total_planned = 0;
  for (const AppRun& run : runs) {
    const DynamicResult& d = run.dynamic;
    std::ostringstream reduction;
    if (d.planned_runs > 0) {
      reduction << std::fixed << std::setprecision(1)
                << static_cast<double>(d.naive_runs) / static_cast<double>(d.planned_runs)
                << "x";
    } else {
      reduction << "n/a";
    }
    table.AddRow({run.app.short_code, std::to_string(d.total_tests),
                  std::to_string(d.tests_covering_retry), std::to_string(d.naive_runs),
                  std::to_string(d.planned_runs), reduction.str()});
    total_naive += d.naive_runs;
    total_planned += d.planned_runs;
  }
  table.Print();

  std::cout << "\nPaper shape: planning cuts fault-injection runs by 27x-170x on suites of\n"
            << "thousands of tests; at this corpus scale the same mechanism (every covered\n"
            << "retry location injected exactly once, spread across distinct tests) yields\n"
            << "a " << std::fixed << std::setprecision(1)
            << (total_planned > 0
                    ? static_cast<double>(total_naive) / static_cast<double>(total_planned)
                    : 0.0)
            << "x aggregate reduction (" << total_naive << " -> " << total_planned
            << " runs).\n";

  std::cout << "\nConfig restorations applied per app (restricted retry configs neutralized, "
               "§3.1.4):\n";
  for (const AppRun& run : runs) {
    std::cout << "  " << run.app.short_code << ": "
              << run.dynamic.config_restrictions_restored << "\n";
  }
  return 0;
}
