file(REMOVE_RECURSE
  "CMakeFiles/ablation_keywords.dir/ablation_keywords.cc.o"
  "CMakeFiles/ablation_keywords.dir/ablation_keywords.cc.o.d"
  "ablation_keywords"
  "ablation_keywords.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_keywords.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
