# Empty compiler generated dependencies file for ablation_keywords.
# This may be replaced when dependencies are built.
