file(REMOVE_RECURSE
  "CMakeFiles/ablation_oracles.dir/ablation_oracles.cc.o"
  "CMakeFiles/ablation_oracles.dir/ablation_oracles.cc.o.d"
  "ablation_oracles"
  "ablation_oracles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_oracles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
