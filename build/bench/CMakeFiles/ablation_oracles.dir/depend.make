# Empty dependencies file for ablation_oracles.
# This may be replaced when dependencies are built.
