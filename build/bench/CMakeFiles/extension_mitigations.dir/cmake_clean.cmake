file(REMOVE_RECURSE
  "CMakeFiles/extension_mitigations.dir/extension_mitigations.cc.o"
  "CMakeFiles/extension_mitigations.dir/extension_mitigations.cc.o.d"
  "extension_mitigations"
  "extension_mitigations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_mitigations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
