# Empty compiler generated dependencies file for extension_mitigations.
# This may be replaced when dependencies are built.
