file(REMOVE_RECURSE
  "CMakeFiles/fig3_overlap.dir/fig3_overlap.cc.o"
  "CMakeFiles/fig3_overlap.dir/fig3_overlap.cc.o.d"
  "fig3_overlap"
  "fig3_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
