file(REMOVE_RECURSE
  "CMakeFiles/fig4_structures.dir/fig4_structures.cc.o"
  "CMakeFiles/fig4_structures.dir/fig4_structures.cc.o.d"
  "fig4_structures"
  "fig4_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
