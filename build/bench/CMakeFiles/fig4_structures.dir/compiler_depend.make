# Empty compiler generated dependencies file for fig4_structures.
# This may be replaced when dependencies are built.
