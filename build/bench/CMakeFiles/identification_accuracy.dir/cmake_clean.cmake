file(REMOVE_RECURSE
  "CMakeFiles/identification_accuracy.dir/identification_accuracy.cc.o"
  "CMakeFiles/identification_accuracy.dir/identification_accuracy.cc.o.d"
  "identification_accuracy"
  "identification_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/identification_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
