# Empty dependencies file for identification_accuracy.
# This may be replaced when dependencies are built.
