file(REMOVE_RECURSE
  "CMakeFiles/if_outliers.dir/if_outliers.cc.o"
  "CMakeFiles/if_outliers.dir/if_outliers.cc.o.d"
  "if_outliers"
  "if_outliers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/if_outliers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
