# Empty dependencies file for if_outliers.
# This may be replaced when dependencies are built.
