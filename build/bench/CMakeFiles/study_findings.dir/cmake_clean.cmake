file(REMOVE_RECURSE
  "CMakeFiles/study_findings.dir/study_findings.cc.o"
  "CMakeFiles/study_findings.dir/study_findings.cc.o.d"
  "study_findings"
  "study_findings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_findings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
