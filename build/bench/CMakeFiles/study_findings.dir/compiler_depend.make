# Empty compiler generated dependencies file for study_findings.
# This may be replaced when dependencies are built.
