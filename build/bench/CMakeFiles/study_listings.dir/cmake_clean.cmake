file(REMOVE_RECURSE
  "CMakeFiles/study_listings.dir/study_listings.cc.o"
  "CMakeFiles/study_listings.dir/study_listings.cc.o.d"
  "study_listings"
  "study_listings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_listings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
