# Empty dependencies file for study_listings.
# This may be replaced when dependencies are built.
