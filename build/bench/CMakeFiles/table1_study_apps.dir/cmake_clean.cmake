file(REMOVE_RECURSE
  "CMakeFiles/table1_study_apps.dir/table1_study_apps.cc.o"
  "CMakeFiles/table1_study_apps.dir/table1_study_apps.cc.o.d"
  "table1_study_apps"
  "table1_study_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_study_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
