# Empty dependencies file for table1_study_apps.
# This may be replaced when dependencies are built.
