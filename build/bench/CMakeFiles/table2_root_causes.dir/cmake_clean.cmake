file(REMOVE_RECURSE
  "CMakeFiles/table2_root_causes.dir/table2_root_causes.cc.o"
  "CMakeFiles/table2_root_causes.dir/table2_root_causes.cc.o.d"
  "table2_root_causes"
  "table2_root_causes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_root_causes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
