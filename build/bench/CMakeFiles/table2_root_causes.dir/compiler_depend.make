# Empty compiler generated dependencies file for table2_root_causes.
# This may be replaced when dependencies are built.
