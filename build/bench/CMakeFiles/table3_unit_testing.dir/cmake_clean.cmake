file(REMOVE_RECURSE
  "CMakeFiles/table3_unit_testing.dir/table3_unit_testing.cc.o"
  "CMakeFiles/table3_unit_testing.dir/table3_unit_testing.cc.o.d"
  "table3_unit_testing"
  "table3_unit_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_unit_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
