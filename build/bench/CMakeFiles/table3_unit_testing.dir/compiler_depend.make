# Empty compiler generated dependencies file for table3_unit_testing.
# This may be replaced when dependencies are built.
