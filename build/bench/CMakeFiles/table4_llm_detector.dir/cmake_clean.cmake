file(REMOVE_RECURSE
  "CMakeFiles/table4_llm_detector.dir/table4_llm_detector.cc.o"
  "CMakeFiles/table4_llm_detector.dir/table4_llm_detector.cc.o.d"
  "table4_llm_detector"
  "table4_llm_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_llm_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
