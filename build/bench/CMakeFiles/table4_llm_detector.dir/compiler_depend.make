# Empty compiler generated dependencies file for table4_llm_detector.
# This may be replaced when dependencies are built.
