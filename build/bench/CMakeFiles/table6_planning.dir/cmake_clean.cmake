file(REMOVE_RECURSE
  "CMakeFiles/table6_planning.dir/table6_planning.cc.o"
  "CMakeFiles/table6_planning.dir/table6_planning.cc.o.d"
  "table6_planning"
  "table6_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
