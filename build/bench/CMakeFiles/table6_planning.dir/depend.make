# Empty dependencies file for table6_planning.
# This may be replaced when dependencies are built.
