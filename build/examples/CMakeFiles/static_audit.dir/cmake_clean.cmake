file(REMOVE_RECURSE
  "CMakeFiles/static_audit.dir/static_audit.cpp.o"
  "CMakeFiles/static_audit.dir/static_audit.cpp.o.d"
  "static_audit"
  "static_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
