# Empty dependencies file for static_audit.
# This may be replaced when dependencies are built.
