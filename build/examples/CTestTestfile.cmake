# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_static_audit "/root/repo/build/examples/static_audit" "hacommon")
set_tests_properties(example_static_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_injection_campaign "/root/repo/build/examples/fault_injection_campaign" "mapred")
set_tests_properties(example_fault_injection_campaign PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_app "/root/repo/build/examples/custom_app")
set_tests_properties(example_custom_app PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
