
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cfg.cc" "src/analysis/CMakeFiles/wasabi_analysis.dir/cfg.cc.o" "gcc" "src/analysis/CMakeFiles/wasabi_analysis.dir/cfg.cc.o.d"
  "/root/repo/src/analysis/if_outliers.cc" "src/analysis/CMakeFiles/wasabi_analysis.dir/if_outliers.cc.o" "gcc" "src/analysis/CMakeFiles/wasabi_analysis.dir/if_outliers.cc.o.d"
  "/root/repo/src/analysis/retry_finder.cc" "src/analysis/CMakeFiles/wasabi_analysis.dir/retry_finder.cc.o" "gcc" "src/analysis/CMakeFiles/wasabi_analysis.dir/retry_finder.cc.o.d"
  "/root/repo/src/analysis/retry_model.cc" "src/analysis/CMakeFiles/wasabi_analysis.dir/retry_model.cc.o" "gcc" "src/analysis/CMakeFiles/wasabi_analysis.dir/retry_model.cc.o.d"
  "/root/repo/src/analysis/type_infer.cc" "src/analysis/CMakeFiles/wasabi_analysis.dir/type_infer.cc.o" "gcc" "src/analysis/CMakeFiles/wasabi_analysis.dir/type_infer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/wasabi_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
