file(REMOVE_RECURSE
  "CMakeFiles/wasabi_analysis.dir/cfg.cc.o"
  "CMakeFiles/wasabi_analysis.dir/cfg.cc.o.d"
  "CMakeFiles/wasabi_analysis.dir/if_outliers.cc.o"
  "CMakeFiles/wasabi_analysis.dir/if_outliers.cc.o.d"
  "CMakeFiles/wasabi_analysis.dir/retry_finder.cc.o"
  "CMakeFiles/wasabi_analysis.dir/retry_finder.cc.o.d"
  "CMakeFiles/wasabi_analysis.dir/retry_model.cc.o"
  "CMakeFiles/wasabi_analysis.dir/retry_model.cc.o.d"
  "CMakeFiles/wasabi_analysis.dir/type_infer.cc.o"
  "CMakeFiles/wasabi_analysis.dir/type_infer.cc.o.d"
  "libwasabi_analysis.a"
  "libwasabi_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasabi_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
