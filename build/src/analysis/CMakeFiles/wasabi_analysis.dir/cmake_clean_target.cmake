file(REMOVE_RECURSE
  "libwasabi_analysis.a"
)
