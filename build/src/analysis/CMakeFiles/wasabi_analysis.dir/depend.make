# Empty dependencies file for wasabi_analysis.
# This may be replaced when dependencies are built.
