file(REMOVE_RECURSE
  "CMakeFiles/wasabi_core.dir/report.cc.o"
  "CMakeFiles/wasabi_core.dir/report.cc.o.d"
  "CMakeFiles/wasabi_core.dir/report_json.cc.o"
  "CMakeFiles/wasabi_core.dir/report_json.cc.o.d"
  "CMakeFiles/wasabi_core.dir/scoring.cc.o"
  "CMakeFiles/wasabi_core.dir/scoring.cc.o.d"
  "CMakeFiles/wasabi_core.dir/wasabi.cc.o"
  "CMakeFiles/wasabi_core.dir/wasabi.cc.o.d"
  "libwasabi_core.a"
  "libwasabi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasabi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
