file(REMOVE_RECURSE
  "libwasabi_core.a"
)
