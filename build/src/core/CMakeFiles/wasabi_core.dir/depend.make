# Empty dependencies file for wasabi_core.
# This may be replaced when dependencies are built.
