file(REMOVE_RECURSE
  "CMakeFiles/wasabi_corpus.dir/corpus.cc.o"
  "CMakeFiles/wasabi_corpus.dir/corpus.cc.o.d"
  "CMakeFiles/wasabi_corpus.dir/generator.cc.o"
  "CMakeFiles/wasabi_corpus.dir/generator.cc.o.d"
  "libwasabi_corpus.a"
  "libwasabi_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasabi_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
