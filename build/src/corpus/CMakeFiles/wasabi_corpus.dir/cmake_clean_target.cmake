file(REMOVE_RECURSE
  "libwasabi_corpus.a"
)
