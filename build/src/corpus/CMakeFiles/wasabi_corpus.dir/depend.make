# Empty dependencies file for wasabi_corpus.
# This may be replaced when dependencies are built.
