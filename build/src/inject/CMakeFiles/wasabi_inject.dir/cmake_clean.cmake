file(REMOVE_RECURSE
  "CMakeFiles/wasabi_inject.dir/injector.cc.o"
  "CMakeFiles/wasabi_inject.dir/injector.cc.o.d"
  "libwasabi_inject.a"
  "libwasabi_inject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasabi_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
