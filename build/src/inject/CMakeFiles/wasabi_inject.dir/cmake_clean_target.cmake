file(REMOVE_RECURSE
  "libwasabi_inject.a"
)
