# Empty dependencies file for wasabi_inject.
# This may be replaced when dependencies are built.
