
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/exec_log.cc" "src/interp/CMakeFiles/wasabi_interp.dir/exec_log.cc.o" "gcc" "src/interp/CMakeFiles/wasabi_interp.dir/exec_log.cc.o.d"
  "/root/repo/src/interp/interpreter.cc" "src/interp/CMakeFiles/wasabi_interp.dir/interpreter.cc.o" "gcc" "src/interp/CMakeFiles/wasabi_interp.dir/interpreter.cc.o.d"
  "/root/repo/src/interp/value.cc" "src/interp/CMakeFiles/wasabi_interp.dir/value.cc.o" "gcc" "src/interp/CMakeFiles/wasabi_interp.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/wasabi_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
