file(REMOVE_RECURSE
  "CMakeFiles/wasabi_interp.dir/exec_log.cc.o"
  "CMakeFiles/wasabi_interp.dir/exec_log.cc.o.d"
  "CMakeFiles/wasabi_interp.dir/interpreter.cc.o"
  "CMakeFiles/wasabi_interp.dir/interpreter.cc.o.d"
  "CMakeFiles/wasabi_interp.dir/value.cc.o"
  "CMakeFiles/wasabi_interp.dir/value.cc.o.d"
  "libwasabi_interp.a"
  "libwasabi_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasabi_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
