file(REMOVE_RECURSE
  "libwasabi_interp.a"
)
