# Empty compiler generated dependencies file for wasabi_interp.
# This may be replaced when dependencies are built.
