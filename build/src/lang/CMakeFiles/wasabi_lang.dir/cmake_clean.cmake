file(REMOVE_RECURSE
  "CMakeFiles/wasabi_lang.dir/ast.cc.o"
  "CMakeFiles/wasabi_lang.dir/ast.cc.o.d"
  "CMakeFiles/wasabi_lang.dir/diagnostics.cc.o"
  "CMakeFiles/wasabi_lang.dir/diagnostics.cc.o.d"
  "CMakeFiles/wasabi_lang.dir/lexer.cc.o"
  "CMakeFiles/wasabi_lang.dir/lexer.cc.o.d"
  "CMakeFiles/wasabi_lang.dir/parser.cc.o"
  "CMakeFiles/wasabi_lang.dir/parser.cc.o.d"
  "CMakeFiles/wasabi_lang.dir/printer.cc.o"
  "CMakeFiles/wasabi_lang.dir/printer.cc.o.d"
  "CMakeFiles/wasabi_lang.dir/sema.cc.o"
  "CMakeFiles/wasabi_lang.dir/sema.cc.o.d"
  "CMakeFiles/wasabi_lang.dir/source.cc.o"
  "CMakeFiles/wasabi_lang.dir/source.cc.o.d"
  "CMakeFiles/wasabi_lang.dir/token.cc.o"
  "CMakeFiles/wasabi_lang.dir/token.cc.o.d"
  "libwasabi_lang.a"
  "libwasabi_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasabi_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
