file(REMOVE_RECURSE
  "libwasabi_lang.a"
)
