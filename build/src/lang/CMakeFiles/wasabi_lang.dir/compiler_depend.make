# Empty compiler generated dependencies file for wasabi_lang.
# This may be replaced when dependencies are built.
