file(REMOVE_RECURSE
  "CMakeFiles/wasabi_llm.dir/sim_llm.cc.o"
  "CMakeFiles/wasabi_llm.dir/sim_llm.cc.o.d"
  "libwasabi_llm.a"
  "libwasabi_llm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasabi_llm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
