file(REMOVE_RECURSE
  "libwasabi_llm.a"
)
