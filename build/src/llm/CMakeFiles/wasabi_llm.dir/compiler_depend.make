# Empty compiler generated dependencies file for wasabi_llm.
# This may be replaced when dependencies are built.
