file(REMOVE_RECURSE
  "CMakeFiles/wasabi_study.dir/listings.cc.o"
  "CMakeFiles/wasabi_study.dir/listings.cc.o.d"
  "CMakeFiles/wasabi_study.dir/study.cc.o"
  "CMakeFiles/wasabi_study.dir/study.cc.o.d"
  "libwasabi_study.a"
  "libwasabi_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasabi_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
