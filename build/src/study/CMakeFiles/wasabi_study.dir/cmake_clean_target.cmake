file(REMOVE_RECURSE
  "libwasabi_study.a"
)
