# Empty dependencies file for wasabi_study.
# This may be replaced when dependencies are built.
