
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testing/config_restore.cc" "src/testing/CMakeFiles/wasabi_testing.dir/config_restore.cc.o" "gcc" "src/testing/CMakeFiles/wasabi_testing.dir/config_restore.cc.o.d"
  "/root/repo/src/testing/coverage.cc" "src/testing/CMakeFiles/wasabi_testing.dir/coverage.cc.o" "gcc" "src/testing/CMakeFiles/wasabi_testing.dir/coverage.cc.o.d"
  "/root/repo/src/testing/oracles.cc" "src/testing/CMakeFiles/wasabi_testing.dir/oracles.cc.o" "gcc" "src/testing/CMakeFiles/wasabi_testing.dir/oracles.cc.o.d"
  "/root/repo/src/testing/runner.cc" "src/testing/CMakeFiles/wasabi_testing.dir/runner.cc.o" "gcc" "src/testing/CMakeFiles/wasabi_testing.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/wasabi_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/inject/CMakeFiles/wasabi_inject.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/wasabi_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/wasabi_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
