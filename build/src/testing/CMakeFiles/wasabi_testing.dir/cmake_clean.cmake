file(REMOVE_RECURSE
  "CMakeFiles/wasabi_testing.dir/config_restore.cc.o"
  "CMakeFiles/wasabi_testing.dir/config_restore.cc.o.d"
  "CMakeFiles/wasabi_testing.dir/coverage.cc.o"
  "CMakeFiles/wasabi_testing.dir/coverage.cc.o.d"
  "CMakeFiles/wasabi_testing.dir/oracles.cc.o"
  "CMakeFiles/wasabi_testing.dir/oracles.cc.o.d"
  "CMakeFiles/wasabi_testing.dir/runner.cc.o"
  "CMakeFiles/wasabi_testing.dir/runner.cc.o.d"
  "libwasabi_testing.a"
  "libwasabi_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasabi_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
