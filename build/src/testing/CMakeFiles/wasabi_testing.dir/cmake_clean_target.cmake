file(REMOVE_RECURSE
  "libwasabi_testing.a"
)
