# Empty dependencies file for wasabi_testing.
# This may be replaced when dependencies are built.
