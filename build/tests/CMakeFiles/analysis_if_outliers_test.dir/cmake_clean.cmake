file(REMOVE_RECURSE
  "CMakeFiles/analysis_if_outliers_test.dir/analysis_if_outliers_test.cc.o"
  "CMakeFiles/analysis_if_outliers_test.dir/analysis_if_outliers_test.cc.o.d"
  "analysis_if_outliers_test"
  "analysis_if_outliers_test.pdb"
  "analysis_if_outliers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_if_outliers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
