# Empty compiler generated dependencies file for analysis_if_outliers_test.
# This may be replaced when dependencies are built.
