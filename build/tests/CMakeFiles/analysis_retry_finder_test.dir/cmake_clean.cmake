file(REMOVE_RECURSE
  "CMakeFiles/analysis_retry_finder_test.dir/analysis_retry_finder_test.cc.o"
  "CMakeFiles/analysis_retry_finder_test.dir/analysis_retry_finder_test.cc.o.d"
  "analysis_retry_finder_test"
  "analysis_retry_finder_test.pdb"
  "analysis_retry_finder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_retry_finder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
