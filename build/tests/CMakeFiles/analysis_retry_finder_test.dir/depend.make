# Empty dependencies file for analysis_retry_finder_test.
# This may be replaced when dependencies are built.
