file(REMOVE_RECURSE
  "CMakeFiles/core_json_validity_test.dir/core_json_validity_test.cc.o"
  "CMakeFiles/core_json_validity_test.dir/core_json_validity_test.cc.o.d"
  "core_json_validity_test"
  "core_json_validity_test.pdb"
  "core_json_validity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_json_validity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
