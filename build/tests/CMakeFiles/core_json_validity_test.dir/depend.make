# Empty dependencies file for core_json_validity_test.
# This may be replaced when dependencies are built.
