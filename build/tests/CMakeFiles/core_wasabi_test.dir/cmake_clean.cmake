file(REMOVE_RECURSE
  "CMakeFiles/core_wasabi_test.dir/core_wasabi_test.cc.o"
  "CMakeFiles/core_wasabi_test.dir/core_wasabi_test.cc.o.d"
  "core_wasabi_test"
  "core_wasabi_test.pdb"
  "core_wasabi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_wasabi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
