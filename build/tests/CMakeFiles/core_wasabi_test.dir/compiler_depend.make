# Empty compiler generated dependencies file for core_wasabi_test.
# This may be replaced when dependencies are built.
