# Empty compiler generated dependencies file for e2e_all_apps_test.
# This may be replaced when dependencies are built.
