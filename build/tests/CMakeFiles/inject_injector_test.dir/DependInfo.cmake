
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/inject_injector_test.cc" "tests/CMakeFiles/inject_injector_test.dir/inject_injector_test.cc.o" "gcc" "tests/CMakeFiles/inject_injector_test.dir/inject_injector_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/inject/CMakeFiles/wasabi_inject.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/wasabi_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/wasabi_lang.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
