file(REMOVE_RECURSE
  "CMakeFiles/inject_injector_test.dir/inject_injector_test.cc.o"
  "CMakeFiles/inject_injector_test.dir/inject_injector_test.cc.o.d"
  "inject_injector_test"
  "inject_injector_test.pdb"
  "inject_injector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inject_injector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
