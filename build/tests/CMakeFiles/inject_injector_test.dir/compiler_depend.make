# Empty compiler generated dependencies file for inject_injector_test.
# This may be replaced when dependencies are built.
