file(REMOVE_RECURSE
  "CMakeFiles/interp_interpreter_test.dir/interp_interpreter_test.cc.o"
  "CMakeFiles/interp_interpreter_test.dir/interp_interpreter_test.cc.o.d"
  "interp_interpreter_test"
  "interp_interpreter_test.pdb"
  "interp_interpreter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_interpreter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
