# Empty compiler generated dependencies file for interp_interpreter_test.
# This may be replaced when dependencies are built.
