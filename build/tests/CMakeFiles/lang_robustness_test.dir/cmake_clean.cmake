file(REMOVE_RECURSE
  "CMakeFiles/lang_robustness_test.dir/lang_robustness_test.cc.o"
  "CMakeFiles/lang_robustness_test.dir/lang_robustness_test.cc.o.d"
  "lang_robustness_test"
  "lang_robustness_test.pdb"
  "lang_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
