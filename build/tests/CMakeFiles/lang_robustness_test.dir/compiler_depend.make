# Empty compiler generated dependencies file for lang_robustness_test.
# This may be replaced when dependencies are built.
