file(REMOVE_RECURSE
  "CMakeFiles/study_listings_test.dir/study_listings_test.cc.o"
  "CMakeFiles/study_listings_test.dir/study_listings_test.cc.o.d"
  "study_listings_test"
  "study_listings_test.pdb"
  "study_listings_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_listings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
