# Empty compiler generated dependencies file for study_listings_test.
# This may be replaced when dependencies are built.
