file(REMOVE_RECURSE
  "CMakeFiles/testing_grouping_test.dir/testing_grouping_test.cc.o"
  "CMakeFiles/testing_grouping_test.dir/testing_grouping_test.cc.o.d"
  "testing_grouping_test"
  "testing_grouping_test.pdb"
  "testing_grouping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testing_grouping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
