# Empty dependencies file for testing_grouping_test.
# This may be replaced when dependencies are built.
