file(REMOVE_RECURSE
  "CMakeFiles/testing_oracles_param_test.dir/testing_oracles_param_test.cc.o"
  "CMakeFiles/testing_oracles_param_test.dir/testing_oracles_param_test.cc.o.d"
  "testing_oracles_param_test"
  "testing_oracles_param_test.pdb"
  "testing_oracles_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testing_oracles_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
