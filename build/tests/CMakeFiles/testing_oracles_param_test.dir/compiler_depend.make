# Empty compiler generated dependencies file for testing_oracles_param_test.
# This may be replaced when dependencies are built.
