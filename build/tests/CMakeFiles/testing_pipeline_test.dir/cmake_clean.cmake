file(REMOVE_RECURSE
  "CMakeFiles/testing_pipeline_test.dir/testing_pipeline_test.cc.o"
  "CMakeFiles/testing_pipeline_test.dir/testing_pipeline_test.cc.o.d"
  "testing_pipeline_test"
  "testing_pipeline_test.pdb"
  "testing_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testing_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
