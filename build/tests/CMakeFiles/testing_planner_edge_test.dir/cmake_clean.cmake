file(REMOVE_RECURSE
  "CMakeFiles/testing_planner_edge_test.dir/testing_planner_edge_test.cc.o"
  "CMakeFiles/testing_planner_edge_test.dir/testing_planner_edge_test.cc.o.d"
  "testing_planner_edge_test"
  "testing_planner_edge_test.pdb"
  "testing_planner_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testing_planner_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
