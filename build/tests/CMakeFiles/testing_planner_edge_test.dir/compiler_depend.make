# Empty compiler generated dependencies file for testing_planner_edge_test.
# This may be replaced when dependencies are built.
