file(REMOVE_RECURSE
  "CMakeFiles/wasabi_cli.dir/wasabi_cli.cc.o"
  "CMakeFiles/wasabi_cli.dir/wasabi_cli.cc.o.d"
  "wasabi"
  "wasabi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wasabi_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
