# Empty compiler generated dependencies file for wasabi_cli.
# This may be replaced when dependencies are built.
