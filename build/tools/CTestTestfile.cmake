# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_study "/root/repo/build/tools/wasabi" "study")
set_tests_properties(cli_study PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_roundtrip "/usr/bin/cmake" "-DWASABI_CLI=/root/repo/build/tools/wasabi" "-DWORK_DIR=/root/repo/build/tools/cli_roundtrip" "-P" "/root/repo/tools/cli_roundtrip_test.cmake")
set_tests_properties(cli_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
