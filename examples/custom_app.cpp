// Bringing your own application: write mj source for the system under test
// and its unit tests, then drive WASABI with customized options. This example
// models a message broker client with a queue-based retry (the paper's
// Listing-3 shape) whose re-enqueue path never gives up — a bug the
// control-flow loop query cannot see, but the LLM + injection pipeline can.
//
//   $ ./build/examples/custom_app

#include <iostream>

#include "src/core/wasabi.h"
#include "src/lang/parser.h"

namespace {

constexpr const char* kBrokerSource = R"(
// Client-side producer for the broker: failed sends are re-enqueued.
class ProducerBuffer {
  Queue outbox = new Queue();
  int sent = 0;

  void stage(record) {
    var envelope = new Envelope();
    envelope.init(record);
    this.outbox.put(envelope);
  }

  int flush() {
    var delivered = 0;
    while (this.outbox.isEmpty() == false) {
      var envelope = this.outbox.take();
      try {
        this.transmit(envelope);
        delivered++;
        this.sent += 1;
      } catch (TimeoutException e) {
        // Resubmit so the record is retried on the next flush cycle.
        Log.warn("transmit timed out; resubmitting record");
        Thread.sleep(10);
        this.outbox.put(envelope);
      }
    }
    return delivered;
  }

  void transmit(envelope) throws TimeoutException {
    Log.debug("transmitted " + envelope.record);
  }
}

class Envelope {
  var record = null;
  void init(r) {
    this.record = r;
  }
}
)";

constexpr const char* kBrokerTests = R"(
class ProducerBufferTest {
  void testFlushDeliversEverything() {
    var buffer = new ProducerBuffer();
    buffer.stage("a");
    buffer.stage("b");
    Assert.assertEquals(2, buffer.flush());
  }

  void testStageKeepsOrder() {
    var buffer = new ProducerBuffer();
    buffer.stage("x");
    Assert.assertEquals(1, buffer.flush());
  }
}
)";

}  // namespace

int main() {
  using namespace wasabi;

  mj::DiagnosticEngine diag;
  mj::Program program;
  program.AddUnit(mj::ParseSource("broker/ProducerBuffer.mj", kBrokerSource, diag));
  program.AddUnit(mj::ParseSource("broker/test/ProducerBufferTest.mj", kBrokerTests, diag));
  if (diag.has_errors()) {
    std::cerr << diag.FormatAll(nullptr);
    return 1;
  }
  mj::ProgramIndex index(program);

  WasabiOptions options;
  options.app_name = "broker";
  // Option knobs downstream users typically touch:
  options.llm.attention_window_tokens = 0;      // No large files here: disable the limit.
  options.llm.comprehension_noise_percent = 0;  // Make the demo fully heuristic.
  options.oracles.cap_injection_threshold = 50; // Stricter cap policy than the default 100.

  Wasabi wasabi(program, index, options);

  IdentificationResult identification = wasabi.IdentifyRetryStructures();
  std::cout << "Identified structures:\n";
  for (const RetryStructure& structure : identification.structures) {
    std::cout << "  " << structure.coordinator << " ["
              << RetryMechanismName(structure.mechanism) << "] — found by "
              << (structure.found_by.codeql ? "control-flow analysis" : "the LLM") << "\n";
  }

  DynamicResult dynamic = wasabi.RunDynamicWorkflow();
  std::cout << "\nInjection campaign: " << dynamic.planned_runs << " runs, "
            << dynamic.bugs.size() << " bug report(s):\n";
  for (const BugReport& bug : dynamic.bugs) {
    std::cout << "  [" << BugTypeName(bug.type) << "] " << bug.coordinator << "\n    "
              << bug.detail << "\n";
  }
  std::cout << "\nExpected: the flush() re-enqueue loop has no per-record attempt cap, so\n"
            << "the missing-cap oracle fires once the injected TimeoutException persists.\n";
  return 0;
}
