// A step-by-step fault-injection campaign on one corpus application, showing
// every stage of the paper's dynamic workflow: identification, test-suite
// preparation (config restoration), coverage discovery, planning, injection,
// and oracle classification — including an execution-log excerpt for one
// injected run.
//
//   $ ./build/examples/fault_injection_campaign [app]      (default: hdfs)

#include <iostream>
#include <string>

#include "src/analysis/retry_finder.h"
#include "src/core/wasabi.h"
#include "src/corpus/corpus.h"
#include "src/inject/injector.h"
#include "src/testing/config_restore.h"
#include "src/testing/coverage.h"
#include "src/testing/oracles.h"
#include "src/testing/runner.h"

int main(int argc, char** argv) {
  using namespace wasabi;
  std::string app_name = argc > 1 ? argv[1] : "hdfs";
  CorpusApp app = BuildCorpusApp(app_name);
  std::cout << "== Fault-injection campaign against " << app.display_name << " ==\n";

  // Stage 1: identify retry locations (here: the CodeQL-style loop query; the
  // full pipeline also merges LLM-identified coordinators).
  RetryFinder finder(app.program, *app.index);
  std::vector<RetryLocation> locations;
  for (RetryStructure& structure : finder.FindLoopStructures()) {
    for (RetryLocation& location : structure.locations) {
      locations.push_back(location);
    }
  }
  std::cout << "\n[1] " << locations.size() << " injectable retry locations, e.g.:\n";
  for (size_t i = 0; i < locations.size() && i < 3; ++i) {
    std::cout << "    " << locations[i].Key() << "\n";
  }

  // Stage 2: test preparation — restore developer-restricted retry configs.
  ConfigRestorationResult restoration = ScanTestsForRetryRestrictions(app.program);
  std::cout << "\n[2] config restoration: " << restoration.restrictions.size()
            << " restricted retry settings neutralized";
  for (const RetryConfigRestriction& r : restoration.restrictions) {
    std::cout << "\n    " << r.test_class << "." << r.test_method << " set " << r.key << "="
              << r.restricted_value;
  }
  std::cout << "\n";

  RunnerOptions runner_options;
  runner_options.config_overrides = app.default_configs;
  runner_options.frozen_keys = restoration.keys_to_freeze;
  TestRunner runner(app.program, *app.index, runner_options);
  std::vector<TestCase> tests = runner.DiscoverTests();

  // Stage 3: coverage discovery (one clean run of the whole suite).
  CoverageMap coverage = MapCoverage(runner, tests, locations);
  std::cout << "\n[3] coverage: " << coverage.size() << " of " << tests.size()
            << " unit tests reach at least one retry location\n";

  // Stage 4: planning.
  std::vector<PlanEntry> plan = PlanInjections(coverage, locations.size());
  std::cout << "\n[4] plan: " << plan.size() << " {test, location} pairs (naive plan: "
            << NaivePlan(coverage).size() << ")\n";

  // Stage 5: injected runs, two K settings each, classified by the oracles.
  std::cout << "\n[5] injected runs:\n";
  int shown_log = 0;
  for (const PlanEntry& entry : plan) {
    const RetryLocation& location = locations[entry.location_index];
    for (int k : {kInjectOnce, kInjectRepeatedly}) {
      FaultInjector injector({InjectionPoint{location.retried_method, location.coordinator,
                                             location.exception_name, k}});
      TestRunRecord record = runner.RunTest(TestCase{entry.test}, {&injector});
      std::vector<OracleReport> reports = EvaluateOracles(record, location);
      if (reports.empty()) {
        continue;
      }
      for (const OracleReport& report : reports) {
        std::cout << "    " << OracleKindName(report.kind) << " @ " << location.coordinator
                  << " (K=" << k << "): " << report.detail << "\n";
      }
      if (shown_log == 0) {
        std::cout << "    --- execution log excerpt ---\n";
        std::string dump = record.log.Dump();
        size_t pos = 0;
        for (int line = 0; line < 6 && pos < dump.size(); ++line) {
          size_t next = dump.find('\n', pos);
          if (next == std::string::npos) {
            next = dump.size();
          }
          std::cout << "      " << dump.substr(pos, next - pos) << "\n";
          pos = next + 1;
        }
        std::cout << "    -----------------------------\n";
        ++shown_log;
      }
    }
  }
  return 0;
}
