// Quickstart: point WASABI at a small application and let both workflows run.
//
//   $ ./build/examples/quickstart
//
// The application below has two bugs straight out of the paper's taxonomy:
//   * ReplicaSyncer.syncWithRetry retries forever (WHEN: missing cap), and
//   * ReplicaSyncer.readWithRetry's catch block dereferences state that an
//     early failure never constructed (HOW bug).

#include <iostream>

#include "src/core/wasabi.h"
#include "src/lang/parser.h"

int main() {
  using namespace wasabi;

  // 1. Parse the application (one compilation unit per file).
  mj::DiagnosticEngine diag;
  mj::Program program;
  program.AddUnit(mj::ParseSource("demo/ReplicaSyncer.mj", R"(
    // Synchronizes replicas across nodes.
    class ReplicaSyncer {
      Map status = null;

      String syncWithRetry(snapshot) {
        while (true) {
          try {
            return this.push(snapshot);
          } catch (ConnectException e) {
            Log.warn("push failed; will retry");
            Thread.sleep(100);
          }
        }
      }

      String readWithRetry() throws SocketException {
        for (var retry = 0; retry < 3; retry++) {
          try {
            this.open();
            return this.fetch();
          } catch (SocketException e) {
            var phase = this.status.get("phase");
            Log.warn("read failed in phase " + phase);
            Thread.sleep(50);
          }
        }
        return null;
      }

      void open() throws SocketException {
        this.status = new Map();
        this.status.put("phase", "open");
      }

      String fetch() throws SocketException { return "payload"; }
      String push(snapshot) throws ConnectException { return "synced:" + snapshot; }
    }
  )", diag));
  program.AddUnit(mj::ParseSource("demo/test/ReplicaSyncerTest.mj", R"(
    class ReplicaSyncerTest {
      void testSync() {
        var s = new ReplicaSyncer();
        Assert.assertEquals("synced:1", s.syncWithRetry(1));
      }
      void testRead() {
        var s = new ReplicaSyncer();
        Assert.assertEquals("payload", s.readWithRetry());
      }
    }
  )", diag));
  if (diag.has_errors()) {
    std::cerr << diag.FormatAll(nullptr);
    return 1;
  }
  mj::ProgramIndex index(program);

  // 2. Run WASABI.
  WasabiOptions options;
  options.app_name = "demo";
  Wasabi wasabi(program, index, options);

  DynamicResult dynamic = wasabi.RunDynamicWorkflow();
  StaticResult statics = wasabi.RunStaticWorkflow();

  // 3. Read the reports.
  std::cout << "Repurposed unit testing (" << dynamic.planned_runs << " injected runs over "
            << dynamic.locations.size() << " retry locations):\n";
  for (const BugReport& bug : dynamic.bugs) {
    std::cout << "  [" << BugTypeName(bug.type) << "] " << bug.coordinator << "\n    "
              << bug.detail << "\n";
  }
  std::cout << "\nStatic checking (LLM WHEN prompts + retry-ratio IF analysis):\n";
  for (const BugReport& bug : statics.when_bugs) {
    std::cout << "  [" << BugTypeName(bug.type) << "] " << bug.coordinator << "\n    "
              << bug.detail << "\n";
  }
  if (statics.when_bugs.empty() && statics.if_bugs.empty()) {
    std::cout << "  (nothing)\n";
  }
  return 0;
}
