// Static retry audit of one corpus application: which retry structures exist,
// which technique sees them, what the WHEN prompts flag, and which exceptions
// have inconsistent retry-or-not policy.
//
//   $ ./build/examples/static_audit [app]      (default: hbase)

#include <iostream>
#include <string>

#include "src/core/wasabi.h"
#include "src/corpus/corpus.h"

int main(int argc, char** argv) {
  using namespace wasabi;
  std::string app_name = argc > 1 ? argv[1] : "hbase";

  CorpusApp app = BuildCorpusApp(app_name);
  std::cout << "Auditing " << app.display_name << " (" << app.source_files << " files, "
            << app.source_bytes / 1024 << " KiB of mj source)\n\n";

  WasabiOptions options;
  options.app_name = app.name;
  options.default_configs = app.default_configs;
  Wasabi wasabi(app.program, *app.index, options);

  // --- Retry structure inventory ---------------------------------------------
  IdentificationResult identification = wasabi.IdentifyRetryStructures();
  std::cout << "Identified " << identification.structures.size() << " retry structures ("
            << identification.candidate_loops_without_keyword_filter
            << " candidate loops before keyword filtering):\n";
  for (const RetryStructure& structure : identification.structures) {
    std::cout << "  " << structure.file << ":" << structure.location.line << " "
              << structure.coordinator << " [" << RetryMechanismName(structure.mechanism)
              << "] found by "
              << (structure.found_by.both() ? "both"
                  : structure.found_by.codeql ? "control-flow analysis"
                                              : "LLM")
              << ", " << structure.locations.size() << " injectable location(s)\n";
  }
  if (identification.files_truncated_by_llm > 0) {
    std::cout << "  note: " << identification.files_truncated_by_llm
              << " file(s) exceeded the LLM attention window; late methods were "
                 "invisible to it\n";
  }

  // --- WHEN bugs + IF outliers --------------------------------------------------
  StaticResult statics = wasabi.RunStaticWorkflow();
  std::cout << "\nWHEN-bug reports from the LLM prompts (Q2 delay / Q3 cap):\n";
  for (const BugReport& bug : statics.when_bugs) {
    std::cout << "  [" << BugTypeName(bug.type) << "] " << bug.file << ":"
              << bug.location.line << " " << bug.coordinator << "\n";
  }

  std::cout << "\nIF-bug outliers (exceptions with near-unanimous retry policy):\n";
  for (const IfOutlierReport& outlier : statics.if_outliers) {
    std::cout << "  " << outlier.exception << ": retried in " << outlier.retried << "/"
              << outlier.caught_in_retry_loops << " retry loops; review:\n";
    for (const CatchSite& site : outlier.outlier_sites) {
      std::cout << "    " << site.file << ":" << site.location.line << " " << site.coordinator
                << " (" << (site.retried ? "retried here" : "NOT retried here") << ")\n";
    }
  }
  if (statics.if_outliers.empty()) {
    std::cout << "  (none)\n";
  }

  std::cout << "\nLLM usage: " << statics.llm_usage.calls << " calls, ~"
            << statics.llm_usage.prompt_tokens << " tokens\n";
  return 0;
}
