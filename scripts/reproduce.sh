#!/usr/bin/env bash
# One-shot reproduction: configure, build, run the test suites (fast tier-1
# first, then the corpus-wide full suite), regenerate every table/figure of
# the paper, prove chaos containment, and — when the toolchain supports it —
# re-run the concurrency tests under ThreadSanitizer and the fault-containment
# tests under AddressSanitizer.
#
#   scripts/reproduce.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -G Ninja -S "$repo_root"
cmake --build "$build_dir"

# Tier-1: the fast unit suite. Fail here and stop before the expensive parts.
ctest --test-dir "$build_dir" -L tier1 --output-on-failure

# Full suite (tier-1 again plus the corpus-wide end-to-end tests).
ctest --test-dir "$build_dir" 2>&1 | tee "$repo_root/test_output.txt"

{
  for bench in "$build_dir"/bench/*; do
    if [ -f "$bench" ] && [ -x "$bench" ]; then
      echo "##### $(basename "$bench")"
      if [ "$(basename "$bench")" = "stress_campaign" ]; then
        # Regenerates the committed cold/warm cache record (docs/CACHING.md)
        # and exits non-zero if the >=5x warm speedup or byte-identity fails.
        "$bench" "$repo_root/BENCH_cache.json" "$build_dir/stress_cache" 10
      elif [ "$(basename "$bench")" = "micro_repair" ]; then
        # Regenerates the committed repair-loop cost record (docs/REPAIR.md)
        # and exits non-zero if a sliced validation report ever differs from
        # its cold reference or never hits the unpatched cache slice.
        "$bench" "$repo_root/BENCH_repair.json" "$build_dir/micro_repair_cache"
      else
        "$bench"
      fi
      echo
    fi
  done
} 2>&1 | tee "$repo_root/bench_output.txt"

# Machine-readable interpreter-throughput record (docs/PERFORMANCE.md): the
# interpreter and campaign benchmarks with their steps/sec and runs/sec
# counters, plus the hardware_concurrency context value the throughput caveat
# from the parallel-executor PR depends on.
"$build_dir/bench/micro_substrate" \
  --benchmark_filter='Interpreter|CleanTestSuite|CampaignRunsPerSecond' \
  --benchmark_min_time=0.3 \
  --benchmark_out="$repo_root/BENCH_interp.json" \
  --benchmark_out_format=json >/dev/null
echo "interpreter bench: BENCH_interp.json"

# Archive an instrumented campaign: the Chrome trace, metrics JSON, retry
# journal, and the self-contained HTML retry dashboard for one corpus app
# (docs/OBSERVABILITY.md). The journal must be byte-identical at any worker
# count; the cli_report_smoke ctest checks that on every run, and the
# obs_journal_test gtest pins it at 1/2/4/8 workers.
corpus_dir="$build_dir/reproduce_corpus"
rm -rf "$corpus_dir"
"$build_dir/tools/wasabi" dump-corpus "$corpus_dir" >/dev/null
"$build_dir/tools/wasabi" test "$corpus_dir/mapred" --jobs 4 \
  --trace-out="$repo_root/campaign_trace.json" \
  --metrics-out="$repo_root/campaign_metrics.json" \
  --journal-out="$repo_root/campaign_journal.json" \
  --report-out="$repo_root/campaign_report.html" >/dev/null

# Chaos-containment pass (docs/ROBUSTNESS.md): the same campaign with the
# self-chaos harness killing ~10% of run attempts must exit 0 and produce
# byte-identical output at every worker count.
chaos_reference=""
for jobs in 1 2 4 8; do
  chaos_out="$("$build_dir/tools/wasabi" analyze "$corpus_dir/mapred" --json \
    --chaos 42:0.1 --jobs "$jobs")"
  if [ -z "$chaos_reference" ]; then
    chaos_reference="$chaos_out"
  elif [ "$chaos_out" != "$chaos_reference" ]; then
    echo "FATAL: chaos campaign output differs at --jobs $jobs" >&2
    exit 1
  fi
done
echo "chaos containment: byte-identical at 1/2/4/8 workers"

# Warm-cache differential (docs/CACHING.md): a --cache-dir campaign — cold
# populate, then a warm replay — must match the cache-off output byte for
# byte at every worker count. Worker count is deliberately not part of any
# cache key, so the store populated at --jobs 1 serves every other count.
cache_dir="$build_dir/reproduce_cache"
rm -rf "$cache_dir"
for jobs in 1 2 4 8; do
  nocache_out="$("$build_dir/tools/wasabi" test "$corpus_dir/mapred" --json \
    --jobs "$jobs")"
  cached_out="$("$build_dir/tools/wasabi" test "$corpus_dir/mapred" --json \
    --jobs "$jobs" --cache-dir "$cache_dir")"
  if [ "$cached_out" != "$nocache_out" ]; then
    echo "FATAL: --cache-dir output differs from cache-off at --jobs $jobs" >&2
    exit 1
  fi
done
rm -rf "$cache_dir"
echo "warm cache: byte-identical to cache-off at 1/2/4/8 workers"

# ThreadSanitizer pass over the campaign-executor concurrency tests (label
# "exec") plus the interpreter-overhaul golden-equivalence/resolver tests
# (label "perf", which re-prove byte-identical campaign output with the
# per-worker interpreter arenas under TSan) and the flakiness-prober/replay
# suites (labels "flaky"/"replay", whose probe reruns share the campaign's
# warm arenas across workers; see docs/FLAKINESS.md) and the retry-journal
# suite (label "obsjournal", whose per-thread journal buffers are written by
# 8 campaign workers and merged at collect time; see docs/OBSERVABILITY.md)
# and the bytecode-VM suites (label "vm", whose compiled chunks are shared
# read-only across campaign workers; see docs/PERFORMANCE.md "Bytecode VM")
# and the repair suites (label "repair", whose validation re-campaigns run the
# full parallel pipeline once per patch; see docs/REPAIR.md), in a separate
# build tree so the main artifacts stay uninstrumented.
# Skipped quietly when the compiler can't link TSan (e.g. musl toolchains).
if echo 'int main(){return 0;}' |
   c++ -x c++ -fsanitize=thread -o /tmp/wasabi_tsan_probe - 2>/dev/null; then
  rm -f /tmp/wasabi_tsan_probe
  cmake -B "$build_dir-tsan" -G Ninja -S "$repo_root" -DWASABI_TSAN=ON
  cmake --build "$build_dir-tsan"
  ctest --test-dir "$build_dir-tsan" -L 'exec|perf|flaky|replay|obsjournal|storm|vm|repair' --output-on-failure \
    2>&1 | tee "$repo_root/tsan_output.txt"
else
  echo "note: compiler does not support -fsanitize=thread; skipping TSan pass"
fi

# AddressSanitizer pass over the fault-containment tests (label "robust":
# exception capture, quarantine bookkeeping, degraded-mode parsing — the
# lifetime-sensitive paths; see docs/ROBUSTNESS.md) plus the "perf" golden
# tests, which exercise the interner's string_view tokens and the arena's
# frame reuse — the overhaul's lifetime-sensitive surface — plus the "fuzz"
# grammar fuzzer (500 random programs through lexer/parser/printer/interpreter)
# and the "cache" suites (corruption-fallback paths parse hostile bytes; see
# docs/CACHING.md), plus the "flaky"/"replay" suites (record parsing rejects
# truncated/bit-flipped/version-skewed bytes; see docs/FLAKINESS.md), plus
# the "vm" suites (the bytecode executor's pooled operand stacks and slow-path
# tree replays are lifetime-sensitive; see docs/PERFORMANCE.md), plus the
# "repair" suites (AST rewrites re-parse patched sources and rebuild program
# indexes per validation run; see docs/REPAIR.md). Same separate-tree and
# probe-then-skip structure as the TSan pass above.
if echo 'int main(){return 0;}' |
   c++ -x c++ -fsanitize=address -o /tmp/wasabi_asan_probe - 2>/dev/null; then
  rm -f /tmp/wasabi_asan_probe
  cmake -B "$build_dir-asan" -G Ninja -S "$repo_root" -DWASABI_ASAN=ON
  cmake --build "$build_dir-asan"
  ctest --test-dir "$build_dir-asan" -L 'robust|perf|fuzz|cache|flaky|replay|obsjournal|storm|vm|repair' --output-on-failure \
    2>&1 | tee "$repo_root/asan_output.txt"
else
  echo "note: compiler does not support -fsanitize=address; skipping ASan pass"
fi

echo
echo "Done. Test results: test_output.txt; table/figure outputs: bench_output.txt;"
echo "campaign trace/metrics: campaign_trace.json, campaign_metrics.json;"
echo "retry journal + dashboard: campaign_journal.json, campaign_report.html;"
echo "interpreter throughput record: BENCH_interp.json;"
echo "cache cold/warm record: BENCH_cache.json;"
echo "repair-loop cost record: BENCH_repair.json"
