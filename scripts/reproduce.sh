#!/usr/bin/env bash
# One-shot reproduction: configure, build, run the full test suite, and
# regenerate every table/figure of the paper, capturing the outputs the
# repository documents in EXPERIMENTS.md.
#
#   scripts/reproduce.sh [build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -G Ninja -S "$repo_root"
cmake --build "$build_dir"

ctest --test-dir "$build_dir" 2>&1 | tee "$repo_root/test_output.txt"

{
  for bench in "$build_dir"/bench/*; do
    if [ -f "$bench" ] && [ -x "$bench" ]; then
      echo "##### $(basename "$bench")"
      "$bench"
      echo
    fi
  done
} 2>&1 | tee "$repo_root/bench_output.txt"

echo
echo "Done. Test results: test_output.txt; table/figure outputs: bench_output.txt"
