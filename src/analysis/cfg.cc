#include "src/analysis/cfg.h"

#include <deque>
#include <sstream>

namespace wasabi {

using mj::AstKind;

CfgNodeId Cfg::AddNode(CfgNodeKind kind, const mj::Stmt* stmt) {
  CfgNode node;
  node.id = static_cast<CfgNodeId>(nodes_.size());
  node.kind = kind;
  node.stmt = stmt;
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

CfgNodeId Cfg::HeaderOf(const mj::Stmt& loop) const {
  auto it = loop_headers_.find(&loop);
  return it == loop_headers_.end() ? kInvalidCfgNode : it->second;
}

CfgNodeId Cfg::CatchEntryOf(const mj::CatchClause& clause) const {
  auto it = catch_entries_.find(&clause);
  return it == catch_entries_.end() ? kInvalidCfgNode : it->second;
}

bool Cfg::Reaches(CfgNodeId from, CfgNodeId to) const {
  if (from == kInvalidCfgNode || to == kInvalidCfgNode) {
    return false;
  }
  if (from == to) {
    return true;
  }
  std::vector<bool> visited(nodes_.size(), false);
  std::deque<CfgNodeId> queue{from};
  visited[from] = true;
  while (!queue.empty()) {
    CfgNodeId current = queue.front();
    queue.pop_front();
    for (CfgNodeId succ : nodes_[current].successors) {
      if (succ == to) {
        return true;
      }
      if (!visited[succ]) {
        visited[succ] = true;
        queue.push_back(succ);
      }
    }
  }
  return false;
}

std::string Cfg::Dump() const {
  static const char* kKindNames[] = {"entry",  "exit",   "stmt",  "loop-head",
                                     "branch", "switch", "catch"};
  std::ostringstream out;
  for (const CfgNode& node : nodes_) {
    out << node.id << "[" << kKindNames[static_cast<int>(node.kind)] << "]";
    if (node.stmt != nullptr) {
      out << " @" << node.stmt->location.line;
    }
    out << " ->";
    for (CfgNodeId succ : node.successors) {
      out << " " << succ;
    }
    out << "\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// CfgBuilder
// ---------------------------------------------------------------------------

namespace {

void AddEdge(std::vector<CfgNode>& nodes, CfgNodeId from, CfgNodeId to) {
  for (CfgNodeId existing : nodes[from].successors) {
    if (existing == to) {
      return;
    }
  }
  nodes[from].successors.push_back(to);
}

}  // namespace

Cfg CfgBuilder::Build(const mj::MethodDecl& method) {
  cfg_ = Cfg();
  loop_stack_.clear();
  switch_break_stack_.clear();
  handler_stack_.clear();

  CfgNodeId entry = cfg_.AddNode(CfgNodeKind::kEntry, nullptr);
  CfgNodeId exit = cfg_.AddNode(CfgNodeKind::kExit, nullptr);
  cfg_.entry_ = entry;
  cfg_.exit_ = exit;

  if (method.body == nullptr) {
    AddEdge(cfg_.nodes_, entry, exit);
    return std::move(cfg_);
  }
  CfgNodeId body_entry = LowerBlock(method.body->statements, exit);
  AddEdge(cfg_.nodes_, entry, body_entry);
  return std::move(cfg_);
}

CfgNodeId CfgBuilder::LowerBlock(const std::vector<mj::Stmt*>& stmts, CfgNodeId next) {
  CfgNodeId current = next;
  for (auto it = stmts.rbegin(); it != stmts.rend(); ++it) {
    current = Lower(*it, current);
  }
  return current;
}

CfgNodeId CfgBuilder::Lower(const mj::Stmt* stmt, CfgNodeId next) {
  if (stmt == nullptr) {
    return next;
  }
  auto& nodes = cfg_.nodes_;

  // Connects a may-throw node to every catch handler currently in scope.
  auto add_throw_edges = [&](CfgNodeId node) {
    for (const auto& handlers : handler_stack_) {
      for (CfgNodeId handler : handlers) {
        AddEdge(nodes, node, handler);
      }
    }
  };

  switch (stmt->kind) {
    case AstKind::kBlock:
      return LowerBlock(static_cast<const mj::BlockStmt*>(stmt)->statements, next);

    case AstKind::kVarDecl:
    case AstKind::kAssign:
    case AstKind::kExprStmt: {
      CfgNodeId node = cfg_.AddNode(CfgNodeKind::kStatement, stmt);
      AddEdge(nodes, node, next);
      add_throw_edges(node);
      return node;
    }

    case AstKind::kThrow: {
      CfgNodeId node = cfg_.AddNode(CfgNodeKind::kStatement, stmt);
      bool has_handler = false;
      for (const auto& handlers : handler_stack_) {
        for (CfgNodeId handler : handlers) {
          AddEdge(nodes, node, handler);
          has_handler = true;
        }
      }
      if (!has_handler) {
        AddEdge(nodes, node, cfg_.exit());
      }
      return node;
    }

    case AstKind::kReturn: {
      CfgNodeId node = cfg_.AddNode(CfgNodeKind::kStatement, stmt);
      AddEdge(nodes, node, cfg_.exit());
      add_throw_edges(node);  // Evaluating the return value may throw.
      return node;
    }

    case AstKind::kBreak: {
      CfgNodeId node = cfg_.AddNode(CfgNodeKind::kStatement, stmt);
      CfgNodeId target = cfg_.exit();
      // `break` binds to the innermost loop or switch.
      if (!switch_break_stack_.empty() &&
          (loop_stack_.empty() || switch_break_stack_.back() != kInvalidCfgNode)) {
        target = switch_break_stack_.back();
      } else if (!loop_stack_.empty()) {
        target = loop_stack_.back().break_target;
      }
      AddEdge(nodes, node, target);
      return node;
    }

    case AstKind::kContinue: {
      CfgNodeId node = cfg_.AddNode(CfgNodeKind::kStatement, stmt);
      CfgNodeId target = loop_stack_.empty() ? cfg_.exit() : loop_stack_.back().continue_target;
      AddEdge(nodes, node, target);
      return node;
    }

    case AstKind::kIf: {
      const auto* node_stmt = static_cast<const mj::IfStmt*>(stmt);
      CfgNodeId branch = cfg_.AddNode(CfgNodeKind::kBranch, stmt);
      add_throw_edges(branch);
      CfgNodeId then_entry = Lower(node_stmt->then_branch, next);
      AddEdge(nodes, branch, then_entry);
      if (node_stmt->else_branch != nullptr) {
        CfgNodeId else_entry = Lower(node_stmt->else_branch, next);
        AddEdge(nodes, branch, else_entry);
      } else {
        AddEdge(nodes, branch, next);
      }
      return branch;
    }

    case AstKind::kWhile: {
      const auto* loop = static_cast<const mj::WhileStmt*>(stmt);
      CfgNodeId header = cfg_.AddNode(CfgNodeKind::kLoopHeader, stmt);
      cfg_.loop_headers_[stmt] = header;
      add_throw_edges(header);
      loop_stack_.push_back(LoopContext{header, next});
      switch_break_stack_.push_back(kInvalidCfgNode);  // Loop shadows switch break.
      CfgNodeId body_entry = Lower(loop->body, header);
      switch_break_stack_.pop_back();
      loop_stack_.pop_back();
      AddEdge(nodes, header, body_entry);
      AddEdge(nodes, header, next);
      return header;
    }

    case AstKind::kFor: {
      const auto* loop = static_cast<const mj::ForStmt*>(stmt);
      CfgNodeId header = cfg_.AddNode(CfgNodeKind::kLoopHeader, stmt);
      cfg_.loop_headers_[stmt] = header;
      add_throw_edges(header);

      CfgNodeId update = header;
      if (loop->update != nullptr) {
        update = Lower(loop->update, header);
      }
      loop_stack_.push_back(LoopContext{update, next});
      switch_break_stack_.push_back(kInvalidCfgNode);
      CfgNodeId body_entry = Lower(loop->body, update);
      switch_break_stack_.pop_back();
      loop_stack_.pop_back();
      AddEdge(nodes, header, body_entry);
      AddEdge(nodes, header, next);
      if (loop->init != nullptr) {
        CfgNodeId init = Lower(loop->init, header);
        return init;
      }
      return header;
    }

    case AstKind::kSwitch: {
      const auto* node_stmt = static_cast<const mj::SwitchStmt*>(stmt);
      CfgNodeId head = cfg_.AddNode(CfgNodeKind::kSwitchHead, stmt);
      add_throw_edges(head);
      switch_break_stack_.push_back(next);
      // Lower cases from last to first so fallthrough targets exist.
      std::vector<CfgNodeId> case_entries(node_stmt->cases.size(), next);
      CfgNodeId fallthrough = next;
      bool has_default = false;
      for (size_t i = node_stmt->cases.size(); i-- > 0;) {
        const mj::SwitchCase& switch_case = node_stmt->cases[i];
        CfgNodeId entry = LowerBlock(switch_case.body, fallthrough);
        case_entries[i] = entry;
        fallthrough = entry;
        if (switch_case.labels.empty()) {
          has_default = true;
        }
      }
      switch_break_stack_.pop_back();
      for (CfgNodeId entry : case_entries) {
        AddEdge(nodes, head, entry);
      }
      if (!has_default) {
        AddEdge(nodes, head, next);
      }
      return head;
    }

    case AstKind::kTry: {
      const auto* node_stmt = static_cast<const mj::TryStmt*>(stmt);
      CfgNodeId after = next;
      if (node_stmt->finally != nullptr) {
        after = LowerBlock(node_stmt->finally->statements, next);
      }
      std::vector<CfgNodeId> handler_entries;
      handler_entries.reserve(node_stmt->catches.size());
      for (const mj::CatchClause& clause : node_stmt->catches) {
        CfgNodeId handler = cfg_.AddNode(CfgNodeKind::kCatchEntry, stmt);
        cfg_.nodes_[handler].catch_clause = &clause;
        cfg_.catch_entries_[&clause] = handler;
        CfgNodeId body_entry = LowerBlock(clause.body->statements, after);
        AddEdge(nodes, handler, body_entry);
        handler_entries.push_back(handler);
      }
      handler_stack_.push_back(handler_entries);
      CfgNodeId body_entry = LowerBlock(node_stmt->body->statements, after);
      handler_stack_.pop_back();
      return body_entry;
    }

    default: {
      CfgNodeId node = cfg_.AddNode(CfgNodeKind::kStatement, stmt);
      AddEdge(nodes, node, next);
      return node;
    }
  }
}

}  // namespace wasabi
