// Intra-procedural control-flow graphs over mj method bodies.
//
// This is the control-flow substrate for the paper's CodeQL-style queries
// (§3.1.1): "identify every loop whose header is reachable from at least one
// catch block inside the loop body". Nodes are statement-granular; loops get a
// dedicated header node; every catch clause gets an entry node; statements
// inside a try body have exception edges to each catch entry of the enclosing
// try statements (conservative may-throw, matching the precision CodeQL works
// at without whole-program dataflow).

#ifndef WASABI_SRC_ANALYSIS_CFG_H_
#define WASABI_SRC_ANALYSIS_CFG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/lang/ast.h"

namespace wasabi {

using CfgNodeId = uint32_t;
inline constexpr CfgNodeId kInvalidCfgNode = 0xFFFFFFFF;

enum class CfgNodeKind : uint8_t {
  kEntry,
  kExit,
  kStatement,   // Simple statements: var decl, assign, expr, throw, return, ...
  kLoopHeader,  // The decision point of a while/for loop (its "header").
  kBranch,      // The condition of an if statement.
  kSwitchHead,  // The subject of a switch statement.
  kCatchEntry,  // The entry of one catch clause.
};

struct CfgNode {
  CfgNodeId id = kInvalidCfgNode;
  CfgNodeKind kind = CfgNodeKind::kStatement;
  const mj::Stmt* stmt = nullptr;            // The owning statement, if any.
  const mj::CatchClause* catch_clause = nullptr;  // For kCatchEntry.
  std::vector<CfgNodeId> successors;
};

// The CFG of one method body.
class Cfg {
 public:
  CfgNodeId entry() const { return entry_; }
  CfgNodeId exit() const { return exit_; }
  const CfgNode& node(CfgNodeId id) const { return nodes_[id]; }
  size_t size() const { return nodes_.size(); }
  const std::vector<CfgNode>& nodes() const { return nodes_; }

  // The loop-header node for a while/for statement, or kInvalidCfgNode.
  CfgNodeId HeaderOf(const mj::Stmt& loop) const;

  // The catch-entry node for a catch clause, or kInvalidCfgNode.
  CfgNodeId CatchEntryOf(const mj::CatchClause& clause) const;

  // True if `to` is reachable from `from` following successor edges
  // (reflexive: a node reaches itself).
  bool Reaches(CfgNodeId from, CfgNodeId to) const;

  // Renders "id[kind] -> succ,succ" lines; for tests and debugging.
  std::string Dump() const;

 private:
  friend class CfgBuilder;
  CfgNodeId AddNode(CfgNodeKind kind, const mj::Stmt* stmt);

  std::vector<CfgNode> nodes_;
  CfgNodeId entry_ = kInvalidCfgNode;
  CfgNodeId exit_ = kInvalidCfgNode;
  std::unordered_map<const mj::Stmt*, CfgNodeId> loop_headers_;
  std::unordered_map<const mj::CatchClause*, CfgNodeId> catch_entries_;
};

// Builds the CFG for a method. Methods without a body produce a trivial
// entry→exit graph.
class CfgBuilder {
 public:
  Cfg Build(const mj::MethodDecl& method);

 private:
  // Per-construct context, linked through enclosing scopes.
  struct LoopContext {
    CfgNodeId continue_target = kInvalidCfgNode;
    CfgNodeId break_target = kInvalidCfgNode;
  };

  // Lowers `stmt` so control enters at the returned node and flows to `next`
  // on normal completion. `handlers` are catch-entry nodes of enclosing try
  // statements (innermost first) that may-throw statements connect to.
  CfgNodeId Lower(const mj::Stmt* stmt, CfgNodeId next);
  CfgNodeId LowerBlock(const std::vector<mj::Stmt*>& stmts, CfgNodeId next);

  Cfg cfg_;
  std::vector<LoopContext> loop_stack_;
  std::vector<CfgNodeId> switch_break_stack_;
  std::vector<std::vector<CfgNodeId>> handler_stack_;
};

}  // namespace wasabi

#endif  // WASABI_SRC_ANALYSIS_CFG_H_
