#include "src/analysis/if_outliers.h"

#include <algorithm>
#include <map>

#include "src/analysis/cfg.h"

namespace wasabi {

IfOutlierAnalysis::IfOutlierAnalysis(const mj::Program& program, const mj::ProgramIndex& index,
                                     IfOutlierOptions options)
    : program_(program), index_(index), options_(options) {}

std::vector<ExceptionRetryStats> IfOutlierAnalysis::ComputeStats() const {
  RetryFinder finder(program_, index_);
  CfgBuilder builder;
  // std::map keeps the output deterministic and alphabetical.
  std::map<std::string, ExceptionRetryStats> by_exception;

  for (const LoopCandidate& candidate : finder.FindCandidateLoops()) {
    if (!candidate.keyword_evidence) {
      continue;  // Match §3.1.1: the ratio is computed over identified retry loops.
    }
    Cfg cfg = builder.Build(*candidate.method);
    CfgNodeId header = cfg.HeaderOf(*candidate.loop);
    const mj::Stmt* body = candidate.loop->kind == mj::AstKind::kWhile
                               ? static_cast<const mj::WhileStmt*>(candidate.loop)->body
                               : static_cast<const mj::ForStmt*>(candidate.loop)->body;
    const mj::CompilationUnit* unit = index_.UnitOfMethod(*candidate.method);
    std::string file = unit != nullptr ? unit->file().name() : "";

    mj::WalkStmts(
        body,
        [&](const mj::Stmt& stmt) {
          if (stmt.kind != mj::AstKind::kTry) {
            return;
          }
          for (const mj::CatchClause& clause : static_cast<const mj::TryStmt&>(stmt).catches) {
            CfgNodeId entry = cfg.CatchEntryOf(clause);
            if (entry == kInvalidCfgNode) {
              continue;
            }
            CatchSite site;
            site.file = file;
            site.location = clause.location;
            site.coordinator = candidate.method->QualifiedName();
            site.retried = cfg.Reaches(entry, header);
            ExceptionRetryStats& stats = by_exception[clause.exception_type];
            stats.exception = clause.exception_type;
            ++stats.caught_in_retry_loops;
            if (site.retried) {
              ++stats.retried;
            }
            stats.sites.push_back(std::move(site));
          }
        },
        [](const mj::Expr&) {});
  }

  std::vector<ExceptionRetryStats> result;
  result.reserve(by_exception.size());
  for (auto& [name, stats] : by_exception) {
    result.push_back(std::move(stats));
  }
  return result;
}

std::vector<IfOutlierReport> IfOutlierAnalysis::FindOutliers() const {
  std::vector<IfOutlierReport> reports;
  for (const ExceptionRetryStats& stats : ComputeStats()) {
    if (stats.caught_in_retry_loops < options_.min_sites) {
      continue;
    }
    double ratio = stats.ratio();
    bool mostly_retried = ratio >= options_.high_threshold && ratio < 1.0;
    bool mostly_not_retried = ratio <= options_.low_threshold && ratio > 0.0;
    if (!mostly_retried && !mostly_not_retried) {
      continue;
    }
    IfOutlierReport report;
    report.exception = stats.exception;
    report.caught_in_retry_loops = stats.caught_in_retry_loops;
    report.retried = stats.retried;
    report.mostly_retried = mostly_retried;
    for (const CatchSite& site : stats.sites) {
      // The minority behavior is the suspicious one.
      if (site.retried != mostly_retried) {
        report.outlier_sites.push_back(site);
      }
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace wasabi
