// IF-bug detection via application-wide retry ratios (§3.2.2 of the paper).
//
// For each exception type E, count the places E is caught inside a retry loop
// (N_E) and the subset where the catch block can return control to the loop
// header, i.e. the exception is retried (R_E). When the ratio R_E/N_E is close
// to — but not exactly — 1 (or 0), the minority sites are flagged as likely
// wrong-retry-policy (IF) bugs: the application "almost always" treats E as
// recoverable (or not), so the outliers deserve developer attention.

#ifndef WASABI_SRC_ANALYSIS_IF_OUTLIERS_H_
#define WASABI_SRC_ANALYSIS_IF_OUTLIERS_H_

#include <string>
#include <vector>

#include "src/analysis/retry_finder.h"
#include "src/lang/sema.h"

namespace wasabi {

struct IfOutlierOptions {
  // Ratio thresholds from §4.1: outliers are exceptions with ratio >= 2/3
  // (flag non-retried sites) or <= 1/3 (flag retried sites).
  double high_threshold = 2.0 / 3.0;
  double low_threshold = 1.0 / 3.0;
  // Minimum number of catch sites before a ratio is considered meaningful.
  int min_sites = 3;
};

// One catch-site of an exception inside a retry loop.
struct CatchSite {
  std::string file;
  mj::SourceLocation location;
  std::string coordinator;  // Qualified method containing the loop.
  bool retried = false;     // Catch block reaches the loop header.
};

// Aggregate stats for one exception type across the application.
struct ExceptionRetryStats {
  std::string exception;
  int caught_in_retry_loops = 0;  // N_E
  int retried = 0;                // R_E
  std::vector<CatchSite> sites;

  double ratio() const {
    return caught_in_retry_loops == 0
               ? 0.0
               : static_cast<double>(retried) / caught_in_retry_loops;
  }
};

// One reported outlier: an exception whose ratio is near-but-not-at a pole,
// with the minority sites to review.
struct IfOutlierReport {
  std::string exception;
  int caught_in_retry_loops = 0;
  int retried = 0;
  bool mostly_retried = false;          // True: ratio >= high threshold.
  std::vector<CatchSite> outlier_sites;  // The minority sites.

  double ratio() const {
    return caught_in_retry_loops == 0
               ? 0.0
               : static_cast<double>(retried) / caught_in_retry_loops;
  }
};

class IfOutlierAnalysis {
 public:
  IfOutlierAnalysis(const mj::Program& program, const mj::ProgramIndex& index,
                    IfOutlierOptions options = {});

  // Per-exception stats over every catch site inside identified retry loops.
  std::vector<ExceptionRetryStats> ComputeStats() const;

  // The outlier reports (§4.1 found 9 such cases, 8 true bugs).
  std::vector<IfOutlierReport> FindOutliers() const;

 private:
  const mj::Program& program_;
  const mj::ProgramIndex& index_;
  IfOutlierOptions options_;
};

}  // namespace wasabi

#endif  // WASABI_SRC_ANALYSIS_IF_OUTLIERS_H_
