#include "src/analysis/retry_finder.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "src/analysis/type_infer.h"

namespace wasabi {

using mj::AstKind;

namespace {

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool ContainsKeyword(std::string_view text, const std::vector<std::string>& keywords) {
  std::string lower = ToLower(text);
  for (const std::string& keyword : keywords) {
    if (lower.find(keyword) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// Collects every call expression in `stmt` together with the catch clauses
// whose try bodies lexically enclose the call (innermost first). Calls inside
// catch/finally blocks see only the catches of *outer* try statements.
struct CallSite {
  const mj::CallExpr* call = nullptr;
  std::vector<const mj::CatchClause*> catches_in_scope;
};

void CollectCallsInExpr(const mj::Expr* expr,
                        const std::vector<const mj::CatchClause*>& scope,
                        std::vector<CallSite>& out) {
  mj::WalkExprs(expr, [&](const mj::Expr& e) {
    if (e.kind == AstKind::kCall) {
      out.push_back(CallSite{static_cast<const mj::CallExpr*>(&e), scope});
    }
  });
}

void CollectCallsInStmt(const mj::Stmt* stmt, std::vector<const mj::CatchClause*>& scope,
                        std::vector<CallSite>& out) {
  if (stmt == nullptr) {
    return;
  }
  switch (stmt->kind) {
    case AstKind::kBlock:
      for (const mj::Stmt* child : static_cast<const mj::BlockStmt*>(stmt)->statements) {
        CollectCallsInStmt(child, scope, out);
      }
      break;
    case AstKind::kVarDecl:
      CollectCallsInExpr(static_cast<const mj::VarDeclStmt*>(stmt)->init, scope, out);
      break;
    case AstKind::kAssign:
      CollectCallsInExpr(static_cast<const mj::AssignStmt*>(stmt)->target, scope, out);
      CollectCallsInExpr(static_cast<const mj::AssignStmt*>(stmt)->value, scope, out);
      break;
    case AstKind::kExprStmt:
      CollectCallsInExpr(static_cast<const mj::ExprStmt*>(stmt)->expr, scope, out);
      break;
    case AstKind::kIf: {
      const auto* node = static_cast<const mj::IfStmt*>(stmt);
      CollectCallsInExpr(node->condition, scope, out);
      CollectCallsInStmt(node->then_branch, scope, out);
      CollectCallsInStmt(node->else_branch, scope, out);
      break;
    }
    case AstKind::kWhile: {
      const auto* node = static_cast<const mj::WhileStmt*>(stmt);
      CollectCallsInExpr(node->condition, scope, out);
      CollectCallsInStmt(node->body, scope, out);
      break;
    }
    case AstKind::kFor: {
      const auto* node = static_cast<const mj::ForStmt*>(stmt);
      CollectCallsInStmt(node->init, scope, out);
      CollectCallsInExpr(node->condition, scope, out);
      CollectCallsInStmt(node->update, scope, out);
      CollectCallsInStmt(node->body, scope, out);
      break;
    }
    case AstKind::kSwitch: {
      const auto* node = static_cast<const mj::SwitchStmt*>(stmt);
      CollectCallsInExpr(node->subject, scope, out);
      for (const mj::SwitchCase& switch_case : node->cases) {
        for (const mj::Stmt* child : switch_case.body) {
          CollectCallsInStmt(child, scope, out);
        }
      }
      break;
    }
    case AstKind::kTry: {
      const auto* node = static_cast<const mj::TryStmt*>(stmt);
      size_t added = node->catches.size();
      for (const mj::CatchClause& clause : node->catches) {
        scope.push_back(&clause);
      }
      for (const mj::Stmt* child : node->body->statements) {
        CollectCallsInStmt(child, scope, out);
      }
      scope.resize(scope.size() - added);
      for (const mj::CatchClause& clause : node->catches) {
        for (const mj::Stmt* child : clause.body->statements) {
          CollectCallsInStmt(child, scope, out);
        }
      }
      if (node->finally != nullptr) {
        for (const mj::Stmt* child : node->finally->statements) {
          CollectCallsInStmt(child, scope, out);
        }
      }
      break;
    }
    case AstKind::kThrow:
      CollectCallsInExpr(static_cast<const mj::ThrowStmt*>(stmt)->value, scope, out);
      break;
    case AstKind::kReturn:
      CollectCallsInExpr(static_cast<const mj::ReturnStmt*>(stmt)->value, scope, out);
      break;
    default:
      break;
  }
}

}  // namespace

RetryFinder::RetryFinder(const mj::Program& program, const mj::ProgramIndex& index,
                         RetryFinderOptions options)
    : program_(program), index_(index), options_(std::move(options)) {}

bool RetryFinder::HasKeywordEvidence(const mj::Stmt& stmt) const {
  bool found = false;
  auto check = [&](std::string_view text) {
    if (!found && ContainsKeyword(text, options_.keywords)) {
      found = true;
    }
  };
  auto expr_fn = [&](const mj::Expr& expr) {
    switch (expr.kind) {
      case AstKind::kName:
        check(static_cast<const mj::NameExpr&>(expr).name);
        break;
      case AstKind::kStringLiteral:
        check(static_cast<const mj::StringLiteralExpr&>(expr).value);
        break;
      case AstKind::kFieldAccess:
        check(static_cast<const mj::FieldAccessExpr&>(expr).field);
        break;
      case AstKind::kCall:
        check(static_cast<const mj::CallExpr&>(expr).callee);
        break;
      default:
        break;
    }
  };
  auto stmt_fn = [&](const mj::Stmt& s) {
    if (s.kind == AstKind::kVarDecl) {
      check(static_cast<const mj::VarDeclStmt&>(s).name);
    }
  };
  mj::WalkStmts(&stmt, stmt_fn, expr_fn);
  return found;
}

namespace {

bool IsTestClassName(std::string_view name) {
  return name.size() >= 4 && name.substr(name.size() - 4) == "Test";
}

}  // namespace

std::vector<LoopCandidate> RetryFinder::FindCandidateLoops() const {
  std::vector<LoopCandidate> candidates;
  CfgBuilder builder;
  for (const mj::MethodDecl* method : index_.all_methods()) {
    if (method->body == nullptr) {
      continue;
    }
    if (options_.skip_test_classes && method->owner != nullptr &&
        IsTestClassName(method->owner->name)) {
      continue;
    }
    Cfg cfg = builder.Build(*method);

    // Find every loop statement in the body.
    std::vector<const mj::Stmt*> loops;
    mj::WalkStmts(
        method->body,
        [&](const mj::Stmt& stmt) {
          if (stmt.kind == AstKind::kWhile || stmt.kind == AstKind::kFor) {
            loops.push_back(&stmt);
          }
        },
        [](const mj::Expr&) {});

    for (const mj::Stmt* loop : loops) {
      CfgNodeId header = cfg.HeaderOf(*loop);
      if (header == kInvalidCfgNode) {
        continue;
      }
      const mj::Stmt* body =
          loop->kind == AstKind::kWhile ? static_cast<const mj::WhileStmt*>(loop)->body
                                        : static_cast<const mj::ForStmt*>(loop)->body;
      // Catch clauses lexically inside the loop body.
      std::vector<const mj::CatchClause*> reaching;
      mj::WalkStmts(
          body,
          [&](const mj::Stmt& stmt) {
            if (stmt.kind != AstKind::kTry) {
              return;
            }
            for (const mj::CatchClause& clause : static_cast<const mj::TryStmt&>(stmt).catches) {
              CfgNodeId entry = cfg.CatchEntryOf(clause);
              if (entry != kInvalidCfgNode && cfg.Reaches(entry, header)) {
                reaching.push_back(&clause);
              }
            }
          },
          [](const mj::Expr&) {});
      if (reaching.empty()) {
        continue;
      }
      LoopCandidate candidate;
      candidate.method = method;
      candidate.loop = loop;
      // The paper's filter checks the loop body/condition; the enclosing
      // method's own name (e.g. `fetchWithRetries`) is equally direct naming
      // evidence, so it counts too.
      candidate.keyword_evidence =
          HasKeywordEvidence(*loop) || ContainsKeyword(method->name, options_.keywords);
      candidate.reaching_catches = std::move(reaching);
      candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

void RetryFinder::AttachLocations(RetryStructure& structure, const LoopCandidate& candidate,
                                  const Cfg& cfg) const {
  LocalTypes types(*candidate.method, index_);
  CfgNodeId header = cfg.HeaderOf(*candidate.loop);

  const mj::Stmt* body = candidate.loop->kind == AstKind::kWhile
                             ? static_cast<const mj::WhileStmt*>(candidate.loop)->body
                             : static_cast<const mj::ForStmt*>(candidate.loop)->body;
  std::vector<CallSite> calls;
  std::vector<const mj::CatchClause*> scope;
  CollectCallsInStmt(body, scope, calls);

  std::unordered_set<std::string> seen;
  for (const CallSite& site : calls) {
    if (site.catches_in_scope.empty()) {
      continue;  // A call outside any try can't trigger catch-driven retry.
    }
    const mj::MethodDecl* resolved = types.ResolveCall(*site.call);
    if (resolved == nullptr) {
      continue;
    }
    for (const std::string& exception : index_.PotentialThrows(*resolved)) {
      // Is there a catch in scope that would catch E and reach the header?
      bool retriggers = false;
      for (const mj::CatchClause* clause : site.catches_in_scope) {
        if (!index_.IsSubtype(exception, clause->exception_type)) {
          continue;
        }
        CfgNodeId entry = cfg.CatchEntryOf(*clause);
        if (entry != kInvalidCfgNode && cfg.Reaches(entry, header)) {
          retriggers = true;
        }
        // The innermost catch that matches E handles it; stop looking.
        break;
      }
      if (!retriggers) {
        continue;
      }
      RetryLocation location;
      location.coordinator = candidate.method->QualifiedName();
      location.coordinator_decl = candidate.method;
      location.retried_method = resolved->QualifiedName();
      location.retried_decl = resolved;
      location.exception_name = exception;
      location.call_site = site.call;
      location.location = site.call->location;
      const mj::CompilationUnit* unit = index_.UnitOfMethod(*candidate.method);
      location.file = unit != nullptr ? unit->file().name() : "";
      location.mechanism = RetryMechanism::kLoop;
      if (seen.insert(location.Key()).second) {
        structure.locations.push_back(std::move(location));
      }
    }
  }
}

std::vector<RetryStructure> RetryFinder::FindLoopStructures() const {
  std::vector<RetryStructure> structures;
  CfgBuilder builder;
  for (const LoopCandidate& candidate : FindCandidateLoops()) {
    if (options_.require_keyword && !candidate.keyword_evidence) {
      continue;
    }
    RetryStructure structure;
    const mj::CompilationUnit* unit = index_.UnitOfMethod(*candidate.method);
    structure.file = unit != nullptr ? unit->file().name() : "";
    structure.coordinator = candidate.method->QualifiedName();
    structure.coordinator_decl = candidate.method;
    structure.mechanism = RetryMechanism::kLoop;
    structure.anchor = candidate.loop;
    structure.location = candidate.loop->location;
    structure.found_by.codeql = true;
    structure.keyword_evidence = candidate.keyword_evidence;
    Cfg cfg = builder.Build(*candidate.method);
    AttachLocations(structure, candidate, cfg);
    structures.push_back(std::move(structure));
  }
  return structures;
}

std::vector<RetryLocation> RetryFinder::TripletsForCoordinator(const mj::MethodDecl& method,
                                                               RetryMechanism mechanism) const {
  std::vector<RetryLocation> locations;
  if (method.body == nullptr) {
    return locations;
  }
  LocalTypes types(method, index_);
  std::vector<CallSite> calls;
  std::vector<const mj::CatchClause*> scope;
  for (const mj::Stmt* stmt : method.body->statements) {
    CollectCallsInStmt(stmt, scope, calls);
  }
  std::unordered_set<std::string> seen;
  for (const CallSite& site : calls) {
    const mj::MethodDecl* resolved = types.ResolveCall(*site.call);
    if (resolved == nullptr) {
      continue;
    }
    for (const std::string& exception : index_.PotentialThrows(*resolved)) {
      RetryLocation location;
      location.coordinator = method.QualifiedName();
      location.coordinator_decl = &method;
      location.retried_method = resolved->QualifiedName();
      location.retried_decl = resolved;
      location.exception_name = exception;
      location.call_site = site.call;
      location.location = site.call->location;
      const mj::CompilationUnit* unit = index_.UnitOfMethod(method);
      location.file = unit != nullptr ? unit->file().name() : "";
      location.mechanism = mechanism;
      if (seen.insert(location.Key()).second) {
        locations.push_back(std::move(location));
      }
    }
  }
  return locations;
}

}  // namespace wasabi
