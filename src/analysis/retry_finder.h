// CodeQL-style identification of retry code (§3.1.1 of the paper).
//
// Technique 1 (implemented here): control-flow analysis finds every loop whose
// header is reachable from at least one catch block inside the loop body, then
// applies the paper's naming filter ("retry"/"retries" appearing in string
// literals, variables, or invoked method names inside the loop). For each such
// retry loop, callee signatures provide the candidate retry-trigger exceptions
// and call sites become retry locations.
//
// Technique 2 (the LLM) lives in src/llm; once it reports a coordinator
// method, TripletsForCoordinator() performs the "simple CodeQL query" the
// paper uses to enumerate that coordinator's potential retried methods and
// trigger exceptions.

#ifndef WASABI_SRC_ANALYSIS_RETRY_FINDER_H_
#define WASABI_SRC_ANALYSIS_RETRY_FINDER_H_

#include <string>
#include <vector>

#include "src/analysis/cfg.h"
#include "src/analysis/retry_model.h"
#include "src/lang/ast.h"
#include "src/lang/sema.h"

namespace wasabi {

struct RetryFinderOptions {
  // The paper's keyword filter. Disabling it reproduces the §4.4 ablation
  // (3.5x more candidate loops, mostly non-retry).
  bool require_keyword = true;
  std::vector<std::string> keywords = {"retry", "retries"};
  // The paper analyzes application source, not test harnesses; classes whose
  // names end in "Test" are skipped.
  bool skip_test_classes = true;
};

// A loop whose header is reachable from a catch block inside its body —
// a candidate retry loop, before the keyword filter.
struct LoopCandidate {
  const mj::MethodDecl* method = nullptr;
  const mj::Stmt* loop = nullptr;
  bool keyword_evidence = false;
  std::vector<const mj::CatchClause*> reaching_catches;
};

class RetryFinder {
 public:
  RetryFinder(const mj::Program& program, const mj::ProgramIndex& index,
              RetryFinderOptions options = {});

  // All candidate loops (catch reaches header), with keyword evidence noted
  // but not enforced. Used directly by the keyword-filter ablation.
  std::vector<LoopCandidate> FindCandidateLoops() const;

  // The CodeQL technique's final output: retry-loop structures (keyword filter
  // applied per options) with their retry-location triplets attached.
  std::vector<RetryStructure> FindLoopStructures() const;

  // The follow-up query for an LLM-reported coordinator method: every call in
  // the method is a potential retried method; its signature exceptions are
  // potential triggers. No catch/loop requirement — the paper relies on the
  // test oracles to absorb over-reporting.
  std::vector<RetryLocation> TripletsForCoordinator(const mj::MethodDecl& method,
                                                    RetryMechanism mechanism) const;

  // True if the subtree (a loop statement, including its clauses and body)
  // contains any of the configured keywords in identifiers, string literals,
  // or invoked method names. Exposed for tests.
  bool HasKeywordEvidence(const mj::Stmt& stmt) const;

 private:
  void AttachLocations(RetryStructure& structure, const LoopCandidate& candidate,
                       const Cfg& cfg) const;

  const mj::Program& program_;
  const mj::ProgramIndex& index_;
  RetryFinderOptions options_;
};

}  // namespace wasabi

#endif  // WASABI_SRC_ANALYSIS_RETRY_FINDER_H_
