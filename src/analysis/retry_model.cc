#include "src/analysis/retry_model.h"

#include <sstream>

namespace wasabi {

const char* RetryMechanismName(RetryMechanism mechanism) {
  switch (mechanism) {
    case RetryMechanism::kLoop:
      return "loop";
    case RetryMechanism::kQueue:
      return "queue";
    case RetryMechanism::kStateMachine:
      return "state-machine";
  }
  return "unknown";
}

std::string RetryLocation::Key() const {
  std::ostringstream out;
  out << file << ":" << location.line << " " << coordinator << "->" << retried_method << " "
      << exception_name;
  return out.str();
}

std::string RetryStructure::Key() const {
  std::ostringstream out;
  out << file << ":" << location.line << " " << coordinator;
  return out.str();
}

}  // namespace wasabi
