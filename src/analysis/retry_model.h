// Shared vocabulary for retry detection: the paper's retry-location triplet
// (coordinator method C, retried method M, retry-trigger exception E) and the
// retry code structures reported in its Figure 4.

#ifndef WASABI_SRC_ANALYSIS_RETRY_MODEL_H_
#define WASABI_SRC_ANALYSIS_RETRY_MODEL_H_

#include <string>
#include <vector>

#include "src/lang/ast.h"

namespace wasabi {

// How the retry is implemented (§2.5: 55% loops, 25% queue re-enqueueing,
// 20% state-machine re-transition in the studied bugs).
enum class RetryMechanism : uint8_t {
  kLoop,
  kQueue,
  kStateMachine,
};

const char* RetryMechanismName(RetryMechanism mechanism);

// Which technique identified a structure (Figure 4 compares them).
struct TechniqueSet {
  bool codeql = false;
  bool llm = false;

  bool any() const { return codeql || llm; }
  bool both() const { return codeql && llm; }
};

// One retry location: the call site of retried method M inside coordinator C,
// with trigger exception E (§3.1 definitions).
struct RetryLocation {
  std::string coordinator;          // Qualified "Class.method".
  const mj::MethodDecl* coordinator_decl = nullptr;
  std::string retried_method;       // Qualified if resolved, else the call name.
  const mj::MethodDecl* retried_decl = nullptr;  // Null when unresolved.
  std::string exception_name;       // Trigger exception E.
  const mj::CallExpr* call_site = nullptr;
  mj::SourceLocation location;      // Of the call site.
  std::string file;
  RetryMechanism mechanism = RetryMechanism::kLoop;

  // Stable identity used by plans and logs: "file:line C->M E".
  std::string Key() const;
};

// One identified retry code structure (one loop / queue / state-machine
// retry implementation). Structures own the retry locations found in them.
struct RetryStructure {
  std::string file;
  std::string coordinator;  // Qualified coordinator method name.
  const mj::MethodDecl* coordinator_decl = nullptr;
  RetryMechanism mechanism = RetryMechanism::kLoop;
  const mj::Stmt* anchor = nullptr;  // The loop statement; null for non-loop retry.
  mj::SourceLocation location;
  TechniqueSet found_by;
  bool keyword_evidence = false;  // CodeQL keyword filter hit (loops only).
  std::vector<RetryLocation> locations;

  // Stable identity: "file:line coordinator".
  std::string Key() const;
};

}  // namespace wasabi

#endif  // WASABI_SRC_ANALYSIS_RETRY_MODEL_H_
