#include "src/analysis/type_infer.h"

#include <unordered_set>

namespace wasabi {

using mj::AstKind;

bool IsBuiltinReceiver(std::string_view name) {
  static const std::unordered_set<std::string_view> kBuiltins = {
      "Thread", "Log", "Config", "Math", "Assert", "Clock", "System", "TimeUnit", "Timer",
  };
  return kBuiltins.count(name) > 0;
}

bool LocalTypes::IsUsableTypeName(std::string_view name) {
  if (name.empty() || name == "var" || name == "void") {
    return false;
  }
  static const std::unordered_set<std::string_view> kPrimitives = {
      "int", "long", "bool", "boolean", "String", "double", "float",
  };
  return kPrimitives.count(name) == 0;
}

LocalTypes::LocalTypes(const mj::MethodDecl& method, const mj::ProgramIndex& index)
    : method_(method), index_(index) {
  for (const mj::ParamDecl* param : method.params) {
    if (IsUsableTypeName(param->type_name)) {
      var_types_[param->name] = param->type_name;
    }
  }
  if (method.body == nullptr) {
    return;
  }
  // One pre-order pass: record `var x = <expr-with-inferable-type>;`.
  // Declaration-before-use holds in well-formed code; shadowing across blocks
  // is resolved last-writer-wins, which is acceptable for best-effort analysis.
  mj::WalkStmts(
      method.body,
      [&](const mj::Stmt& stmt) {
        if (stmt.kind != AstKind::kVarDecl) {
          return;
        }
        const auto& decl = static_cast<const mj::VarDeclStmt&>(stmt);
        std::string type = TypeOf(*decl.init);
        if (!type.empty()) {
          var_types_[decl.name] = std::move(type);
        }
      },
      [](const mj::Expr&) {});
}

std::string LocalTypes::FieldTypeIn(std::string_view class_name, std::string_view field) const {
  const mj::ClassDecl* cls = index_.FindClass(class_name);
  int depth = 0;
  while (cls != nullptr && depth++ < 64) {
    for (const mj::FieldDecl* decl : cls->fields) {
      if (decl->name == field) {
        if (IsUsableTypeName(decl->type_name)) {
          return decl->type_name;
        }
        // Untyped field: try the initializer.
        if (decl->init != nullptr && decl->init->kind == AstKind::kNew) {
          return static_cast<const mj::NewExpr*>(decl->init)->class_name;
        }
        return "";
      }
    }
    cls = cls->base_name.empty() ? nullptr : index_.FindClass(cls->base_name);
  }
  return "";
}

std::string LocalTypes::TypeOf(const mj::Expr& expr) const {
  switch (expr.kind) {
    case AstKind::kThis:
      return method_.owner != nullptr ? method_.owner->name : "";
    case AstKind::kNew:
      return static_cast<const mj::NewExpr&>(expr).class_name;
    case AstKind::kName: {
      const std::string& name = static_cast<const mj::NameExpr&>(expr).name;
      auto it = var_types_.find(name);
      return it == var_types_.end() ? "" : it->second;
    }
    case AstKind::kFieldAccess: {
      const auto& access = static_cast<const mj::FieldAccessExpr&>(expr);
      std::string base_type = TypeOf(*access.base);
      if (base_type.empty()) {
        return "";
      }
      return FieldTypeIn(base_type, access.field);
    }
    case AstKind::kCall: {
      const mj::MethodDecl* callee = ResolveCall(static_cast<const mj::CallExpr&>(expr));
      if (callee != nullptr && IsUsableTypeName(callee->return_type)) {
        return callee->return_type;
      }
      return "";
    }
    default:
      return "";
  }
}

const mj::MethodDecl* LocalTypes::ResolveCall(const mj::CallExpr& call) const {
  const mj::ClassDecl* owner = method_.owner;

  // Implicit this-call: `helper(...)`.
  if (call.base == nullptr || call.base->kind == AstKind::kThis) {
    if (owner == nullptr) {
      return nullptr;
    }
    return index_.ResolveMethod(*owner, call.callee);
  }

  // Name receivers: a local variable first, then a class name (static-style
  // call), then a runtime builtin (unresolvable by design).
  if (call.base->kind == AstKind::kName) {
    const std::string& name = static_cast<const mj::NameExpr*>(call.base)->name;
    auto it = var_types_.find(name);
    if (it != var_types_.end()) {
      const mj::ClassDecl* cls = index_.FindClass(it->second);
      if (cls != nullptr) {
        return index_.ResolveMethod(*cls, call.callee);
      }
      return nullptr;
    }
    if (IsBuiltinReceiver(name)) {
      return nullptr;
    }
    const mj::ClassDecl* cls = index_.FindClass(name);
    if (cls != nullptr) {
      return index_.ResolveMethod(*cls, call.callee);
    }
  }

  // General receiver expression: infer its type.
  std::string base_type = TypeOf(*call.base);
  if (!base_type.empty()) {
    const mj::ClassDecl* cls = index_.FindClass(base_type);
    if (cls != nullptr) {
      const mj::MethodDecl* resolved = index_.ResolveMethod(*cls, call.callee);
      if (resolved != nullptr) {
        return resolved;
      }
    }
  }

  // Fall back to a unique simple name across the whole program.
  std::vector<const mj::MethodDecl*> candidates = index_.MethodsNamed(call.callee);
  if (candidates.size() == 1) {
    return candidates[0];
  }
  return nullptr;
}

}  // namespace wasabi
