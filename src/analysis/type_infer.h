// Best-effort local type inference and call resolution for mj.
//
// mj is dynamically checked, but the static analyses need to know which method
// declaration a call site refers to in order to read its `throws` signature.
// This mirrors the precision of the paper's CodeQL queries: resolution from
// declared types, local `new` expressions, and unambiguous method names — no
// whole-program dataflow.

#ifndef WASABI_SRC_ANALYSIS_TYPE_INFER_H_
#define WASABI_SRC_ANALYSIS_TYPE_INFER_H_

#include <string>
#include <string_view>
#include <unordered_map>

#include "src/lang/ast.h"
#include "src/lang/sema.h"

namespace wasabi {

// Receiver names that denote runtime builtins rather than program classes
// (Thread.sleep, Log.info, ...). Calls on these never resolve to user methods.
bool IsBuiltinReceiver(std::string_view name);

// Infers static types of locals/params/fields within one method.
class LocalTypes {
 public:
  LocalTypes(const mj::MethodDecl& method, const mj::ProgramIndex& index);

  // Returns the inferred class name of `expr`'s value, or "" if unknown.
  // Pseudo-types like "var", "void", "int" yield "".
  std::string TypeOf(const mj::Expr& expr) const;

  // Resolves the callee declaration of `call`, or null when unresolvable.
  // Resolution order: receiver type (this / typed local / field / new), then
  // class-name receiver (static-style call), then unique simple name.
  const mj::MethodDecl* ResolveCall(const mj::CallExpr& call) const;

 private:
  std::string FieldTypeIn(std::string_view class_name, std::string_view field) const;
  static bool IsUsableTypeName(std::string_view name);

  const mj::MethodDecl& method_;
  const mj::ProgramIndex& index_;
  std::unordered_map<std::string, std::string> var_types_;
};

}  // namespace wasabi

#endif  // WASABI_SRC_ANALYSIS_TYPE_INFER_H_
