#include "src/cache/program_digest.h"

#include "src/lang/digest.h"

namespace wasabi {

ProgramDigest DigestProgram(const mj::Program& program) {
  ProgramDigest result;
  uint64_t rollup = mj::kFnvOffsetBasis;
  for (const auto& unit : program.units()) {
    FileDigest file;
    file.file = unit->file().name();
    file.digest = mj::SourceContentDigest(unit->file());
    rollup = mj::Fnv1a64(file.file, rollup);
    rollup = mj::Fnv1a64Mix(file.digest, rollup);
    result.files.push_back(std::move(file));
  }
  result.digest = rollup;
  return result;
}

}  // namespace wasabi
