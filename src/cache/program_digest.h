// Program-level digest composition (docs/CACHING.md): per-file token digests
// (src/lang/digest.h) rolled up into one program digest, in unit order. Any
// edit to any file — or adding, removing, or renaming a file — changes the
// program digest, which keys everything whose meaning spans files (coverage
// maps, injected-run verdicts); per-file results (SimLLM memos) key on the
// individual file digest and survive edits elsewhere.

#ifndef WASABI_SRC_CACHE_PROGRAM_DIGEST_H_
#define WASABI_SRC_CACHE_PROGRAM_DIGEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/lang/sema.h"

namespace wasabi {

struct FileDigest {
  std::string file;  // CompilationUnit file name.
  uint64_t digest = 0;
};

struct ProgramDigest {
  uint64_t digest = 0;          // Rollup over (name, digest) pairs, unit order.
  std::vector<FileDigest> files;  // Parallel to program.units().
};

ProgramDigest DigestProgram(const mj::Program& program);

}  // namespace wasabi

#endif  // WASABI_SRC_CACHE_PROGRAM_DIGEST_H_
