#include "src/cache/store.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/lang/digest.h"

namespace wasabi {

namespace {

namespace fs = std::filesystem;

std::string EntryKey(std::string_view ns, std::string_view key) {
  std::string full;
  full.reserve(ns.size() + 1 + key.size());
  full.append(ns);
  full.push_back('\x1f');
  full.append(key);
  return full;
}

// Checksum over the raw record content; the '\x1f' separators make the three
// fields unambiguous (none of them may contain that byte — enforced by the
// escape step never emitting it and our keys never containing it).
uint64_t RecordChecksum(std::string_view ns, std::string_view key, std::string_view value) {
  uint64_t hash = mj::Fnv1a64(ns);
  hash = mj::Fnv1a64("\x1f", hash);
  hash = mj::Fnv1a64(key, hash);
  hash = mj::Fnv1a64("\x1f", hash);
  return mj::Fnv1a64(value, hash);
}

void AppendRecord(std::ostream& out, std::string_view ns, std::string_view key,
                  std::string_view value) {
  out << mj::DigestHex(RecordChecksum(ns, key, value)) << '\t' << ns << '\t'
      << CacheStore::EscapeField(key) << '\t' << CacheStore::EscapeField(value) << '\n';
}

}  // namespace

std::string CacheStore::EscapeField(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

bool CacheStore::UnescapeField(std::string_view escaped, std::string* out) {
  out->clear();
  out->reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    char c = escaped[i];
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (++i >= escaped.size()) {
      return false;  // Dangling escape: truncated record.
    }
    switch (escaped[i]) {
      case '\\': out->push_back('\\'); break;
      case 't': out->push_back('\t'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      default: return false;
    }
  }
  return true;
}

std::unique_ptr<CacheStore> CacheStore::Open(const std::string& dir, std::string* error) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create cache directory " + dir + ": " + ec.message();
    }
    return nullptr;
  }
  std::unique_ptr<CacheStore> store(new CacheStore(dir));
  store->LoadLocked();
  return store;
}

void CacheStore::LoadLocked() {
  const fs::path version_path = fs::path(dir_) / "VERSION";
  const fs::path entries_path = fs::path(dir_) / "entries.tsv";

  std::error_code ec;
  if (!fs::exists(version_path, ec)) {
    // Fresh directory: nothing to load; first Flush writes the tag.
    needs_rewrite_ = true;
    return;
  }
  std::ifstream version_in(version_path);
  std::string version;
  std::getline(version_in, version);
  if (version != kCacheSchemaVersion) {
    ++stats_.version_mismatches;
    needs_rewrite_ = true;  // Stale schema: start empty, rewrite on Flush.
    return;
  }

  std::ifstream in(entries_path);
  if (!in) {
    return;  // No entries yet.
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    size_t t1 = line.find('\t');
    size_t t2 = t1 == std::string::npos ? std::string::npos : line.find('\t', t1 + 1);
    size_t t3 = t2 == std::string::npos ? std::string::npos : line.find('\t', t2 + 1);
    if (t3 == std::string::npos || line.find('\t', t3 + 1) != std::string::npos) {
      ++stats_.corrupt_entries;
      continue;
    }
    std::string_view checksum_hex = std::string_view(line).substr(0, t1);
    std::string_view ns = std::string_view(line).substr(t1 + 1, t2 - t1 - 1);
    std::string key;
    std::string value;
    if (!UnescapeField(std::string_view(line).substr(t2 + 1, t3 - t2 - 1), &key) ||
        !UnescapeField(std::string_view(line).substr(t3 + 1), &value)) {
      ++stats_.corrupt_entries;
      continue;
    }
    if (mj::DigestHex(RecordChecksum(ns, key, value)) != checksum_hex) {
      ++stats_.corrupt_entries;
      continue;
    }
    entries_[EntryKey(ns, key)] = std::move(value);  // Last record wins.
    ++stats_.loaded_entries;
  }
}

std::optional<std::string> CacheStore::Get(std::string_view ns, std::string_view key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(EntryKey(ns, key));
  const std::string ns_name(ns);
  if (it == entries_.end()) {
    ++stats_.misses;
    ++stats_.misses_by_namespace[ns_name];
    return std::nullopt;
  }
  ++stats_.hits;
  ++stats_.hits_by_namespace[ns_name];
  return it->second;
}

void CacheStore::Put(std::string_view ns, std::string_view key, std::string value) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string full = EntryKey(ns, key);
  auto [it, inserted] = entries_.insert_or_assign(std::move(full), std::move(value));
  (void)inserted;
  ++stats_.puts;
  dirty_.emplace_back(it->first, it->second);
}

bool CacheStore::Flush(std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  const fs::path version_path = fs::path(dir_) / "VERSION";
  const fs::path entries_path = fs::path(dir_) / "entries.tsv";

  auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return false;
  };

  if (needs_rewrite_) {
    {
      std::ofstream version_out(version_path, std::ios::trunc);
      version_out << kCacheSchemaVersion << '\n';
      if (!version_out) {
        return fail("cannot write " + version_path.string());
      }
    }
    std::ofstream out(entries_path, std::ios::trunc);
    for (const auto& [full, value] : entries_) {
      size_t sep = full.find('\x1f');
      AppendRecord(out, std::string_view(full).substr(0, sep), std::string_view(full).substr(sep + 1),
                   value);
    }
    if (!out) {
      return fail("cannot write " + entries_path.string());
    }
    needs_rewrite_ = false;
    dirty_.clear();
    return true;
  }

  if (dirty_.empty()) {
    return true;
  }
  std::ofstream out(entries_path, std::ios::app);
  for (const auto& [full, value] : dirty_) {
    size_t sep = full.find('\x1f');
    AppendRecord(out, std::string_view(full).substr(0, sep), std::string_view(full).substr(sep + 1),
                 value);
  }
  if (!out) {
    return fail("cannot append to " + entries_path.string());
  }
  dirty_.clear();
  return true;
}

CacheStats CacheStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

CacheStats DiffStats(const CacheStats& before, const CacheStats& after) {
  CacheStats delta;
  delta.hits = after.hits - before.hits;
  delta.misses = after.misses - before.misses;
  delta.puts = after.puts - before.puts;
  delta.loaded_entries = after.loaded_entries - before.loaded_entries;
  delta.corrupt_entries = after.corrupt_entries - before.corrupt_entries;
  delta.version_mismatches = after.version_mismatches - before.version_mismatches;
  for (const auto& [ns, count] : after.hits_by_namespace) {
    auto it = before.hits_by_namespace.find(ns);
    int64_t diff = count - (it == before.hits_by_namespace.end() ? 0 : it->second);
    if (diff != 0) {
      delta.hits_by_namespace[ns] = diff;
    }
  }
  for (const auto& [ns, count] : after.misses_by_namespace) {
    auto it = before.misses_by_namespace.find(ns);
    int64_t diff = count - (it == before.misses_by_namespace.end() ? 0 : it->second);
    if (diff != 0) {
      delta.misses_by_namespace[ns] = diff;
    }
  }
  return delta;
}

}  // namespace wasabi
