// Versioned on-disk key/value store backing the incremental pipeline cache
// (docs/CACHING.md).
//
// Layout: `<dir>/VERSION` holds the schema tag, `<dir>/entries.tsv` holds one
// record per line: `<fnv-hex>\t<namespace>\t<key>\t<value>` with key and value
// backslash-escaped. The leading field is an FNV-1a checksum over the raw
// (unescaped) namespace + key + value, so a truncated or bit-flipped record
// is detected on load, dropped, and counted — a corrupt cache can only ever
// cause recomputation, never a wrong report. A VERSION mismatch discards the
// whole store the same way (counted separately) and the next Flush rewrites
// it under the current schema.
//
// The store is a plain map in memory; Get/Put are mutex-guarded so the facade
// may consult it from reduce loops without caring which thread runs them.
// Flush persists added entries (append when the on-disk file is still the one
// we loaded, full rewrite after a version mismatch).

#ifndef WASABI_SRC_CACHE_STORE_H_
#define WASABI_SRC_CACHE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace wasabi {

// Bumping this invalidates every existing cache directory.
// v2: campaign run verdicts carry flakiness-prober classification fields.
inline constexpr std::string_view kCacheSchemaVersion = "wasabi-cache-v2";

struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t puts = 0;
  int64_t loaded_entries = 0;
  int64_t corrupt_entries = 0;      // Checksum/format failures dropped on load.
  int64_t version_mismatches = 0;   // 1 when the VERSION tag did not match.
  std::map<std::string, int64_t> hits_by_namespace;
  std::map<std::string, int64_t> misses_by_namespace;
};

// Component-wise difference (`after` - `before`) of two stats snapshots,
// including the per-namespace maps. How phase-scoped cache accounting works:
// snapshot stats() around a phase and diff — the repair validator uses it to
// report how much of each re-campaign the warm per-file entries absorbed.
CacheStats DiffStats(const CacheStats& before, const CacheStats& after);

class CacheStore {
 public:
  // Opens (creating if needed) a cache directory and loads its entries.
  // Returns null only when the directory cannot be created or the entries
  // file cannot be read at the filesystem level; corrupt or version-stale
  // CONTENT is not an error (the store just starts empty and counts it).
  static std::unique_ptr<CacheStore> Open(const std::string& dir, std::string* error);

  std::optional<std::string> Get(std::string_view ns, std::string_view key);
  void Put(std::string_view ns, std::string_view key, std::string value);

  // Persists entries added since load. Returns false (with `error`) when the
  // directory is unwritable; the in-memory store stays usable either way.
  bool Flush(std::string* error);

  CacheStats stats() const;
  const std::string& dir() const { return dir_; }

  // Escaping for the TSV record fields (exposed for tests).
  static std::string EscapeField(std::string_view raw);
  static bool UnescapeField(std::string_view escaped, std::string* out);

 private:
  explicit CacheStore(std::string dir) : dir_(std::move(dir)) {}
  void LoadLocked();

  std::string dir_;
  mutable std::mutex mutex_;
  std::map<std::string, std::string> entries_;  // "<ns>\x1f<key>" -> value.
  std::vector<std::pair<std::string, std::string>> dirty_;  // Added since load.
  bool needs_rewrite_ = false;  // Version mismatch: Flush rewrites everything.
  CacheStats stats_;
};

}  // namespace wasabi

#endif  // WASABI_SRC_CACHE_STORE_H_
