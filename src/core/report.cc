#include "src/core/report.h"

#include <unordered_map>
#include <unordered_set>

namespace wasabi {

const char* BugTypeName(BugType type) {
  switch (type) {
    case BugType::kWhenMissingCap:
      return "WHEN/missing-cap";
    case BugType::kWhenMissingDelay:
      return "WHEN/missing-delay";
    case BugType::kHow:
      return "HOW";
    case BugType::kIfOutlier:
      return "IF/outlier";
    case BugType::kStormMissingJitter:
      return "STORM/missing-jitter";
    case BugType::kStormUnboundedFanout:
      return "STORM/unbounded-fanout";
    case BugType::kStormRetryOnOverload:
      return "STORM/retry-on-overload";
  }
  return "unknown";
}

const char* DetectionTechniqueName(DetectionTechnique technique) {
  switch (technique) {
    case DetectionTechnique::kUnitTesting:
      return "unit-testing";
    case DetectionTechnique::kLlmStatic:
      return "llm-static";
    case DetectionTechnique::kCodeQlStatic:
      return "codeql-static";
    case DetectionTechnique::kStormSim:
      return "storm-sim";
  }
  return "unknown";
}

std::string BugReport::MatchKey() const {
  return std::string(BugTypeName(type)) + "|" + file + "|" + coordinator;
}

namespace {

// Dominance order for merging probed duplicates: chaos-induced beats flaky
// beats stable.
int StabilityRank(VerdictStability stability) {
  switch (stability) {
    case VerdictStability::kStable:
      return 0;
    case VerdictStability::kFlaky:
      return 1;
    case VerdictStability::kChaosInduced:
      return 2;
  }
  return 0;
}

}  // namespace

std::vector<BugReport> DeduplicateBugs(std::vector<BugReport> reports) {
  std::vector<BugReport> unique;
  std::unordered_map<std::string, size_t> seen;  // Key -> index in `unique`.
  for (BugReport& report : reports) {
    std::string key = std::string(DetectionTechniqueName(report.technique)) + "|" +
                      BugTypeName(report.type) + "|" + report.group_key;
    auto [it, inserted] = seen.emplace(std::move(key), unique.size());
    if (inserted) {
      unique.push_back(std::move(report));
      continue;
    }
    // Merge the duplicate's classification into the survivor: the dominant
    // stability class wins, and a judged cause fills an empty one.
    BugReport& survivor = unique[it->second];
    if (report.probed) {
      if (!survivor.probed ||
          StabilityRank(report.stability) > StabilityRank(survivor.stability)) {
        survivor.stability = report.stability;
        if (!report.flaky_cause.empty()) {
          survivor.flaky_cause = report.flaky_cause;
        }
      }
      survivor.probed = true;
      if (survivor.flaky_cause.empty() && !report.flaky_cause.empty()) {
        survivor.flaky_cause = report.flaky_cause;
      }
    }
  }
  return unique;
}

OverlapSummary ComputeOverlap(const std::vector<BugReport>& unit_bugs,
                              const std::vector<BugReport>& static_bugs) {
  std::unordered_set<std::string> unit_keys;
  for (const BugReport& report : unit_bugs) {
    unit_keys.insert(report.MatchKey());
  }
  std::unordered_set<std::string> static_keys;
  for (const BugReport& report : static_bugs) {
    static_keys.insert(report.MatchKey());
  }
  OverlapSummary summary;
  for (const std::string& key : unit_keys) {
    if (static_keys.count(key) > 0) {
      ++summary.both;
    } else {
      ++summary.unit_only;
    }
  }
  for (const std::string& key : static_keys) {
    if (unit_keys.count(key) == 0) {
      ++summary.static_only;
    }
  }
  return summary;
}

}  // namespace wasabi
