// Bug-report model shared by both WASABI workflows.

#ifndef WASABI_SRC_CORE_REPORT_H_
#define WASABI_SRC_CORE_REPORT_H_

#include <string>
#include <vector>

#include "src/lang/source.h"
#include "src/testing/oracles.h"

namespace wasabi {

// The bug classes WASABI detects, per the paper's taxonomy (Table 2 / §4.1).
enum class BugType : uint8_t {
  kWhenMissingCap,    // WHEN: unbounded retry attempts.
  kWhenMissingDelay,  // WHEN: no delay between attempts.
  kHow,               // HOW: broken state/cleanup around retry.
  kIfOutlier,         // IF: inconsistent retry-or-not policy for an exception.
  // Emergent cross-service storm bugs (src/storm, docs/STORM.md). These are
  // invisible to the per-location techniques above: each retry loop looks
  // locally sane and only the simulated system shows the amplification.
  kStormMissingJitter,    // Fixed backoff: synchronized retry waves.
  kStormUnboundedFanout,  // Uncapped hedged/broadcast retry: load multiplies.
  kStormRetryOnOverload,  // Retries overload push-back: metastable storm.
};

const char* BugTypeName(BugType type);

enum class DetectionTechnique : uint8_t {
  kUnitTesting,    // Repurposed unit tests + fault injection (§3.1).
  kLlmStatic,      // LLM WHEN-bug detection (§3.2.1).
  kCodeQlStatic,   // Retry-ratio IF-bug detection (§3.2.2).
  kStormSim,       // Deterministic retry-storm simulation (docs/STORM.md).
};

const char* DetectionTechniqueName(DetectionTechnique technique);

struct BugReport {
  BugType type = BugType::kWhenMissingCap;
  DetectionTechnique technique = DetectionTechnique::kUnitTesting;
  std::string app;          // Application name (corpus id), set by the caller.
  std::string file;
  std::string coordinator;  // Qualified method owning the suspect retry.
  std::string exception;    // IF bugs: the inconsistently-handled exception.
  std::string detail;
  std::string group_key;    // Identity for dedup within a technique.
  mj::SourceLocation location;

  // Flakiness classification (docs/FLAKINESS.md). `probed == false` (the
  // default, and always the case for static-technique reports) means the
  // prober never ran; every output path then renders exactly the pre-prober
  // bytes. `flaky_cause` is SimLLM's judged root cause for non-stable
  // verdicts ("" = not judged).
  bool probed = false;
  VerdictStability stability = VerdictStability::kStable;
  std::string flaky_cause;

  // Cross-technique identity for Figure-3 overlap: two reports are the same
  // bug when type, file, and coordinator agree.
  std::string MatchKey() const;
};

// Deduplicates by (technique, type, group_key), preserving order. When probed
// duplicates of one bug disagree on stability, the survivor takes the
// dominant class (chaos-induced > flaky > stable): one run flipping under
// perturbation makes the BUG's evidence unstable even if another run of it
// reproduced.
std::vector<BugReport> DeduplicateBugs(std::vector<BugReport> reports);

// Figure-3 composition: how many bugs only unit testing found, only static
// checking found, or both found.
struct OverlapSummary {
  int unit_only = 0;
  int static_only = 0;
  int both = 0;
};

OverlapSummary ComputeOverlap(const std::vector<BugReport>& unit_bugs,
                              const std::vector<BugReport>& static_bugs);

}  // namespace wasabi

#endif  // WASABI_SRC_CORE_REPORT_H_
