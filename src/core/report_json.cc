#include "src/core/report_json.h"

#include <cstdio>
#include <sstream>

namespace wasabi {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(static_cast<char>(c));
        }
        break;
    }
  }
  return out;
}

std::string BugReportsToJson(const std::vector<BugReport>& bugs) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < bugs.size(); ++i) {
    const BugReport& bug = bugs[i];
    if (i > 0) {
      out << ",";
    }
    out << "\n  {"
        << "\"type\": \"" << JsonEscape(BugTypeName(bug.type)) << "\", "
        << "\"technique\": \"" << JsonEscape(DetectionTechniqueName(bug.technique)) << "\", "
        << "\"app\": \"" << JsonEscape(bug.app) << "\", "
        << "\"file\": \"" << JsonEscape(bug.file) << "\", "
        << "\"line\": " << bug.location.line << ", "
        << "\"coordinator\": \"" << JsonEscape(bug.coordinator) << "\", "
        << "\"exception\": \"" << JsonEscape(bug.exception) << "\", "
        << "\"detail\": \"" << JsonEscape(bug.detail) << "\"";
    // Stability keys appear ONLY for probed reports: an un-probed analysis
    // emits the exact legacy bytes (golden-equivalence contract).
    if (bug.probed) {
      out << ", \"stability\": \"" << JsonEscape(VerdictStabilityName(bug.stability))
          << "\"";
      if (!bug.flaky_cause.empty()) {
        out << ", \"flaky_cause\": \"" << JsonEscape(bug.flaky_cause) << "\"";
      }
    }
    out << "}";
  }
  out << "\n]\n";
  return out.str();
}

std::string AnalysisReportToJson(const std::vector<BugReport>& bugs,
                                 const ReportHealth& health) {
  if (health.clean()) {
    // Default-off guarantee: a healthy analysis emits the exact legacy array,
    // so consumers that never asked for robustness see nothing new.
    return BugReportsToJson(bugs);
  }
  std::string bugs_json = BugReportsToJson(bugs);
  if (!bugs_json.empty() && bugs_json.back() == '\n') {
    bugs_json.pop_back();
  }
  std::ostringstream out;
  out << "{\n"
      << "  \"degraded\": true,\n"
      << "  \"bugs\": " << bugs_json << ",\n"
      << "  \"skipped_files\": [";
  for (size_t i = 0; i < health.skipped_files.size(); ++i) {
    const SkippedFile& file = health.skipped_files[i];
    out << (i > 0 ? "," : "") << "\n    {\"path\": \"" << JsonEscape(file.path)
        << "\", \"reason\": \"" << JsonEscape(file.reason) << "\"}";
  }
  out << "\n  ],\n  \"quarantined\": [";
  for (size_t i = 0; i < health.quarantined.size(); ++i) {
    const RunFailure& failure = health.quarantined[i];
    out << (i > 0 ? "," : "") << "\n    {\"run_id\": " << failure.run_id << ", \"test\": \""
        << JsonEscape(failure.test) << "\", \"location\": \"" << JsonEscape(failure.location)
        << "\", \"kind\": \"" << RunFailureKindName(failure.kind) << "\", \"detail\": \""
        << JsonEscape(failure.detail) << "\", \"attempts\": " << failure.attempts
        << ", \"chaos\": " << (failure.chaos ? "true" : "false") << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace wasabi
