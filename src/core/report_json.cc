#include "src/core/report_json.h"

#include <cstdio>
#include <sstream>

namespace wasabi {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(static_cast<char>(c));
        }
        break;
    }
  }
  return out;
}

std::string BugReportsToJson(const std::vector<BugReport>& bugs) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < bugs.size(); ++i) {
    const BugReport& bug = bugs[i];
    if (i > 0) {
      out << ",";
    }
    out << "\n  {"
        << "\"type\": \"" << JsonEscape(BugTypeName(bug.type)) << "\", "
        << "\"technique\": \"" << JsonEscape(DetectionTechniqueName(bug.technique)) << "\", "
        << "\"app\": \"" << JsonEscape(bug.app) << "\", "
        << "\"file\": \"" << JsonEscape(bug.file) << "\", "
        << "\"line\": " << bug.location.line << ", "
        << "\"coordinator\": \"" << JsonEscape(bug.coordinator) << "\", "
        << "\"exception\": \"" << JsonEscape(bug.exception) << "\", "
        << "\"detail\": \"" << JsonEscape(bug.detail) << "\"}";
  }
  out << "\n]\n";
  return out.str();
}

}  // namespace wasabi
