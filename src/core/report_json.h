// JSON serialization of bug reports, for machine consumption of CLI output
// (CI integration, dashboards). Hand-rolled emitter — no third-party JSON
// dependency — with full string escaping.

#ifndef WASABI_SRC_CORE_REPORT_JSON_H_
#define WASABI_SRC_CORE_REPORT_JSON_H_

#include <string>
#include <vector>

#include "src/core/report.h"
#include "src/robust/failure.h"

namespace wasabi {

// Escapes a string for inclusion inside a JSON string literal (quotes,
// backslashes, control characters).
std::string JsonEscape(std::string_view text);

// Renders bug reports as a JSON array of objects with keys:
// type, technique, app, file, line, coordinator, exception, detail.
std::string BugReportsToJson(const std::vector<BugReport>& bugs);

// A source file the degraded-mode loader skipped instead of aborting the
// whole analysis (docs/ROBUSTNESS.md).
struct SkippedFile {
  std::string path;
  std::string reason;
};

// How trustworthy an analysis output is: which input files were skipped and
// which runs the campaign quarantined. clean() means "nothing went wrong".
struct ReportHealth {
  std::vector<SkippedFile> skipped_files;
  std::vector<RunFailure> quarantined;
  bool degraded() const { return !skipped_files.empty() || !quarantined.empty(); }
  bool clean() const { return !degraded(); }
};

// Renders the full analysis report. When `health.clean()` the output is
// byte-identical to BugReportsToJson(bugs) — the default-off guarantee for
// downstream consumers. Otherwise it is an object
//   {"degraded": true, "bugs": [...], "skipped_files": [...],
//    "quarantined": [...]}
// whose "bugs" value is the same array.
std::string AnalysisReportToJson(const std::vector<BugReport>& bugs,
                                 const ReportHealth& health);

}  // namespace wasabi

#endif  // WASABI_SRC_CORE_REPORT_JSON_H_
