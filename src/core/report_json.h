// JSON serialization of bug reports, for machine consumption of CLI output
// (CI integration, dashboards). Hand-rolled emitter — no third-party JSON
// dependency — with full string escaping.

#ifndef WASABI_SRC_CORE_REPORT_JSON_H_
#define WASABI_SRC_CORE_REPORT_JSON_H_

#include <string>
#include <vector>

#include "src/core/report.h"

namespace wasabi {

// Escapes a string for inclusion inside a JSON string literal (quotes,
// backslashes, control characters).
std::string JsonEscape(std::string_view text);

// Renders bug reports as a JSON array of objects with keys:
// type, technique, app, file, line, coordinator, exception, detail.
std::string BugReportsToJson(const std::vector<BugReport>& bugs);

}  // namespace wasabi

#endif  // WASABI_SRC_CORE_REPORT_JSON_H_
