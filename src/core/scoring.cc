#include "src/core/scoring.h"

#include <unordered_map>
#include <unordered_set>

namespace wasabi {

namespace {

void AccumulateCell(ScoreCell* total, const ScoreCell& cell) {
  total->true_positives += cell.true_positives;
  total->false_positives += cell.false_positives;
  total->false_negatives += cell.false_negatives;
  for (size_t s = 0; s < 3; ++s) {
    total->probed_true_positives[s] += cell.probed_true_positives[s];
    total->probed_false_positives[s] += cell.probed_false_positives[s];
  }
  total->stability_matches += cell.stability_matches;
}

}  // namespace

ScoreCell Scorecard::Total(BugType type) const {
  ScoreCell total;
  for (const auto& [app, by_type] : cells) {
    auto it = by_type.find(type);
    if (it != by_type.end()) {
      AccumulateCell(&total, it->second);
    }
  }
  return total;
}

ScoreCell Scorecard::TotalAll() const {
  ScoreCell total;
  for (const auto& [app, by_type] : cells) {
    for (const auto& [type, cell] : by_type) {
      AccumulateCell(&total, cell);
    }
  }
  return total;
}

namespace {

std::string TruthKey(BugType type, const std::string& file, const std::string& coordinator) {
  return std::string(BugTypeName(type)) + "|" + file + "|" + coordinator;
}

}  // namespace

Scorecard ScoreReports(const std::vector<BugReport>& reports,
                       const std::vector<SeededBug>& truth) {
  Scorecard scorecard;

  std::unordered_map<std::string, const SeededBug*> truth_by_key;
  for (const SeededBug& bug : truth) {
    truth_by_key.emplace(TruthKey(bug.type, bug.file, bug.coordinator), &bug);
  }

  std::unordered_set<const SeededBug*> matched;
  std::unordered_set<std::string> counted_fp_keys;
  for (const BugReport& report : reports) {
    auto it = truth_by_key.find(TruthKey(report.type, report.file, report.coordinator));
    if (it != truth_by_key.end()) {
      if (matched.insert(it->second).second) {
        ScoreCell& cell = scorecard.cells[it->second->app][report.type];
        cell.true_positives += 1;
        scorecard.matched_bug_ids.push_back(it->second->id);
        if (report.probed) {
          cell.probed_true_positives[static_cast<size_t>(report.stability)] += 1;
          if (report.stability == it->second->expected_stability) {
            cell.stability_matches += 1;
          } else {
            scorecard.stability_mismatched_ids.push_back(it->second->id);
          }
        }
      }
      continue;  // Further reports of the same bug are duplicates, not FPs.
    }
    // Distinct false positives only (a report repeated across techniques or
    // runs should already be deduped by the caller, but be safe).
    if (counted_fp_keys.insert(report.MatchKey()).second) {
      ScoreCell& cell = scorecard.cells[report.app][report.type];
      cell.false_positives += 1;
      if (report.probed) {
        cell.probed_false_positives[static_cast<size_t>(report.stability)] += 1;
      }
      scorecard.false_positive_reports.push_back(report);
    }
  }

  for (const SeededBug& bug : truth) {
    if (matched.count(&bug) == 0) {
      scorecard.cells[bug.app][bug.type].false_negatives += 1;
      scorecard.missed_bugs.push_back(bug);
    }
  }
  return scorecard;
}

std::vector<SeededBug> DetectableBugs(const std::vector<SeededBug>& truth,
                                      DetectionTechnique technique) {
  std::vector<SeededBug> filtered;
  for (const SeededBug& bug : truth) {
    bool keep = false;
    switch (technique) {
      case DetectionTechnique::kUnitTesting:
        // Explicit list, not "everything but IF": storm bugs are systemic and
        // out of scope for per-location unit testing, so they must not count
        // as unit-testing false negatives.
        keep = bug.type == BugType::kWhenMissingCap || bug.type == BugType::kWhenMissingDelay ||
               bug.type == BugType::kHow;
        break;
      case DetectionTechnique::kLlmStatic:
        keep = bug.type == BugType::kWhenMissingCap || bug.type == BugType::kWhenMissingDelay;
        break;
      case DetectionTechnique::kCodeQlStatic:
        keep = bug.type == BugType::kIfOutlier;
        break;
      case DetectionTechnique::kStormSim:
        keep = bug.type == BugType::kStormMissingJitter ||
               bug.type == BugType::kStormUnboundedFanout ||
               bug.type == BugType::kStormRetryOnOverload;
        break;
    }
    if (keep) {
      filtered.push_back(bug);
    }
  }
  return filtered;
}

}  // namespace wasabi
