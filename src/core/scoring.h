// Ground-truth scoring of WASABI reports against the corpus manifest.
//
// The paper validates reports by manual inspection; the synthetic corpus ships
// an exact manifest of seeded bugs instead, so true/false positives per
// application and per bug class (the subscripted cells of Tables 3 and 4) are
// computed mechanically.

#ifndef WASABI_SRC_CORE_SCORING_H_
#define WASABI_SRC_CORE_SCORING_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/report.h"

namespace wasabi {

// One intentionally seeded bug in a corpus application.
struct SeededBug {
  std::string id;           // Stable id, e.g. "HB-CAP-1".
  std::string app;
  BugType type = BugType::kWhenMissingCap;
  std::string file;
  std::string coordinator;  // Qualified method containing the buggy retry.
  std::string note;         // Human description / paper-issue analog.
  bool reachable_from_tests = true;  // Covered by at least one unit test.
  bool error_code_based = false;     // Out of WASABI's exception-only scope.
  // Ground-truth stability class of this bug's failing verdict under the
  // flakiness prober (docs/FLAKINESS.md): timing-dependent seeds are kFlaky,
  // degraded-environment-only seeds are kChaosInduced, everything else
  // reproduces deterministically.
  VerdictStability expected_stability = VerdictStability::kStable;
};

// TP/FP/FN counts for one (app, type) cell.
struct ScoreCell {
  int true_positives = 0;
  int false_positives = 0;
  int false_negatives = 0;

  // Breakdown of PROBED reports by stability class, indexed by
  // static_cast<size_t>(VerdictStability). Un-probed reports (prober off,
  // static techniques) contribute nothing here, so the legacy totals above
  // are untouched by classification.
  int probed_true_positives[3] = {0, 0, 0};
  int probed_false_positives[3] = {0, 0, 0};
  // Matched seeded bugs whose classified stability equals the manifest's
  // expected_stability — the exact-classification numerator in EXPERIMENTS.md.
  int stability_matches = 0;

  int reported() const { return true_positives + false_positives; }
};

struct Scorecard {
  // Keyed by app name, then bug type.
  std::map<std::string, std::map<BugType, ScoreCell>> cells;
  std::vector<std::string> matched_bug_ids;      // Seeded bugs found.
  std::vector<BugReport> false_positive_reports;
  std::vector<SeededBug> missed_bugs;            // False negatives.
  // Seeded-bug ids matched by a probed report whose stability class differs
  // from the manifest's expected_stability (empty = classification is exact).
  std::vector<std::string> stability_mismatched_ids;

  ScoreCell Total(BugType type) const;
  ScoreCell TotalAll() const;
};

// Matches reports to seeded bugs by (type, file, coordinator). Multiple
// reports hitting the same seeded bug count as one TP. Seeded bugs whose type
// is not detectable by the given technique universe should be filtered by the
// caller before scoring (e.g. don't charge unit testing with IF bugs).
Scorecard ScoreReports(const std::vector<BugReport>& reports,
                       const std::vector<SeededBug>& truth);

// Filters a manifest down to the bug classes a technique can possibly detect:
// unit testing covers WHEN + HOW (not IF); the LLM static checker covers WHEN
// only; the retry-ratio checker covers IF only.
std::vector<SeededBug> DetectableBugs(const std::vector<SeededBug>& truth,
                                      DetectionTechnique technique);

}  // namespace wasabi

#endif  // WASABI_SRC_CORE_SCORING_H_
