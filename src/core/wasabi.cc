#include "src/core/wasabi.h"

#include <bit>
#include <chrono>
#include <cstdlib>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/exec/campaign.h"
#include "src/exec/campaign_cache.h"
#include "src/exec/task_pool.h"
#include "src/obs/retry_stats.h"
#include "src/inject/injector.h"
#include "src/interp/value.h"
#include "src/lang/digest.h"
#include "src/testing/config_restore.h"

namespace wasabi {

namespace {

// Application-vs-test split by path convention: anything under a test/
// directory is harness code the analyses must not treat as application source.
bool IsTestPath(const std::string& file) {
  return file.find("/test/") != std::string::npos || file.rfind("test/", 0) == 0;
}

// Copies the pool's cumulative counters (coverage pass + injection campaign)
// into the registry, with a derived utilization gauge: busy time across all
// workers over `wall_seconds * workers`. Low utilization with high queue-wait
// means starved workers; low utilization with empty queue-wait means the wall
// clock went to serial phases.
void ExportPoolMetrics(MetricsRegistry& metrics, const TaskPool& pool, int workers,
                       double wall_seconds) {
  TaskPoolStats stats = pool.Stats();
  metrics.SetGauge("pool.workers", static_cast<double>(workers));
  for (size_t w = 0; w < stats.workers.size(); ++w) {
    const TaskPoolStats::Worker& worker = stats.workers[w];
    const std::string prefix = "pool.worker." + std::to_string(w);
    metrics.Increment(prefix + ".tasks", static_cast<int64_t>(worker.tasks));
    metrics.Increment(prefix + ".steals", static_cast<int64_t>(worker.steals));
    metrics.Increment(prefix + ".busy_us", worker.busy_us);
    for (int64_t wait_us : worker.queue_wait_us) {
      metrics.Observe("pool.queue_wait_us", static_cast<double>(wait_us));
    }
  }
  metrics.Increment("pool.tasks_total", static_cast<int64_t>(stats.total_tasks()));
  metrics.Increment("pool.steals_total", static_cast<int64_t>(stats.total_steals()));
  metrics.Increment("pool.busy_us_total", stats.total_busy_us());
  metrics.Increment("pool.wall_us_total", static_cast<int64_t>(wall_seconds * 1e6));
  if (wall_seconds > 0 && workers > 0) {
    metrics.SetGauge("pool.utilization", static_cast<double>(stats.total_busy_us()) /
                                             (wall_seconds * 1e6 * workers));
  }
}

// --- Result-cache plumbing (docs/CACHING.md) --------------------------------
//
// Per-file SimLLM memos live in the "q1" (identification) and "when" (static
// workflow) namespaces, keyed by (llm-config digest, file content digest).
// Entries hold only identifiers, booleans, and counters — never free text —
// so the codec needs no escaping; any shape violation decodes as a miss.

constexpr char kFieldSep = '\x1f';
constexpr char kRecordSep = '\x1e';
constexpr char kCacheNsIdentify[] = "q1";
constexpr char kCacheNsWhen[] = "when";

std::vector<std::string_view> SplitEntry(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool ParseCachedInt(std::string_view field, int64_t* out) {
  if (field.empty()) {
    return false;
  }
  std::string buffer(field);
  char* end = nullptr;
  long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (end != buffer.c_str() + buffer.size()) {
    return false;
  }
  *out = static_cast<int64_t>(value);
  return true;
}

bool ParseCachedBool(std::string_view field, bool* out) {
  if (field == "0" || field == "1") {
    *out = field == "1";
    return true;
  }
  return false;
}

void AppendCachedField(std::string& out, std::string_view field) {
  if (!out.empty() && out.back() != kRecordSep) {
    out.push_back(kFieldSep);
  }
  out.append(field);
}

// Length-delimited string fold: plain concatenation would let adjacent fields
// alias ("ab"+"c" vs "a"+"bc").
uint64_t DigestStringField(std::string_view field, uint64_t hash) {
  hash = mj::Fnv1a64(field, hash);
  return mj::Fnv1a64Mix(field.size(), hash);
}

uint64_t DigestDoubleField(double value, uint64_t hash) {
  return mj::Fnv1a64Mix(std::bit_cast<uint64_t>(value), hash);
}

uint64_t DigestLlmConfig(const SimLlmConfig& config) {
  uint64_t hash = mj::kFnvOffsetBasis;
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(config.retry_threshold), hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(config.attention_window_tokens), hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(config.comprehension_noise_percent), hash);
  hash = mj::Fnv1a64Mix(config.seed, hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(config.q1_iteration_fp_percent), hash);
  hash = mj::Fnv1a64Mix(config.enable_q4_exclusion ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(config.q4_override_score), hash);
  return hash;
}

// Everything the dynamic workflow's cached results depend on, except the
// program (digested separately) and the retry-location list (ditto). `jobs`
// and `app_name` are deliberately absent: worker count cannot change any
// report byte, and the app name is stamped on reports AFTER cache replay.
uint64_t DigestDynamicConfig(const WasabiOptions& options) {
  uint64_t hash = DigestLlmConfig(options.llm);
  hash = mj::Fnv1a64Mix(options.finder.require_keyword ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(options.finder.keywords.size(), hash);
  for (const std::string& keyword : options.finder.keywords) {
    hash = DigestStringField(keyword, hash);
  }
  hash = mj::Fnv1a64Mix(options.finder.skip_test_classes ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.oracles.cap_injection_threshold), hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.oracles.delay_min_injections), hash);
  hash = mj::Fnv1a64Mix(options.oracles.assertions_require_single_injection ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(options.oracles.prune_wrapped_exceptions ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(options.oracles.context_aware_cap ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.interp.step_budget), hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.interp.virtual_time_budget_ms), hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.interp.max_call_depth), hash);
  // The engine is proven byte-identical, but it still participates: a cached
  // verdict should always be reproducible under the exact configuration that
  // produced it, and digesting it keeps an engine regression from hiding
  // behind warm cache hits after an --engine switch.
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.interp.engine), hash);
  hash = mj::Fnv1a64Mix(options.default_configs.size(), hash);
  for (const auto& [key, value] : options.default_configs) {
    hash = DigestStringField(key, hash);
    hash = DigestStringField(ValueToString(value), hash);
  }
  hash = mj::Fnv1a64Mix(options.use_planner ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(options.use_oracles ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(options.restore_configs ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.robust.retry.max_attempts), hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.robust.retry.base_backoff_ms), hash);
  hash = DigestDoubleField(options.robust.retry.multiplier, hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.robust.retry.max_backoff_ms), hash);
  hash = DigestDoubleField(options.robust.retry.jitter, hash);
  hash = mj::Fnv1a64Mix(options.robust.retry.jitter_seed, hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.robust.breaker_threshold), hash);
  hash = mj::Fnv1a64Mix(options.robust.chaos.enabled ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(options.robust.chaos.seed, hash);
  hash = DigestDoubleField(options.robust.chaos.rate, hash);
  hash = mj::Fnv1a64Mix(options.robust.chaos.transient ? 1u : 0u, hash);
  hash = DigestDoubleField(options.robust.chaos.budget_fraction, hash);
  hash = DigestDoubleField(options.robust.chaos.env_rate, hash);
  hash = mj::Fnv1a64Mix(options.robust.fail_fast ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.robust.max_quarantined), hash);
  // The prober changes cached verdict content (classification fields), so its
  // settings are part of the config identity. `record_dir` is deliberately
  // absent: recording is observation only.
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.prober.repetitions), hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.prober.epoch_stride_ms), hash);
  return hash;
}

uint64_t DigestLocationList(const std::vector<RetryLocation>& locations) {
  uint64_t hash = mj::Fnv1a64Mix(locations.size(), mj::kFnvOffsetBasis);
  for (const RetryLocation& location : locations) {
    hash = DigestStringField(location.Key(), hash);
  }
  return hash;
}

// "q1" entry: header (performs_retry, truncated, usage delta), then one
// record per coordinator (qualified name, mechanism, evidence, has-method).
std::string EncodeIdentifyEntry(const LlmFileFindings& findings, const LlmUsage& delta) {
  std::string out;
  AppendCachedField(out, findings.performs_retry ? "1" : "0");
  AppendCachedField(out, findings.truncated_by_attention ? "1" : "0");
  AppendCachedField(out, std::to_string(delta.calls));
  AppendCachedField(out, std::to_string(delta.bytes_sent));
  AppendCachedField(out, std::to_string(delta.prompt_tokens));
  for (const LlmCoordinator& coordinator : findings.coordinators) {
    out.push_back(kRecordSep);
    std::string record;
    AppendCachedField(record, coordinator.qualified_name);
    AppendCachedField(record, std::to_string(static_cast<int>(coordinator.mechanism)));
    AppendCachedField(record, std::to_string(coordinator.evidence_score));
    AppendCachedField(record, coordinator.method != nullptr ? "1" : "0");
    out.append(record);
  }
  return out;
}

bool DecodeIdentifyEntry(const std::string& entry, const mj::ProgramIndex& index,
                         const std::string& file, LlmFileFindings* findings, LlmUsage* delta) {
  std::vector<std::string_view> records = SplitEntry(entry, kRecordSep);
  std::vector<std::string_view> header = SplitEntry(records[0], kFieldSep);
  if (header.size() != 5) {
    return false;
  }
  LlmFileFindings out;
  LlmUsage usage;
  out.file = file;
  if (!ParseCachedBool(header[0], &out.performs_retry) ||
      !ParseCachedBool(header[1], &out.truncated_by_attention) ||
      !ParseCachedInt(header[2], &usage.calls) || !ParseCachedInt(header[3], &usage.bytes_sent) ||
      !ParseCachedInt(header[4], &usage.prompt_tokens)) {
    return false;
  }
  for (size_t r = 1; r < records.size(); ++r) {
    std::vector<std::string_view> fields = SplitEntry(records[r], kFieldSep);
    if (fields.size() != 4) {
      return false;
    }
    LlmCoordinator coordinator;
    coordinator.qualified_name = std::string(fields[0]);
    int64_t mechanism = 0;
    int64_t evidence = 0;
    bool has_method = false;
    if (!ParseCachedInt(fields[1], &mechanism) || mechanism < 0 ||
        mechanism > static_cast<int64_t>(RetryMechanism::kStateMachine) ||
        !ParseCachedInt(fields[2], &evidence) || !ParseCachedBool(fields[3], &has_method)) {
      return false;
    }
    coordinator.mechanism = static_cast<RetryMechanism>(mechanism);
    coordinator.evidence_score = static_cast<int>(evidence);
    if (has_method) {
      coordinator.method = index.FindQualified(coordinator.qualified_name);
      if (coordinator.method == nullptr) {
        return false;  // The file digest matched but the AST disagrees: miss.
      }
    }
    out.coordinators.push_back(std::move(coordinator));
  }
  *findings = std::move(out);
  *delta = usage;
  return true;
}

// "when" entry: header (usage delta over AnalyzeFile + every JudgeWhen), then
// one record per coordinator (qualified name, has-method, Q2/Q3/Q4 answers).
struct CachedWhenJudgment {
  std::string qualified_name;
  const mj::MethodDecl* method = nullptr;
  bool sleeps_before_retry = false;
  bool has_cap = false;
  bool poll_or_spin = false;
};

std::string EncodeWhenEntry(const std::vector<CachedWhenJudgment>& judgments,
                            const LlmUsage& delta) {
  std::string out;
  AppendCachedField(out, std::to_string(delta.calls));
  AppendCachedField(out, std::to_string(delta.bytes_sent));
  AppendCachedField(out, std::to_string(delta.prompt_tokens));
  for (const CachedWhenJudgment& judgment : judgments) {
    out.push_back(kRecordSep);
    std::string record;
    AppendCachedField(record, judgment.qualified_name);
    AppendCachedField(record, judgment.method != nullptr ? "1" : "0");
    AppendCachedField(record, judgment.sleeps_before_retry ? "1" : "0");
    AppendCachedField(record, judgment.has_cap ? "1" : "0");
    AppendCachedField(record, judgment.poll_or_spin ? "1" : "0");
    out.append(record);
  }
  return out;
}

bool DecodeWhenEntry(const std::string& entry, const mj::ProgramIndex& index,
                     std::vector<CachedWhenJudgment>* judgments, LlmUsage* delta) {
  std::vector<std::string_view> records = SplitEntry(entry, kRecordSep);
  std::vector<std::string_view> header = SplitEntry(records[0], kFieldSep);
  if (header.size() != 3) {
    return false;
  }
  LlmUsage usage;
  if (!ParseCachedInt(header[0], &usage.calls) || !ParseCachedInt(header[1], &usage.bytes_sent) ||
      !ParseCachedInt(header[2], &usage.prompt_tokens)) {
    return false;
  }
  std::vector<CachedWhenJudgment> out;
  for (size_t r = 1; r < records.size(); ++r) {
    std::vector<std::string_view> fields = SplitEntry(records[r], kFieldSep);
    if (fields.size() != 5) {
      return false;
    }
    CachedWhenJudgment judgment;
    judgment.qualified_name = std::string(fields[0]);
    bool has_method = false;
    if (!ParseCachedBool(fields[1], &has_method) ||
        !ParseCachedBool(fields[2], &judgment.sleeps_before_retry) ||
        !ParseCachedBool(fields[3], &judgment.has_cap) ||
        !ParseCachedBool(fields[4], &judgment.poll_or_spin)) {
      return false;
    }
    if (has_method) {
      judgment.method = index.FindQualified(judgment.qualified_name);
      if (judgment.method == nullptr) {
        return false;
      }
    }
    out.push_back(std::move(judgment));
  }
  *judgments = std::move(out);
  *delta = usage;
  return true;
}

// Cache-lookup telemetry: one metrics increment, one cumulative Chrome
// counter-track sample (counter tracks plot running totals, so each site
// keeps its own tally), and one journal cache event per lookup. Every call
// site is serial, so the emission order is deterministic.
struct CacheLookupCounters {
  int64_t hits = 0;
  int64_t misses = 0;
};

void CountCacheLookup(const WasabiOptions& options, const char* ns, bool hit,
                      CacheLookupCounters& counters) {
  const int64_t cumulative = hit ? ++counters.hits : ++counters.misses;
  if (options.metrics != nullptr) {
    options.metrics->Increment(std::string(hit ? "cache.hits." : "cache.misses.") + ns);
  }
  if (options.tracer != nullptr) {
    options.tracer->Counter(hit ? "cache.hits" : "cache.misses", ns, cumulative);
  }
  if (options.journal != nullptr) {
    options.journal->CacheLookup(ns, hit);
  }
}

// --- Flakiness prober + record/replay plumbing (docs/FLAKINESS.md) ----------

// One run's oracle evaluation, shared by the campaign reduce and ReplayRun so
// a replayed verdict is computed by the exact same rule (including the §4.4
// naive ablation when oracles are off).
std::vector<OracleReport> EvaluateRunReports(const TestRunRecord& record,
                                             const RetryLocation& location,
                                             const OracleOptions& oracles, bool use_oracles) {
  if (use_oracles) {
    return EvaluateOracles(record, location, oracles);
  }
  std::vector<OracleReport> reports;
  if (record.outcome.status != TestStatus::kPassed) {
    OracleReport report;
    report.kind = OracleKind::kDifferentException;
    report.test = record.test.qualified_name;
    report.location = location;
    report.detail = "test failed: " + std::string(TestStatusName(record.outcome.status)) + " " +
                    record.outcome.exception_class;
    report.group_key = "naive|" + location.Key() + "|" + record.outcome.exception_class;
    reports.push_back(std::move(report));
  }
  return reports;
}

// The single-line verdict text a recorder carries: "clean", or the deduped
// report count plus the FNV digest of the canonical oracle signature. Replay
// recomputes it independently, so equality proves the verdict reproduced.
std::string RunVerdictText(size_t deduped_count, const std::string& signature) {
  if (deduped_count == 0) {
    return "clean";
  }
  return "reports=" + std::to_string(deduped_count) +
         " sig=" + mj::DigestHex(mj::Fnv1a64(signature));
}

// Forwards dispatch-cache resolutions into the replay recorder (the campaign
// executor has its own copy; both feed RunRecorder::Dispatch, whose per-run
// dedup makes the stream arena-warmth-independent).
struct ReplayDispatchObserver : DispatchObserver {
  RunRecorder* recorder = nullptr;
  void OnDispatch(uint32_t site_index, std::string_view cls,
                  std::string_view method) override {
    recorder->Dispatch(site_index, cls, method);
  }
};

std::string ExtractVerdict(const RecordedRun& run) {
  for (auto it = run.events.rbegin(); it != run.events.rend(); ++it) {
    if (it->rfind("verdict\t", 0) == 0) {
      return it->substr(8);
    }
  }
  return std::string();
}

// An admission skip (fail-fast, quarantine quota, circuit open) depends on
// every other run's fate, so it is not re-executable in isolation.
bool IsAdmissionSkipped(const RecordedRun& run) {
  for (const std::string& event : run.events) {
    if (event.rfind("quarantine\t", 0) != 0) {
      continue;
    }
    const size_t detail_start = event.find('\t', event.find('\t') + 1);
    if (detail_start != std::string::npos &&
        event.compare(detail_start + 1, 8, "skipped:") == 0) {
      return true;
    }
  }
  return false;
}

// First event pair (or count mismatch) where two streams diverge.
std::string FirstDivergence(const RecordedRun& recorded, const RecordedRun& replayed) {
  const size_t common = std::min(recorded.events.size(), replayed.events.size());
  for (size_t i = 0; i < common; ++i) {
    if (recorded.events[i] != replayed.events[i]) {
      return "event " + std::to_string(i) + ": recorded \"" + recorded.events[i] +
             "\" vs replayed \"" + replayed.events[i] + "\"";
    }
  }
  if (recorded.events.size() != replayed.events.size()) {
    return "event count: recorded " + std::to_string(recorded.events.size()) +
           " vs replayed " + std::to_string(replayed.events.size());
  }
  return "header fields differ";
}

}  // namespace

Wasabi::Wasabi(const mj::Program& program, const mj::ProgramIndex& index, WasabiOptions options)
    : program_(program), index_(index), options_(std::move(options)) {}

const ProgramDigest& Wasabi::GetProgramDigest() {
  std::lock_guard<std::mutex> lock(digest_mutex_);
  if (!program_digest_memo_.has_value()) {
    program_digest_memo_ = DigestProgram(program_);
  }
  return *program_digest_memo_;
}

std::vector<BugReport> CollateStaticWithDynamic(const std::vector<BugReport>& static_bugs,
                                                const DynamicResult& dynamic) {
  // Coordinators whose locations were actually exercised by some unit test.
  std::unordered_set<size_t> covered_indices;
  for (const auto& [test, hits] : dynamic.coverage) {
    covered_indices.insert(hits.begin(), hits.end());
  }
  std::unordered_set<std::string> exercised_coordinators;
  for (size_t index : covered_indices) {
    if (index < dynamic.locations.size()) {
      exercised_coordinators.insert(dynamic.locations[index].coordinator);
    }
  }
  std::unordered_set<std::string> dynamic_keys;
  for (const BugReport& bug : dynamic.bugs) {
    dynamic_keys.insert(bug.MatchKey());
  }

  std::vector<BugReport> kept;
  for (const BugReport& bug : static_bugs) {
    bool exercised = exercised_coordinators.count(bug.coordinator) > 0;
    bool confirmed = dynamic_keys.count(bug.MatchKey()) > 0;
    if (exercised && !confirmed) {
      continue;  // Injection ran against this retry and disagreed.
    }
    kept.push_back(bug);
  }
  return kept;
}

IdentificationResult Wasabi::IdentifyRetryStructures() {
  std::lock_guard<std::mutex> lock(identification_mutex_);
  if (identification_memo_.has_value()) {
    return *identification_memo_;  // Front-loaded: analyze once per instance.
  }
  // Spans only on the memo miss: repeated campaigns reuse the memo and the
  // trace shows the analysis cost exactly once, where it was actually paid.
  ScopedSpan span(options_.tracer, "identify.analysis");
  span.AddArg("app", options_.app_name);
  IdentificationResult result;
  RetryFinder finder(program_, index_, options_.finder);

  // Technique 1: CodeQL-style loop analysis.
  std::vector<RetryStructure> structures = finder.FindLoopStructures();
  result.candidate_loops_without_keyword_filter = finder.FindCandidateLoops().size();

  // Index CodeQL structures by (file, coordinator) for merging.
  std::unordered_map<std::string, std::vector<size_t>> by_coordinator;
  for (size_t i = 0; i < structures.size(); ++i) {
    by_coordinator[structures[i].file + "|" + structures[i].coordinator].push_back(i);
  }

  // Technique 2: SimLLM, one file at a time. Only application source is fed
  // to the model (the paper analyzes the code base, not the test harness).
  // With a cache attached, per-file findings are memoized under
  // (llm-config digest, file content digest); the merge below runs either way.
  SimLlm llm(options_.llm);
  CacheStore* cache = options_.cache;
  const ProgramDigest* program_digest = cache != nullptr ? &GetProgramDigest() : nullptr;
  const std::string llm_prefix =
      cache != nullptr ? mj::DigestHex(DigestLlmConfig(options_.llm)) + "|" : std::string();
  LlmUsage cached_usage;
  CacheLookupCounters identify_lookups;
  for (size_t u = 0; u < program_.units().size(); ++u) {
    const auto& unit = program_.units()[u];
    if (IsTestPath(unit->file().name())) {
      continue;
    }
    LlmFileFindings findings;
    std::string entry_key;
    bool hit = false;
    if (cache != nullptr) {
      entry_key = llm_prefix + mj::DigestHex(program_digest->files[u].digest);
      std::optional<std::string> entry = cache->Get(kCacheNsIdentify, entry_key);
      LlmUsage delta;
      hit = entry.has_value() &&
            DecodeIdentifyEntry(*entry, index_, unit->file().name(), &findings, &delta);
      if (hit) {
        cached_usage.calls += delta.calls;
        cached_usage.bytes_sent += delta.bytes_sent;
        cached_usage.prompt_tokens += delta.prompt_tokens;
      }
      CountCacheLookup(options_, kCacheNsIdentify, hit, identify_lookups);
    }
    if (!hit) {
      LlmUsage before = llm.usage();
      findings = llm.AnalyzeFile(*unit);
      if (cache != nullptr) {
        LlmUsage delta{llm.usage().calls - before.calls, llm.usage().bytes_sent - before.bytes_sent,
                       llm.usage().prompt_tokens - before.prompt_tokens};
        cache->Put(kCacheNsIdentify, entry_key, EncodeIdentifyEntry(findings, delta));
      }
    }
    if (findings.truncated_by_attention) {
      ++result.files_truncated_by_llm;
    }
    for (const LlmCoordinator& coordinator : findings.coordinators) {
      std::string key = findings.file + "|" + coordinator.qualified_name;
      auto it = by_coordinator.find(key);
      if (it != by_coordinator.end()) {
        for (size_t index : it->second) {
          structures[index].found_by.llm = true;
        }
        // Both techniques emit triplets (§3.1.1); union the LLM's broader
        // "every invoked method" triplets into the structure so exceptions the
        // loop analysis cannot prove retriable still get injected (the oracles
        // absorb the over-approximation).
        if (coordinator.method != nullptr && !it->second.empty()) {
          RetryStructure& target = structures[it->second.front()];
          std::unordered_set<std::string> known;
          for (const RetryLocation& location : target.locations) {
            known.insert(location.Key());
          }
          for (RetryLocation& location :
               finder.TripletsForCoordinator(*coordinator.method, target.mechanism)) {
            if (known.insert(location.Key()).second) {
              target.locations.push_back(std::move(location));
            }
          }
        }
        continue;
      }
      // New structure only the LLM sees (non-loop retry, or loops the keyword
      // filter missed). The follow-up CodeQL query provides the triplets.
      RetryStructure structure;
      structure.file = findings.file;
      structure.coordinator = coordinator.qualified_name;
      structure.coordinator_decl = coordinator.method;
      structure.mechanism = coordinator.mechanism;
      structure.anchor = nullptr;
      structure.location = coordinator.method != nullptr ? coordinator.method->location
                                                         : mj::SourceLocation{};
      structure.found_by.llm = true;
      if (coordinator.method != nullptr) {
        structure.locations =
            finder.TripletsForCoordinator(*coordinator.method, coordinator.mechanism);
      }
      by_coordinator[key].push_back(structures.size());
      structures.push_back(std::move(structure));
    }
  }

  result.structures = std::move(structures);
  // Usage counters are additive, so live calls plus replayed per-file deltas
  // reproduce the cache-off totals exactly.
  result.llm_usage = llm.usage();
  result.llm_usage.calls += cached_usage.calls;
  result.llm_usage.bytes_sent += cached_usage.bytes_sent;
  result.llm_usage.prompt_tokens += cached_usage.prompt_tokens;
  identification_memo_ = std::move(result);
  return *identification_memo_;
}

std::vector<BugReport> Wasabi::ToBugReports(const std::vector<OracleReport>& reports) const {
  std::vector<BugReport> bugs;
  bugs.reserve(reports.size());
  for (const OracleReport& report : reports) {
    BugReport bug;
    switch (report.kind) {
      case OracleKind::kMissingCap:
        bug.type = BugType::kWhenMissingCap;
        break;
      case OracleKind::kMissingDelay:
        bug.type = BugType::kWhenMissingDelay;
        break;
      case OracleKind::kDifferentException:
        bug.type = BugType::kHow;
        break;
    }
    bug.technique = DetectionTechnique::kUnitTesting;
    bug.app = options_.app_name;
    bug.file = report.location.file;
    bug.coordinator = report.location.coordinator;
    bug.detail = report.detail + " [test " + report.test + "]";
    bug.group_key = report.group_key;
    bug.location = report.location.location;
    bug.probed = report.probed;
    bug.stability = report.stability;
    bug.flaky_cause = report.flaky_cause;
    bugs.push_back(std::move(bug));
  }
  return bugs;
}

DynamicResult Wasabi::RunDynamicWorkflow() {
  using Clock = std::chrono::steady_clock;
  auto seconds_since = [](Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  DynamicResult result;
  ScopedSpan workflow_span(options_.tracer, "workflow.dynamic");
  workflow_span.AddArg("app", options_.app_name);

  Clock::time_point phase_start = Clock::now();
  IdentificationResult identification;
  {
    ScopedSpan span(options_.tracer, "phase.identify");
    identification = IdentifyRetryStructures();
  }
  result.identification_seconds = seconds_since(phase_start);
  result.structures_identified = identification.structures.size();

  // Collect the injectable retry locations (deduplicated across structures)
  // and remember which structure each belongs to.
  std::unordered_set<std::string> seen_locations;
  std::vector<size_t> location_to_structure;
  for (size_t s = 0; s < identification.structures.size(); ++s) {
    for (const RetryLocation& location : identification.structures[s].locations) {
      if (seen_locations.insert(location.Key()).second) {
        result.locations.push_back(location);
        location_to_structure.push_back(s);
      }
    }
  }

  // Test preparation (§3.1.4): defaults + restoration of restricted configs.
  RunnerOptions runner_options;
  runner_options.interp = options_.interp;
  runner_options.config_overrides = options_.default_configs;
  if (options_.restore_configs) {
    ConfigRestorationResult restoration = ScanTestsForRetryRestrictions(program_);
    runner_options.frozen_keys = restoration.keys_to_freeze;
    result.config_restrictions_restored = restoration.restrictions.size();
  }
  TestRunner runner(program_, index_, runner_options);

  std::vector<TestCase> tests = runner.DiscoverTests();
  result.total_tests = tests.size();

  // Worker pool shared by the coverage pass and the injection campaign. Every
  // run builds a fresh Interpreter over the shared immutable Program/index,
  // so the only cross-run state is read-only.
  TaskPool pool(options_.jobs);
  result.jobs_used = pool.worker_count();
  CampaignObs obs{options_.tracer, options_.metrics, options_.progress, options_.journal};

  // Cache context for the execution phases: every key folds in the program
  // digest, the workflow-config digest, and the retry-location-list digest,
  // so any corpus or option change invalidates exactly what it must.
  CampaignCacheContext cache_context;
  if (options_.cache != nullptr) {
    cache_context.store = options_.cache;
    cache_context.prefix = mj::DigestHex(GetProgramDigest().digest) + "|" +
                           mj::DigestHex(DigestDynamicConfig(options_)) + "|" +
                           mj::DigestHex(DigestLocationList(result.locations)) + "|";
  }

  // Coverage discovery run (one run of every test).
  phase_start = Clock::now();
  {
    ScopedSpan span(options_.tracer, "phase.coverage");
    span.AddArg("tests", static_cast<int64_t>(tests.size()));
    if (options_.progress != nullptr) {
      options_.progress->Begin("coverage", tests.size());
    }
    CoverageOutcome coverage_outcome =
        MapCoverageCached(runner, tests, result.locations, pool, options_.robust, obs,
                          cache_context);
    result.coverage = std::move(coverage_outcome.coverage);
    result.quarantined = std::move(coverage_outcome.quarantined);
    result.robustness.MergeFrom(coverage_outcome.robustness);
    if (options_.progress != nullptr) {
      options_.progress->Finish();
    }
  }
  result.coverage_seconds = seconds_since(phase_start);
  result.tests_covering_retry = result.coverage.size();

  // Structures covered: at least one of their locations fired in some test.
  std::unordered_set<size_t> covered_locations;
  for (const auto& [test, hit_indices] : result.coverage) {
    covered_locations.insert(hit_indices.begin(), hit_indices.end());
  }
  std::unordered_set<size_t> covered_structures;
  for (size_t index : covered_locations) {
    covered_structures.insert(location_to_structure[index]);
  }
  result.structures_covered = covered_structures.size();

  // Plan and execute injections; two K settings per planned pair (§3.1.2).
  std::vector<CampaignRunSpec> specs;
  {
    ScopedSpan span(options_.tracer, "phase.plan");
    std::vector<PlanEntry> plan = options_.use_planner
                                      ? PlanInjections(result.coverage, result.locations.size())
                                      : NaivePlan(result.coverage);
    result.naive_runs = NaivePlan(result.coverage).size() * 2;
    result.planned_runs = plan.size() * 2;
    specs = ExpandPlan(plan, result.locations, {kInjectOnce, kInjectRepeatedly});
    span.AddArg("planned_runs", static_cast<int64_t>(result.planned_runs));
    span.AddArg("naive_runs", static_cast<int64_t>(result.naive_runs));
  }
  if (options_.metrics != nullptr) {
    options_.metrics->SetGauge("plan.planned_runs", static_cast<double>(result.planned_runs));
    options_.metrics->SetGauge("plan.naive_runs", static_cast<double>(result.naive_runs));
    options_.metrics->SetGauge("identify.structures", static_cast<double>(
                                                          result.structures_identified));
    options_.metrics->SetGauge("identify.locations", static_cast<double>(
                                                         result.locations.size()));
  }

  // Fan the campaign out over the pool; evaluate oracles serially over the
  // id-ordered results, which is exactly the order the serial loop produced
  // (plan-entry-major, K-minor) — worker scheduling cannot change the output.
  phase_start = Clock::now();
  std::vector<CampaignRunResult> campaign;
  std::vector<OracleReport> all_reports;
  // Per-worker arena pool shared by the campaign and the flakiness prober, so
  // probe reruns reuse the campaign's warm interpreters.
  std::vector<InterpreterArena> arenas(static_cast<size_t>(pool.worker_count()));
  std::vector<RunRecorder> recorders;
  const bool recording = !options_.record_dir.empty();
  const bool journaling = options_.journal != nullptr;
  // All-or-nothing campaign replay: a warm hit yields the exact post-oracle
  // reports (classification included), quarantine records, and resilience
  // counters a cold campaign produces, in the same order; any gap runs
  // everything cold and re-stores. Record mode and journaling force a cold
  // campaign — a warm replay executes nothing, so there would be no decision
  // stream to record and no retry behavior to journal.
  CachedCampaign cached_campaign;
  const bool campaign_warm =
      !recording && !journaling && cache_context.enabled() &&
      TryLoadCampaign(cache_context, specs, result.locations, &cached_campaign);
  if (cache_context.enabled() && !recording && !journaling) {
    CacheLookupCounters campaign_lookups;
    CountCacheLookup(options_, kCacheNsCampaign, campaign_warm, campaign_lookups);
  }
  if (campaign_warm) {
    ScopedSpan span(options_.tracer, "phase.campaign");
    span.AddArg("runs", static_cast<int64_t>(specs.size()));
    span.AddArg("jobs", static_cast<int64_t>(result.jobs_used));
    span.AddArg("warm", static_cast<int64_t>(1));
    for (size_t i = 0; i < specs.size(); ++i) {
      const CachedRunVerdict& verdict = cached_campaign.runs[i];
      const RetryLocation& location = result.locations[specs[i].location_index];
      if (verdict.completed) {
        for (const CachedRunVerdict::Report& report : verdict.reports) {
          OracleReport replay;
          replay.kind = static_cast<OracleKind>(report.kind);
          replay.test = specs[i].test.qualified_name;
          replay.location = location;
          replay.detail = report.detail;
          replay.group_key = report.group_key;
          replay.probed = report.probed;
          replay.stability = static_cast<VerdictStability>(report.stability);
          replay.flaky_cause = report.flaky_cause;
          all_reports.push_back(std::move(replay));
        }
      } else {
        RunFailure failure;
        failure.run_id = specs[i].id;
        failure.test = specs[i].test.qualified_name;
        failure.location = location.Key();
        failure.kind = verdict.failure_kind;
        failure.detail = verdict.failure_detail;
        failure.attempts = verdict.failure_attempts;
        failure.chaos = verdict.failure_chaos;
        result.quarantined.push_back(std::move(failure));
      }
    }
    result.robustness.MergeFrom(cached_campaign.stats);
  } else {
    {
      ScopedSpan span(options_.tracer, "phase.campaign");
      span.AddArg("runs", static_cast<int64_t>(specs.size()));
      span.AddArg("jobs", static_cast<int64_t>(result.jobs_used));
      if (options_.progress != nullptr) {
        options_.progress->Begin("campaign", specs.size());
      }
      CampaignOutcome campaign_outcome =
          ExecuteCampaignRobust(runner, result.locations, specs, pool, options_.robust, obs,
                                &arenas, recording ? &recorders : nullptr);
      campaign = std::move(campaign_outcome.results);
      if (cache_context.enabled()) {
        cached_campaign.runs.assign(specs.size(), CachedRunVerdict{});
        for (const RunFailure& failure : campaign_outcome.quarantined) {
          CachedRunVerdict& verdict = cached_campaign.runs[failure.run_id];
          verdict.completed = false;
          verdict.failure_kind = failure.kind;
          verdict.failure_detail = failure.detail;
          verdict.failure_attempts = failure.attempts;
          verdict.failure_chaos = failure.chaos;
        }
        cached_campaign.stats = campaign_outcome.robustness;
      }
      result.quarantined.insert(result.quarantined.end(),
                                campaign_outcome.quarantined.begin(),
                                campaign_outcome.quarantined.end());
      result.robustness.MergeFrom(campaign_outcome.robustness);
      if (options_.progress != nullptr) {
        options_.progress->Finish();
      }
    }

    // Oracle evaluation, serial in id order. Reports are kept per run (not
    // immediately flattened) so the prober and the record verdicts can consume
    // each failing run's verdict individually.
    std::vector<std::vector<OracleReport>> run_reports(specs.size());
    std::vector<char> run_completed(specs.size(), 0);
    std::vector<std::string> run_signatures(specs.size());   // Deduped, canonical.
    std::vector<size_t> run_deduped_counts(specs.size(), 0);
    std::optional<ScopedSpan> oracle_span(std::in_place, options_.tracer, "phase.oracles");
    for (const CampaignRunResult& run : campaign) {
      const RetryLocation& location = result.locations[run.location_index];
      run_completed[run.id] = 1;
      run_reports[run.id] =
          EvaluateRunReports(run.record, location, options_.oracles, options_.use_oracles);
      std::vector<OracleReport> deduped = DeduplicateReports(run_reports[run.id]);
      run_signatures[run.id] = OracleSignature(deduped);
      run_deduped_counts[run.id] = deduped.size();
    }
    oracle_span.reset();

    // Flakiness prober (docs/FLAKINESS.md): classify every failing verdict by
    // re-executing it under virtual-clock perturbation on the warm arenas,
    // then let SimLLM judge a root cause for the non-stable classes.
    if (options_.prober.enabled() && options_.use_oracles) {
      std::vector<ProbeRequest> requests;
      for (size_t i = 0; i < specs.size(); ++i) {
        if (run_reports[i].empty()) {
          continue;
        }
        ProbeRequest request;
        request.run_id = specs[i].id;
        request.baseline_signature = run_signatures[i];
        requests.push_back(std::move(request));
      }
      if (!requests.empty()) {
        ScopedSpan span(options_.tracer, "phase.probe");
        span.AddArg("failing_runs", static_cast<int64_t>(requests.size()));
        span.AddArg("repetitions", static_cast<int64_t>(options_.prober.repetitions));
        if (options_.progress != nullptr) {
          options_.progress->Begin("probe", requests.size());
        }
        std::vector<ProbeResult> probe_results =
            ProbeFailingRuns(runner, result.locations, specs, requests, options_.robust.chaos,
                             options_.oracles, options_.prober, pool, &arenas, obs);
        if (options_.progress != nullptr) {
          options_.progress->Finish();
        }
        SimLlm flaky_llm(options_.llm);
        std::unordered_map<std::string, const mj::CompilationUnit*> unit_by_file;
        for (const auto& unit : program_.units()) {
          unit_by_file[unit->file().name()] = unit.get();
        }
        // Cause judgments are per (file, coordinator); memoized so one flaky
        // structure reported by many runs is judged once.
        std::unordered_map<std::string, std::string> cause_memo;
        for (const ProbeResult& probe : probe_results) {
          ++result.probed_runs;
          if (probe.probe_failed) {
            ++result.probe_failures;
          }
          switch (probe.stability) {
            case VerdictStability::kStable:
              ++result.stable_runs;
              break;
            case VerdictStability::kFlaky:
              ++result.flaky_runs;
              break;
            case VerdictStability::kChaosInduced:
              ++result.chaos_induced_runs;
              break;
          }
          for (OracleReport& report : run_reports[probe.run_id]) {
            report.probed = true;
            report.stability = probe.stability;
            if (probe.stability == VerdictStability::kStable) {
              continue;
            }
            const std::string key = report.location.file + "|" + report.location.coordinator;
            auto [it, inserted] = cause_memo.try_emplace(key);
            if (inserted) {
              auto unit_it = unit_by_file.find(report.location.file);
              if (unit_it != unit_by_file.end()) {
                it->second = flaky_llm
                                 .JudgeFlakinessCause(
                                     *unit_it->second,
                                     index_.FindQualified(report.location.coordinator))
                                 .cause;
              }
            }
            report.flaky_cause = it->second;
          }
        }
      }
    }

    // Record mode: append each run's verdict line (an oracle-phase fact the
    // executor could not know) and serialize the whole directory.
    if (recording) {
      RecordManifest manifest;
      manifest.program_digest = mj::DigestHex(GetProgramDigest().digest);
      manifest.config_digest = mj::DigestHex(DigestDynamicConfig(options_));
      std::vector<RecordedRun> recorded_runs;
      recorded_runs.reserve(specs.size());
      for (size_t i = 0; i < specs.size(); ++i) {
        recorders[i].Verdict(run_completed[i]
                                 ? RunVerdictText(run_deduped_counts[i], run_signatures[i])
                                 : "quarantined");
        recorded_runs.push_back(recorders[i].Finish());
        manifest.runs.push_back(RecordManifest::Entry{
            static_cast<int64_t>(specs[i].id), specs[i].test.qualified_name,
            result.locations[specs[i].location_index].Key(), specs[i].k});
      }
      std::string record_write_error;
      if (!WriteRecordDir(options_.record_dir, manifest, recorded_runs,
                          &record_write_error)) {
        result.record_error = record_write_error;
      }
    }

    // Assemble: cache entries (classification included) and the flat,
    // id-ordered report list.
    for (size_t i = 0; i < specs.size(); ++i) {
      if (cache_context.enabled()) {
        for (const OracleReport& report : run_reports[i]) {
          cached_campaign.runs[i].reports.push_back(CachedRunVerdict::Report{
              static_cast<int>(report.kind), report.detail, report.group_key, report.probed,
              static_cast<int>(report.stability), report.flaky_cause});
        }
      }
      all_reports.insert(all_reports.end(), std::make_move_iterator(run_reports[i].begin()),
                         std::make_move_iterator(run_reports[i].end()));
    }
    StoreCampaign(cache_context, specs, result.locations, cached_campaign);
  }
  result.degraded = !result.quarantined.empty();

  result.injection_seconds = seconds_since(phase_start);

  if (options_.metrics != nullptr) {
    options_.metrics->Increment("oracles.reports_total",
                                static_cast<int64_t>(all_reports.size()));
    ExportPoolMetrics(*options_.metrics, pool, result.jobs_used,
                      result.coverage_seconds + result.injection_seconds);
  }

  // Derived retry analytics (docs/OBSERVABILITY.md "Retry analytics"): the
  // collected journal — merged and (stream, run, seq)-sorted, so identical at
  // any worker count — feeds amplification / goodput / time-to-recover /
  // latency-quantile stats into the metrics registry and trace counter tracks.
  if (journaling) {
    ExportRetryStats(ComputeRetryStats(options_.journal->Collect()), options_.metrics,
                     options_.tracer);
  }

  result.raw_reports = all_reports;
  result.bugs = DeduplicateBugs(ToBugReports(DeduplicateReports(std::move(all_reports))));
  return result;
}

ReplayOutcome Wasabi::ReplayRun(const std::string& record_dir, uint64_t run_id) {
  ReplayOutcome outcome;
  ScopedSpan span(options_.tracer, "replay.run");
  span.AddArg("run_id", static_cast<int64_t>(run_id));

  // Load + validate: version/checksum (inside the loaders), then that the
  // record was taken from this exact program and configuration.
  RecordManifest manifest;
  if (!LoadRecordManifest(record_dir, &manifest, &outcome.error)) {
    return outcome;
  }
  if (manifest.program_digest != mj::DigestHex(GetProgramDigest().digest)) {
    outcome.error = "program digest mismatch: record " + manifest.program_digest +
                    " vs current " + mj::DigestHex(GetProgramDigest().digest);
    return outcome;
  }
  if (manifest.config_digest != mj::DigestHex(DigestDynamicConfig(options_))) {
    outcome.error = "config digest mismatch: record " + manifest.config_digest +
                    " vs current " + mj::DigestHex(DigestDynamicConfig(options_));
    return outcome;
  }
  const RecordManifest::Entry* entry = nullptr;
  for (const RecordManifest::Entry& candidate : manifest.runs) {
    if (candidate.run_id == static_cast<int64_t>(run_id)) {
      entry = &candidate;
      break;
    }
  }
  if (entry == nullptr) {
    outcome.error = "run " + std::to_string(run_id) + " not in record manifest";
    return outcome;
  }
  if (!LoadRecordedRun(record_dir, entry->run_id, &outcome.recorded, &outcome.error)) {
    return outcome;
  }
  outcome.ok = true;
  outcome.recorded_verdict = ExtractVerdict(outcome.recorded);

  // Admission skips (fail-fast, quarantine quota, open circuit) depend on the
  // fate of every other campaign run; the recorded verdict stands.
  if (IsAdmissionSkipped(outcome.recorded)) {
    outcome.replayed_verdict = outcome.recorded_verdict;
    outcome.stream_identical = true;
    outcome.verdict_identical = true;
    return outcome;
  }
  outcome.executed = true;

  // Rebuild the injectable-location list exactly as the dynamic workflow does
  // (the identification memo makes this cheap after the recording run).
  IdentificationResult identification = IdentifyRetryStructures();
  std::unordered_set<std::string> seen_locations;
  std::vector<RetryLocation> locations;
  for (const RetryStructure& structure : identification.structures) {
    for (const RetryLocation& location : structure.locations) {
      if (seen_locations.insert(location.Key()).second) {
        locations.push_back(location);
      }
    }
  }
  const RetryLocation* location = nullptr;
  for (const RetryLocation& candidate : locations) {
    if (candidate.Key() == outcome.recorded.location_key) {
      location = &candidate;
      break;
    }
  }
  if (location == nullptr) {
    outcome.ok = false;
    outcome.executed = false;
    outcome.error = "recorded location not identified: " + outcome.recorded.location_key;
    return outcome;
  }

  RunnerOptions runner_options;
  runner_options.interp = options_.interp;
  runner_options.config_overrides = options_.default_configs;
  if (options_.restore_configs) {
    runner_options.frozen_keys = ScanTestsForRetryRestrictions(program_).keys_to_freeze;
  }
  TestRunner runner(program_, index_, runner_options);

  // Re-execute the run's attempt schedule. Chaos draws, backoff draws, the
  // degraded-environment flag, and injector decisions are all pure functions
  // of (run_id, attempt), so the stream reproduces without any campaign
  // context. The breaker is isolated: it sees only this run's failures, which
  // matches the campaign whenever this run alone fed its location's circuit;
  // genuine cross-run breaker interaction surfaces as an honest divergence.
  const ChaosConfig& chaos = options_.robust.chaos;
  TestCase test;
  test.qualified_name = outcome.recorded.test;
  RunRecorder recorder;
  recorder.BeginRun(outcome.recorded.run_id, outcome.recorded.test,
                    outcome.recorded.location_key, outcome.recorded.k,
                    ChaosDegradedEnvironment(chaos, run_id), outcome.recorded.epoch_ms);
  InterpreterArena arena;
  CircuitBreaker breaker(options_.robust.breaker_threshold);
  TestRunRecord record;
  bool completed = false;
  int attempt = 0;
  while (true) {
    ++attempt;
    if (chaos.enabled) {
      recorder.Chaos(attempt, ChaosShouldFault(chaos, run_id, attempt));
    }
    try {
      // Chaos seam before the injector, exactly as in the campaign worker: a
      // faulted attempt records no AttemptBegin and fires no injections.
      ChaosMaybeFault(chaos, run_id, attempt);
      FaultInjector injector({InjectionPoint{location->retried_method, location->coordinator,
                                             location->exception_name, outcome.recorded.k}},
                             options_.metrics);
      injector.set_recorder(&recorder);
      ReplayDispatchObserver dispatch_observer;
      dispatch_observer.recorder = &recorder;
      RunPerturbation perturbation;
      perturbation.virtual_clock_epoch_ms = outcome.recorded.epoch_ms;
      perturbation.chaos_degraded_env = ChaosDegradedEnvironment(chaos, run_id);
      perturbation.dispatch_observer = &dispatch_observer;
      recorder.AttemptBegin(attempt);
      record = runner.RunTest(test, {&injector}, &arena, perturbation);
      recorder.AttemptEnd(attempt, TestStatusName(record.outcome.status));
      completed = true;
      break;
    } catch (...) {
      RunFailure failure = ClassifyFailure(std::current_exception());
      recorder.HostFailure(attempt, RunFailureKindName(failure.kind), failure.detail);
      breaker.RecordFailure(outcome.recorded.location_key);
      const int next_attempt = attempt + 1;
      if (options_.robust.retry.ShouldRetry(next_attempt) &&
          !breaker.IsOpen(outcome.recorded.location_key)) {
        recorder.Backoff(next_attempt, options_.robust.retry.BackoffMs(run_id, next_attempt));
        continue;
      }
      recorder.Quarantine(RunFailureKindName(failure.kind), failure.detail);
      break;
    }
  }
  if (completed) {
    std::vector<OracleReport> deduped = DeduplicateReports(
        EvaluateRunReports(record, *location, options_.oracles, options_.use_oracles));
    recorder.Verdict(RunVerdictText(deduped.size(), OracleSignature(deduped)));
  } else {
    recorder.Verdict("quarantined");
  }
  outcome.replayed = recorder.Finish();
  outcome.replayed_verdict = ExtractVerdict(outcome.replayed);
  outcome.stream_identical =
      SerializeRecordedRun(outcome.replayed) == SerializeRecordedRun(outcome.recorded);
  outcome.verdict_identical = outcome.replayed_verdict == outcome.recorded_verdict;
  if (!outcome.stream_identical) {
    outcome.divergence = FirstDivergence(outcome.recorded, outcome.replayed);
  }
  return outcome;
}

StaticResult Wasabi::RunStaticWorkflow() {
  StaticResult result;
  ScopedSpan workflow_span(options_.tracer, "workflow.static");
  workflow_span.AddArg("app", options_.app_name);

  // --- WHEN bugs via the LLM prompts (§3.2.1) ---------------------------------
  // With a cache attached, a file's AnalyzeFile + JudgeWhen answers (and the
  // usage they charged) are memoized together under the file content digest.
  std::optional<ScopedSpan> when_span(std::in_place, options_.tracer, "phase.static.when");
  SimLlm llm(options_.llm);
  CacheStore* cache = options_.cache;
  const ProgramDigest* program_digest = cache != nullptr ? &GetProgramDigest() : nullptr;
  const std::string llm_prefix =
      cache != nullptr ? mj::DigestHex(DigestLlmConfig(options_.llm)) + "|" : std::string();
  LlmUsage cached_usage;
  CacheLookupCounters when_lookups;
  for (size_t u = 0; u < program_.units().size(); ++u) {
    const auto& unit = program_.units()[u];
    if (IsTestPath(unit->file().name())) {
      continue;
    }
    const std::string file = unit->file().name();
    std::vector<CachedWhenJudgment> judgments;
    std::string entry_key;
    bool hit = false;
    if (cache != nullptr) {
      entry_key = llm_prefix + mj::DigestHex(program_digest->files[u].digest);
      std::optional<std::string> entry = cache->Get(kCacheNsWhen, entry_key);
      LlmUsage delta;
      hit = entry.has_value() && DecodeWhenEntry(*entry, index_, &judgments, &delta);
      if (hit) {
        cached_usage.calls += delta.calls;
        cached_usage.bytes_sent += delta.bytes_sent;
        cached_usage.prompt_tokens += delta.prompt_tokens;
      }
      CountCacheLookup(options_, kCacheNsWhen, hit, when_lookups);
    }
    if (!hit) {
      LlmUsage before = llm.usage();
      LlmFileFindings findings = llm.AnalyzeFile(*unit);
      for (const LlmCoordinator& coordinator : findings.coordinators) {
        LlmWhenJudgment judgment = llm.JudgeWhen(*unit, coordinator);
        judgments.push_back(CachedWhenJudgment{coordinator.qualified_name, coordinator.method,
                                               judgment.sleeps_before_retry, judgment.has_cap,
                                               judgment.poll_or_spin});
      }
      if (cache != nullptr) {
        LlmUsage delta{llm.usage().calls - before.calls, llm.usage().bytes_sent - before.bytes_sent,
                       llm.usage().prompt_tokens - before.prompt_tokens};
        cache->Put(kCacheNsWhen, entry_key, EncodeWhenEntry(judgments, delta));
      }
    }
    for (const CachedWhenJudgment& judgment : judgments) {
      if (judgment.poll_or_spin) {
        continue;  // Q4 exclusion.
      }
      auto make_bug = [&](BugType type, const std::string& detail) {
        BugReport bug;
        bug.type = type;
        bug.technique = DetectionTechnique::kLlmStatic;
        bug.app = options_.app_name;
        bug.file = file;
        bug.coordinator = judgment.qualified_name;
        bug.detail = detail;
        bug.group_key =
            std::string(BugTypeName(type)) + "|" + file + "|" + judgment.qualified_name;
        bug.location = judgment.method != nullptr ? judgment.method->location
                                                  : mj::SourceLocation{};
        result.when_bugs.push_back(std::move(bug));
      };
      if (!judgment.has_cap) {
        make_bug(BugType::kWhenMissingCap,
                 "LLM: no cap or time limit on retry (Q3 answered No)");
      }
      if (!judgment.sleeps_before_retry) {
        make_bug(BugType::kWhenMissingDelay,
                 "LLM: no sleep before retrying (Q2 answered No)");
      }
    }
  }
  result.when_bugs = DeduplicateBugs(std::move(result.when_bugs));
  result.llm_usage = llm.usage();
  result.llm_usage.calls += cached_usage.calls;
  result.llm_usage.bytes_sent += cached_usage.bytes_sent;
  result.llm_usage.prompt_tokens += cached_usage.prompt_tokens;
  when_span.reset();

  // --- IF bugs via retry ratios (§3.2.2) ----------------------------------------
  ScopedSpan if_span(options_.tracer, "phase.static.if");
  IfOutlierAnalysis analysis(program_, index_, options_.if_outliers);
  result.if_outliers = analysis.FindOutliers();
  for (const IfOutlierReport& outlier : result.if_outliers) {
    for (const CatchSite& site : outlier.outlier_sites) {
      BugReport bug;
      bug.type = BugType::kIfOutlier;
      bug.technique = DetectionTechnique::kCodeQlStatic;
      bug.app = options_.app_name;
      bug.file = site.file;
      bug.coordinator = site.coordinator;
      bug.exception = outlier.exception;
      bug.detail = outlier.exception + " retried in " + std::to_string(outlier.retried) + "/" +
                   std::to_string(outlier.caught_in_retry_loops) +
                   " retry loops; this site is the outlier (" +
                   (site.retried ? "retried" : "not retried") + ")";
      bug.group_key = "if|" + outlier.exception + "|" + site.file + "|" + site.coordinator;
      bug.location = site.location;
      result.if_bugs.push_back(std::move(bug));
    }
  }
  result.if_bugs = DeduplicateBugs(std::move(result.if_bugs));
  if (options_.metrics != nullptr) {
    options_.metrics->SetGauge("static.when_reports", static_cast<double>(result.when_bugs.size()));
    options_.metrics->SetGauge("static.if_reports", static_cast<double>(result.if_bugs.size()));
  }
  return result;
}

}  // namespace wasabi
