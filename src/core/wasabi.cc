#include "src/core/wasabi.h"

#include <bit>
#include <chrono>
#include <cstdlib>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/exec/campaign.h"
#include "src/exec/campaign_cache.h"
#include "src/exec/task_pool.h"
#include "src/inject/injector.h"
#include "src/interp/value.h"
#include "src/lang/digest.h"
#include "src/testing/config_restore.h"

namespace wasabi {

namespace {

// Application-vs-test split by path convention: anything under a test/
// directory is harness code the analyses must not treat as application source.
bool IsTestPath(const std::string& file) {
  return file.find("/test/") != std::string::npos || file.rfind("test/", 0) == 0;
}

// Copies the pool's cumulative counters (coverage pass + injection campaign)
// into the registry, with a derived utilization gauge: busy time across all
// workers over `wall_seconds * workers`. Low utilization with high queue-wait
// means starved workers; low utilization with empty queue-wait means the wall
// clock went to serial phases.
void ExportPoolMetrics(MetricsRegistry& metrics, const TaskPool& pool, int workers,
                       double wall_seconds) {
  TaskPoolStats stats = pool.Stats();
  metrics.SetGauge("pool.workers", static_cast<double>(workers));
  for (size_t w = 0; w < stats.workers.size(); ++w) {
    const TaskPoolStats::Worker& worker = stats.workers[w];
    const std::string prefix = "pool.worker." + std::to_string(w);
    metrics.Increment(prefix + ".tasks", static_cast<int64_t>(worker.tasks));
    metrics.Increment(prefix + ".steals", static_cast<int64_t>(worker.steals));
    metrics.Increment(prefix + ".busy_us", worker.busy_us);
    for (int64_t wait_us : worker.queue_wait_us) {
      metrics.Observe("pool.queue_wait_us", static_cast<double>(wait_us));
    }
  }
  metrics.Increment("pool.tasks_total", static_cast<int64_t>(stats.total_tasks()));
  metrics.Increment("pool.steals_total", static_cast<int64_t>(stats.total_steals()));
  metrics.Increment("pool.busy_us_total", stats.total_busy_us());
  metrics.Increment("pool.wall_us_total", static_cast<int64_t>(wall_seconds * 1e6));
  if (wall_seconds > 0 && workers > 0) {
    metrics.SetGauge("pool.utilization", static_cast<double>(stats.total_busy_us()) /
                                             (wall_seconds * 1e6 * workers));
  }
}

// --- Result-cache plumbing (docs/CACHING.md) --------------------------------
//
// Per-file SimLLM memos live in the "q1" (identification) and "when" (static
// workflow) namespaces, keyed by (llm-config digest, file content digest).
// Entries hold only identifiers, booleans, and counters — never free text —
// so the codec needs no escaping; any shape violation decodes as a miss.

constexpr char kFieldSep = '\x1f';
constexpr char kRecordSep = '\x1e';
constexpr char kCacheNsIdentify[] = "q1";
constexpr char kCacheNsWhen[] = "when";

std::vector<std::string_view> SplitEntry(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool ParseCachedInt(std::string_view field, int64_t* out) {
  if (field.empty()) {
    return false;
  }
  std::string buffer(field);
  char* end = nullptr;
  long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (end != buffer.c_str() + buffer.size()) {
    return false;
  }
  *out = static_cast<int64_t>(value);
  return true;
}

bool ParseCachedBool(std::string_view field, bool* out) {
  if (field == "0" || field == "1") {
    *out = field == "1";
    return true;
  }
  return false;
}

void AppendCachedField(std::string& out, std::string_view field) {
  if (!out.empty() && out.back() != kRecordSep) {
    out.push_back(kFieldSep);
  }
  out.append(field);
}

// Length-delimited string fold: plain concatenation would let adjacent fields
// alias ("ab"+"c" vs "a"+"bc").
uint64_t DigestStringField(std::string_view field, uint64_t hash) {
  hash = mj::Fnv1a64(field, hash);
  return mj::Fnv1a64Mix(field.size(), hash);
}

uint64_t DigestDoubleField(double value, uint64_t hash) {
  return mj::Fnv1a64Mix(std::bit_cast<uint64_t>(value), hash);
}

uint64_t DigestLlmConfig(const SimLlmConfig& config) {
  uint64_t hash = mj::kFnvOffsetBasis;
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(config.retry_threshold), hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(config.attention_window_tokens), hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(config.comprehension_noise_percent), hash);
  hash = mj::Fnv1a64Mix(config.seed, hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(config.q1_iteration_fp_percent), hash);
  hash = mj::Fnv1a64Mix(config.enable_q4_exclusion ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(config.q4_override_score), hash);
  return hash;
}

// Everything the dynamic workflow's cached results depend on, except the
// program (digested separately) and the retry-location list (ditto). `jobs`
// and `app_name` are deliberately absent: worker count cannot change any
// report byte, and the app name is stamped on reports AFTER cache replay.
uint64_t DigestDynamicConfig(const WasabiOptions& options) {
  uint64_t hash = DigestLlmConfig(options.llm);
  hash = mj::Fnv1a64Mix(options.finder.require_keyword ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(options.finder.keywords.size(), hash);
  for (const std::string& keyword : options.finder.keywords) {
    hash = DigestStringField(keyword, hash);
  }
  hash = mj::Fnv1a64Mix(options.finder.skip_test_classes ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.oracles.cap_injection_threshold), hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.oracles.delay_min_injections), hash);
  hash = mj::Fnv1a64Mix(options.oracles.assertions_require_single_injection ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(options.oracles.prune_wrapped_exceptions ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(options.oracles.context_aware_cap ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.interp.step_budget), hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.interp.virtual_time_budget_ms), hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.interp.max_call_depth), hash);
  hash = mj::Fnv1a64Mix(options.default_configs.size(), hash);
  for (const auto& [key, value] : options.default_configs) {
    hash = DigestStringField(key, hash);
    hash = DigestStringField(ValueToString(value), hash);
  }
  hash = mj::Fnv1a64Mix(options.use_planner ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(options.use_oracles ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(options.restore_configs ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.robust.retry.max_attempts), hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.robust.retry.base_backoff_ms), hash);
  hash = DigestDoubleField(options.robust.retry.multiplier, hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.robust.retry.max_backoff_ms), hash);
  hash = DigestDoubleField(options.robust.retry.jitter, hash);
  hash = mj::Fnv1a64Mix(options.robust.retry.jitter_seed, hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.robust.breaker_threshold), hash);
  hash = mj::Fnv1a64Mix(options.robust.chaos.enabled ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(options.robust.chaos.seed, hash);
  hash = DigestDoubleField(options.robust.chaos.rate, hash);
  hash = mj::Fnv1a64Mix(options.robust.chaos.transient ? 1u : 0u, hash);
  hash = DigestDoubleField(options.robust.chaos.budget_fraction, hash);
  hash = mj::Fnv1a64Mix(options.robust.fail_fast ? 1u : 0u, hash);
  hash = mj::Fnv1a64Mix(static_cast<uint64_t>(options.robust.max_quarantined), hash);
  return hash;
}

uint64_t DigestLocationList(const std::vector<RetryLocation>& locations) {
  uint64_t hash = mj::Fnv1a64Mix(locations.size(), mj::kFnvOffsetBasis);
  for (const RetryLocation& location : locations) {
    hash = DigestStringField(location.Key(), hash);
  }
  return hash;
}

// "q1" entry: header (performs_retry, truncated, usage delta), then one
// record per coordinator (qualified name, mechanism, evidence, has-method).
std::string EncodeIdentifyEntry(const LlmFileFindings& findings, const LlmUsage& delta) {
  std::string out;
  AppendCachedField(out, findings.performs_retry ? "1" : "0");
  AppendCachedField(out, findings.truncated_by_attention ? "1" : "0");
  AppendCachedField(out, std::to_string(delta.calls));
  AppendCachedField(out, std::to_string(delta.bytes_sent));
  AppendCachedField(out, std::to_string(delta.prompt_tokens));
  for (const LlmCoordinator& coordinator : findings.coordinators) {
    out.push_back(kRecordSep);
    std::string record;
    AppendCachedField(record, coordinator.qualified_name);
    AppendCachedField(record, std::to_string(static_cast<int>(coordinator.mechanism)));
    AppendCachedField(record, std::to_string(coordinator.evidence_score));
    AppendCachedField(record, coordinator.method != nullptr ? "1" : "0");
    out.append(record);
  }
  return out;
}

bool DecodeIdentifyEntry(const std::string& entry, const mj::ProgramIndex& index,
                         const std::string& file, LlmFileFindings* findings, LlmUsage* delta) {
  std::vector<std::string_view> records = SplitEntry(entry, kRecordSep);
  std::vector<std::string_view> header = SplitEntry(records[0], kFieldSep);
  if (header.size() != 5) {
    return false;
  }
  LlmFileFindings out;
  LlmUsage usage;
  out.file = file;
  if (!ParseCachedBool(header[0], &out.performs_retry) ||
      !ParseCachedBool(header[1], &out.truncated_by_attention) ||
      !ParseCachedInt(header[2], &usage.calls) || !ParseCachedInt(header[3], &usage.bytes_sent) ||
      !ParseCachedInt(header[4], &usage.prompt_tokens)) {
    return false;
  }
  for (size_t r = 1; r < records.size(); ++r) {
    std::vector<std::string_view> fields = SplitEntry(records[r], kFieldSep);
    if (fields.size() != 4) {
      return false;
    }
    LlmCoordinator coordinator;
    coordinator.qualified_name = std::string(fields[0]);
    int64_t mechanism = 0;
    int64_t evidence = 0;
    bool has_method = false;
    if (!ParseCachedInt(fields[1], &mechanism) || mechanism < 0 ||
        mechanism > static_cast<int64_t>(RetryMechanism::kStateMachine) ||
        !ParseCachedInt(fields[2], &evidence) || !ParseCachedBool(fields[3], &has_method)) {
      return false;
    }
    coordinator.mechanism = static_cast<RetryMechanism>(mechanism);
    coordinator.evidence_score = static_cast<int>(evidence);
    if (has_method) {
      coordinator.method = index.FindQualified(coordinator.qualified_name);
      if (coordinator.method == nullptr) {
        return false;  // The file digest matched but the AST disagrees: miss.
      }
    }
    out.coordinators.push_back(std::move(coordinator));
  }
  *findings = std::move(out);
  *delta = usage;
  return true;
}

// "when" entry: header (usage delta over AnalyzeFile + every JudgeWhen), then
// one record per coordinator (qualified name, has-method, Q2/Q3/Q4 answers).
struct CachedWhenJudgment {
  std::string qualified_name;
  const mj::MethodDecl* method = nullptr;
  bool sleeps_before_retry = false;
  bool has_cap = false;
  bool poll_or_spin = false;
};

std::string EncodeWhenEntry(const std::vector<CachedWhenJudgment>& judgments,
                            const LlmUsage& delta) {
  std::string out;
  AppendCachedField(out, std::to_string(delta.calls));
  AppendCachedField(out, std::to_string(delta.bytes_sent));
  AppendCachedField(out, std::to_string(delta.prompt_tokens));
  for (const CachedWhenJudgment& judgment : judgments) {
    out.push_back(kRecordSep);
    std::string record;
    AppendCachedField(record, judgment.qualified_name);
    AppendCachedField(record, judgment.method != nullptr ? "1" : "0");
    AppendCachedField(record, judgment.sleeps_before_retry ? "1" : "0");
    AppendCachedField(record, judgment.has_cap ? "1" : "0");
    AppendCachedField(record, judgment.poll_or_spin ? "1" : "0");
    out.append(record);
  }
  return out;
}

bool DecodeWhenEntry(const std::string& entry, const mj::ProgramIndex& index,
                     std::vector<CachedWhenJudgment>* judgments, LlmUsage* delta) {
  std::vector<std::string_view> records = SplitEntry(entry, kRecordSep);
  std::vector<std::string_view> header = SplitEntry(records[0], kFieldSep);
  if (header.size() != 3) {
    return false;
  }
  LlmUsage usage;
  if (!ParseCachedInt(header[0], &usage.calls) || !ParseCachedInt(header[1], &usage.bytes_sent) ||
      !ParseCachedInt(header[2], &usage.prompt_tokens)) {
    return false;
  }
  std::vector<CachedWhenJudgment> out;
  for (size_t r = 1; r < records.size(); ++r) {
    std::vector<std::string_view> fields = SplitEntry(records[r], kFieldSep);
    if (fields.size() != 5) {
      return false;
    }
    CachedWhenJudgment judgment;
    judgment.qualified_name = std::string(fields[0]);
    bool has_method = false;
    if (!ParseCachedBool(fields[1], &has_method) ||
        !ParseCachedBool(fields[2], &judgment.sleeps_before_retry) ||
        !ParseCachedBool(fields[3], &judgment.has_cap) ||
        !ParseCachedBool(fields[4], &judgment.poll_or_spin)) {
      return false;
    }
    if (has_method) {
      judgment.method = index.FindQualified(judgment.qualified_name);
      if (judgment.method == nullptr) {
        return false;
      }
    }
    out.push_back(std::move(judgment));
  }
  *judgments = std::move(out);
  *delta = usage;
  return true;
}

void CountCacheLookup(MetricsRegistry* metrics, const char* ns, bool hit) {
  if (metrics != nullptr) {
    metrics->Increment(std::string(hit ? "cache.hits." : "cache.misses.") + ns);
  }
}

}  // namespace

Wasabi::Wasabi(const mj::Program& program, const mj::ProgramIndex& index, WasabiOptions options)
    : program_(program), index_(index), options_(std::move(options)) {}

const ProgramDigest& Wasabi::GetProgramDigest() {
  std::lock_guard<std::mutex> lock(digest_mutex_);
  if (!program_digest_memo_.has_value()) {
    program_digest_memo_ = DigestProgram(program_);
  }
  return *program_digest_memo_;
}

std::vector<BugReport> CollateStaticWithDynamic(const std::vector<BugReport>& static_bugs,
                                                const DynamicResult& dynamic) {
  // Coordinators whose locations were actually exercised by some unit test.
  std::unordered_set<size_t> covered_indices;
  for (const auto& [test, hits] : dynamic.coverage) {
    covered_indices.insert(hits.begin(), hits.end());
  }
  std::unordered_set<std::string> exercised_coordinators;
  for (size_t index : covered_indices) {
    if (index < dynamic.locations.size()) {
      exercised_coordinators.insert(dynamic.locations[index].coordinator);
    }
  }
  std::unordered_set<std::string> dynamic_keys;
  for (const BugReport& bug : dynamic.bugs) {
    dynamic_keys.insert(bug.MatchKey());
  }

  std::vector<BugReport> kept;
  for (const BugReport& bug : static_bugs) {
    bool exercised = exercised_coordinators.count(bug.coordinator) > 0;
    bool confirmed = dynamic_keys.count(bug.MatchKey()) > 0;
    if (exercised && !confirmed) {
      continue;  // Injection ran against this retry and disagreed.
    }
    kept.push_back(bug);
  }
  return kept;
}

IdentificationResult Wasabi::IdentifyRetryStructures() {
  std::lock_guard<std::mutex> lock(identification_mutex_);
  if (identification_memo_.has_value()) {
    return *identification_memo_;  // Front-loaded: analyze once per instance.
  }
  // Spans only on the memo miss: repeated campaigns reuse the memo and the
  // trace shows the analysis cost exactly once, where it was actually paid.
  ScopedSpan span(options_.tracer, "identify.analysis");
  span.AddArg("app", options_.app_name);
  IdentificationResult result;
  RetryFinder finder(program_, index_, options_.finder);

  // Technique 1: CodeQL-style loop analysis.
  std::vector<RetryStructure> structures = finder.FindLoopStructures();
  result.candidate_loops_without_keyword_filter = finder.FindCandidateLoops().size();

  // Index CodeQL structures by (file, coordinator) for merging.
  std::unordered_map<std::string, std::vector<size_t>> by_coordinator;
  for (size_t i = 0; i < structures.size(); ++i) {
    by_coordinator[structures[i].file + "|" + structures[i].coordinator].push_back(i);
  }

  // Technique 2: SimLLM, one file at a time. Only application source is fed
  // to the model (the paper analyzes the code base, not the test harness).
  // With a cache attached, per-file findings are memoized under
  // (llm-config digest, file content digest); the merge below runs either way.
  SimLlm llm(options_.llm);
  CacheStore* cache = options_.cache;
  const ProgramDigest* program_digest = cache != nullptr ? &GetProgramDigest() : nullptr;
  const std::string llm_prefix =
      cache != nullptr ? mj::DigestHex(DigestLlmConfig(options_.llm)) + "|" : std::string();
  LlmUsage cached_usage;
  for (size_t u = 0; u < program_.units().size(); ++u) {
    const auto& unit = program_.units()[u];
    if (IsTestPath(unit->file().name())) {
      continue;
    }
    LlmFileFindings findings;
    std::string entry_key;
    bool hit = false;
    if (cache != nullptr) {
      entry_key = llm_prefix + mj::DigestHex(program_digest->files[u].digest);
      std::optional<std::string> entry = cache->Get(kCacheNsIdentify, entry_key);
      LlmUsage delta;
      hit = entry.has_value() &&
            DecodeIdentifyEntry(*entry, index_, unit->file().name(), &findings, &delta);
      if (hit) {
        cached_usage.calls += delta.calls;
        cached_usage.bytes_sent += delta.bytes_sent;
        cached_usage.prompt_tokens += delta.prompt_tokens;
      }
      CountCacheLookup(options_.metrics, kCacheNsIdentify, hit);
    }
    if (!hit) {
      LlmUsage before = llm.usage();
      findings = llm.AnalyzeFile(*unit);
      if (cache != nullptr) {
        LlmUsage delta{llm.usage().calls - before.calls, llm.usage().bytes_sent - before.bytes_sent,
                       llm.usage().prompt_tokens - before.prompt_tokens};
        cache->Put(kCacheNsIdentify, entry_key, EncodeIdentifyEntry(findings, delta));
      }
    }
    if (findings.truncated_by_attention) {
      ++result.files_truncated_by_llm;
    }
    for (const LlmCoordinator& coordinator : findings.coordinators) {
      std::string key = findings.file + "|" + coordinator.qualified_name;
      auto it = by_coordinator.find(key);
      if (it != by_coordinator.end()) {
        for (size_t index : it->second) {
          structures[index].found_by.llm = true;
        }
        // Both techniques emit triplets (§3.1.1); union the LLM's broader
        // "every invoked method" triplets into the structure so exceptions the
        // loop analysis cannot prove retriable still get injected (the oracles
        // absorb the over-approximation).
        if (coordinator.method != nullptr && !it->second.empty()) {
          RetryStructure& target = structures[it->second.front()];
          std::unordered_set<std::string> known;
          for (const RetryLocation& location : target.locations) {
            known.insert(location.Key());
          }
          for (RetryLocation& location :
               finder.TripletsForCoordinator(*coordinator.method, target.mechanism)) {
            if (known.insert(location.Key()).second) {
              target.locations.push_back(std::move(location));
            }
          }
        }
        continue;
      }
      // New structure only the LLM sees (non-loop retry, or loops the keyword
      // filter missed). The follow-up CodeQL query provides the triplets.
      RetryStructure structure;
      structure.file = findings.file;
      structure.coordinator = coordinator.qualified_name;
      structure.coordinator_decl = coordinator.method;
      structure.mechanism = coordinator.mechanism;
      structure.anchor = nullptr;
      structure.location = coordinator.method != nullptr ? coordinator.method->location
                                                         : mj::SourceLocation{};
      structure.found_by.llm = true;
      if (coordinator.method != nullptr) {
        structure.locations =
            finder.TripletsForCoordinator(*coordinator.method, coordinator.mechanism);
      }
      by_coordinator[key].push_back(structures.size());
      structures.push_back(std::move(structure));
    }
  }

  result.structures = std::move(structures);
  // Usage counters are additive, so live calls plus replayed per-file deltas
  // reproduce the cache-off totals exactly.
  result.llm_usage = llm.usage();
  result.llm_usage.calls += cached_usage.calls;
  result.llm_usage.bytes_sent += cached_usage.bytes_sent;
  result.llm_usage.prompt_tokens += cached_usage.prompt_tokens;
  identification_memo_ = std::move(result);
  return *identification_memo_;
}

std::vector<BugReport> Wasabi::ToBugReports(const std::vector<OracleReport>& reports) const {
  std::vector<BugReport> bugs;
  bugs.reserve(reports.size());
  for (const OracleReport& report : reports) {
    BugReport bug;
    switch (report.kind) {
      case OracleKind::kMissingCap:
        bug.type = BugType::kWhenMissingCap;
        break;
      case OracleKind::kMissingDelay:
        bug.type = BugType::kWhenMissingDelay;
        break;
      case OracleKind::kDifferentException:
        bug.type = BugType::kHow;
        break;
    }
    bug.technique = DetectionTechnique::kUnitTesting;
    bug.app = options_.app_name;
    bug.file = report.location.file;
    bug.coordinator = report.location.coordinator;
    bug.detail = report.detail + " [test " + report.test + "]";
    bug.group_key = report.group_key;
    bug.location = report.location.location;
    bugs.push_back(std::move(bug));
  }
  return bugs;
}

DynamicResult Wasabi::RunDynamicWorkflow() {
  using Clock = std::chrono::steady_clock;
  auto seconds_since = [](Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  DynamicResult result;
  ScopedSpan workflow_span(options_.tracer, "workflow.dynamic");
  workflow_span.AddArg("app", options_.app_name);

  Clock::time_point phase_start = Clock::now();
  IdentificationResult identification;
  {
    ScopedSpan span(options_.tracer, "phase.identify");
    identification = IdentifyRetryStructures();
  }
  result.identification_seconds = seconds_since(phase_start);
  result.structures_identified = identification.structures.size();

  // Collect the injectable retry locations (deduplicated across structures)
  // and remember which structure each belongs to.
  std::unordered_set<std::string> seen_locations;
  std::vector<size_t> location_to_structure;
  for (size_t s = 0; s < identification.structures.size(); ++s) {
    for (const RetryLocation& location : identification.structures[s].locations) {
      if (seen_locations.insert(location.Key()).second) {
        result.locations.push_back(location);
        location_to_structure.push_back(s);
      }
    }
  }

  // Test preparation (§3.1.4): defaults + restoration of restricted configs.
  RunnerOptions runner_options;
  runner_options.interp = options_.interp;
  runner_options.config_overrides = options_.default_configs;
  if (options_.restore_configs) {
    ConfigRestorationResult restoration = ScanTestsForRetryRestrictions(program_);
    runner_options.frozen_keys = restoration.keys_to_freeze;
    result.config_restrictions_restored = restoration.restrictions.size();
  }
  TestRunner runner(program_, index_, runner_options);

  std::vector<TestCase> tests = runner.DiscoverTests();
  result.total_tests = tests.size();

  // Worker pool shared by the coverage pass and the injection campaign. Every
  // run builds a fresh Interpreter over the shared immutable Program/index,
  // so the only cross-run state is read-only.
  TaskPool pool(options_.jobs);
  result.jobs_used = pool.worker_count();
  CampaignObs obs{options_.tracer, options_.metrics, options_.progress};

  // Cache context for the execution phases: every key folds in the program
  // digest, the workflow-config digest, and the retry-location-list digest,
  // so any corpus or option change invalidates exactly what it must.
  CampaignCacheContext cache_context;
  if (options_.cache != nullptr) {
    cache_context.store = options_.cache;
    cache_context.prefix = mj::DigestHex(GetProgramDigest().digest) + "|" +
                           mj::DigestHex(DigestDynamicConfig(options_)) + "|" +
                           mj::DigestHex(DigestLocationList(result.locations)) + "|";
  }

  // Coverage discovery run (one run of every test).
  phase_start = Clock::now();
  {
    ScopedSpan span(options_.tracer, "phase.coverage");
    span.AddArg("tests", static_cast<int64_t>(tests.size()));
    if (options_.progress != nullptr) {
      options_.progress->Begin("coverage", tests.size());
    }
    CoverageOutcome coverage_outcome =
        MapCoverageCached(runner, tests, result.locations, pool, options_.robust, obs,
                          cache_context);
    result.coverage = std::move(coverage_outcome.coverage);
    result.quarantined = std::move(coverage_outcome.quarantined);
    result.robustness.MergeFrom(coverage_outcome.robustness);
    if (options_.progress != nullptr) {
      options_.progress->Finish();
    }
  }
  result.coverage_seconds = seconds_since(phase_start);
  result.tests_covering_retry = result.coverage.size();

  // Structures covered: at least one of their locations fired in some test.
  std::unordered_set<size_t> covered_locations;
  for (const auto& [test, hit_indices] : result.coverage) {
    covered_locations.insert(hit_indices.begin(), hit_indices.end());
  }
  std::unordered_set<size_t> covered_structures;
  for (size_t index : covered_locations) {
    covered_structures.insert(location_to_structure[index]);
  }
  result.structures_covered = covered_structures.size();

  // Plan and execute injections; two K settings per planned pair (§3.1.2).
  std::vector<CampaignRunSpec> specs;
  {
    ScopedSpan span(options_.tracer, "phase.plan");
    std::vector<PlanEntry> plan = options_.use_planner
                                      ? PlanInjections(result.coverage, result.locations.size())
                                      : NaivePlan(result.coverage);
    result.naive_runs = NaivePlan(result.coverage).size() * 2;
    result.planned_runs = plan.size() * 2;
    specs = ExpandPlan(plan, result.locations, {kInjectOnce, kInjectRepeatedly});
    span.AddArg("planned_runs", static_cast<int64_t>(result.planned_runs));
    span.AddArg("naive_runs", static_cast<int64_t>(result.naive_runs));
  }
  if (options_.metrics != nullptr) {
    options_.metrics->SetGauge("plan.planned_runs", static_cast<double>(result.planned_runs));
    options_.metrics->SetGauge("plan.naive_runs", static_cast<double>(result.naive_runs));
    options_.metrics->SetGauge("identify.structures", static_cast<double>(
                                                          result.structures_identified));
    options_.metrics->SetGauge("identify.locations", static_cast<double>(
                                                         result.locations.size()));
  }

  // Fan the campaign out over the pool; evaluate oracles serially over the
  // id-ordered results, which is exactly the order the serial loop produced
  // (plan-entry-major, K-minor) — worker scheduling cannot change the output.
  phase_start = Clock::now();
  std::vector<CampaignRunResult> campaign;
  std::vector<OracleReport> all_reports;
  // All-or-nothing campaign replay: a warm hit yields the exact post-oracle
  // reports, quarantine records, and resilience counters a cold campaign
  // produces, in the same order; any gap runs everything cold and re-stores.
  CachedCampaign cached_campaign;
  const bool campaign_warm =
      cache_context.enabled() &&
      TryLoadCampaign(cache_context, specs, result.locations, &cached_campaign);
  if (cache_context.enabled()) {
    CountCacheLookup(options_.metrics, kCacheNsCampaign, campaign_warm);
  }
  if (campaign_warm) {
    ScopedSpan span(options_.tracer, "phase.campaign");
    span.AddArg("runs", static_cast<int64_t>(specs.size()));
    span.AddArg("jobs", static_cast<int64_t>(result.jobs_used));
    span.AddArg("warm", static_cast<int64_t>(1));
    for (size_t i = 0; i < specs.size(); ++i) {
      const CachedRunVerdict& verdict = cached_campaign.runs[i];
      const RetryLocation& location = result.locations[specs[i].location_index];
      if (verdict.completed) {
        for (const CachedRunVerdict::Report& report : verdict.reports) {
          OracleReport replay;
          replay.kind = static_cast<OracleKind>(report.kind);
          replay.test = specs[i].test.qualified_name;
          replay.location = location;
          replay.detail = report.detail;
          replay.group_key = report.group_key;
          all_reports.push_back(std::move(replay));
        }
      } else {
        RunFailure failure;
        failure.run_id = specs[i].id;
        failure.test = specs[i].test.qualified_name;
        failure.location = location.Key();
        failure.kind = verdict.failure_kind;
        failure.detail = verdict.failure_detail;
        failure.attempts = verdict.failure_attempts;
        failure.chaos = verdict.failure_chaos;
        result.quarantined.push_back(std::move(failure));
      }
    }
    result.robustness.MergeFrom(cached_campaign.stats);
  } else {
    {
      ScopedSpan span(options_.tracer, "phase.campaign");
      span.AddArg("runs", static_cast<int64_t>(specs.size()));
      span.AddArg("jobs", static_cast<int64_t>(result.jobs_used));
      if (options_.progress != nullptr) {
        options_.progress->Begin("campaign", specs.size());
      }
      CampaignOutcome campaign_outcome =
          ExecuteCampaignRobust(runner, result.locations, specs, pool, options_.robust, obs);
      campaign = std::move(campaign_outcome.results);
      if (cache_context.enabled()) {
        cached_campaign.runs.assign(specs.size(), CachedRunVerdict{});
        for (const RunFailure& failure : campaign_outcome.quarantined) {
          CachedRunVerdict& verdict = cached_campaign.runs[failure.run_id];
          verdict.completed = false;
          verdict.failure_kind = failure.kind;
          verdict.failure_detail = failure.detail;
          verdict.failure_attempts = failure.attempts;
          verdict.failure_chaos = failure.chaos;
        }
        cached_campaign.stats = campaign_outcome.robustness;
      }
      result.quarantined.insert(result.quarantined.end(),
                                campaign_outcome.quarantined.begin(),
                                campaign_outcome.quarantined.end());
      result.robustness.MergeFrom(campaign_outcome.robustness);
      if (options_.progress != nullptr) {
        options_.progress->Finish();
      }
    }

    std::optional<ScopedSpan> oracle_span(std::in_place, options_.tracer, "phase.oracles");
    for (const CampaignRunResult& run : campaign) {
      const RetryLocation& location = result.locations[run.location_index];
      std::vector<OracleReport> reports;
      if (options_.use_oracles) {
        reports = EvaluateOracles(run.record, location, options_.oracles);
      } else {
        // Oracle ablation (§4.4): every test failure is naively reported.
        if (run.record.outcome.status != TestStatus::kPassed) {
          OracleReport report;
          report.kind = OracleKind::kDifferentException;
          report.test = run.record.test.qualified_name;
          report.location = location;
          report.detail = "test failed: " +
                          std::string(TestStatusName(run.record.outcome.status)) + " " +
                          run.record.outcome.exception_class;
          report.group_key = "naive|" + location.Key() + "|" + run.record.outcome.exception_class;
          reports.push_back(std::move(report));
        }
      }
      if (cache_context.enabled()) {
        for (const OracleReport& report : reports) {
          cached_campaign.runs[run.id].reports.push_back(CachedRunVerdict::Report{
              static_cast<int>(report.kind), report.detail, report.group_key});
        }
      }
      all_reports.insert(all_reports.end(), std::make_move_iterator(reports.begin()),
                         std::make_move_iterator(reports.end()));
    }
    oracle_span.reset();
    StoreCampaign(cache_context, specs, result.locations, cached_campaign);
  }
  result.degraded = !result.quarantined.empty();

  result.injection_seconds = seconds_since(phase_start);

  if (options_.metrics != nullptr) {
    options_.metrics->Increment("oracles.reports_total",
                                static_cast<int64_t>(all_reports.size()));
    ExportPoolMetrics(*options_.metrics, pool, result.jobs_used,
                      result.coverage_seconds + result.injection_seconds);
  }

  result.raw_reports = all_reports;
  result.bugs = DeduplicateBugs(ToBugReports(DeduplicateReports(std::move(all_reports))));
  return result;
}

StaticResult Wasabi::RunStaticWorkflow() {
  StaticResult result;
  ScopedSpan workflow_span(options_.tracer, "workflow.static");
  workflow_span.AddArg("app", options_.app_name);

  // --- WHEN bugs via the LLM prompts (§3.2.1) ---------------------------------
  // With a cache attached, a file's AnalyzeFile + JudgeWhen answers (and the
  // usage they charged) are memoized together under the file content digest.
  std::optional<ScopedSpan> when_span(std::in_place, options_.tracer, "phase.static.when");
  SimLlm llm(options_.llm);
  CacheStore* cache = options_.cache;
  const ProgramDigest* program_digest = cache != nullptr ? &GetProgramDigest() : nullptr;
  const std::string llm_prefix =
      cache != nullptr ? mj::DigestHex(DigestLlmConfig(options_.llm)) + "|" : std::string();
  LlmUsage cached_usage;
  for (size_t u = 0; u < program_.units().size(); ++u) {
    const auto& unit = program_.units()[u];
    if (IsTestPath(unit->file().name())) {
      continue;
    }
    const std::string file = unit->file().name();
    std::vector<CachedWhenJudgment> judgments;
    std::string entry_key;
    bool hit = false;
    if (cache != nullptr) {
      entry_key = llm_prefix + mj::DigestHex(program_digest->files[u].digest);
      std::optional<std::string> entry = cache->Get(kCacheNsWhen, entry_key);
      LlmUsage delta;
      hit = entry.has_value() && DecodeWhenEntry(*entry, index_, &judgments, &delta);
      if (hit) {
        cached_usage.calls += delta.calls;
        cached_usage.bytes_sent += delta.bytes_sent;
        cached_usage.prompt_tokens += delta.prompt_tokens;
      }
      CountCacheLookup(options_.metrics, kCacheNsWhen, hit);
    }
    if (!hit) {
      LlmUsage before = llm.usage();
      LlmFileFindings findings = llm.AnalyzeFile(*unit);
      for (const LlmCoordinator& coordinator : findings.coordinators) {
        LlmWhenJudgment judgment = llm.JudgeWhen(*unit, coordinator);
        judgments.push_back(CachedWhenJudgment{coordinator.qualified_name, coordinator.method,
                                               judgment.sleeps_before_retry, judgment.has_cap,
                                               judgment.poll_or_spin});
      }
      if (cache != nullptr) {
        LlmUsage delta{llm.usage().calls - before.calls, llm.usage().bytes_sent - before.bytes_sent,
                       llm.usage().prompt_tokens - before.prompt_tokens};
        cache->Put(kCacheNsWhen, entry_key, EncodeWhenEntry(judgments, delta));
      }
    }
    for (const CachedWhenJudgment& judgment : judgments) {
      if (judgment.poll_or_spin) {
        continue;  // Q4 exclusion.
      }
      auto make_bug = [&](BugType type, const std::string& detail) {
        BugReport bug;
        bug.type = type;
        bug.technique = DetectionTechnique::kLlmStatic;
        bug.app = options_.app_name;
        bug.file = file;
        bug.coordinator = judgment.qualified_name;
        bug.detail = detail;
        bug.group_key =
            std::string(BugTypeName(type)) + "|" + file + "|" + judgment.qualified_name;
        bug.location = judgment.method != nullptr ? judgment.method->location
                                                  : mj::SourceLocation{};
        result.when_bugs.push_back(std::move(bug));
      };
      if (!judgment.has_cap) {
        make_bug(BugType::kWhenMissingCap,
                 "LLM: no cap or time limit on retry (Q3 answered No)");
      }
      if (!judgment.sleeps_before_retry) {
        make_bug(BugType::kWhenMissingDelay,
                 "LLM: no sleep before retrying (Q2 answered No)");
      }
    }
  }
  result.when_bugs = DeduplicateBugs(std::move(result.when_bugs));
  result.llm_usage = llm.usage();
  result.llm_usage.calls += cached_usage.calls;
  result.llm_usage.bytes_sent += cached_usage.bytes_sent;
  result.llm_usage.prompt_tokens += cached_usage.prompt_tokens;
  when_span.reset();

  // --- IF bugs via retry ratios (§3.2.2) ----------------------------------------
  ScopedSpan if_span(options_.tracer, "phase.static.if");
  IfOutlierAnalysis analysis(program_, index_, options_.if_outliers);
  result.if_outliers = analysis.FindOutliers();
  for (const IfOutlierReport& outlier : result.if_outliers) {
    for (const CatchSite& site : outlier.outlier_sites) {
      BugReport bug;
      bug.type = BugType::kIfOutlier;
      bug.technique = DetectionTechnique::kCodeQlStatic;
      bug.app = options_.app_name;
      bug.file = site.file;
      bug.coordinator = site.coordinator;
      bug.exception = outlier.exception;
      bug.detail = outlier.exception + " retried in " + std::to_string(outlier.retried) + "/" +
                   std::to_string(outlier.caught_in_retry_loops) +
                   " retry loops; this site is the outlier (" +
                   (site.retried ? "retried" : "not retried") + ")";
      bug.group_key = "if|" + outlier.exception + "|" + site.file + "|" + site.coordinator;
      bug.location = site.location;
      result.if_bugs.push_back(std::move(bug));
    }
  }
  result.if_bugs = DeduplicateBugs(std::move(result.if_bugs));
  if (options_.metrics != nullptr) {
    options_.metrics->SetGauge("static.when_reports", static_cast<double>(result.when_bugs.size()));
    options_.metrics->SetGauge("static.if_reports", static_cast<double>(result.if_bugs.size()));
  }
  return result;
}

}  // namespace wasabi
