#include "src/core/wasabi.h"

#include <chrono>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/exec/campaign.h"
#include "src/exec/task_pool.h"
#include "src/inject/injector.h"
#include "src/testing/config_restore.h"

namespace wasabi {

namespace {

// Application-vs-test split by path convention: anything under a test/
// directory is harness code the analyses must not treat as application source.
bool IsTestPath(const std::string& file) {
  return file.find("/test/") != std::string::npos || file.rfind("test/", 0) == 0;
}

// Copies the pool's cumulative counters (coverage pass + injection campaign)
// into the registry, with a derived utilization gauge: busy time across all
// workers over `wall_seconds * workers`. Low utilization with high queue-wait
// means starved workers; low utilization with empty queue-wait means the wall
// clock went to serial phases.
void ExportPoolMetrics(MetricsRegistry& metrics, const TaskPool& pool, int workers,
                       double wall_seconds) {
  TaskPoolStats stats = pool.Stats();
  metrics.SetGauge("pool.workers", static_cast<double>(workers));
  for (size_t w = 0; w < stats.workers.size(); ++w) {
    const TaskPoolStats::Worker& worker = stats.workers[w];
    const std::string prefix = "pool.worker." + std::to_string(w);
    metrics.Increment(prefix + ".tasks", static_cast<int64_t>(worker.tasks));
    metrics.Increment(prefix + ".steals", static_cast<int64_t>(worker.steals));
    metrics.Increment(prefix + ".busy_us", worker.busy_us);
    for (int64_t wait_us : worker.queue_wait_us) {
      metrics.Observe("pool.queue_wait_us", static_cast<double>(wait_us));
    }
  }
  metrics.Increment("pool.tasks_total", static_cast<int64_t>(stats.total_tasks()));
  metrics.Increment("pool.steals_total", static_cast<int64_t>(stats.total_steals()));
  metrics.Increment("pool.busy_us_total", stats.total_busy_us());
  metrics.Increment("pool.wall_us_total", static_cast<int64_t>(wall_seconds * 1e6));
  if (wall_seconds > 0 && workers > 0) {
    metrics.SetGauge("pool.utilization", static_cast<double>(stats.total_busy_us()) /
                                             (wall_seconds * 1e6 * workers));
  }
}

}  // namespace

Wasabi::Wasabi(const mj::Program& program, const mj::ProgramIndex& index, WasabiOptions options)
    : program_(program), index_(index), options_(std::move(options)) {}

std::vector<BugReport> CollateStaticWithDynamic(const std::vector<BugReport>& static_bugs,
                                                const DynamicResult& dynamic) {
  // Coordinators whose locations were actually exercised by some unit test.
  std::unordered_set<size_t> covered_indices;
  for (const auto& [test, hits] : dynamic.coverage) {
    covered_indices.insert(hits.begin(), hits.end());
  }
  std::unordered_set<std::string> exercised_coordinators;
  for (size_t index : covered_indices) {
    if (index < dynamic.locations.size()) {
      exercised_coordinators.insert(dynamic.locations[index].coordinator);
    }
  }
  std::unordered_set<std::string> dynamic_keys;
  for (const BugReport& bug : dynamic.bugs) {
    dynamic_keys.insert(bug.MatchKey());
  }

  std::vector<BugReport> kept;
  for (const BugReport& bug : static_bugs) {
    bool exercised = exercised_coordinators.count(bug.coordinator) > 0;
    bool confirmed = dynamic_keys.count(bug.MatchKey()) > 0;
    if (exercised && !confirmed) {
      continue;  // Injection ran against this retry and disagreed.
    }
    kept.push_back(bug);
  }
  return kept;
}

IdentificationResult Wasabi::IdentifyRetryStructures() {
  std::lock_guard<std::mutex> lock(identification_mutex_);
  if (identification_memo_.has_value()) {
    return *identification_memo_;  // Front-loaded: analyze once per instance.
  }
  // Spans only on the memo miss: repeated campaigns reuse the memo and the
  // trace shows the analysis cost exactly once, where it was actually paid.
  ScopedSpan span(options_.tracer, "identify.analysis");
  span.AddArg("app", options_.app_name);
  IdentificationResult result;
  RetryFinder finder(program_, index_, options_.finder);

  // Technique 1: CodeQL-style loop analysis.
  std::vector<RetryStructure> structures = finder.FindLoopStructures();
  result.candidate_loops_without_keyword_filter = finder.FindCandidateLoops().size();

  // Index CodeQL structures by (file, coordinator) for merging.
  std::unordered_map<std::string, std::vector<size_t>> by_coordinator;
  for (size_t i = 0; i < structures.size(); ++i) {
    by_coordinator[structures[i].file + "|" + structures[i].coordinator].push_back(i);
  }

  // Technique 2: SimLLM, one file at a time. Only application source is fed
  // to the model (the paper analyzes the code base, not the test harness).
  SimLlm llm(options_.llm);
  for (const auto& unit : program_.units()) {
    if (IsTestPath(unit->file().name())) {
      continue;
    }
    LlmFileFindings findings = llm.AnalyzeFile(*unit);
    if (findings.truncated_by_attention) {
      ++result.files_truncated_by_llm;
    }
    for (const LlmCoordinator& coordinator : findings.coordinators) {
      std::string key = findings.file + "|" + coordinator.qualified_name;
      auto it = by_coordinator.find(key);
      if (it != by_coordinator.end()) {
        for (size_t index : it->second) {
          structures[index].found_by.llm = true;
        }
        // Both techniques emit triplets (§3.1.1); union the LLM's broader
        // "every invoked method" triplets into the structure so exceptions the
        // loop analysis cannot prove retriable still get injected (the oracles
        // absorb the over-approximation).
        if (coordinator.method != nullptr && !it->second.empty()) {
          RetryStructure& target = structures[it->second.front()];
          std::unordered_set<std::string> known;
          for (const RetryLocation& location : target.locations) {
            known.insert(location.Key());
          }
          for (RetryLocation& location :
               finder.TripletsForCoordinator(*coordinator.method, target.mechanism)) {
            if (known.insert(location.Key()).second) {
              target.locations.push_back(std::move(location));
            }
          }
        }
        continue;
      }
      // New structure only the LLM sees (non-loop retry, or loops the keyword
      // filter missed). The follow-up CodeQL query provides the triplets.
      RetryStructure structure;
      structure.file = findings.file;
      structure.coordinator = coordinator.qualified_name;
      structure.coordinator_decl = coordinator.method;
      structure.mechanism = coordinator.mechanism;
      structure.anchor = nullptr;
      structure.location = coordinator.method != nullptr ? coordinator.method->location
                                                         : mj::SourceLocation{};
      structure.found_by.llm = true;
      if (coordinator.method != nullptr) {
        structure.locations =
            finder.TripletsForCoordinator(*coordinator.method, coordinator.mechanism);
      }
      by_coordinator[key].push_back(structures.size());
      structures.push_back(std::move(structure));
    }
  }

  result.structures = std::move(structures);
  result.llm_usage = llm.usage();
  identification_memo_ = std::move(result);
  return *identification_memo_;
}

std::vector<BugReport> Wasabi::ToBugReports(const std::vector<OracleReport>& reports) const {
  std::vector<BugReport> bugs;
  bugs.reserve(reports.size());
  for (const OracleReport& report : reports) {
    BugReport bug;
    switch (report.kind) {
      case OracleKind::kMissingCap:
        bug.type = BugType::kWhenMissingCap;
        break;
      case OracleKind::kMissingDelay:
        bug.type = BugType::kWhenMissingDelay;
        break;
      case OracleKind::kDifferentException:
        bug.type = BugType::kHow;
        break;
    }
    bug.technique = DetectionTechnique::kUnitTesting;
    bug.app = options_.app_name;
    bug.file = report.location.file;
    bug.coordinator = report.location.coordinator;
    bug.detail = report.detail + " [test " + report.test + "]";
    bug.group_key = report.group_key;
    bug.location = report.location.location;
    bugs.push_back(std::move(bug));
  }
  return bugs;
}

DynamicResult Wasabi::RunDynamicWorkflow() {
  using Clock = std::chrono::steady_clock;
  auto seconds_since = [](Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  DynamicResult result;
  ScopedSpan workflow_span(options_.tracer, "workflow.dynamic");
  workflow_span.AddArg("app", options_.app_name);

  Clock::time_point phase_start = Clock::now();
  IdentificationResult identification;
  {
    ScopedSpan span(options_.tracer, "phase.identify");
    identification = IdentifyRetryStructures();
  }
  result.identification_seconds = seconds_since(phase_start);
  result.structures_identified = identification.structures.size();

  // Collect the injectable retry locations (deduplicated across structures)
  // and remember which structure each belongs to.
  std::unordered_set<std::string> seen_locations;
  std::vector<size_t> location_to_structure;
  for (size_t s = 0; s < identification.structures.size(); ++s) {
    for (const RetryLocation& location : identification.structures[s].locations) {
      if (seen_locations.insert(location.Key()).second) {
        result.locations.push_back(location);
        location_to_structure.push_back(s);
      }
    }
  }

  // Test preparation (§3.1.4): defaults + restoration of restricted configs.
  RunnerOptions runner_options;
  runner_options.interp = options_.interp;
  runner_options.config_overrides = options_.default_configs;
  if (options_.restore_configs) {
    ConfigRestorationResult restoration = ScanTestsForRetryRestrictions(program_);
    runner_options.frozen_keys = restoration.keys_to_freeze;
    result.config_restrictions_restored = restoration.restrictions.size();
  }
  TestRunner runner(program_, index_, runner_options);

  std::vector<TestCase> tests = runner.DiscoverTests();
  result.total_tests = tests.size();

  // Worker pool shared by the coverage pass and the injection campaign. Every
  // run builds a fresh Interpreter over the shared immutable Program/index,
  // so the only cross-run state is read-only.
  TaskPool pool(options_.jobs);
  result.jobs_used = pool.worker_count();
  CampaignObs obs{options_.tracer, options_.metrics, options_.progress};

  // Coverage discovery run (one run of every test).
  phase_start = Clock::now();
  {
    ScopedSpan span(options_.tracer, "phase.coverage");
    span.AddArg("tests", static_cast<int64_t>(tests.size()));
    if (options_.progress != nullptr) {
      options_.progress->Begin("coverage", tests.size());
    }
    CoverageOutcome coverage_outcome =
        MapCoverageRobust(runner, tests, result.locations, pool, options_.robust, obs);
    result.coverage = std::move(coverage_outcome.coverage);
    result.quarantined = std::move(coverage_outcome.quarantined);
    result.robustness.MergeFrom(coverage_outcome.robustness);
    if (options_.progress != nullptr) {
      options_.progress->Finish();
    }
  }
  result.coverage_seconds = seconds_since(phase_start);
  result.tests_covering_retry = result.coverage.size();

  // Structures covered: at least one of their locations fired in some test.
  std::unordered_set<size_t> covered_locations;
  for (const auto& [test, hit_indices] : result.coverage) {
    covered_locations.insert(hit_indices.begin(), hit_indices.end());
  }
  std::unordered_set<size_t> covered_structures;
  for (size_t index : covered_locations) {
    covered_structures.insert(location_to_structure[index]);
  }
  result.structures_covered = covered_structures.size();

  // Plan and execute injections; two K settings per planned pair (§3.1.2).
  std::vector<CampaignRunSpec> specs;
  {
    ScopedSpan span(options_.tracer, "phase.plan");
    std::vector<PlanEntry> plan = options_.use_planner
                                      ? PlanInjections(result.coverage, result.locations.size())
                                      : NaivePlan(result.coverage);
    result.naive_runs = NaivePlan(result.coverage).size() * 2;
    result.planned_runs = plan.size() * 2;
    specs = ExpandPlan(plan, result.locations, {kInjectOnce, kInjectRepeatedly});
    span.AddArg("planned_runs", static_cast<int64_t>(result.planned_runs));
    span.AddArg("naive_runs", static_cast<int64_t>(result.naive_runs));
  }
  if (options_.metrics != nullptr) {
    options_.metrics->SetGauge("plan.planned_runs", static_cast<double>(result.planned_runs));
    options_.metrics->SetGauge("plan.naive_runs", static_cast<double>(result.naive_runs));
    options_.metrics->SetGauge("identify.structures", static_cast<double>(
                                                          result.structures_identified));
    options_.metrics->SetGauge("identify.locations", static_cast<double>(
                                                         result.locations.size()));
  }

  // Fan the campaign out over the pool; evaluate oracles serially over the
  // id-ordered results, which is exactly the order the serial loop produced
  // (plan-entry-major, K-minor) — worker scheduling cannot change the output.
  phase_start = Clock::now();
  std::vector<CampaignRunResult> campaign;
  {
    ScopedSpan span(options_.tracer, "phase.campaign");
    span.AddArg("runs", static_cast<int64_t>(specs.size()));
    span.AddArg("jobs", static_cast<int64_t>(result.jobs_used));
    if (options_.progress != nullptr) {
      options_.progress->Begin("campaign", specs.size());
    }
    CampaignOutcome campaign_outcome =
        ExecuteCampaignRobust(runner, result.locations, specs, pool, options_.robust, obs);
    campaign = std::move(campaign_outcome.results);
    result.quarantined.insert(result.quarantined.end(),
                              campaign_outcome.quarantined.begin(),
                              campaign_outcome.quarantined.end());
    result.robustness.MergeFrom(campaign_outcome.robustness);
    if (options_.progress != nullptr) {
      options_.progress->Finish();
    }
  }
  result.degraded = !result.quarantined.empty();

  std::optional<ScopedSpan> oracle_span(std::in_place, options_.tracer, "phase.oracles");
  std::vector<OracleReport> all_reports;
  for (const CampaignRunResult& run : campaign) {
    const RetryLocation& location = result.locations[run.location_index];
    if (options_.use_oracles) {
      std::vector<OracleReport> reports = EvaluateOracles(run.record, location, options_.oracles);
      all_reports.insert(all_reports.end(), reports.begin(), reports.end());
    } else {
      // Oracle ablation (§4.4): every test failure is naively reported.
      if (run.record.outcome.status != TestStatus::kPassed) {
        OracleReport report;
        report.kind = OracleKind::kDifferentException;
        report.test = run.record.test.qualified_name;
        report.location = location;
        report.detail = "test failed: " +
                        std::string(TestStatusName(run.record.outcome.status)) + " " +
                        run.record.outcome.exception_class;
        report.group_key = "naive|" + location.Key() + "|" + run.record.outcome.exception_class;
        all_reports.push_back(std::move(report));
      }
    }
  }
  oracle_span.reset();

  result.injection_seconds = seconds_since(phase_start);

  if (options_.metrics != nullptr) {
    options_.metrics->Increment("oracles.reports_total",
                                static_cast<int64_t>(all_reports.size()));
    ExportPoolMetrics(*options_.metrics, pool, result.jobs_used,
                      result.coverage_seconds + result.injection_seconds);
  }

  result.raw_reports = all_reports;
  result.bugs = DeduplicateBugs(ToBugReports(DeduplicateReports(std::move(all_reports))));
  return result;
}

StaticResult Wasabi::RunStaticWorkflow() {
  StaticResult result;
  ScopedSpan workflow_span(options_.tracer, "workflow.static");
  workflow_span.AddArg("app", options_.app_name);

  // --- WHEN bugs via the LLM prompts (§3.2.1) ---------------------------------
  std::optional<ScopedSpan> when_span(std::in_place, options_.tracer, "phase.static.when");
  SimLlm llm(options_.llm);
  for (const auto& unit : program_.units()) {
    if (IsTestPath(unit->file().name())) {
      continue;
    }
    LlmFileFindings findings = llm.AnalyzeFile(*unit);
    for (const LlmCoordinator& coordinator : findings.coordinators) {
      LlmWhenJudgment judgment = llm.JudgeWhen(*unit, coordinator);
      if (judgment.poll_or_spin) {
        continue;  // Q4 exclusion.
      }
      auto make_bug = [&](BugType type, const std::string& detail) {
        BugReport bug;
        bug.type = type;
        bug.technique = DetectionTechnique::kLlmStatic;
        bug.app = options_.app_name;
        bug.file = findings.file;
        bug.coordinator = coordinator.qualified_name;
        bug.detail = detail;
        bug.group_key = std::string(BugTypeName(type)) + "|" + findings.file + "|" +
                        coordinator.qualified_name;
        bug.location = coordinator.method != nullptr ? coordinator.method->location
                                                     : mj::SourceLocation{};
        result.when_bugs.push_back(std::move(bug));
      };
      if (!judgment.has_cap) {
        make_bug(BugType::kWhenMissingCap,
                 "LLM: no cap or time limit on retry (Q3 answered No)");
      }
      if (!judgment.sleeps_before_retry) {
        make_bug(BugType::kWhenMissingDelay,
                 "LLM: no sleep before retrying (Q2 answered No)");
      }
    }
  }
  result.when_bugs = DeduplicateBugs(std::move(result.when_bugs));
  result.llm_usage = llm.usage();
  when_span.reset();

  // --- IF bugs via retry ratios (§3.2.2) ----------------------------------------
  ScopedSpan if_span(options_.tracer, "phase.static.if");
  IfOutlierAnalysis analysis(program_, index_, options_.if_outliers);
  result.if_outliers = analysis.FindOutliers();
  for (const IfOutlierReport& outlier : result.if_outliers) {
    for (const CatchSite& site : outlier.outlier_sites) {
      BugReport bug;
      bug.type = BugType::kIfOutlier;
      bug.technique = DetectionTechnique::kCodeQlStatic;
      bug.app = options_.app_name;
      bug.file = site.file;
      bug.coordinator = site.coordinator;
      bug.exception = outlier.exception;
      bug.detail = outlier.exception + " retried in " + std::to_string(outlier.retried) + "/" +
                   std::to_string(outlier.caught_in_retry_loops) +
                   " retry loops; this site is the outlier (" +
                   (site.retried ? "retried" : "not retried") + ")";
      bug.group_key = "if|" + outlier.exception + "|" + site.file + "|" + site.coordinator;
      bug.location = site.location;
      result.if_bugs.push_back(std::move(bug));
    }
  }
  result.if_bugs = DeduplicateBugs(std::move(result.if_bugs));
  if (options_.metrics != nullptr) {
    options_.metrics->SetGauge("static.when_reports", static_cast<double>(result.when_bugs.size()));
    options_.metrics->SetGauge("static.if_reports", static_cast<double>(result.if_bugs.size()));
  }
  return result;
}

}  // namespace wasabi
