// The WASABI facade: ties together retry identification (CodeQL-style finder +
// SimLLM), the dynamic repurposed-unit-testing workflow (coverage → plan →
// inject → oracles), and the static workflows (LLM WHEN detection, retry-ratio
// IF detection).
//
// One Wasabi instance analyzes one application (one mj::Program). All results
// are deterministic for a fixed program + options.

#ifndef WASABI_SRC_CORE_WASABI_H_
#define WASABI_SRC_CORE_WASABI_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/if_outliers.h"
#include "src/analysis/retry_finder.h"
#include "src/analysis/retry_model.h"
#include "src/cache/program_digest.h"
#include "src/cache/store.h"
#include "src/core/report.h"
#include "src/exec/prober.h"
#include "src/record/recorder.h"
#include "src/llm/sim_llm.h"
#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/obs/progress.h"
#include "src/obs/trace.h"
#include "src/robust/robust.h"
#include "src/testing/coverage.h"
#include "src/testing/oracles.h"
#include "src/testing/runner.h"

namespace wasabi {

struct WasabiOptions {
  std::string app_name;  // Stamped on every report.
  RetryFinderOptions finder;
  SimLlmConfig llm;
  OracleOptions oracles;
  IfOutlierOptions if_outliers;
  InterpOptions interp;
  // The application's documented default configuration, applied to every test
  // run (used together with config restoration, §3.1.4).
  std::vector<std::pair<std::string, Value>> default_configs;
  bool use_planner = true;       // Off reproduces Table 6 "w/o planning".
  bool use_oracles = true;       // Off reproduces the §4.4 oracle ablation.
  bool restore_configs = true;
  // Worker threads for the dynamic workflow's coverage pass and injection
  // campaign. 1 = strictly serial on the calling thread; 0 = one worker per
  // hardware thread. Results are byte-identical for every setting: runs carry
  // stable ids and the reducer consumes them in id order.
  int jobs = 1;
  // Fault containment for the dynamic workflow (docs/ROBUSTNESS.md): retry
  // policy for infrastructure-failed runs, per-location circuit breaker,
  // optional self-chaos, fail-fast / quarantine budget. The default value
  // changes nothing when no run fails at the host level.
  RobustnessOptions robust;
  // Observability sinks (all non-owning, all default-off). With sinks
  // attached the workflows open phase spans, tag every campaign run, and feed
  // the metric taxonomy in docs/OBSERVABILITY.md; every report and JSON
  // output stays byte-identical either way.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  ProgressMeter* progress = nullptr;
  // Retry-behavior journal (docs/OBSERVABILITY.md "Retry analytics"),
  // non-owning and default-off. With a journal attached the dynamic workflow
  // records every campaign/coverage/probe/cache retry event, forces a cold
  // campaign (a warm replay executes nothing journal-worthy), and exports
  // derived retry.* analytics into `metrics`/`tracer`; stdout and every
  // report byte stay identical either way.
  RetryJournal* journal = nullptr;
  // Optional result cache (docs/CACHING.md), non-owning and default-off. With
  // a store attached, per-file SimLLM results, per-test coverage runs, and
  // whole-campaign verdicts are memoized under content-digest keys; every
  // report stays byte-identical to a cache-off run. Without one, no code path
  // changes at all.
  CacheStore* cache = nullptr;
  // N-repetition flakiness prober (docs/FLAKINESS.md), default-off. With
  // repetitions > 0, every failing campaign verdict is re-executed under
  // virtual-clock perturbation and classified {stable, flaky, chaos-induced};
  // the classification rides on reports (probed == true) and is cached with
  // the campaign verdicts. SimLLM judges a root cause for non-stable classes.
  ProberOptions prober;
  // Record mode (docs/FLAKINESS.md): when non-empty, the dynamic workflow
  // records every campaign run's complete decision stream into this directory
  // (one checksummed run-<id>.rec per run plus MANIFEST.tsv) and forces a cold
  // campaign (a warm replay executes nothing, so there is nothing to record).
  // Recording never changes any report byte.
  std::string record_dir;
};

// Merged output of both identification techniques (Figure 4).
struct IdentificationResult {
  std::vector<RetryStructure> structures;  // With found_by flags set.
  LlmUsage llm_usage;
  size_t candidate_loops_without_keyword_filter = 0;  // §4.4 ablation input.
  size_t files_truncated_by_llm = 0;                  // Large-file misses.
};

// Output of the dynamic workflow (Tables 3, 5, 6).
struct DynamicResult {
  std::vector<BugReport> bugs;            // Deduplicated.
  std::vector<OracleReport> raw_reports;  // Every oracle firing, pre-dedup.
  std::vector<RetryLocation> locations;   // All injectable retry locations.
  CoverageMap coverage;
  size_t total_tests = 0;
  size_t tests_covering_retry = 0;
  size_t structures_identified = 0;
  size_t structures_covered = 0;   // Structures with >= 1 covered location.
  size_t planned_runs = 0;         // Injected runs executed (with planning).
  size_t naive_runs = 0;           // Runs a plan-less WASABI would execute.
  size_t config_restrictions_restored = 0;
  int jobs_used = 1;               // Workers the campaign executor ran with.
  // Fault containment (docs/ROBUSTNESS.md): runs the campaign gave up on
  // (coverage runs carry location "<coverage>"), aggregate resilience
  // counters, and whether the result is degraded (some runs quarantined).
  std::vector<RunFailure> quarantined;
  RobustnessStats robustness;
  bool degraded = false;
  // Flakiness-prober summary (docs/FLAKINESS.md). All zero when the prober is
  // off or restored from a warm campaign (the cached classifications already
  // carry the cold run's counts on the reports themselves).
  size_t probed_runs = 0;
  size_t stable_runs = 0;
  size_t flaky_runs = 0;
  size_t chaos_induced_runs = 0;
  size_t probe_failures = 0;
  // Record mode: non-empty when writing the record directory failed (the
  // analysis itself is unaffected — recording is observation only).
  std::string record_error;
  // Wall-clock phase breakdown (§4.3: test execution dominates; the coverage
  // discovery pass alone is a significant share; static analysis is <1%).
  double identification_seconds = 0.0;
  double coverage_seconds = 0.0;
  double injection_seconds = 0.0;
};

// Output of the static workflow (Table 4, §4.1 IF bugs).
struct StaticResult {
  std::vector<BugReport> when_bugs;           // From SimLLM Q2/Q3.
  std::vector<BugReport> if_bugs;             // From retry-ratio outliers.
  std::vector<IfOutlierReport> if_outliers;   // Raw outlier data.
  LlmUsage llm_usage;
};

// §4.5 mitigation: collates static WHEN reports with dynamic-testing results.
// A static report against a coordinator whose retry locations WERE exercised
// by fault injection — without the dynamic workflow confirming the same bug —
// is dropped: the injected runs are direct evidence against it. Reports on
// coordinators unit testing never reached are kept (static checking's whole
// point is covering untested code).
std::vector<BugReport> CollateStaticWithDynamic(const std::vector<BugReport>& static_bugs,
                                                const DynamicResult& dynamic);

// Outcome of replaying one recorded run in isolation (docs/FLAKINESS.md).
struct ReplayOutcome {
  bool ok = false;        // Record loaded and validated (digests, checksum).
  bool executed = false;  // False for admission-skipped runs, which depend on
                          // campaign-wide state and are not re-executable in
                          // isolation; their recorded verdict stands.
  bool stream_identical = false;   // Replayed decision stream == recorded, byte for byte.
  bool verdict_identical = false;  // Replayed verdict line == recorded verdict line.
  std::string error;               // Load/validation diagnostic when !ok.
  std::string recorded_verdict;
  std::string replayed_verdict;
  std::string divergence;          // First differing event pair, when any.
  RecordedRun recorded;
  RecordedRun replayed;
};

class Wasabi {
 public:
  Wasabi(const mj::Program& program, const mj::ProgramIndex& index, WasabiOptions options = {});

  // Identification parses nothing (the Program is already an AST) but runs
  // the full CFG + SimLLM analysis, so its result is memoized per instance:
  // the corpus is analyzed once up front and every later workflow — including
  // repeated campaigns at different worker counts — reuses the same immutable
  // structures. The memo is mutex-guarded so concurrent callers are safe.
  IdentificationResult IdentifyRetryStructures();
  DynamicResult RunDynamicWorkflow();
  StaticResult RunStaticWorkflow();

  // Replays ONE recorded run in isolation: validates the record directory's
  // version/checksums and that its program/config digests match this instance,
  // re-executes the run's attempt schedule (chaos draws, backoff draws, and
  // injector decisions are pure functions of (run_id, attempt)), and compares
  // the freshly recorded decision stream and verdict byte-for-byte against
  // the recorded ones. Admission-skipped runs ("skipped:" quarantines) return
  // the recorded verdict with executed == false.
  ReplayOutcome ReplayRun(const std::string& record_dir, uint64_t run_id);

  const WasabiOptions& options() const { return options_; }
  // Re-runs of the dynamic workflow may change only the worker count; the
  // analysis memo and every report stay identical by construction.
  void set_jobs(int jobs) { options_.jobs = jobs; }
  // Attaches (or detaches, with nulls) observability sinks after
  // construction — the bench re-runs one instance at several worker counts
  // with a fresh registry per level.
  void set_observability(Tracer* tracer, MetricsRegistry* metrics,
                         ProgressMeter* progress = nullptr, RetryJournal* journal = nullptr) {
    options_.tracer = tracer;
    options_.metrics = metrics;
    options_.progress = progress;
    options_.journal = journal;
  }
  // Attaches (or detaches) the result cache after construction.
  void set_cache(CacheStore* cache) { options_.cache = cache; }

 private:
  std::vector<BugReport> ToBugReports(const std::vector<OracleReport>& reports) const;
  // Content digest of the program, computed once per instance (the Program is
  // immutable for the instance's lifetime).
  const ProgramDigest& GetProgramDigest();

  const mj::Program& program_;
  const mj::ProgramIndex& index_;
  WasabiOptions options_;
  std::mutex identification_mutex_;
  std::optional<IdentificationResult> identification_memo_;
  std::mutex digest_mutex_;
  std::optional<ProgramDigest> program_digest_memo_;
};

}  // namespace wasabi

#endif  // WASABI_SRC_CORE_WASABI_H_
