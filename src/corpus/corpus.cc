#include "src/corpus/corpus.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "src/corpus/generator.h"
#include "src/lang/parser.h"

namespace wasabi {

namespace {

struct AppDescriptor {
  const char* name;
  const char* display_name;
  const char* short_code;
};

const AppDescriptor kApps[] = {
    {"hacommon", "Hadoop-Common", "HA"},
    {"hdfs", "HDFS", "HD"},
    {"mapred", "MapReduce", "MA"},
    {"yarn", "Yarn", "YA"},
    {"hbase", "HBase", "HB"},
    {"hive", "Hive", "HI"},
    {"cassandra", "Cassandra", "CA"},
    {"elastic", "ElasticSearch", "EL"},
};

// Per-application module mixes. Sizes follow the paper's relative scale
// (Table 5): HBase largest, MapReduce/Cassandra smallest; Hive/ElasticSearch
// rich in error-code retry; Yarn's seeded WHEN bugs mostly lack test coverage
// (its unit-testing column in Table 3 is a lone false positive).
GeneratorSpec SpecFor(const std::string& name) {
  GeneratorSpec spec;
  spec.app = name;
  ModuleCounts& c = spec.counts;

  if (name == "hacommon") {
    spec.seed = 11;
    c.ok_loops = 4;
    c.large_file_ok_loops = 1;
    c.ok_state_machines = 1;
    c.nocap_loops = 1;
    c.nocap_loops_untested = 1;
    c.nodelay_loops = 1;
    c.benign_nodelay_loops = 1;
    c.crossfile_delay_loops = 1;
    c.harness_cap_fp_loops = 1;
    c.ok_queues = 2;
    c.how_null_deref = 1;
    c.iteration_loops_fp_bait = 1;
    c.iteration_loops_clean = 2;
    c.poll_loops = 1;
    c.policy_files = 2;
    c.error_code_ok_loops = 1;
    c.error_code_nodelay_loops = 1;
    c.codeql_fp_lock_loops = 1;
    c.if_exception = "KeeperException";
    c.if_retried_sites = 5;
    c.if_not_retried_sites = 1;
    c.background_daemons = 5;
    c.unrelated_util_files = 6;
  } else if (name == "hdfs") {
    spec.seed = 22;
    c.ok_loops = 4;
    c.nocap_loops = 1;
    c.negative_config_cap_loops = 1;  // HDFS-15439 analog.
    c.nodelay_loops = 2;
    c.nodelay_loops_untested = 1;
    c.large_file_nodelay = 1;
    c.benign_nodelay_loops = 1;
    c.crossfile_delay_loops = 1;
    c.harness_cap_fp_loops = 1;
    c.ok_queues = 2;
    c.ok_state_machines = 1;
    c.how_null_deref = 1;  // createBlockReader analog.
    c.how_partial_state = 1;
    c.wrapped_exception_loops = 1;
    c.iteration_loops_clean = 2;
    c.poll_loops = 1;
    c.policy_files = 1;
    c.if_exception = "LeaseExpiredException";
    c.if_retried_sites = 4;
    c.if_not_retried_sites = 1;
    c.background_daemons = 5;
    c.unrelated_util_files = 8;
  } else if (name == "mapred") {
    spec.seed = 33;
    c.ok_loops = 2;
    c.nocap_loops_untested = 1;
    c.nodelay_loops = 2;
    c.benign_nodelay_loops = 1;
    c.ok_queues = 2;
    c.ok_state_machines = 1;
    c.how_shared_map = 1;
    c.error_code_nodelay_loops = 1;
    c.iteration_loops_clean = 1;
    c.policy_files = 1;
    c.background_daemons = 3;
    c.unrelated_util_files = 5;
  } else if (name == "yarn") {
    spec.seed = 44;
    c.ok_loops = 2;
    c.nocap_loops_untested = 1;
    c.nodelay_loops_untested = 1;
    c.halved_cap_loops = 1;  // YARN-8362 analog, expected false negative.
    c.harness_cap_fp_loops = 1;
    c.ok_queues = 1;
    c.ok_state_machines = 2;
    c.large_file_ok_loops = 1;
    c.iteration_loops_clean = 2;
    c.poll_loops = 1;
    c.policy_files = 1;
    c.background_daemons = 4;
    c.unrelated_util_files = 6;
  } else if (name == "hbase") {
    spec.seed = 55;
    c.ok_loops = 8;
    c.nocap_loops = 2;
    c.nocap_loops_untested = 2;
    c.nodelay_loops = 2;
    c.nodelay_loops_untested = 1;
    c.nodelay_state_machines = 1;  // HBASE-20492 analog.
    c.ok_state_machines = 2;
    c.large_file_nodelay = 1;
    c.ok_queues = 3;
    c.bug_queues = 1;
    c.how_null_deref = 1;
    c.how_partial_state = 1;  // HBASE-20616 analog.
    c.wrapped_exception_loops = 1;
    c.how_shared_map = 1;
    c.benign_nodelay_loops = 1;
    c.crossfile_delay_loops = 1;
    c.harness_cap_fp_loops = 1;
    c.error_code_nodelay_loops = 1;
    c.iteration_loops_fp_bait = 2;
    c.iteration_loops_clean = 3;
    c.poll_loops = 1;
    c.policy_files = 2;
    c.codeql_fp_lock_loops = 1;
    c.codeql_fp_unique_string_loops = 1;
    c.if_exception = "KeeperConnectionLossException";
    c.if_retried_sites = 10;
    c.if_not_retried_sites = 2;
    c.background_daemons = 8;
    c.unrelated_util_files = 12;
  } else if (name == "hive") {
    spec.seed = 66;
    c.ok_loops = 2;
    c.nocap_loops = 1;
    c.nodelay_loops = 1;
    c.nodelay_loops_untested = 1;
    c.benign_nodelay_loops = 1;
    c.bug_queues = 1;  // HIVE-23894 analog.
    c.ok_queues = 1;
    c.ok_state_machines = 1;
    c.large_file_ok_loops = 1;
    c.wrapped_exception_loops = 1;
    c.error_code_ok_loops = 2;
    c.error_code_nodelay_loops = 2;
    c.crossfile_delay_loops = 1;
    c.iteration_loops_fp_bait = 1;
    c.iteration_loops_clean = 2;
    c.poll_loops = 1;
    c.policy_files = 2;
    c.codeql_fp_unique_string_loops = 1;
    c.if_exception = "TTransportException";
    c.if_retried_sites = 4;
    c.if_not_retried_sites = 1;
    c.background_daemons = 5;
    c.unrelated_util_files = 7;
  } else if (name == "cassandra") {
    spec.seed = 77;
    c.ok_loops = 2;
    c.nocap_loops = 1;
    c.nocap_loops_untested = 1;
    c.nodelay_loops = 1;
    c.ok_queues = 2;
    c.ok_state_machines = 1;
    c.error_code_nodelay_loops = 1;
    c.iteration_loops_clean = 2;
    c.poll_loops = 1;
    c.policy_files = 1;
    c.background_daemons = 3;
    c.unrelated_util_files = 5;
  } else if (name == "elastic") {
    spec.seed = 88;
    c.ok_loops = 2;
    c.nocap_loops_untested = 1;
    c.nodelay_loops_untested = 1;
    c.bug_queues = 1;  // ElasticSearch-53687 analog (endless cancel retry).
    c.codeql_fp_param_parsers = 1;  // The paper's retryOnConflict example IS ES.
    c.ok_queues = 1;
    c.ok_state_machines = 1;
    c.wrapped_exception_loops = 1;
    c.large_file_nodelay = 1;
    c.benign_nodelay_loops = 1;
    c.crossfile_delay_loops = 2;
    c.error_code_ok_loops = 2;
    c.error_code_nodelay_loops = 2;
    c.iteration_loops_fp_bait = 2;
    c.iteration_loops_clean = 2;
    c.poll_loops = 2;
    c.policy_files = 2;
    c.background_daemons = 5;
    c.unrelated_util_files = 6;
  } else if (name == "flakylab") {
    // Flakiness-prober ground truth (docs/FLAKINESS.md). Deliberately NOT in
    // kApps: the full-corpus goldens must not change. Built on demand by the
    // prober/replay tests, it seeds exactly one bug per stability class —
    // timing-dependent (kFlaky), degraded-environment-only (kChaosInduced),
    // and a plain deterministic missing cap (kStable) — so classification
    // precision/recall against the manifest is exact.
    spec.seed = 99;
    spec.display_name = "FlakyLab";
    c.ok_loops = 1;
    c.nocap_loops = 1;  // The stable deterministic failure.
    c.timing_flaky_loops = 1;
    c.chaos_cap_loops = 1;
    c.unrelated_util_files = 2;
  } else if (name == "stormlab") {
    // Storm-simulation ground truth (docs/STORM.md). Like flakylab,
    // deliberately NOT in kApps — the full-corpus goldens must not change.
    // Built on demand by the storm tests, the `wasabi storm` smoke test, and
    // bench/stress_storm. Four service frontends: one healthy, plus exactly
    // one seeded bug per storm class — missing jitter, unbounded fan-out,
    // retry-on-overload — so the simulation oracles score exact TP/FP.
    spec.seed = 111;
    spec.display_name = "StormLab";
    c.storm_ok_services = 1;
    c.storm_nojitter_services = 1;
    c.storm_fanout_services = 1;
    c.storm_overload_services = 1;
    c.unrelated_util_files = 2;
  } else if (name == "repairlab") {
    // Automated-repair ground truth (docs/REPAIR.md). Like the other labs,
    // deliberately NOT in kApps — the full-corpus goldens must not change.
    // One module per repair-template target (uncapped while-retry, `!=` cap
    // comparison against a negative config, delay-less retry, plus one storm
    // service per storm bug class) and healthy controls, so the repair
    // pipeline's fixed/not-fixed/regressed scoring against the manifest is
    // exact: every template-fixable seeded bug must come back fixed, the
    // un-templatable fan-out bug must come back no-template, and the healthy
    // modules must produce no patch at all.
    spec.seed = 123;
    spec.display_name = "RepairLab";
    c.ok_loops = 1;
    c.nocap_loops = 1;
    c.negative_config_cap_loops = 1;
    c.nodelay_loops = 1;
    c.storm_ok_services = 1;
    c.storm_nojitter_services = 1;
    c.storm_fanout_services = 1;
    c.storm_overload_services = 1;
    c.unrelated_util_files = 2;
  } else {
    std::fprintf(stderr, "unknown corpus app '%s'\n", name.c_str());
    std::abort();
  }
  return spec;
}

}  // namespace

const std::vector<std::string>& CorpusAppNames() {
  static const std::vector<std::string>* kNames = [] {
    auto* names = new std::vector<std::string>();
    for (const AppDescriptor& app : kApps) {
      names->push_back(app.name);
    }
    return names;
  }();
  return *kNames;
}

bool IsKnownCorpusApp(const std::string& name) {
  if (name == "flakylab" || name == "stormlab" || name == "repairlab") {
    return true;
  }
  for (const AppDescriptor& app : kApps) {
    if (name == app.name) {
      return true;
    }
  }
  return false;
}

namespace {

// Shared tail of app construction: generate, parse, index. `base_name` picks
// the descriptor (display name / short code); `spec` may describe a variant.
CorpusApp BuildFromSpec(const std::string& base_name, GeneratorSpec spec) {
  for (const AppDescriptor& descriptor : kApps) {
    if (base_name == descriptor.name) {
      spec.display_name = descriptor.display_name;
    }
  }
  if (spec.app != base_name) {
    // Variant apps carry their variant tag in the display name too.
    spec.display_name += " (" + spec.app.substr(base_name.size() + 1) + ")";
  }
  GeneratedApp generated = GenerateApp(spec);

  CorpusApp app;
  app.name = generated.name;
  app.display_name = generated.display_name;
  for (const AppDescriptor& descriptor : kApps) {
    if (base_name == descriptor.name) {
      app.short_code = descriptor.short_code;
    }
  }
  app.bugs = generated.bugs;
  app.seeded_retry_structures = generated.seeded_retry_structures;
  app.true_retry_coordinators = generated.true_retry_coordinators;

  mj::DiagnosticEngine diag;
  for (auto& [file, source] : generated.files) {
    app.source_files += 1;
    app.source_bytes += source.size();
    app.program.AddUnit(mj::ParseSource(file, std::move(source), diag));
  }
  if (diag.has_errors()) {
    std::fprintf(stderr, "corpus app '%s' failed to parse:\n%s", app.name.c_str(),
                 diag.FormatAll(nullptr).c_str());
    std::abort();
  }
  app.index = std::make_unique<mj::ProgramIndex>(app.program, &diag);
  if (diag.has_errors()) {
    std::fprintf(stderr, "corpus app '%s' failed to index:\n%s", app.name.c_str(),
                 diag.FormatAll(nullptr).c_str());
    std::abort();
  }

  for (const auto& [key, value] : generated.default_int_configs) {
    app.default_configs.emplace_back(key, Value{value});
  }
  return app;
}

}  // namespace

CorpusApp BuildCorpusApp(const std::string& name) {
  return BuildFromSpec(name, SpecFor(name));
}

std::vector<CorpusApp> BuildFullCorpus() {
  std::vector<CorpusApp> corpus;
  corpus.reserve(CorpusAppNames().size());
  for (const std::string& name : CorpusAppNames()) {
    corpus.push_back(BuildCorpusApp(name));
  }
  return corpus;
}

CorpusApp BuildCorpusAppVariant(const std::string& name, int variant) {
  if (variant <= 1) {
    return BuildCorpusApp(name);
  }
  GeneratorSpec spec = SpecFor(name);
  spec.app = name + "_v" + std::to_string(variant);
  // A large odd multiplier spreads variant seeds far apart so no two variants
  // (or base apps) share a generator stream.
  spec.seed += 1000003ull * static_cast<uint64_t>(variant - 1);
  return BuildFromSpec(name, std::move(spec));
}

std::vector<std::string> ScaledCorpusAppNames(int scale) {
  std::vector<std::string> names;
  for (const std::string& base : CorpusAppNames()) {
    names.push_back(base);
    for (int variant = 2; variant <= scale; ++variant) {
      names.push_back(base + "_v" + std::to_string(variant));
    }
  }
  return names;
}

CorpusApp BuildScaledCorpusApp(const std::string& scaled_name) {
  size_t tag = scaled_name.rfind("_v");
  if (tag != std::string::npos && tag + 2 < scaled_name.size()) {
    const std::string digits = scaled_name.substr(tag + 2);
    if (digits.find_first_not_of("0123456789") == std::string::npos) {
      return BuildCorpusAppVariant(scaled_name.substr(0, tag),
                                   std::atoi(digits.c_str()));
    }
  }
  return BuildCorpusApp(scaled_name);
}

std::vector<CorpusApp> BuildScaledCorpus(int scale) {
  std::vector<CorpusApp> corpus;
  for (const std::string& name : ScaledCorpusAppNames(scale)) {
    corpus.push_back(BuildScaledCorpusApp(name));
  }
  return corpus;
}

}  // namespace wasabi
