// The evaluation corpus: eight synthetic applications standing in for the
// systems the paper evaluates on (Hadoop-Common, HDFS, MapReduce, Yarn, HBase,
// Hive, Cassandra, ElasticSearch). Each application is generated
// deterministically from a per-app spec (see generator.h) and ships with an
// exact ground-truth manifest of seeded retry bugs.

#ifndef WASABI_SRC_CORPUS_CORPUS_H_
#define WASABI_SRC_CORPUS_CORPUS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/scoring.h"
#include "src/interp/value.h"
#include "src/lang/sema.h"

namespace wasabi {

struct CorpusApp {
  std::string name;          // "hbase"
  std::string display_name;  // "HBase"
  std::string short_code;    // "HB" (the paper's column heading)
  mj::Program program;
  std::unique_ptr<mj::ProgramIndex> index;
  std::vector<SeededBug> bugs;
  std::vector<std::pair<std::string, Value>> default_configs;
  int seeded_retry_structures = 0;
  // Structure-level ground truth: qualified methods that genuinely retry.
  std::vector<std::string> true_retry_coordinators;
  size_t source_files = 0;
  size_t source_bytes = 0;
};

// The eight application ids in the paper's column order:
// hacommon, hdfs, mapred, yarn, hbase, hive, cassandra, elastic.
const std::vector<std::string>& CorpusAppNames();

// True for the eight base ids plus the on-demand ground-truth labs
// ("flakylab", "stormlab", "repairlab") that are deliberately outside the
// full-corpus goldens. Lets the CLI validate `dump-corpus --app` without
// aborting.
bool IsKnownCorpusApp(const std::string& name);

// Builds one application by id. Aborts (assert) on unknown id or if the
// generated source fails to parse — corpus generation is covered by tests.
CorpusApp BuildCorpusApp(const std::string& name);

// Builds all eight applications.
std::vector<CorpusApp> BuildFullCorpus();

// --- Corpus scaling (bench workloads, docs/CACHING.md) ----------------------
//
// A scaled corpus repeats each base application as deterministic seeded
// variants: variant 1 is the base app itself; variant K >= 2 regenerates the
// same module mix under id "name_vK" with a remixed seed, so the variant is
// structurally similar but textually distinct (different identifiers, noise,
// and bug placements). Same (name, variant) always yields the same sources.

// App ids for a scale-N corpus, grouped per base app in paper column order:
// scale 1 = the 8 base ids; scale 3 = "hacommon", "hacommon_v2",
// "hacommon_v3", "hdfs", ... Scale < 1 is treated as 1.
std::vector<std::string> ScaledCorpusAppNames(int scale);

// Builds variant `variant` (1-based) of base app `name`. Variant 1 is exactly
// BuildCorpusApp(name). Aborts on unknown base id, like BuildCorpusApp.
CorpusApp BuildCorpusAppVariant(const std::string& name, int variant);

// Builds an app from a scaled id ("hbase" or "hbase_v3"). Aborts on ids not
// produced by ScaledCorpusAppNames.
CorpusApp BuildScaledCorpusApp(const std::string& scaled_name);

// Builds the full scale-N corpus in ScaledCorpusAppNames order.
std::vector<CorpusApp> BuildScaledCorpus(int scale);

}  // namespace wasabi

#endif  // WASABI_SRC_CORPUS_CORPUS_H_
