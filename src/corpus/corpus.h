// The evaluation corpus: eight synthetic applications standing in for the
// systems the paper evaluates on (Hadoop-Common, HDFS, MapReduce, Yarn, HBase,
// Hive, Cassandra, ElasticSearch). Each application is generated
// deterministically from a per-app spec (see generator.h) and ships with an
// exact ground-truth manifest of seeded retry bugs.

#ifndef WASABI_SRC_CORPUS_CORPUS_H_
#define WASABI_SRC_CORPUS_CORPUS_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/scoring.h"
#include "src/interp/value.h"
#include "src/lang/sema.h"

namespace wasabi {

struct CorpusApp {
  std::string name;          // "hbase"
  std::string display_name;  // "HBase"
  std::string short_code;    // "HB" (the paper's column heading)
  mj::Program program;
  std::unique_ptr<mj::ProgramIndex> index;
  std::vector<SeededBug> bugs;
  std::vector<std::pair<std::string, Value>> default_configs;
  int seeded_retry_structures = 0;
  // Structure-level ground truth: qualified methods that genuinely retry.
  std::vector<std::string> true_retry_coordinators;
  size_t source_files = 0;
  size_t source_bytes = 0;
};

// The eight application ids in the paper's column order:
// hacommon, hdfs, mapred, yarn, hbase, hive, cassandra, elastic.
const std::vector<std::string>& CorpusAppNames();

// Builds one application by id. Aborts (assert) on unknown id or if the
// generated source fails to parse — corpus generation is covered by tests.
CorpusApp BuildCorpusApp(const std::string& name);

// Builds all eight applications.
std::vector<CorpusApp> BuildFullCorpus();

}  // namespace wasabi

#endif  // WASABI_SRC_CORPUS_CORPUS_H_
