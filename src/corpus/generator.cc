#include "src/corpus/generator.h"

#include <cassert>
#include <sstream>
#include <unordered_set>

namespace wasabi {

namespace {

// Deterministic LCG so corpus generation is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 2654435769ULL + 1) {}

  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 11;
  }

  int Int(int lo, int hi) {  // Inclusive bounds.
    return lo + static_cast<int>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

 private:
  uint64_t state_;
};

const char* kPrefixes[] = {
    "Block",   "Region",  "Segment",  "Shard",     "Journal", "Lease",  "Replica",
    "Snapshot", "Compaction", "Partition", "Topic", "Index",  "Bucket", "Ledger",
    "Chunk",   "Token",   "Quota",    "Cache",     "Meta",    "Gossip", "Manifest",
    "Catalog", "Cursor",  "Epoch",    "Heartbeat", "Bundle",  "Commit", "Offset",
};

const char* kTriggerExceptions[] = {
    "ConnectException",       "SocketException",        "SocketTimeoutException",
    "TimeoutException",       "RemoteException",        "ServiceUnavailableException",
    "LeaseExpiredException",  "KeeperConnectionLossException",
};

std::string Capitalize(std::string text) {
  if (!text.empty()) {
    text[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(text[0])));
  }
  return text;
}

std::string ToLower(std::string text) {
  for (char& c : text) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return text;
}

// Builds one application from its spec.
class AppBuilder {
 public:
  explicit AppBuilder(const GeneratorSpec& spec) : spec_(spec), rng_(spec.seed) {}

  GeneratedApp Build();

 private:
  // --- Infrastructure -------------------------------------------------------
  std::string FreshName(const std::string& suffix) {
    for (int tries = 0; tries < 1000; ++tries) {
      std::string name = std::string(kPrefixes[rng_.Int(0, 27)]) + suffix;
      if (used_names_.insert(name).second) {
        return name;
      }
    }
    // Pool exhausted: disambiguate numerically.
    std::string name = "Extra" + suffix + std::to_string(serial_++);
    used_names_.insert(name);
    return name;
  }

  std::string PickException() { return kTriggerExceptions[rng_.Int(0, 7)]; }

  void AddFile(const std::string& cls, std::string source, bool test_dir = false) {
    std::string path = spec_.app + "/" + (test_dir ? "test/" : "") + cls + ".mj";
    app_.files.emplace_back(std::move(path), std::move(source));
  }

  void AddBug(BugType type, const std::string& cls, const std::string& method,
              const std::string& note, bool tested,
              VerdictStability expected_stability = VerdictStability::kStable) {
    SeededBug bug;
    bug.id = spec_.app + "-" + std::to_string(app_.bugs.size() + 1);
    bug.app = spec_.app;
    bug.type = type;
    bug.file = spec_.app + "/" + cls + ".mj";
    bug.coordinator = cls + "." + method;
    bug.note = note;
    bug.reachable_from_tests = tested;
    bug.expected_stability = expected_stability;
    app_.bugs.push_back(std::move(bug));
  }

  // Records a genuine retry coordinator for the structure-level ground truth
  // (the §4.2 identification-accuracy evaluation scores against this).
  void RegisterRetry(const std::string& cls, const std::string& method) {
    app_.true_retry_coordinators.push_back(cls + "." + method);
    app_.seeded_retry_structures += 1;
  }

  std::string RpcClientClass() const { return Capitalize(spec_.app) + "RpcClient"; }

  // The preamble inserted into roughly every other test: touches the shared
  // RPC client's retry locations so they are covered redundantly (Table 6).
  std::string MaybeTestPreamble() {
    ++test_counter_;
    std::string preamble;
    if (spec_.shared_rpc_client && test_counter_ % 2 == 0) {
      preamble += "    var rpc = new " + RpcClientClass() + "();\n";
      preamble += "    rpc.ping();\n";
      preamble += "    rpc.lookup(\"meta\");\n";
    }
    if (test_counter_ % 6 == 0) {
      // A developer-restricted retry config (§3.1.4 restoration target).
      preamble += "    Config.set(\"" + spec_.app + ".rpc.retry.max\", 1);\n";
    }
    return preamble;
  }

  void EmitTest(const std::string& cls, const std::string& body_lines) {
    std::ostringstream out;
    out << "// Unit tests for " << cls << ".\n";
    out << "class " << cls << "Test {\n";
    out << body_lines;
    out << "}\n";
    AddFile(cls + "Test", out.str(), /*test_dir=*/true);
  }

  // --- Module templates -------------------------------------------------------
  void EmitSharedRpcClient();
  void EmitOkLoop(bool large_file);
  void EmitNoCapLoop(bool tested);
  void EmitNegativeConfigCapLoop();
  void EmitNoDelayLoop(bool tested, bool large_file);
  void EmitBenignNoDelayLoop();
  void EmitWrappedExceptionLoop();
  void EmitCrossFileDelayLoop();
  void EmitHarnessCapFpLoop();
  void EmitOkQueue();
  void EmitBugQueue();
  void EmitStateMachine(bool with_delay);
  void EmitHowNullDeref();
  void EmitHowPartialState();
  void EmitHowSharedMap();
  void EmitErrorCodeLoop(bool with_delay);
  void EmitIterationFpBait();
  void EmitIterationClean(int variant);
  void EmitPollLoop();
  void EmitPolicyFile(bool dense);
  void EmitCodeqlFpLock();
  void EmitCodeqlFpUniqueString();
  void EmitCodeqlFpParamParser();
  void EmitIfRatioModule();
  void EmitTimingFlakyLoop();
  void EmitChaosCapLoop();
  void EmitHalvedCapLoop();
  void EmitDaemonModule();
  void EmitUnrelatedUtil();
  void EmitStormOkService();
  void EmitStormNoJitterService();
  void EmitStormFanoutService();
  void EmitStormOverloadService();

  const GeneratorSpec& spec_;
  GeneratedApp app_;
  Rng rng_;
  std::unordered_set<std::string> used_names_;
  int serial_ = 0;
  int test_counter_ = 0;
};

void AppBuilder::EmitSharedRpcClient() {
  std::string cls = RpcClientClass();
  used_names_.insert(cls);
  std::ostringstream out;
  out << "// Lightweight RPC facade shared by every " << spec_.display_name
      << " component.\n"
      << "// Transient transport errors are retried with bounded backoff.\n"
      << "class " << cls << " {\n"
      << "  int maxAttempts = Config.getInt(\"" << spec_.app << ".rpc.retry.max\", 5);\n"
      << "\n"
      << "  String ping() throws IOException {\n"
      << "    var lastError = null;\n"
      << "    for (var retry = 0; retry < this.maxAttempts; retry++) {\n"
      << "      try {\n"
      << "        return this.call(\"ping\");\n"
      << "      } catch (IOException e) {\n"
      << "        lastError = e;\n"
      << "        Log.warn(\"rpc ping failed; retrying: \" + e.getMessage());\n"
      << "        Thread.sleep(Config.getInt(\"" << spec_.app << ".rpc.backoff.ms\", 50));\n"
      << "      }\n"
      << "    }\n"
      << "    if (lastError != null) {\n"
      << "      throw lastError;\n"
      << "    }\n"
      << "    throw new ConnectException(\"rpc: ping retries exhausted\");\n"
      << "  }\n"
      << "\n"
      << "  String lookup(String key) throws IOException {\n"
      << "    var lastError = null;\n"
      << "    for (var retry = 0; retry < this.maxAttempts; retry++) {\n"
      << "      try {\n"
      << "        return this.call(\"lookup:\" + key);\n"
      << "      } catch (IOException e) {\n"
      << "        lastError = e;\n"
      << "        Thread.sleep(Config.getInt(\"" << spec_.app << ".rpc.backoff.ms\", 50));\n"
      << "      }\n"
      << "    }\n"
      << "    if (lastError != null) {\n"
      << "      throw lastError;\n"
      << "    }\n"
      << "    throw new ConnectException(\"rpc: lookup retries exhausted\");\n"
      << "  }\n"
      << "\n"
      << "  String call(String payload) throws ConnectException, SocketTimeoutException {\n"
      << "    return \"ok:\" + payload;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "ping");
  RegisterRetry(cls, "lookup");
  app_.default_int_configs.emplace_back(spec_.app + ".rpc.retry.max", 5);
  app_.default_int_configs.emplace_back(spec_.app + ".rpc.backoff.ms", 50);
}

void AppBuilder::EmitOkLoop(bool large_file) {
  std::string cls = FreshName(large_file ? "Registry" : "Uploader");
  std::string exc = PickException();
  std::string key = spec_.app + "." + ToLower(cls);
  std::ostringstream out;
  out << "// Uploads one artifact; transient " << exc << " is retried with backoff.\n"
      << "class " << cls << " {\n"
      << "  int maxAttempts = Config.getInt(\"" << key << ".retry.max\", 5);\n";
  if (large_file) {
    for (int i = 0; i < 90; ++i) {
      out << "\n"
          << "  int digestChunk" << i << "(span) {\n"
          << "    var mixed = span * " << (i + 5) << " + " << (i * 11 % 17) << ";\n"
          << "    var folded = (mixed * 31 + this.maxAttempts) % 65521;\n"
          << "    return Math.abs(folded);\n"
          << "  }\n";
    }
  }
  out << "\n"
      << "  String uploadWithRetry(item) throws " << exc << " {\n"
      << "    var lastError = null;\n"
      << "    for (var retry = 0; retry < this.maxAttempts; retry++) {\n"
      << "      try {\n"
      << "        return this.upload(item);\n"
      << "      } catch (" << exc << " e) {\n"
      << "        lastError = e;\n"
      << "        Log.warn(\"upload failed, retrying: \" + e.getMessage());\n"
      << "        Thread.sleep(Config.getInt(\"" << key << ".backoff.ms\", 100));\n"
      << "      }\n"
      << "    }\n"
      << "    throw lastError;\n"
      << "  }\n"
      << "\n"
      << "  String upload(item) throws " << exc << " {\n"
      << "    return \"stored:\" + item;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "uploadWithRetry");

  std::ostringstream test;
  test << "  void testUpload() {\n"
       << MaybeTestPreamble()  //
       << "    var s = new " << cls << "();\n"
       << "    Assert.assertEquals(\"stored:7\", s.uploadWithRetry(7));\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitNoCapLoop(bool tested) {
  std::string cls = FreshName("Syncer");
  std::string exc = PickException();
  std::string key = spec_.app + "." + ToLower(cls);
  std::ostringstream out;
  out << "// Pushes state to the coordinator.\n"
      << "class " << cls << " {\n"
      << "  String syncWithRetry(snapshot) {\n"
      << "    while (true) {\n"
      << "      try {\n"
      << "        return this.push(snapshot);\n"
      << "      } catch (" << exc << " e) {\n"
      << "        // Keep retrying until the peer becomes reachable.\n"
      << "        Log.warn(\"push failed; will retry\");\n"
      << "        Thread.sleep(Config.getInt(\"" << key << ".backoff.ms\", 100));\n"
      << "      }\n"
      << "    }\n"
      << "  }\n"
      << "\n"
      << "  String push(snapshot) throws " << exc << " {\n"
      << "    return \"synced:\" + snapshot;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "syncWithRetry");
  AddBug(BugType::kWhenMissingCap, cls, "syncWithRetry",
         "while(true) retry with no attempt or time cap", tested);

  if (tested) {
    std::ostringstream test;
    test << "  void testSync() {\n"
         << MaybeTestPreamble()  //
         << "    var s = new " << cls << "();\n"
         << "    Assert.assertEquals(\"synced:1\", s.syncWithRetry(1));\n"
         << "  }\n";
    EmitTest(cls, test.str());
  }
}

void AppBuilder::EmitNegativeConfigCapLoop() {
  std::string cls = FreshName("Mover");
  std::string exc = PickException();
  std::string key = spec_.app + "." + ToLower(cls) + ".retry.max.attempts";
  std::ostringstream out;
  out << "// Moves a block between nodes (HDFS-15439 analog): the cap check uses\n"
      << "// inequality, so a negative configured maximum retries forever.\n"
      << "class " << cls << " {\n"
      << "  int maxAttempts = Config.getInt(\"" << key << "\", -1);\n"
      << "\n"
      << "  String moveWithRetry(block) throws " << exc << " {\n"
      << "    for (var retry = 0; retry != this.maxAttempts; retry++) {\n"
      << "      try {\n"
      << "        return this.move(block);\n"
      << "      } catch (" << exc << " e) {\n"
      << "        Log.warn(\"move failed; retry \" + retry);\n"
      << "        Thread.sleep(40);\n"
      << "      }\n"
      << "    }\n"
      << "    throw new " << exc << "(\"mover retries exhausted\");\n"
      << "  }\n"
      << "\n"
      << "  String move(block) throws " << exc << " {\n"
      << "    return \"moved:\" + block;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "moveWithRetry");
  AddBug(BugType::kWhenMissingCap, cls, "moveWithRetry",
         "retry != maxAttempts never terminates when the configured cap is negative "
         "(HDFS-15439 analog); static checking sees a comparison and misses it",
         /*tested=*/true);

  std::ostringstream test;
  test << "  void testMove() {\n"
       << MaybeTestPreamble()  //
       << "    var m = new " << cls << "();\n"
       << "    Assert.assertEquals(\"moved:9\", m.moveWithRetry(9));\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitNoDelayLoop(bool tested, bool large_file) {
  std::string cls = FreshName(large_file ? "Manager" : "Fetcher");
  std::string exc = PickException();
  std::ostringstream out;
  out << "// Fetches remote state for " << spec_.display_name << ".\n"
      << "class " << cls << " {\n"
      << "  int maxAttempts = Config.getInt(\"" << spec_.app << "." << ToLower(cls)
      << ".retry.max\", 5);\n";
  if (large_file) {
    // ~12 KB of plausible metric helpers before the retry method, pushing it
    // past the LLM attention window.
    for (int i = 0; i < 90; ++i) {
      out << "\n"
          << "  int metricSample" << i << "(window) {\n"
          << "    var raw = window * " << (i + 3) << " + " << (i * 7 % 13) << ";\n"
          << "    var smoothed = (raw * 15 + this.maxAttempts) / 16;\n"
          << "    return Math.max(smoothed, 0);\n"
          << "  }\n";
    }
  }
  out << "\n"
      << "  String fetchWithRetry(id) throws " << exc << " {\n"
      << "    var lastError = null;\n"
      << "    for (var retry = 0; retry < this.maxAttempts; retry++) {\n"
      << "      try {\n"
      << "        return this.fetch(id);\n"
      << "      } catch (" << exc << " e) {\n"
      << "        lastError = e;\n"
      << "        Log.warn(\"fetch failed; retrying immediately\");\n"
      << "      }\n"
      << "    }\n"
      << "    throw lastError;\n"
      << "  }\n"
      << "\n"
      << "  String fetch(id) throws " << exc << " {\n"
      << "    return \"blob:\" + id;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "fetchWithRetry");
  AddBug(BugType::kWhenMissingDelay, cls, "fetchWithRetry",
         large_file ? "tight retry loop with no backoff, buried late in a large file"
                    : "tight retry loop with no backoff between attempts",
         tested);

  if (tested) {
    std::ostringstream test;
    test << "  void testFetch() {\n"
         << MaybeTestPreamble()  //
         << "    var f = new " << cls << "();\n"
         << "    Assert.assertEquals(\"blob:3\", f.fetchWithRetry(3));\n"
         << "  }\n";
    EmitTest(cls, test.str());
  }
}

void AppBuilder::EmitBenignNoDelayLoop() {
  std::string cls = FreshName("Reader");
  std::string exc = PickException();
  std::ostringstream out;
  out << "// Reads a block, moving to the NEXT replica on failure. No pause is\n"
      << "// needed: every retry attempt contacts a different node.\n"
      << "class " << cls << " {\n"
      << "  int cursor = 0;\n"
      << "\n"
      << "  String readWithRetry() throws " << exc << " {\n"
      << "    for (var retry = 0; retry < 3; retry++) {\n"
      << "      try {\n"
      << "        return this.readFrom(this.cursor);\n"
      << "      } catch (" << exc << " e) {\n"
      << "        this.cursor = (this.cursor + 1) % 3;\n"
      << "        Log.info(\"replica failed; retrying against replica \" + this.cursor);\n"
      << "      }\n"
      << "    }\n"
      << "    throw new " << exc << "(\"all replicas failed\");\n"
      << "  }\n"
      << "\n"
      << "  String readFrom(replica) throws " << exc << " {\n"
      << "    return \"data@\" + replica;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "readWithRetry");
  // No seeded bug: reports against this module are false positives.

  std::ostringstream test;
  test << "  void testRead() {\n"
       << MaybeTestPreamble()  //
       << "    var r = new " << cls << "();\n"
       << "    // Any replica's data is acceptable.\n"
       << "    Assert.assertTrue(r.readWithRetry().startsWith(\"data@\"));\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitWrappedExceptionLoop() {
  std::string cls = FreshName("Downloader");
  std::ostringstream out;
  out << "// Downloads with retry on connect failures; socket errors are wrapped\n"
      << "// in the application's generic exception before propagating.\n"
      << "class " << cls << " {\n"
      << "  int maxAttempts = 5;\n"
      << "\n"
      << "  String downloadWithRetry(id) throws ConnectException, HadoopException {\n"
      << "    var lastError = null;\n"
      << "    for (var retry = 0; retry < this.maxAttempts; retry++) {\n"
      << "      try {\n"
      << "        return this.download(id);\n"
      << "      } catch (ConnectException e) {\n"
      << "        lastError = e;\n"
      << "        Thread.sleep(40);\n"
      << "      } catch (SocketException se) {\n"
      << "        throw new HadoopException(\"download failed\", se);\n"
      << "      }\n"
      << "    }\n"
      << "    throw lastError;\n"
      << "  }\n"
      << "\n"
      << "  String download(id) throws ConnectException, SocketException {\n"
      << "    return \"payload:\" + id;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "downloadWithRetry");
  // No seeded bug: the wrapped crash under SocketException injection is the
  // different-exception oracle's documented false-positive mode (§4.3).

  std::ostringstream test;
  test << "  void testDownload() {\n"
       << MaybeTestPreamble()  //
       << "    var d = new " << cls << "();\n"
       << "    Assert.assertEquals(\"payload:2\", d.downloadWithRetry(2));\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitCrossFileDelayLoop() {
  std::string cls = FreshName("Committer");
  std::string gate = cls + "Gate";
  std::string exc = PickException();
  std::ostringstream out;
  out << "// Commits a batch; the quiet-period gate (separate file) provides the\n"
      << "// inter-attempt delay.\n"
      << "class " << cls << " {\n"
      << "  " << gate << " gate = new " << gate << "();\n"
      << "  int maxAttempts = 5;\n"
      << "\n"
      << "  String commitWithRetry(batch) throws " << exc << " {\n"
      << "    var lastError = null;\n"
      << "    for (var retry = 0; retry < this.maxAttempts; retry++) {\n"
      << "      try {\n"
      << "        return this.commit(batch);\n"
      << "      } catch (" << exc << " e) {\n"
      << "        lastError = e;\n"
      << "        this.gate.awaitQuietPeriod();\n"
      << "      }\n"
      << "    }\n"
      << "    throw lastError;\n"
      << "  }\n"
      << "\n"
      << "  String commit(batch) throws " << exc << " {\n"
      << "    return \"committed:\" + batch;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());

  std::ostringstream gate_out;
  gate_out << "// Backpressure gate shared by " << spec_.display_name << " writers.\n"
           << "class " << gate << " {\n"
           << "  void awaitQuietPeriod() {\n"
           << "    Thread.sleep(Config.getInt(\"" << spec_.app << ".quiet.period.ms\", 150));\n"
           << "  }\n"
           << "}\n";
  AddFile(gate, gate_out.str());
  RegisterRetry(cls, "commitWithRetry");
  // No seeded bug: the delay exists. An LLM missing-delay report here is a
  // false positive caused by its single-file context.

  std::ostringstream test;
  test << "  void testCommit() {\n"
       << MaybeTestPreamble()  //
       << "    var c = new " << cls << "();\n"
       << "    Assert.assertEquals(\"committed:5\", c.commitWithRetry(5));\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitHarnessCapFpLoop() {
  std::string cls = FreshName("Publisher");
  std::string exc = PickException();
  std::ostringstream out;
  out << "// Publishes one event with a bounded retry budget; callers decide what\n"
      << "// to do when the budget is exhausted.\n"
      << "class " << cls << " {\n"
      << "  int maxAttempts = 4;\n"
      << "\n"
      << "  String publishWithRetry(event) throws " << exc << " {\n"
      << "    var lastError = null;\n"
      << "    for (var retry = 0; retry < this.maxAttempts; retry++) {\n"
      << "      try {\n"
      << "        return this.publish(event);\n"
      << "      } catch (" << exc << " e) {\n"
      << "        lastError = e;\n"
      << "        Thread.sleep(20);\n"
      << "      }\n"
      << "    }\n"
      << "    throw lastError;\n"
      << "  }\n"
      << "\n"
      << "  String publish(event) throws " << exc << " {\n"
      << "    return \"published:\" + event;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "publishWithRetry");
  // No seeded bug: the cap exists. The harness-style test below re-invokes the
  // method for 30 different events, so injections accumulate past 100 and the
  // missing-cap oracle produces its documented false positive (§4.3).

  std::ostringstream test;
  test << "  void testPublishMany() {\n"
       << MaybeTestPreamble()  //
       << "    var p = new " << cls << "();\n"
       << "    for (var i = 0; i < 30; i++) {\n"
       << "      try {\n"
       << "        p.publishWithRetry(i);\n"
       << "      } catch (" << exc << " e) {\n"
       << "        Log.warn(\"event \" + i + \" failed permanently\");\n"
       << "      }\n"
       << "    }\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitOkQueue() {
  std::string cls = FreshName("Processor");
  std::string exc = PickException();
  std::ostringstream out;
  out << "// Queue worker that re-enqueues failed tasks with a bounded attempt\n"
      << "// budget per task.\n"
      << "class " << cls << " {\n"
      << "  Queue pending = new Queue();\n"
      << "  int maxAttempts = Config.getInt(\"" << spec_.app << "." << ToLower(cls)
      << ".task.attempts.max\", 5);\n"
      << "\n"
      << "  void enqueue(payload) {\n"
      << "    var task = new " << cls << "Task();\n"
      << "    task.init(payload);\n"
      << "    this.pending.put(task);\n"
      << "  }\n"
      << "\n"
      << "  int drain() {\n"
      << "    var completed = 0;\n"
      << "    while (this.pending.isEmpty() == false) {\n"
      << "      var task = this.pending.take();\n"
      << "      try {\n"
      << "        this.executeTask(task);\n"
      << "        completed++;\n"
      << "      } catch (" << exc << " e) {\n"
      << "        task.attempts += 1;\n"
      << "        if (task.attempts < this.maxAttempts) {\n"
      << "          Thread.sleep(30);\n"
      << "          this.pending.put(task);  // Re-enqueue so the task runs again.\n"
      << "        } else {\n"
      << "          Log.error(\"dropping task after repeated failures\");\n"
      << "        }\n"
      << "      }\n"
      << "    }\n"
      << "    return completed;\n"
      << "  }\n"
      << "\n"
      << "  void executeTask(task) throws " << exc << " {\n"
      << "    Log.debug(\"executed \" + task.payload);\n"
      << "  }\n"
      << "}\n"
      << "\n"
      << "class " << cls << "Task {\n"
      << "  int attempts = 0;\n"
      << "  var payload = null;\n"
      << "  void init(p) {\n"
      << "    this.payload = p;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "drain");

  std::ostringstream test;
  test << "  void testDrain() {\n"
       << MaybeTestPreamble()  //
       << "    var p = new " << cls << "();\n"
       << "    p.enqueue(\"a\");\n"
       << "    p.enqueue(\"b\");\n"
       << "    Assert.assertEquals(2, p.drain());\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitBugQueue() {
  std::string cls = FreshName("Dispatcher");
  std::ostringstream out;
  out << "// Queue worker (HIVE-23894 analog): every failed task is resubmitted,\n"
      << "// including canceled/poisoned ones.\n"
      << "class " << cls << " {\n"
      << "  Queue pending = new Queue();\n"
      << "\n"
      << "  void enqueue(payload) {\n"
      << "    var task = new " << cls << "Task();\n"
      << "    task.init(payload);\n"
      << "    this.pending.put(task);\n"
      << "  }\n"
      << "\n"
      << "  int drain() {\n"
      << "    var completed = 0;\n"
      << "    while (this.pending.isEmpty() == false) {\n"
      << "      var task = this.pending.take();\n"
      << "      try {\n"
      << "        this.executeTask(task);\n"
      << "        completed++;\n"
      << "      } catch (Exception e) {\n"
      << "        Log.warn(\"task failed; resubmitting\");\n"
      << "        Thread.sleep(25);\n"
      << "        this.pending.put(task);\n"
      << "      }\n"
      << "    }\n"
      << "    return completed;\n"
      << "  }\n"
      << "\n"
      << "  void executeTask(task) throws TaskCanceledException, TimeoutException {\n"
      << "    Log.debug(\"executed \" + task.payload);\n"
      << "  }\n"
      << "}\n"
      << "\n"
      << "class " << cls << "Task {\n"
      << "  var payload = null;\n"
      << "  void init(p) {\n"
      << "    this.payload = p;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "drain");
  AddBug(BugType::kWhenMissingCap, cls, "drain",
         "unconditional re-enqueue: canceled tasks are resubmitted forever "
         "(HIVE-23894 / ElasticSearch-53687 analog)",
         /*tested=*/true);

  std::ostringstream test;
  test << "  void testDrain() {\n"
       << MaybeTestPreamble()  //
       << "    var d = new " << cls << "();\n"
       << "    d.enqueue(\"q1\");\n"
       << "    Assert.assertEquals(1, d.drain());\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitStateMachine(bool with_delay) {
  std::string cls = FreshName("Procedure");
  std::string exc = PickException();
  std::ostringstream out;
  out << "// Procedure-framework step (HBASE-20492 shape): failures keep the state\n"
      << "// unchanged so the executor re-runs the same step.\n"
      << "class " << cls << " {\n"
      << "  int state = 1;\n"
      << "  int attempts = 0;\n"
      << "  int maxAttempts = Config.getInt(\"" << spec_.app << "." << ToLower(cls)
      << ".step.attempts.max\", 5);\n"
      << "\n"
      << "  String run() throws " << exc << " {\n"
      << "    while (this.state != 3) {\n"
      << "      switch (this.state) {\n"
      << "        case 1:\n"
      << "          try {\n"
      << "            this.dispatch();\n"
      << "            this.state = 2;\n"
      << "          } catch (" << exc << " e) {\n"
      << "            this.attempts += 1;\n"
      << "            if (this.attempts > this.maxAttempts) {\n"
      << "              throw e;\n"
      << "            }\n";
  if (with_delay) {
    out << "            var backoff = 50 * Math.pow(2, this.attempts);\n"
        << "            Thread.sleep(backoff);\n";
  } else {
    out << "            // State deliberately unchanged; the executor retries\n"
        << "            // this step immediately.\n";
  }
  out << "          }\n"
      << "          break;\n"
      << "        case 2:\n"
      << "          this.finish();\n"
      << "          this.state = 3;\n"
      << "          break;\n"
      << "        default:\n"
      << "          return \"done\";\n"
      << "      }\n"
      << "    }\n"
      << "    return \"done\";\n"
      << "  }\n"
      << "\n"
      << "  void dispatch() throws " << exc << " {\n"
      << "    Log.debug(\"dispatched\");\n"
      << "  }\n"
      << "\n"
      << "  void finish() {\n"
      << "    Log.debug(\"finished\");\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "run");
  if (!with_delay) {
    AddBug(BugType::kWhenMissingDelay, cls, "run",
           "state-machine step retried with no delay (HBASE-20492 analog)",
           /*tested=*/true);
  }

  std::ostringstream test;
  test << "  void testRun() {\n"
       << MaybeTestPreamble()  //
       << "    var p = new " << cls << "();\n"
       << "    Assert.assertEquals(\"done\", p.run());\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitHowNullDeref() {
  std::string cls = FreshName("Streamer");
  std::ostringstream out;
  out << "// Reads a block, retrying transient socket errors (HDFS\n"
      << "// createBlockReader analog).\n"
      << "class " << cls << " {\n"
      << "  Map status = null;\n"
      << "\n"
      << "  String readWithRetry() throws SocketException {\n"
      << "    for (var retry = 0; retry < 3; retry++) {\n"
      << "      try {\n"
      << "        this.openReader();\n"
      << "        return this.fetchBlock();\n"
      << "      } catch (SocketException e) {\n"
      << "        var phase = this.status.get(\"phase\");\n"
      << "        Log.warn(\"read failed in phase \" + phase + \"; retrying\");\n"
      << "        Thread.sleep(30);\n"
      << "      }\n"
      << "    }\n"
      << "    return null;\n"
      << "  }\n"
      << "\n"
      << "  void openReader() throws SocketException {\n"
      << "    this.status = new Map();\n"
      << "    this.status.put(\"phase\", \"open\");\n"
      << "  }\n"
      << "\n"
      << "  String fetchBlock() throws SocketException {\n"
      << "    return \"block\";\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "readWithRetry");
  AddBug(BugType::kHow, cls, "readWithRetry",
         "catch handler assumes this.status was constructed; an early failure in "
         "openReader leaves it null and the handler NPEs (HDFS analog)",
         /*tested=*/true);

  std::ostringstream test;
  test << "  void testRead() {\n"
       << MaybeTestPreamble()  //
       << "    var r = new " << cls << "();\n"
       << "    Assert.assertEquals(\"block\", r.readWithRetry());\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitHowPartialState() {
  std::string cls = FreshName("Builder");
  std::ostringstream out;
  out << "// Creates the on-disk layout then finalizes it (HBASE-20616 analog).\n"
      << "class " << cls << " {\n"
      << "  Map files = new Map();\n"
      << "\n"
      << "  String runWithRetry() throws IOException {\n"
      << "    for (var retry = 0; retry < 3; retry++) {\n"
      << "      try {\n"
      << "        this.createLayout();\n"
      << "        this.finalizeLayout();\n"
      << "        return \"done\";\n"
      << "      } catch (IOException e) {\n"
      << "        Log.warn(\"layout creation failed; retrying\");\n"
      << "        Thread.sleep(50);\n"
      << "      }\n"
      << "    }\n"
      << "    return \"failed\";\n"
      << "  }\n"
      << "\n"
      << "  void createLayout() throws IOException {\n"
      << "    for (var part = 0; part < 3; part++) {\n"
      << "      this.writeFile(part);\n"
      << "    }\n"
      << "  }\n"
      << "\n"
      << "  void writeFile(part) {\n"
      << "    if (this.files.containsKey(part)) {\n"
      << "      throw new IllegalStateException(\"file already exists: part \" + part);\n"
      << "    }\n"
      << "    this.files.put(part, \"data\");\n"
      << "  }\n"
      << "\n"
      << "  void finalizeLayout() throws IOException {\n"
      << "    Log.debug(\"finalized\");\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "runWithRetry");
  AddBug(BugType::kHow, cls, "runWithRetry",
         "files written by a failed attempt are not cleaned up, so the retry "
         "crashes on 'already exists' (HBASE-20616 analog)",
         /*tested=*/true);

  std::ostringstream test;
  test << "  void testRun() {\n"
       << MaybeTestPreamble()  //
       << "    var b = new " << cls << "();\n"
       << "    Assert.assertEquals(\"done\", b.runWithRetry());\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitHowSharedMap() {
  std::string cls = FreshName("Scheduler");
  std::ostringstream out;
  out << "// Stage scheduler (SPARK-27630 analog): original and retried stages share\n"
      << "// the same id in the bookkeeping map.\n"
      << "class " << cls << " {\n"
      << "  Map stageTasks = new Map();\n"
      << "\n"
      << "  int runJob(stageId, tasks) throws TimeoutException {\n"
      << "    for (var retry = 0; retry < 3; retry++) {\n"
      << "      try {\n"
      << "        this.register(stageId, tasks);\n"
      << "        this.await(stageId);\n"
      << "        return this.stageTasks.get(stageId);\n"
      << "      } catch (TimeoutException e) {\n"
      << "        Log.warn(\"stage \" + stageId + \" became a zombie; resubmitting\");\n"
      << "        Thread.sleep(20);\n"
      << "      }\n"
      << "    }\n"
      << "    return -1;\n"
      << "  }\n"
      << "\n"
      << "  void register(stageId, tasks) {\n"
      << "    var current = this.stageTasks.get(stageId);\n"
      << "    if (current == null) {\n"
      << "      current = 0;\n"
      << "    }\n"
      << "    this.stageTasks.put(stageId, current + tasks);\n"
      << "  }\n"
      << "\n"
      << "  void await(stageId) throws TimeoutException {\n"
      << "    Log.debug(\"stage \" + stageId + \" completed\");\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "runJob");
  AddBug(BugType::kHow, cls, "runJob",
         "retried stage double-registers its task count under the shared stage id "
         "(SPARK-27630 analog); test assertion catches the corruption",
         /*tested=*/true);

  std::ostringstream test;
  test << "  void testRunJob() {\n"
       << MaybeTestPreamble()  //
       << "    var s = new " << cls << "();\n"
       << "    Assert.assertEquals(4, s.runJob(7, 4));\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitErrorCodeLoop(bool with_delay) {
  std::string cls = FreshName("Replicator");
  std::ostringstream out;
  out << "// Error-code driven retry: the wire protocol reports failures through\n"
      << "// status codes, not exceptions.\n"
      << "class " << cls << " {\n"
      << "  int maxRetries = Config.getInt(\"" << spec_.app << "." << ToLower(cls)
      << ".retry.max\", 5);\n"
      << "\n"
      << "  int replicateWithRetries(payload) {\n"
      << "    var code = this.replicate(payload);\n"
      << "    var retries = 0;\n"
      << "    while (code != 0 && retries < this.maxRetries) {\n"
      << "      retries += 1;\n"
      << "      Log.warn(\"replicate returned error code \" + code + \"; retry \" + retries);\n";
  if (with_delay) {
    out << "      Thread.sleep(80);\n";
  }
  out << "      code = this.replicate(payload);\n"
      << "    }\n"
      << "    return code;\n"
      << "  }\n"
      << "\n"
      << "  int replicate(payload) {\n"
      << "    Log.debug(\"replicated \" + payload);\n"
      << "    return 0;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "replicateWithRetries");
  if (!with_delay) {
    AddBug(BugType::kWhenMissingDelay, cls, "replicateWithRetries",
           "error-code retry loop with no backoff; exception injection cannot reach "
           "it, only static checking can",
           /*tested=*/true);
  }

  std::ostringstream test;
  test << "  void testReplicate() {\n"
       << MaybeTestPreamble()  //
       << "    var r = new " << cls << "();\n"
       << "    Assert.assertEquals(0, r.replicateWithRetries(\"p\"));\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitIterationFpBait() {
  std::string cls = FreshName("Applier");
  std::ostringstream out;
  out << "// Applies each mutation of a batch; failures are logged and skipped.\n"
      << "// This is per-item error handling, NOT retry.\n"
      << "class " << cls << " {\n"
      << "  int applyAll(batch) {\n"
      << "    var applied = 0;\n"
      << "    for (var i = 0; i < batch.size(); i++) {\n"
      << "      try {\n"
      << "        this.applyOne(batch.get(i));\n"
      << "        applied++;\n"
      << "      } catch (IOException e) {\n"
      << "        Log.warn(\"mutation \" + i + \" failed; skipping\");\n"
      << "      }\n"
      << "    }\n"
      << "    return applied;\n"
      << "  }\n"
      << "\n"
      << "  void applyOne(mutation) throws IOException {\n"
      << "    Log.debug(\"applied \" + mutation);\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  // Not a retry structure; LLM reports against it are identification FPs.

  std::ostringstream test;
  test << "  void testApply() {\n"
       << MaybeTestPreamble()  //
       << "    var a = new " << cls << "();\n"
       << "    var batch = new List();\n"
       << "    batch.add(\"m0\");\n"
       << "    a.applyAll(batch);\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitIterationClean(int variant) {
  std::string cls = FreshName("Walker");
  std::ostringstream out;
  if (variant % 2 == 0) {
    out << "// Pushes every item; errors propagate to the caller.\n"
        << "class " << cls << " {\n"
        << "  void pushAll(items) throws IOException {\n"
        << "    for (var i = 0; i < items.size(); i++) {\n"
        << "      try {\n"
        << "        this.pushOne(items.get(i));\n"
        << "      } catch (IOException e) {\n"
        << "        throw e;\n"
        << "      }\n"
        << "    }\n"
        << "  }\n"
        << "\n"
        << "  void pushOne(item) throws IOException {\n"
        << "    Log.debug(\"pushed \" + item);\n"
        << "  }\n"
        << "}\n";
  } else {
    out << "// Sums item weights; no error handling involved.\n"
        << "class " << cls << " {\n"
        << "  int totalWeight(items) {\n"
        << "    var total = 0;\n"
        << "    for (var i = 0; i < items.size(); i++) {\n"
        << "      total += items.get(i);\n"
        << "    }\n"
        << "    return total;\n"
        << "  }\n"
        << "}\n";
  }
  AddFile(cls, out.str());

  std::ostringstream test;
  if (variant % 2 == 0) {
    test << "  void testPush() {\n"
         << MaybeTestPreamble()  //
         << "    var w = new " << cls << "();\n"
         << "    var items = new List();\n"
         << "    items.add(\"x\");\n"
         << "    w.pushAll(items);\n"
         << "  }\n";
  } else {
    test << "  void testTotal() {\n"
         << MaybeTestPreamble()  //
         << "    var w = new " << cls << "();\n"
         << "    var items = new List();\n"
         << "    items.add(2);\n"
         << "    items.add(3);\n"
         << "    Assert.assertEquals(5, w.totalWeight(items));\n"
         << "  }\n";
  }
  EmitTest(cls, test.str());
}

void AppBuilder::EmitPollLoop() {
  std::string cls = FreshName("Watcher");
  std::ostringstream out;
  out << "// Polls a status flag until it flips; contention is expected and is not\n"
      << "// an error (spin/poll, NOT retry).\n"
      << "class " << cls << " {\n"
      << "  int readyAfter = 2;\n"
      << "  int polls = 0;\n"
      << "\n"
      << "  int waitReady() {\n"
      << "    while (true) {\n"
      << "      try {\n"
      << "        if (this.poll() == 1) {\n"
      << "          return this.polls;\n"
      << "        }\n"
      << "      } catch (IllegalStateException e) {\n"
      << "        Log.debug(\"contended poll\");\n"
      << "      }\n"
      << "      this.polls += 1;\n"
      << "      Thread.sleep(5);\n"
      << "    }\n"
      << "  }\n"
      << "\n"
      << "  int poll() {\n"
      << "    if (this.polls < this.readyAfter) {\n"
      << "      return 0;\n"
      << "    }\n"
      << "    return 1;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());

  std::ostringstream test;
  test << "  void testWait() {\n"
       << MaybeTestPreamble()  //
       << "    var w = new " << cls << "();\n"
       << "    Assert.assertEquals(2, w.waitReady());\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitPolicyFile(bool dense) {
  std::string cls = FreshName(dense ? "RetryPolicies" : "RetryConfig");
  std::ostringstream out;
  if (dense) {
    out << "// Builds the retry schedule for retrying retriable requests. Retry\n"
        << "// count and retry backoff come from the retry configuration.\n"
        << "class " << cls << " {\n"
        << "  int maxRetries = 3;\n"
        << "  int retryBackoffMs = 200;\n"
        << "\n"
        << "  // Assembles a retry schedule honoring retry caps and retry backoff.\n"
        << "  String buildRetrySchedule(retryConfig) {\n"
        << "    var retrySchedule = \"retries=\" + this.maxRetries;\n"
        << "    retrySchedule = retrySchedule + \" retryBackoffMs=\" + this.retryBackoffMs;\n"
        << "    Log.debug(\"retry schedule: \" + retrySchedule);\n"
        << "    return retrySchedule;\n"
        << "  }\n"
        << "}\n";
  } else {
    out << "// Holder for client retry settings. Performs no retry itself.\n"
        << "class " << cls << " {\n"
        << "  int maxAttempts = 3;\n"
        << "  int backoffMs = 200;\n"
        << "\n"
        << "  int getMaxAttempts() {\n"
        << "    return this.maxAttempts;\n"
        << "  }\n"
        << "\n"
        << "  int getBackoffMs() {\n"
        << "    return this.backoffMs;\n"
        << "  }\n"
        << "}\n";
  }
  AddFile(cls, out.str());
  // Not retry structures. A dense policy file that SimLLM labels as retry is
  // its documented Q1 false-positive mode.
}


void AppBuilder::EmitCodeqlFpLock() {
  // §4.2 CodeQL FP #1: attempts to obtain a lock with failure logging after n
  // "retries" — the loop re-executes on contention, not on task error.
  std::string cls = FreshName("Guard");
  std::ostringstream out;
  out << "// Mutual exclusion wrapper around the shared ledger.\n"
      << "class " << cls << " {\n"
      << "  int locked = 0;\n"
      << "\n"
      << "  bool acquire() {\n"
      << "    for (var retries = 0; retries < 5; retries++) {\n"
      << "      try {\n"
      << "        if (this.tryLock() == 1) {\n"
      << "          return true;\n"
      << "        }\n"
      << "      } catch (IllegalStateException e) {\n"
      << "        Log.debug(\"lock contended\");\n"
      << "      }\n"
      << "    }\n"
      << "    Log.error(\"failed to obtain lock after retries\");\n"
      << "    return false;\n"
      << "  }\n"
      << "\n"
      << "  int tryLock() {\n"
      << "    this.locked = 1;\n"
      << "    return 1;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  // NOT registered as retry: an identification hit here is a CodeQL FP.

  std::ostringstream test;
  test << "  void testAcquire() {\n"
       << MaybeTestPreamble()
       << "    var g = new " << cls << "();\n"
       << "    Assert.assertTrue(g.acquire());\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitCodeqlFpUniqueString() {
  // §4.2 CodeQL FP #2: generate a unique identifier, giving up after n
  // "retries" — re-execution on collision, not on task error.
  std::string cls = FreshName("Minter");
  std::ostringstream out;
  out << "// Mints identifiers unique within the cluster epoch.\n"
      << "class " << cls << " {\n"
      << "  Map issued = new Map();\n"
      << "  int counter = 0;\n"
      << "\n"
      << "  String mint() {\n"
      << "    for (var retries = 0; retries < 8; retries++) {\n"
      << "      try {\n"
      << "        var candidate = this.nextCandidate();\n"
      << "        if (this.issued.containsKey(candidate) == false) {\n"
      << "          this.issued.put(candidate, true);\n"
      << "          return candidate;\n"
      << "        }\n"
      << "      } catch (IllegalArgumentException e) {\n"
      << "        Log.debug(\"candidate rejected\");\n"
      << "      }\n"
      << "    }\n"
      << "    Log.error(\"could not mint a unique id\");\n"
      << "    return null;\n"
      << "  }\n"
      << "\n"
      << "  String nextCandidate() {\n"
      << "    this.counter += 1;\n"
      << "    return \"id-\" + this.counter;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());

  std::ostringstream test;
  test << "  void testMint() {\n"
       << MaybeTestPreamble()
       << "    var m = new " << cls << "();\n"
       << "    Assert.assertTrue(m.mint() != m.mint());\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitCodeqlFpParamParser() {
  // §4.2 CodeQL FP #3: token-by-token parsing of a request that may contain a
  // "retryOnConflict" parameter — the word appears in data, not behavior.
  std::string cls = FreshName("RequestParser");
  std::ostringstream out;
  out << "// Parses bulk-request parameters.\n"
      << "class " << cls << " {\n"
      << "  int parseParams(tokens) {\n"
      << "    var recognized = 0;\n"
      << "    for (var i = 0; i < tokens.size(); i++) {\n"
      << "      try {\n"
      << "        var token = tokens.get(i);\n"
      << "        if (token.startsWith(\"retryOnConflict=\")) {\n"
      << "          recognized += 1;\n"
      << "        }\n"
      << "        if (token.startsWith(\"timeout=\")) {\n"
      << "          recognized += 1;\n"
      << "        }\n"
      << "      } catch (IllegalArgumentException e) {\n"
      << "        Log.warn(\"malformed token \" + i);\n"
      << "      }\n"
      << "    }\n"
      << "    return recognized;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());

  std::ostringstream test;
  test << "  void testParse() {\n"
       << MaybeTestPreamble()
       << "    var p = new " << cls << "();\n"
       << "    var tokens = new List();\n"
       << "    tokens.add(\"retryOnConflict=3\");\n"
       << "    tokens.add(\"timeout=50\");\n"
       << "    Assert.assertEquals(2, p.parseParams(tokens));\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitIfRatioModule() {
  if (spec_.counts.if_exception.empty()) {
    return;
  }
  const std::string& exc = spec_.counts.if_exception;
  std::string cls = FreshName("Coordination");
  std::ostringstream out;
  out << "// Coordination helpers; " << exc << " is transient here and is retried\n"
      << "// (almost) everywhere.\n"
      << "class " << cls << " {\n";
  int op = 0;
  for (int i = 0; i < spec_.counts.if_retried_sites; ++i, ++op) {
    RegisterRetry(cls, "op" + std::to_string(op) + "WithRetry");
    out << "\n"
        << "  String op" << op << "WithRetry() throws " << exc << " {\n"
        << "    for (var retry = 0; retry < 4; retry++) {\n"
        << "      try {\n"
        << "        return this.backendCall" << op << "();\n"
        << "      } catch (" << exc << " e) {\n"
        << "        Thread.sleep(60);\n"
        << "      }\n"
        << "    }\n"
        << "    throw new " << exc << "(\"op" << op << ": retries exhausted\");\n"
        << "  }\n"
        << "\n"
        << "  String backendCall" << op << "() throws " << exc << " {\n"
        << "    return \"value" << op << "\";\n"
        << "  }\n";
  }
  for (int i = 0; i < spec_.counts.if_not_retried_sites; ++i, ++op) {
    RegisterRetry(cls, "op" + std::to_string(op) + "WithRetry");
    out << "\n"
        << "  String op" << op << "WithRetry() throws IOException {\n"
        << "    for (var retry = 0; retry < 4; retry++) {\n"
        << "      try {\n"
        << "        return this.backendCall" << op << "();\n"
        << "      } catch (" << exc << " e) {\n"
        << "        break;\n"
        << "      } catch (IOException io) {\n"
        << "        Thread.sleep(60);\n"
        << "      }\n"
        << "    }\n"
        << "    return null;\n"
        << "  }\n"
        << "\n"
        << "  String backendCall" << op << "() throws " << exc << ", IOException {\n"
        << "    return \"value" << op << "\";\n"
        << "  }\n";
    if (spec_.counts.if_outliers_are_bugs) {
      AddBug(BugType::kIfOutlier, cls, "op" + std::to_string(op) + "WithRetry",
             exc + " is retried everywhere else in the application but not here",
             /*tested=*/true);
    }
  }
  out << "}\n";
  AddFile(cls, out.str());

  std::ostringstream test;
  test << "  void testOps() {\n"
       << MaybeTestPreamble()  //
       << "    var c = new " << cls << "();\n"
       << "    Assert.assertEquals(\"value0\", c.op0WithRetry());\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitTimingFlakyLoop() {
  std::string cls = FreshName("Flusher");
  std::string exc = PickException();
  std::string key = spec_.app + "." + ToLower(cls);
  std::ostringstream out;
  out << "// Flushes one batch to the sink. Give-up behavior depends on the\n"
      << "// wall-clock window: quiet seconds fall back to the local journal after\n"
      << "// three attempts, busy seconds retry until the sink accepts the batch.\n"
      << "class " << cls << " {\n"
      << "  String flushWithRetry(batch) {\n"
      << "    var window = (Clock.nowMillis() / 1000) % 2;\n"
      << "    if (window == 1) {\n"
      << "      for (var retry = 0; retry < 3; retry++) {\n"
      << "        try {\n"
      << "          return this.flush(batch);\n"
      << "        } catch (" << exc << " e) {\n"
      << "          Log.warn(\"flush failed in quiet window; retrying\");\n"
      << "          Thread.sleep(Config.getInt(\"" << key << ".backoff.ms\", 100));\n"
      << "        }\n"
      << "      }\n"
      << "      return \"journaled:\" + batch;\n"
      << "    }\n"
      << "    while (true) {\n"
      << "      try {\n"
      << "        return this.flush(batch);\n"
      << "      } catch (" << exc << " e) {\n"
      << "        // Busy window: the sink must eventually accept the batch.\n"
      << "        Log.warn(\"flush failed; will retry\");\n"
      << "        Thread.sleep(Config.getInt(\"" << key << ".backoff.ms\", 100));\n"
      << "      }\n"
      << "    }\n"
      << "  }\n"
      << "\n"
      << "  String flush(batch) throws " << exc << " {\n"
      << "    return \"flushed:\" + batch;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "flushWithRetry");
  AddBug(BugType::kWhenMissingCap, cls, "flushWithRetry",
         "uncapped retry in the busy wall-clock window only; the verdict flips "
         "under clock-epoch skew",
         /*tested=*/true, VerdictStability::kFlaky);

  std::ostringstream test;
  test << "  void testFlush() {\n"
       << MaybeTestPreamble()  //
       << "    var f = new " << cls << "();\n"
       << "    Assert.assertEquals(\"flushed:4\", f.flushWithRetry(4));\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitChaosCapLoop() {
  std::string cls = FreshName("Publisher");
  std::string exc = PickException();
  std::string key = spec_.app + "." + ToLower(cls);
  std::ostringstream out;
  out << "// Publishes one event. In a degraded environment the broker is expected\n"
      << "// to flap, so the publish cap is lifted and delivery is retried until\n"
      << "// the event is accepted; healthy environments drop after five attempts.\n"
      << "class " << cls << " {\n"
      << "  String publishWithRetry(event) {\n"
      << "    var degraded = Config.getBool(\"chaos.degraded\", false);\n"
      << "    if (degraded) {\n"
      << "      while (true) {\n"
      << "        try {\n"
      << "          return this.publish(event);\n"
      << "        } catch (" << exc << " e) {\n"
      << "          Log.warn(\"publish failed under degraded broker; will retry\");\n"
      << "          Thread.sleep(Config.getInt(\"" << key << ".backoff.ms\", 100));\n"
      << "        }\n"
      << "      }\n"
      << "    }\n"
      << "    for (var retry = 0; retry < 5; retry++) {\n"
      << "      try {\n"
      << "        return this.publish(event);\n"
      << "      } catch (" << exc << " e) {\n"
      << "        Log.warn(\"publish failed; retrying\");\n"
      << "        Thread.sleep(Config.getInt(\"" << key << ".backoff.ms\", 100));\n"
      << "      }\n"
      << "    }\n"
      << "    return \"dropped:\" + event;\n"
      << "  }\n"
      << "\n"
      << "  String publish(event) throws " << exc << " {\n"
      << "    return \"published:\" + event;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "publishWithRetry");
  AddBug(BugType::kWhenMissingCap, cls, "publishWithRetry",
         "retry cap lifted only when the degraded-environment chaos mode is "
         "active; the clean-environment counterfactual is capped",
         /*tested=*/true, VerdictStability::kChaosInduced);

  std::ostringstream test;
  test << "  void testPublish() {\n"
       << MaybeTestPreamble()  //
       << "    var p = new " << cls << "();\n"
       << "    Assert.assertEquals(\"published:6\", p.publishWithRetry(6));\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitHalvedCapLoop() {
  std::string cls = FreshName("Transitioner");
  std::string exc = PickException();
  std::ostringstream out;
  out << "// Re-attempts a state transition up to a configured maximum\n"
      << "// (YARN-8362 analog).\n"
      << "class " << cls << " {\n"
      << "  int attempts = 0;\n"
      << "  int maxAttempts = Config.getInt(\"" << spec_.app << "." << ToLower(cls)
      << ".retry.max\", 8);\n"
      << "\n"
      << "  String transitionWithRetry() throws " << exc << " {\n"
      << "    while (this.attempts < this.maxAttempts) {\n"
      << "      try {\n"
      << "        return this.transition();\n"
      << "      } catch (" << exc << " e) {\n"
      << "        this.attempts += 1;\n"
      << "        this.checkStatus();\n"
      << "        Thread.sleep(30);\n"
      << "      }\n"
      << "    }\n"
      << "    throw new " << exc << "(\"exceeded transition attempts\");\n"
      << "  }\n"
      << "\n"
      << "  void checkStatus() {\n"
      << "    this.attempts += 1;  // Counted again: the effective cap is halved.\n"
      << "  }\n"
      << "\n"
      << "  String transition() throws " << exc << " {\n"
      << "    return \"transitioned\";\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "transitionWithRetry");
  AddBug(BugType::kWhenMissingCap, cls, "transitionWithRetry",
         "attempt counter incremented twice per failure halves the configured cap "
         "(YARN-8362 analog); expected false negative for all detectors",
         /*tested=*/true);

  std::ostringstream test;
  test << "  void testTransition() {\n"
       << MaybeTestPreamble()  //
       << "    var t = new " << cls << "();\n"
       << "    Assert.assertEquals(\"transitioned\", t.transitionWithRetry());\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitDaemonModule() {
  // Five periodic-work loops per module: each catches and logs per-cycle
  // errors, so every loop is a catch-reaches-header CANDIDATE for the loop
  // query, but none carries retry wording — the population the paper's
  // keyword filter exists to prune (4.4: 3.5x more loops without it).
  std::string cls = FreshName("Daemon");
  struct DaemonOp {
    const char* method;
    const char* helper;
    const char* exception;
    const char* note;
  };
  const DaemonOp kOps[] = {
      {"pumpHeartbeats", "beat", "IOException", "gossip heartbeats"},
      {"flushMetrics", "flushOnce", "SocketException", "metric flushing"},
      {"rotateJournals", "rotateOnce", "IOException", "journal rotation"},
      {"compactSegments", "compactOnce", "TimeoutException", "segment compaction"},
      {"refreshLeases", "renewOnce", "LeaseExpiredException", "lease renewal"},
  };
  std::ostringstream out;
  out << "// Background maintenance for " << spec_.display_name
      << ": periodic work; per-cycle errors are logged and the daemon moves on.\n"
      << "class " << cls << " {\n";
  for (const DaemonOp& op : kOps) {
    out << "\n"
        << "  int " << op.method << "(rounds) {\n"
        << "    var done = 0;\n"
        << "    while (done < rounds) {\n"
        << "      try {\n"
        << "        this." << op.helper << "(done);\n"
        << "      } catch (" << op.exception << " e) {\n"
        << "        Log.warn(\"" << op.note << ": cycle skipped\");\n"
        << "      }\n"
        << "      done += 1;\n"
        << "      Thread.sleep(5);\n"
        << "    }\n"
        << "    return done;\n"
        << "  }\n"
        << "\n"
        << "  void " << op.helper << "(cycle) throws " << op.exception << " {\n"
        << "    Log.debug(\"" << op.note << " cycle \" + cycle);\n"
        << "  }\n";
  }
  out << "}\n";
  AddFile(cls, out.str());
  // Not retry structures; no tests (background daemons are integration-tested
  // elsewhere in real systems).
}

void AppBuilder::EmitUnrelatedUtil() {
  std::string cls = FreshName("Codec");
  int factor = rng_.Int(2, 9);
  std::ostringstream out;
  out << "// Pure helpers with no I/O and no retry.\n"
      << "class " << cls << " {\n"
      << "  int encode(value) {\n"
      << "    return value * " << factor << " + 1;\n"
      << "  }\n"
      << "\n"
      << "  int decode(value) {\n"
      << "    return (value - 1) / " << factor << ";\n"
      << "  }\n"
      << "\n"
      << "  bool isMarker(text) {\n"
      << "    return text.startsWith(\"#\") || text.isEmpty();\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());

  std::ostringstream test;
  test << "  void testRoundTrip() {\n"
       << "    var c = new " << cls << "();\n"
       << "    Assert.assertEquals(11, c.decode(c.encode(11)));\n"
       << "  }\n"
       << "\n"
       << "  void testEncodeDistinct() {\n"
       << "    var c = new " << cls << "();\n"
       << "    Assert.assertTrue(c.encode(3) != c.encode(4));\n"
       << "  }\n"
       << "\n"
       << "  void testMarker() {\n"
       << "    var c = new " << cls << "();\n"
       << "    Assert.assertTrue(c.isMarker(\"#x\"));\n"
       << "    Assert.assertFalse(c.isMarker(\"data\"));\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

// --- Storm-simulation service frontends (docs/STORM.md) ---------------------
//
// Every storm service exposes the probe shape the extractor keys on: a
// zero-arg `handle()` that retries a downstream `send()`. The storm engine
// never executes these loops under traffic — it probes each one a handful of
// times under forced transport/overload failures and replays the measured
// retry policy (attempts, backoff schedule, jitter, fan-out, overload
// behavior) against a simulated shared backend.

void AppBuilder::EmitStormOkService() {
  std::string cls = FreshName("Gateway");
  std::string key = spec_.app + "." + ToLower(cls);
  std::ostringstream out;
  out << "// Healthy storm frontend: bounded attempts, exponential backoff with\n"
      << "// per-request jitter, and overload push-back is honored by shedding.\n"
      << "class " << cls << " {\n"
      << "  int maxAttempts = Config.getInt(\"" << key << ".retry.max\", 3);\n"
      << "\n"
      << "  String handle() throws ServiceUnavailableException {\n"
      << "    var requestId = Config.getInt(\"storm.request.id\", 0);\n"
      << "    var backoff = Config.getInt(\"" << key << ".backoff.ms\", 80);\n"
      << "    var lastError = null;\n"
      << "    for (var retry = 0; retry < this.maxAttempts; retry++) {\n"
      << "      try {\n"
      << "        return this.send(\"req\");\n"
      << "      } catch (ServiceUnavailableException e) {\n"
      << "        lastError = e;\n"
      << "        var jitter = (Clock.nowMillis() * 31 + requestId * 17 + retry * 13) % backoff;\n"
      << "        Log.warn(\"backend unavailable; backing off: \" + e.getMessage());\n"
      << "        Thread.sleep(backoff / 2 + jitter / 2);\n"
      << "        backoff = backoff * 2;\n"
      << "      } catch (ResourceExhaustedException e) {\n"
      << "        Log.warn(\"backend overloaded; shedding this request\");\n"
      << "        return \"shed\";\n"
      << "      }\n"
      << "    }\n"
      << "    throw lastError;\n"
      << "  }\n"
      << "\n"
      << "  String send(String payload)\n"
      << "      throws ServiceUnavailableException, ResourceExhaustedException {\n"
      << "    return \"ok:\" + payload;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "handle");
  app_.default_int_configs.emplace_back(key + ".retry.max", 3);
  app_.default_int_configs.emplace_back(key + ".backoff.ms", 80);

  std::ostringstream test;
  test << "  void testHandle() {\n"
       << MaybeTestPreamble()  //
       << "    var g = new " << cls << "();\n"
       << "    Assert.assertEquals(\"ok:req\", g.handle());\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitStormNoJitterService() {
  std::string cls = FreshName("Relay");
  std::string key = spec_.app + "." + ToLower(cls);
  std::ostringstream out;
  out << "// Storm frontend with a FIXED backoff: every caller that failed in the\n"
      << "// same instant retries in the same instant, forever re-synchronized —\n"
      << "// the per-location oracles see a capped, delayed (healthy) loop.\n"
      << "class " << cls << " {\n"
      << "  int maxAttempts = Config.getInt(\"" << key << ".retry.max\", 5);\n"
      << "\n"
      << "  String handle() throws ServiceUnavailableException {\n"
      << "    var lastError = null;\n"
      << "    for (var retry = 0; retry < this.maxAttempts; retry++) {\n"
      << "      try {\n"
      << "        return this.send(\"req\");\n"
      << "      } catch (ServiceUnavailableException e) {\n"
      << "        lastError = e;\n"
      << "        Log.warn(\"backend unavailable; retrying on the fixed schedule\");\n"
      << "        Thread.sleep(Config.getInt(\"" << key << ".backoff.ms\", 100));\n"
      << "      }\n"
      << "    }\n"
      << "    throw lastError;\n"
      << "  }\n"
      << "\n"
      << "  String send(String payload)\n"
      << "      throws ServiceUnavailableException, ResourceExhaustedException {\n"
      << "    return \"ok:\" + payload;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "handle");
  AddBug(BugType::kStormMissingJitter, cls, "handle",
         "fixed backoff with no jitter: synchronized callers retry in waves", /*tested=*/true);
  app_.default_int_configs.emplace_back(key + ".retry.max", 5);
  app_.default_int_configs.emplace_back(key + ".backoff.ms", 100);

  std::ostringstream test;
  test << "  void testHandle() {\n"
       << MaybeTestPreamble()  //
       << "    var r = new " << cls << "();\n"
       << "    Assert.assertEquals(\"ok:req\", r.handle());\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitStormFanoutService() {
  std::string cls = FreshName("Mirror");
  std::string key = spec_.app + "." + ToLower(cls);
  std::ostringstream out;
  out << "// Hedged broadcast retry: every attempt re-sends to all three replicas\n"
      << "// and the loop never gives up, so each failed round offers 3x the load\n"
      << "// of the last — amplification the per-location taxonomy cannot see.\n"
      << "class " << cls << " {\n"
      << "  String handle() throws ServiceUnavailableException {\n"
      << "    var requestId = Config.getInt(\"storm.request.id\", 0);\n"
      << "    var backoff = Config.getInt(\"" << key << ".backoff.ms\", 60);\n"
      << "    while (true) {\n"
      << "      try {\n"
      << "        return this.broadcast();\n"
      << "      } catch (ServiceUnavailableException e) {\n"
      << "        var jitter = (Clock.nowMillis() * 29 + requestId * 23) % backoff;\n"
      << "        Log.warn(\"replica set unavailable; re-broadcasting\");\n"
      << "        Thread.sleep(backoff / 2 + jitter / 2);\n"
      << "      }\n"
      << "    }\n"
      << "  }\n"
      << "\n"
      << "  String broadcast()\n"
      << "      throws ServiceUnavailableException, ResourceExhaustedException {\n"
      << "    var primary = this.send(\"replica-0\");\n"
      << "    var mirror1 = this.send(\"replica-1\");\n"
      << "    var mirror2 = this.send(\"replica-2\");\n"
      << "    Log.info(\"mirrored: \" + mirror1 + \" \" + mirror2);\n"
      << "    return primary;\n"
      << "  }\n"
      << "\n"
      << "  String send(String payload)\n"
      << "      throws ServiceUnavailableException, ResourceExhaustedException {\n"
      << "    return \"ok:\" + payload;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "handle");
  AddBug(BugType::kStormUnboundedFanout, cls, "handle",
         "uncapped hedged retry re-broadcasts to every replica each round: load multiplies",
         /*tested=*/true);
  app_.default_int_configs.emplace_back(key + ".backoff.ms", 60);

  std::ostringstream test;
  test << "  void testHandle() {\n"
       << MaybeTestPreamble()  //
       << "    var m = new " << cls << "();\n"
       << "    Assert.assertEquals(\"ok:replica-0\", m.handle());\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

void AppBuilder::EmitStormOverloadService() {
  std::string cls = FreshName("Pump");
  std::string key = spec_.app + "." + ToLower(cls);
  std::ostringstream out;
  out << "// Treats the backend's overload push-back like any transient blip: it\n"
      << "// keeps hammering with a short fixed delay instead of shedding, so the\n"
      << "// offered load never drops below capacity once the queue fills — the\n"
      << "// classic metastable-storm pattern (docs/STORM.md).\n"
      << "class " << cls << " {\n"
      << "  String handle() throws ServiceUnavailableException {\n"
      << "    var requestId = Config.getInt(\"storm.request.id\", 0);\n"
      << "    var backoff = Config.getInt(\"" << key << ".backoff.ms\", 40);\n"
      << "    while (true) {\n"
      << "      try {\n"
      << "        return this.send(\"req\");\n"
      << "      } catch (ServiceUnavailableException e) {\n"
      << "        var jitter = (Clock.nowMillis() * 37 + requestId * 19) % backoff;\n"
      << "        Thread.sleep(backoff / 2 + jitter / 2);\n"
      << "      } catch (ResourceExhaustedException e) {\n"
      << "        Log.warn(\"backend overloaded; retrying anyway\");\n"
      << "        Thread.sleep(Config.getInt(\"" << key << ".overload.backoff.ms\", 10));\n"
      << "      }\n"
      << "    }\n"
      << "  }\n"
      << "\n"
      << "  String send(String payload)\n"
      << "      throws ServiceUnavailableException, ResourceExhaustedException {\n"
      << "    return \"ok:\" + payload;\n"
      << "  }\n"
      << "}\n";
  AddFile(cls, out.str());
  RegisterRetry(cls, "handle");
  AddBug(BugType::kStormRetryOnOverload, cls, "handle",
         "retries the backend's overload signal with no breaker or shedding: metastable once "
         "the queue fills",
         /*tested=*/true);
  app_.default_int_configs.emplace_back(key + ".backoff.ms", 40);
  app_.default_int_configs.emplace_back(key + ".overload.backoff.ms", 10);

  std::ostringstream test;
  test << "  void testHandle() {\n"
       << MaybeTestPreamble()  //
       << "    var p = new " << cls << "();\n"
       << "    Assert.assertEquals(\"ok:req\", p.handle());\n"
       << "  }\n";
  EmitTest(cls, test.str());
}

GeneratedApp AppBuilder::Build() {
  app_.name = spec_.app;
  app_.display_name = spec_.display_name;
  const ModuleCounts& counts = spec_.counts;

  if (spec_.shared_rpc_client) {
    EmitSharedRpcClient();
  }
  for (int i = 0; i < counts.ok_loops; ++i) {
    EmitOkLoop(/*large_file=*/false);
  }
  for (int i = 0; i < counts.large_file_ok_loops; ++i) {
    EmitOkLoop(/*large_file=*/true);
  }
  for (int i = 0; i < counts.nocap_loops; ++i) {
    EmitNoCapLoop(/*tested=*/true);
  }
  for (int i = 0; i < counts.nocap_loops_untested; ++i) {
    EmitNoCapLoop(/*tested=*/false);
  }
  for (int i = 0; i < counts.timing_flaky_loops; ++i) {
    EmitTimingFlakyLoop();
  }
  for (int i = 0; i < counts.chaos_cap_loops; ++i) {
    EmitChaosCapLoop();
  }
  for (int i = 0; i < counts.negative_config_cap_loops; ++i) {
    EmitNegativeConfigCapLoop();
  }
  for (int i = 0; i < counts.nodelay_loops; ++i) {
    EmitNoDelayLoop(/*tested=*/true, /*large_file=*/false);
  }
  for (int i = 0; i < counts.nodelay_loops_untested; ++i) {
    EmitNoDelayLoop(/*tested=*/false, /*large_file=*/false);
  }
  for (int i = 0; i < counts.large_file_nodelay; ++i) {
    EmitNoDelayLoop(/*tested=*/true, /*large_file=*/true);
  }
  for (int i = 0; i < counts.benign_nodelay_loops; ++i) {
    EmitBenignNoDelayLoop();
  }
  for (int i = 0; i < counts.wrapped_exception_loops; ++i) {
    EmitWrappedExceptionLoop();
  }
  for (int i = 0; i < counts.crossfile_delay_loops; ++i) {
    EmitCrossFileDelayLoop();
  }
  for (int i = 0; i < counts.harness_cap_fp_loops; ++i) {
    EmitHarnessCapFpLoop();
  }
  for (int i = 0; i < counts.ok_queues; ++i) {
    EmitOkQueue();
  }
  for (int i = 0; i < counts.bug_queues; ++i) {
    EmitBugQueue();
  }
  for (int i = 0; i < counts.ok_state_machines; ++i) {
    EmitStateMachine(/*with_delay=*/true);
  }
  for (int i = 0; i < counts.nodelay_state_machines; ++i) {
    EmitStateMachine(/*with_delay=*/false);
  }
  for (int i = 0; i < counts.how_null_deref; ++i) {
    EmitHowNullDeref();
  }
  for (int i = 0; i < counts.how_partial_state; ++i) {
    EmitHowPartialState();
  }
  for (int i = 0; i < counts.how_shared_map; ++i) {
    EmitHowSharedMap();
  }
  for (int i = 0; i < counts.error_code_ok_loops; ++i) {
    EmitErrorCodeLoop(/*with_delay=*/true);
  }
  for (int i = 0; i < counts.error_code_nodelay_loops; ++i) {
    EmitErrorCodeLoop(/*with_delay=*/false);
  }
  for (int i = 0; i < counts.iteration_loops_fp_bait; ++i) {
    EmitIterationFpBait();
  }
  for (int i = 0; i < counts.iteration_loops_clean; ++i) {
    EmitIterationClean(i);
  }
  for (int i = 0; i < counts.poll_loops; ++i) {
    EmitPollLoop();
  }
  for (int i = 0; i < counts.policy_files; ++i) {
    EmitPolicyFile(/*dense=*/i % 2 == 0);
  }
  for (int i = 0; i < counts.codeql_fp_lock_loops; ++i) {
    EmitCodeqlFpLock();
  }
  for (int i = 0; i < counts.codeql_fp_unique_string_loops; ++i) {
    EmitCodeqlFpUniqueString();
  }
  for (int i = 0; i < counts.codeql_fp_param_parsers; ++i) {
    EmitCodeqlFpParamParser();
  }
  EmitIfRatioModule();
  for (int i = 0; i < counts.halved_cap_loops; ++i) {
    EmitHalvedCapLoop();
  }
  for (int i = 0; i < counts.background_daemons; ++i) {
    EmitDaemonModule();
  }
  for (int i = 0; i < counts.storm_ok_services; ++i) {
    EmitStormOkService();
  }
  for (int i = 0; i < counts.storm_nojitter_services; ++i) {
    EmitStormNoJitterService();
  }
  for (int i = 0; i < counts.storm_fanout_services; ++i) {
    EmitStormFanoutService();
  }
  for (int i = 0; i < counts.storm_overload_services; ++i) {
    EmitStormOverloadService();
  }
  for (int i = 0; i < counts.unrelated_util_files; ++i) {
    EmitUnrelatedUtil();
  }
  return std::move(app_);
}

}  // namespace

GeneratedApp GenerateApp(const GeneratorSpec& spec) {
  AppBuilder builder(spec);
  return builder.Build();
}

}  // namespace wasabi
