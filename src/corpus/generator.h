// Synthetic corpus generator.
//
// Each corpus application is assembled from parameterized module templates
// that reproduce the retry shapes and bug patterns of the paper's study
// (§2): loop retry, queue re-enqueueing, state-machine re-transition, the
// three HOW-bug patterns, error-code retry, plus the non-retry look-alikes
// (item iteration, polling/spin, policy-definition files) that exercise the
// detectors' false-positive modes. Every emitted module comes with its mj
// source, an optional unit-test class, and exact ground-truth labels.
//
// Generation is fully deterministic: names are drawn from fixed pools indexed
// by a per-app seed.

#ifndef WASABI_SRC_CORPUS_GENERATOR_H_
#define WASABI_SRC_CORPUS_GENERATOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/core/scoring.h"

namespace wasabi {

// How many modules of each template an application gets. See generator.cc for
// what each template looks like and which detectors it exercises.
struct ModuleCounts {
  // Loop retry (the 55% class).
  int ok_loops = 0;                  // Cap + delay: no bug.
  int nocap_loops = 0;               // Seeded WHEN/missing-cap, tested.
  int nocap_loops_untested = 0;      // Seeded WHEN/missing-cap, no unit test.
  int nodelay_loops = 0;             // Seeded WHEN/missing-delay, tested.
  int nodelay_loops_untested = 0;    // Seeded WHEN/missing-delay, no unit test.
  int benign_nodelay_loops = 0;      // Rotates replicas, no sleep: oracle FP bait.
  int wrapped_exception_loops = 0;   // Wraps the trigger: HOW-oracle FP bait.
  int crossfile_delay_loops = 0;     // Delay via helper in another file: LLM FP bait.
  int harness_cap_fp_loops = 0;      // Capped retry + task-looping test: cap-oracle FP bait.

  // Queue retry (the 25% class).
  int ok_queues = 0;                 // Attempt guard + delay.
  int bug_queues = 0;                // Unconditional re-enqueue: seeded missing-cap.

  // State-machine retry (the 20% class).
  int ok_state_machines = 0;
  int nodelay_state_machines = 0;    // Seeded WHEN/missing-delay.

  // HOW bugs (exposed by K=1 injection).
  int how_null_deref = 0;            // Catch handler dereferences unbuilt state.
  int how_partial_state = 0;         // Leftovers from attempt 1 crash attempt 2.
  int how_shared_map = 0;            // Retry corrupts shared bookkeeping; assert fails.

  // Error-code retry: identified (LLM) but not exception-injectable.
  int error_code_ok_loops = 0;       // With sleep: no bug.
  int error_code_nodelay_loops = 0;  // Seeded missing-delay, only static can find it.

  // Non-retry look-alikes.
  int iteration_loops_fp_bait = 0;   // Catch-and-skip iteration: LLM Q1 FP mode.
  int iteration_loops_clean = 0;     // Rethrow/no-catch iteration: no detector fires.
  int poll_loops = 0;                // compareAndSet/poll: Q4 exclusion material.
  int policy_files = 0;              // Retry-wordy config builders: Q1 "say NO" material.
  // The three CodeQL identification FPs the paper found by sampling (§4.2):
  // lock acquisition with "retries" naming, unique-string generation with
  // "retries", and request parsing around a "retryOnConflict" parameter.
  int codeql_fp_lock_loops = 0;
  int codeql_fp_unique_string_loops = 0;
  int codeql_fp_param_parsers = 0;

  // IF-bug material: many retry loops catching `if_exception`, a minority
  // behaving differently (the outliers; seeded as IF bugs when labeled so).
  std::string if_exception;
  int if_retried_sites = 0;
  int if_not_retried_sites = 0;
  bool if_outliers_are_bugs = true;

  // Buries one nodelay bug late in a >10 KB file: LLM attention-miss mode.
  int large_file_nodelay = 0;
  // A healthy capped+delayed retry loop buried late in a >10 KB file: the LLM
  // misses the structure entirely (Figure 4's CodeQL-only region), no bug.
  int large_file_ok_loops = 0;

  // Undetectable-by-design WHEN bug (YARN-8362 analog: double-incremented
  // attempt counter halves the cap). Becomes a false negative for everyone.
  int halved_cap_loops = 0;

  // HDFS-15439 analog: `retry != maxAttempts` with a negative configured cap
  // retries forever. Unit testing catches it; the LLM sees a comparison and
  // believes a cap exists (false negative for static checking).
  int negative_config_cap_loops = 0;

  // Flakiness-prober ground truth (docs/FLAKINESS.md). A timing-flaky loop
  // branches on the wall-clock window: the busy window retries uncapped (the
  // seeded missing-cap fires), the quiet window gives up after 3 bounded
  // attempts — so the verdict flips under the prober's clock-epoch skew
  // (expected kFlaky). A chaos-cap loop drops its cap only when the seeded
  // degraded-environment chaos mode is active (expected kChaosInduced: probe
  // repetitions agree, the counterfactual clean-environment rerun differs).
  int timing_flaky_loops = 0;
  int chaos_cap_loops = 0;

  // Background-maintenance modules: five periodic catch-in-loop methods each,
  // with no retry wording. They populate the §4.4 keyword ablation (candidate
  // loops the filter prunes) and the LLM's iteration-FP lottery.
  int background_daemons = 0;

  // Retry-free utility modules with plain assertion tests; they provide the
  // large population of unit tests that do NOT cover retry (Table 6).
  int unrelated_util_files = 0;

  // Storm-simulation service frontends (src/storm, docs/STORM.md). Each is a
  // class with a zero-arg `handle()` entry point that retries a downstream
  // `send()`; the storm profile extractor probes exactly that shape. The ok
  // variant is healthy (bounded, jittered, sheds overload); the other three
  // seed one storm bug class each, only visible to the simulation oracles.
  int storm_ok_services = 0;
  int storm_nojitter_services = 0;  // Seeded STORM/missing-jitter.
  int storm_fanout_services = 0;    // Seeded STORM/unbounded-fanout.
  int storm_overload_services = 0;  // Seeded STORM/retry-on-overload.
};

struct GeneratorSpec {
  std::string app;           // Corpus id, e.g. "hbase".
  std::string display_name;  // "HBase".
  uint64_t seed = 1;
  ModuleCounts counts;
  // Every generated test also touches the shared RPC client so that planning
  // has redundant coverage to eliminate (Table 6).
  bool shared_rpc_client = true;
};

struct GeneratedApp {
  std::string name;
  std::string display_name;
  // file name -> mj source text.
  std::vector<std::pair<std::string, std::string>> files;
  std::vector<SeededBug> bugs;
  std::vector<std::pair<std::string, int64_t>> default_int_configs;
  int seeded_retry_structures = 0;  // True retry structures (excludes look-alikes).
  // Qualified coordinator methods ("Class.method") that genuinely implement
  // retry — the structure-level ground truth behind the §4.2 identification-
  // accuracy evaluation. seeded_retry_structures == this vector's size.
  std::vector<std::string> true_retry_coordinators;
};

GeneratedApp GenerateApp(const GeneratorSpec& spec);

}  // namespace wasabi

#endif  // WASABI_SRC_CORPUS_GENERATOR_H_
