#include "src/exec/campaign.h"

#include <algorithm>

namespace wasabi {

std::vector<CampaignRunSpec> ExpandPlan(const std::vector<PlanEntry>& plan,
                                        const std::vector<RetryLocation>& locations,
                                        const std::vector<int>& k_values) {
  std::vector<CampaignRunSpec> specs;
  specs.reserve(plan.size() * k_values.size());
  for (const PlanEntry& entry : plan) {
    if (entry.location_index >= locations.size()) {
      continue;  // Defensive: the planner never emits these.
    }
    for (int k : k_values) {
      CampaignRunSpec spec;
      spec.id = specs.size();
      spec.test = TestCase{entry.test};
      spec.location_index = entry.location_index;
      spec.k = k;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

std::vector<CampaignRunResult> ExecuteCampaign(const TestRunner& runner,
                                               const std::vector<RetryLocation>& locations,
                                               const std::vector<CampaignRunSpec>& specs,
                                               TaskPool& pool) {
  std::vector<CampaignRunResult> results(specs.size());
  pool.ParallelFor(specs.size(), [&](size_t i) {
    const CampaignRunSpec& spec = specs[i];
    const RetryLocation& location = locations[spec.location_index];
    // Per-run injector: counts and log entries are private to this run.
    FaultInjector injector({InjectionPoint{location.retried_method, location.coordinator,
                                           location.exception_name, spec.k}});
    CampaignRunResult& result = results[i];
    result.id = spec.id;
    result.location_index = spec.location_index;
    result.k = spec.k;
    result.record = runner.RunTest(spec.test, {&injector});
  });
  // Slot i already holds run id i, but sort anyway so the invariant "reducer
  // output is id-ordered" survives any future scheduling change.
  std::sort(results.begin(), results.end(),
            [](const CampaignRunResult& a, const CampaignRunResult& b) { return a.id < b.id; });
  return results;
}

CoverageMap MapCoverageParallel(const TestRunner& runner, const std::vector<TestCase>& tests,
                                const std::vector<RetryLocation>& locations, TaskPool& pool) {
  std::vector<std::vector<size_t>> hits(tests.size());
  pool.ParallelFor(tests.size(), [&](size_t i) {
    CoverageRecorder recorder(&locations);
    runner.RunTest(tests[i], {&recorder});
    hits[i] = recorder.hits();
  });
  CoverageMap coverage;
  for (size_t i = 0; i < tests.size(); ++i) {
    if (!hits[i].empty()) {
      coverage[tests[i].qualified_name] = std::move(hits[i]);
    }
  }
  return coverage;
}

ExecutionLog MergeCampaignLogs(const std::vector<CampaignRunResult>& results) {
  ExecutionLog merged;
  for (const CampaignRunResult& result : results) {
    merged.AppendAll(result.record.log);
  }
  return merged;
}

}  // namespace wasabi
