#include "src/exec/campaign.h"

#include <algorithm>
#include <set>

namespace wasabi {

std::vector<CampaignRunSpec> ExpandPlan(const std::vector<PlanEntry>& plan,
                                        const std::vector<RetryLocation>& locations,
                                        const std::vector<int>& k_values) {
  std::vector<CampaignRunSpec> specs;
  specs.reserve(plan.size() * k_values.size());
  for (const PlanEntry& entry : plan) {
    if (entry.location_index >= locations.size()) {
      continue;  // Defensive: the planner never emits these.
    }
    for (int k : k_values) {
      CampaignRunSpec spec;
      spec.id = specs.size();
      spec.test = TestCase{entry.test};
      spec.location_index = entry.location_index;
      spec.k = k;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

std::vector<CampaignRunResult> ExecuteCampaign(const TestRunner& runner,
                                               const std::vector<RetryLocation>& locations,
                                               const std::vector<CampaignRunSpec>& specs,
                                               TaskPool& pool, const CampaignObs& obs) {
  std::vector<CampaignRunResult> results(specs.size());
  pool.ParallelFor(specs.size(), [&](size_t i) {
    const CampaignRunSpec& spec = specs[i];
    const RetryLocation& location = locations[spec.location_index];
    ScopedSpan span(obs.tracer, "run");
    span.AddArg("run_id", static_cast<int64_t>(spec.id));
    span.AddArg("test", spec.test.qualified_name);
    span.AddArg("location", location.Key());
    span.AddArg("k", static_cast<int64_t>(spec.k));
    // Per-run injector: counts and log entries are private to this run; only
    // the commutative metric counters land in the shared (locked) registry.
    FaultInjector injector({InjectionPoint{location.retried_method, location.coordinator,
                                           location.exception_name, spec.k}},
                           obs.metrics);
    CampaignRunResult& result = results[i];
    result.id = spec.id;
    result.location_index = spec.location_index;
    result.k = spec.k;
    result.record = runner.RunTest(spec.test, {&injector});
    if (obs.progress != nullptr) {
      obs.progress->Tick();
    }
  });
  // Slot i already holds run id i, but sort anyway so the invariant "reducer
  // output is id-ordered" survives any future scheduling change.
  std::sort(results.begin(), results.end(),
            [](const CampaignRunResult& a, const CampaignRunResult& b) { return a.id < b.id; });
  // Per-run telemetry, aggregated at reduce time — serial, id-ordered, and
  // therefore identical for every worker count.
  if (obs.metrics != nullptr) {
    obs.metrics->Increment("campaign.runs_total", static_cast<int64_t>(results.size()));
    for (const CampaignRunResult& result : results) {
      obs.metrics->Observe("runner.steps", static_cast<double>(result.record.steps));
      obs.metrics->Observe("runner.loop_iterations",
                           static_cast<double>(result.record.loop_iterations));
      obs.metrics->Observe("runner.virtual_ms",
                           static_cast<double>(result.record.virtual_duration_ms));
    }
  }
  return results;
}

CoverageMap MapCoverageParallel(const TestRunner& runner, const std::vector<TestCase>& tests,
                                const std::vector<RetryLocation>& locations, TaskPool& pool,
                                const CampaignObs& obs) {
  std::vector<std::vector<size_t>> hits(tests.size());
  pool.ParallelFor(tests.size(), [&](size_t i) {
    ScopedSpan span(obs.tracer, "coverage.run");
    span.AddArg("test", tests[i].qualified_name);
    CoverageRecorder recorder(&locations);
    runner.RunTest(tests[i], {&recorder});
    hits[i] = recorder.hits();
    if (obs.progress != nullptr) {
      obs.progress->Tick();
    }
  });
  CoverageMap coverage;
  // Cumulative coverage over runs (discovery order) is the §4.3 "how fast do
  // tests reach new retry code" signal: a metrics series plus a Chrome
  // counter track. Emitted at reduce time, so the values are deterministic
  // even though the counter-track timestamps are reduce-side.
  std::set<size_t> cumulative;
  for (size_t i = 0; i < tests.size(); ++i) {
    cumulative.insert(hits[i].begin(), hits[i].end());
    if (obs.metrics != nullptr) {
      obs.metrics->AppendSeries("coverage.cumulative_locations",
                                static_cast<double>(cumulative.size()));
    }
    if (obs.tracer != nullptr) {
      obs.tracer->Counter("coverage.cumulative_locations", "locations",
                          static_cast<int64_t>(cumulative.size()));
    }
    if (!hits[i].empty()) {
      coverage[tests[i].qualified_name] = std::move(hits[i]);
    }
  }
  if (obs.metrics != nullptr) {
    obs.metrics->Increment("coverage.runs_total", static_cast<int64_t>(tests.size()));
    obs.metrics->SetGauge("coverage.locations_covered", static_cast<double>(cumulative.size()));
  }
  return coverage;
}

ExecutionLog MergeCampaignLogs(const std::vector<CampaignRunResult>& results) {
  ExecutionLog merged;
  for (const CampaignRunResult& result : results) {
    merged.AppendAll(result.record.log);
  }
  return merged;
}

}  // namespace wasabi
