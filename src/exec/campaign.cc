#include "src/exec/campaign.h"

#include <algorithm>
#include <set>

namespace wasabi {

std::vector<CampaignRunSpec> ExpandPlan(const std::vector<PlanEntry>& plan,
                                        const std::vector<RetryLocation>& locations,
                                        const std::vector<int>& k_values) {
  std::vector<CampaignRunSpec> specs;
  specs.reserve(plan.size() * k_values.size());
  for (const PlanEntry& entry : plan) {
    if (entry.location_index >= locations.size()) {
      continue;  // Defensive: the planner never emits these.
    }
    for (int k : k_values) {
      CampaignRunSpec spec;
      spec.id = specs.size();
      spec.test = TestCase{entry.test};
      spec.location_index = entry.location_index;
      spec.k = k;
      specs.push_back(std::move(spec));
    }
  }
  return specs;
}

std::vector<CampaignRunResult> ExecuteCampaign(const TestRunner& runner,
                                               const std::vector<RetryLocation>& locations,
                                               const std::vector<CampaignRunSpec>& specs,
                                               TaskPool& pool, const CampaignObs& obs) {
  std::vector<CampaignRunResult> results(specs.size());
  // One warm interpreter per worker, reused across that worker's runs
  // (docs/PERFORMANCE.md). Each arena is touched by exactly one worker at a
  // time, so no locking.
  std::vector<InterpreterArena> arenas(static_cast<size_t>(pool.worker_count()));
  pool.ParallelFor(specs.size(), [&](size_t i) {
    const CampaignRunSpec& spec = specs[i];
    const RetryLocation& location = locations[spec.location_index];
    ScopedSpan span(obs.tracer, "run");
    span.AddArg("run_id", static_cast<int64_t>(spec.id));
    span.AddArg("test", spec.test.qualified_name);
    span.AddArg("location", location.Key());
    span.AddArg("k", static_cast<int64_t>(spec.k));
    // Per-run injector: counts and log entries are private to this run; only
    // the commutative metric counters land in the shared (locked) registry.
    FaultInjector injector({InjectionPoint{location.retried_method, location.coordinator,
                                           location.exception_name, spec.k}},
                           obs.metrics);
    CampaignRunResult& result = results[i];
    result.id = spec.id;
    result.location_index = spec.location_index;
    result.k = spec.k;
    result.record = runner.RunTest(spec.test, {&injector},
                                   &arenas[static_cast<size_t>(TaskPool::CurrentWorker())]);
    if (obs.progress != nullptr) {
      obs.progress->Tick();
    }
  });
  // Slot i already holds run id i, but sort anyway so the invariant "reducer
  // output is id-ordered" survives any future scheduling change.
  std::sort(results.begin(), results.end(),
            [](const CampaignRunResult& a, const CampaignRunResult& b) { return a.id < b.id; });
  // Per-run telemetry, aggregated at reduce time — serial, id-ordered, and
  // therefore identical for every worker count.
  if (obs.metrics != nullptr) {
    obs.metrics->Increment("campaign.runs_total", static_cast<int64_t>(results.size()));
    for (const CampaignRunResult& result : results) {
      obs.metrics->Observe("runner.steps", static_cast<double>(result.record.steps));
      obs.metrics->Observe("runner.loop_iterations",
                           static_cast<double>(result.record.loop_iterations));
      obs.metrics->Observe("runner.virtual_ms",
                           static_cast<double>(result.record.virtual_duration_ms));
    }
  }
  return results;
}

CoverageMap MapCoverageParallel(const TestRunner& runner, const std::vector<TestCase>& tests,
                                const std::vector<RetryLocation>& locations, TaskPool& pool,
                                const CampaignObs& obs) {
  std::vector<std::vector<size_t>> hits(tests.size());
  std::vector<InterpreterArena> arenas(static_cast<size_t>(pool.worker_count()));
  pool.ParallelFor(tests.size(), [&](size_t i) {
    ScopedSpan span(obs.tracer, "coverage.run");
    span.AddArg("test", tests[i].qualified_name);
    CoverageRecorder recorder(&locations);
    runner.RunTest(tests[i], {&recorder},
                   &arenas[static_cast<size_t>(TaskPool::CurrentWorker())]);
    hits[i] = recorder.hits();
    if (obs.progress != nullptr) {
      obs.progress->Tick();
    }
  });
  CoverageMap coverage;
  // Cumulative coverage over runs (discovery order) is the §4.3 "how fast do
  // tests reach new retry code" signal: a metrics series plus a Chrome
  // counter track. Emitted at reduce time, so the values are deterministic
  // even though the counter-track timestamps are reduce-side.
  std::set<size_t> cumulative;
  for (size_t i = 0; i < tests.size(); ++i) {
    cumulative.insert(hits[i].begin(), hits[i].end());
    if (obs.metrics != nullptr) {
      obs.metrics->AppendSeries("coverage.cumulative_locations",
                                static_cast<double>(cumulative.size()));
    }
    if (obs.tracer != nullptr) {
      obs.tracer->Counter("coverage.cumulative_locations", "locations",
                          static_cast<int64_t>(cumulative.size()));
    }
    if (!hits[i].empty()) {
      coverage[tests[i].qualified_name] = std::move(hits[i]);
    }
  }
  if (obs.metrics != nullptr) {
    obs.metrics->Increment("coverage.runs_total", static_cast<int64_t>(tests.size()));
    obs.metrics->SetGauge("coverage.locations_covered", static_cast<double>(cumulative.size()));
  }
  return coverage;
}

ExecutionLog MergeCampaignLogs(const std::vector<CampaignRunResult>& results) {
  ExecutionLog merged;
  for (const CampaignRunResult& result : results) {
    merged.AppendAll(result.record.log);
  }
  return merged;
}

namespace {

// Chaos identity for a coverage run: top bit set so the draw stream never
// collides with campaign run ids under the same seed.
uint64_t CoverageChaosIdentity(size_t test_index) {
  return (1ULL << 63) | static_cast<uint64_t>(test_index);
}

void ExportRobustMetrics(const CampaignObs& obs, const RobustnessStats& stats) {
  if (obs.metrics == nullptr) {
    return;
  }
  obs.metrics->Increment("robust.retries_total", stats.retries);
  obs.metrics->Increment("robust.recovered_total", stats.recovered);
  obs.metrics->Increment("robust.quarantined_total", stats.quarantined);
  obs.metrics->Increment("robust.chaos_faults_total", stats.chaos_faults);
  obs.metrics->Increment("robust.breaker_open_total", stats.breaker_open);
  obs.metrics->Increment("robust.fail_fast_skipped_total", stats.fail_fast_skipped);
  obs.metrics->Increment("robust.backoff_virtual_ms", stats.backoff_virtual_ms);
}

}  // namespace

namespace {

// Forwards dispatch-cache resolutions into a run's decision stream. One
// instance per in-flight attempt, owned by the worker lambda.
struct RecorderDispatchObserver : DispatchObserver {
  RunRecorder* recorder = nullptr;
  void OnDispatch(uint32_t site_index, std::string_view cls,
                  std::string_view method) override {
    recorder->Dispatch(site_index, cls, method);
  }
};

// Counts retry-loop (while/for) iterations executed inside the coordinator
// method for the journal. One instance per in-flight attempt, owned by the
// worker lambda; the coordinator filter keeps the application's unrelated
// loops (map phases, list walks) out of the retry accounting. Coalesced to
// one kLoopIterations event per attempt at attempt end.
struct JournalLoopObserver : LoopObserver {
  std::string_view coordinator;
  int64_t iterations = 0;
  int64_t last_ms = 0;
  void OnLoopIteration(std::string_view method, int64_t virtual_ms) override {
    if (method == coordinator) {
      ++iterations;
      last_ms = virtual_ms;
    }
  }
};

}  // namespace

CampaignOutcome ExecuteCampaignRobust(const TestRunner& runner,
                                      const std::vector<RetryLocation>& locations,
                                      const std::vector<CampaignRunSpec>& specs, TaskPool& pool,
                                      const RobustnessOptions& options, const CampaignObs& obs) {
  return ExecuteCampaignRobust(runner, locations, specs, pool, options, obs, nullptr,
                               nullptr);
}

CampaignOutcome ExecuteCampaignRobust(const TestRunner& runner,
                                      const std::vector<RetryLocation>& locations,
                                      const std::vector<CampaignRunSpec>& specs, TaskPool& pool,
                                      const RobustnessOptions& options, const CampaignObs& obs,
                                      std::vector<InterpreterArena>* arenas,
                                      std::vector<RunRecorder>* recorders) {
  CampaignOutcome outcome;
  RobustnessStats& stats = outcome.robustness;
  std::vector<CampaignRunResult> results(specs.size());
  std::vector<int> attempts(specs.size(), 0);
  std::vector<char> completed(specs.size(), 0);
  std::vector<InterpreterArena> local_arenas(
      arenas != nullptr ? 0 : static_cast<size_t>(pool.worker_count()));
  std::vector<InterpreterArena>& arena_pool = arenas != nullptr ? *arenas : local_arenas;
  CircuitBreaker breaker(options.breaker_threshold, options.breaker_cooldown);

  if (recorders != nullptr) {
    // One decision stream per run, indexed by run id (== spec position).
    // Begun up front so even never-admitted runs serialize a complete record.
    recorders->clear();
    recorders->resize(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      (*recorders)[i].BeginRun(specs[i].id, specs[i].test.qualified_name,
                               locations[specs[i].location_index].Key(), specs[i].k,
                               ChaosDegradedEnvironment(options.chaos, specs[i].id),
                               /*epoch_ms=*/0);
    }
  }
  auto recorder_for = [&](size_t i) -> RunRecorder* {
    return recorders != nullptr ? &(*recorders)[i] : nullptr;
  };

  // One journal handle per run, indexed like `recorders`. A handle is touched
  // by at most one worker per wave and by the serial reduce after the wave
  // joins, so its per-run sequence numbers never race.
  std::vector<JournalRun> journal_runs;
  if (obs.journal != nullptr) {
    journal_runs.resize(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      journal_runs[i].Begin(obs.journal, JournalStream::kCampaign, specs[i].id,
                            specs[i].test.qualified_name,
                            locations[specs[i].location_index].Key(), specs[i].k);
    }
  }
  auto journal_for = [&](size_t i) -> JournalRun* {
    return obs.journal != nullptr ? &journal_runs[i] : nullptr;
  };
  int64_t breaker_opens = 0;  // Cumulative, for the breaker counter track.

  auto quarantine = [&](size_t i, RunFailure failure) {
    const CampaignRunSpec& spec = specs[i];
    failure.run_id = spec.id;
    failure.test = spec.test.qualified_name;
    failure.location = locations[spec.location_index].Key();
    failure.attempts = attempts[i];
    if (RunRecorder* recorder = recorder_for(i)) {
      recorder->Quarantine(RunFailureKindName(failure.kind), failure.detail);
    }
    if (JournalRun* jr = journal_for(i)) {
      jr->Quarantine(RunFailureKindName(failure.kind), failure.detail);
    }
    outcome.quarantined.push_back(std::move(failure));
    ++stats.quarantined;
  };

  // Wave execution: attempts within a wave run in parallel; everything that
  // *decides* anything — admission, failure classification, breaker feeding,
  // retry scheduling — happens serially in id order between waves, so the
  // outcome is byte-identical for any worker count.
  std::vector<size_t> wave(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    wave[i] = i;
  }
  while (!wave.empty()) {
    // Admission, serial in id order.
    std::vector<size_t> admitted;
    admitted.reserve(wave.size());
    for (size_t i : wave) {
      const std::string key = locations[specs[i].location_index].Key();
      const bool quota_hit =
          options.max_quarantined >= 0 &&
          static_cast<int64_t>(outcome.quarantined.size()) > options.max_quarantined;
      if (quota_hit || (options.fail_fast && !outcome.quarantined.empty())) {
        RunFailure skip;
        skip.kind = RunFailureKind::kHostException;
        skip.detail = quota_hit ? "skipped: quarantine limit reached"
                                : "skipped: fail-fast after earlier quarantine";
        stats.aborted = stats.aborted || quota_hit;
        ++stats.fail_fast_skipped;
        quarantine(i, std::move(skip));
        continue;
      }
      if (breaker.IsOpen(key)) {
        RunFailure skip;
        skip.kind = RunFailureKind::kHostException;
        skip.detail = "skipped: circuit open for " + key;
        ++stats.breaker_open;
        if (obs.tracer != nullptr) {
          obs.tracer->Counter("robust.breaker_open", "skipped_runs", stats.breaker_open);
        }
        quarantine(i, std::move(skip));
        continue;
      }
      admitted.push_back(i);
    }
    if (admitted.empty()) {
      break;
    }
    std::vector<std::exception_ptr> errors = pool.ParallelForCaptured(
        admitted.size(), [&](size_t w) {
          const size_t i = admitted[w];
          const CampaignRunSpec& spec = specs[i];
          const RetryLocation& location = locations[spec.location_index];
          const int attempt = attempts[i] + 1;
          ScopedSpan span(obs.tracer, "run");
          span.AddArg("run_id", static_cast<int64_t>(spec.id));
          span.AddArg("test", spec.test.qualified_name);
          span.AddArg("location", location.Key());
          span.AddArg("k", static_cast<int64_t>(spec.k));
          if (attempt > 1) {
            span.AddArg("attempt", static_cast<int64_t>(attempt));
          }
          RunRecorder* recorder = recorder_for(i);
          if (recorder != nullptr && options.chaos.enabled) {
            recorder->Chaos(attempt, ChaosShouldFault(options.chaos, spec.id, attempt));
          }
          // The chaos seam sits before the injector so a faulted attempt
          // contributes no injection counters — the fault-free metric totals
          // stay reachable by retry.
          ChaosMaybeFault(options.chaos, spec.id, attempt);
          FaultInjector injector({InjectionPoint{location.retried_method, location.coordinator,
                                                 location.exception_name, spec.k}},
                                 obs.metrics);
          RecorderDispatchObserver dispatch_observer;
          JournalLoopObserver loop_observer;
          RunPerturbation perturbation;
          perturbation.chaos_degraded_env = ChaosDegradedEnvironment(options.chaos, spec.id);
          if (recorder != nullptr) {
            recorder->AttemptBegin(attempt);
            injector.set_recorder(recorder);
            dispatch_observer.recorder = recorder;
            perturbation.dispatch_observer = &dispatch_observer;
          }
          JournalRun* jr = journal_for(i);
          if (jr != nullptr) {
            // Like the recorder's AttemptBegin, this sits after the chaos
            // seam: a chaos-faulted attempt never began at the app level and
            // shows up as a reduce-time kHostFailure instead.
            jr->AttemptBegin(attempt);
            loop_observer.coordinator = location.coordinator;
            perturbation.loop_observer = &loop_observer;
          }
          CampaignRunResult& result = results[i];
          result.id = spec.id;
          result.location_index = spec.location_index;
          result.k = spec.k;
          result.record = runner.RunTest(
              spec.test, {&injector},
              &arena_pool[static_cast<size_t>(TaskPool::CurrentWorker())], perturbation);
          if (recorder != nullptr) {
            recorder->AttemptEnd(attempt, TestStatusName(result.record.outcome.status));
          }
          if (jr != nullptr) {
            // Derive the attempt's retry timeline from run-private data (the
            // execution log preserves fire/sleep interleaving in virtual-time
            // order), so journal content never depends on which worker ran it.
            for (const LogEntry& entry : result.record.log.entries()) {
              if (entry.kind == LogEntryKind::kInjection) {
                jr->InjectFire(attempt, entry.virtual_time_ms, entry.amount);
              } else if (entry.kind == LogEntryKind::kSleep) {
                jr->Sleep(attempt, entry.virtual_time_ms, entry.amount);
              }
            }
            if (injector.TotalSkips() > 0) {
              jr->InjectSkip(attempt, injector.TotalSkips());
            }
            if (loop_observer.iterations > 0) {
              jr->LoopIterations(attempt, loop_observer.iterations, loop_observer.last_ms);
            }
            jr->Work(attempt, result.record.steps);
            jr->AttemptEnd(attempt, TestStatusName(result.record.outcome.status),
                           result.record.virtual_duration_ms);
          }
          if (obs.progress != nullptr) {
            obs.progress->Tick();
          }
        });
    // Reduce, serial in id order: classify, feed the breaker, decide retries.
    std::vector<size_t> next_wave;
    for (size_t w = 0; w < admitted.size(); ++w) {
      const size_t i = admitted[w];
      ++attempts[i];
      const std::string key = locations[specs[i].location_index].Key();
      if (!errors[w]) {
        completed[i] = 1;
        breaker.RecordSuccess(key);
        if (attempts[i] > 1) {
          ++stats.recovered;
        }
        continue;
      }
      RunFailure failure = ClassifyFailure(errors[w]);
      if (failure.chaos) {
        ++stats.chaos_faults;
      }
      if (RunRecorder* recorder = recorder_for(i)) {
        recorder->HostFailure(attempts[i], RunFailureKindName(failure.kind), failure.detail);
      }
      if (JournalRun* jr = journal_for(i)) {
        jr->HostFailure(attempts[i], RunFailureKindName(failure.kind), failure.chaos);
      }
      const bool was_open = breaker.IsOpen(key);
      breaker.RecordFailure(key);
      if (!was_open && breaker.IsOpen(key)) {
        ++breaker_opens;
        if (obs.tracer != nullptr) {
          obs.tracer->Counter("robust.breaker_open", "open_locations", breaker_opens);
        }
        if (JournalRun* jr = journal_for(i)) {
          jr->BreakerOpen(attempts[i]);
        }
      }
      const int next_attempt = attempts[i] + 1;
      if (options.retry.ShouldRetry(next_attempt) && !breaker.IsOpen(key)) {
        ++stats.retries;
        const int64_t backoff_ms = options.retry.BackoffMs(specs[i].id, next_attempt);
        stats.backoff_virtual_ms += backoff_ms;
        if (RunRecorder* recorder = recorder_for(i)) {
          recorder->Backoff(next_attempt, backoff_ms);
        }
        if (JournalRun* jr = journal_for(i)) {
          jr->BackoffWait(next_attempt, backoff_ms);
        }
        next_wave.push_back(i);
      } else {
        quarantine(i, std::move(failure));
      }
    }
    wave = std::move(next_wave);
  }
  stats.open_locations = breaker.OpenKeys();

  outcome.results.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    if (completed[i]) {
      outcome.results.push_back(std::move(results[i]));
    }
  }
  std::sort(outcome.results.begin(), outcome.results.end(),
            [](const CampaignRunResult& a, const CampaignRunResult& b) { return a.id < b.id; });
  std::sort(outcome.quarantined.begin(), outcome.quarantined.end(),
            [](const RunFailure& a, const RunFailure& b) { return a.run_id < b.run_id; });
  // Same reduce-time telemetry as ExecuteCampaign over the completed runs,
  // plus the resilience counters.
  if (obs.metrics != nullptr) {
    obs.metrics->Increment("campaign.runs_total", static_cast<int64_t>(outcome.results.size()));
    for (const CampaignRunResult& result : outcome.results) {
      obs.metrics->Observe("runner.steps", static_cast<double>(result.record.steps));
      obs.metrics->Observe("runner.loop_iterations",
                           static_cast<double>(result.record.loop_iterations));
      obs.metrics->Observe("runner.virtual_ms",
                           static_cast<double>(result.record.virtual_duration_ms));
    }
  }
  ExportRobustMetrics(obs, stats);
  return outcome;
}

std::vector<CoverageRunOutcome> ExecuteCoverageRuns(
    const TestRunner& runner, const std::vector<TestCase>& tests,
    const std::vector<RetryLocation>& locations, TaskPool& pool,
    const RobustnessOptions& options, const CampaignObs& obs,
    const std::vector<size_t>& original_indices) {
  std::vector<CoverageRunOutcome> per_test(tests.size());
  std::vector<InterpreterArena> arenas(static_cast<size_t>(pool.worker_count()));

  std::vector<size_t> wave(tests.size());
  for (size_t i = 0; i < tests.size(); ++i) {
    wave[i] = i;
  }
  while (!wave.empty()) {
    std::vector<std::exception_ptr> errors = pool.ParallelForCaptured(
        wave.size(), [&](size_t w) {
          const size_t i = wave[w];
          const int attempt = per_test[i].attempts + 1;
          ScopedSpan span(obs.tracer, "coverage.run");
          span.AddArg("test", tests[i].qualified_name);
          if (attempt > 1) {
            span.AddArg("attempt", static_cast<int64_t>(attempt));
          }
          ChaosMaybeFault(options.chaos, CoverageChaosIdentity(original_indices[i]), attempt);
          CoverageRecorder recorder(&locations);
          runner.RunTest(tests[i], {&recorder},
                         &arenas[static_cast<size_t>(TaskPool::CurrentWorker())]);
          per_test[i].hits = recorder.hits();
          if (obs.progress != nullptr) {
            obs.progress->Tick();
          }
        });
    std::vector<size_t> next_wave;
    for (size_t w = 0; w < wave.size(); ++w) {
      const size_t i = wave[w];
      CoverageRunOutcome& out = per_test[i];
      ++out.attempts;
      if (!errors[w]) {
        if (out.attempts > 1) {
          out.recovered = true;
        }
        continue;
      }
      RunFailure failure = ClassifyFailure(errors[w]);
      if (failure.chaos) {
        ++out.chaos_faults;
      }
      if (options.retry.ShouldRetry(out.attempts + 1)) {
        ++out.retries;
        out.backoff_virtual_ms +=
            options.retry.BackoffMs(CoverageChaosIdentity(original_indices[i]), out.attempts + 1);
        next_wave.push_back(i);
      } else {
        out.quarantined = true;
        out.failure_kind = failure.kind;
        out.failure_detail = std::move(failure.detail);
        out.failure_chaos = failure.chaos;
        out.hits.clear();  // A quarantined test covers nothing.
      }
    }
    wave = std::move(next_wave);
  }
  return per_test;
}

CoverageOutcome ReduceCoverageOutcomes(const std::vector<TestCase>& tests,
                                       std::vector<CoverageRunOutcome> per_test,
                                       const CampaignObs& obs) {
  CoverageOutcome outcome;
  RobustnessStats& stats = outcome.robustness;
  for (size_t i = 0; i < tests.size(); ++i) {
    const CoverageRunOutcome& out = per_test[i];
    stats.retries += out.retries;
    stats.chaos_faults += out.chaos_faults;
    stats.backoff_virtual_ms += out.backoff_virtual_ms;
    if (obs.journal != nullptr) {
      // Coverage journal entries are derived here, serially, from the
      // per-test outcome aggregates — the same structs a warm cache restores
      // — so the stream is identical for cold, warm, and any worker count.
      JournalRun jr;
      jr.Begin(obs.journal, JournalStream::kCoverage, static_cast<uint64_t>(i),
               tests[i].qualified_name, "<coverage>", 0);
      for (int64_t f = 0; f < out.chaos_faults; ++f) {
        jr.HostFailure(static_cast<int>(f) + 1, "chaos", true);
      }
      if (out.backoff_virtual_ms > 0) {
        jr.BackoffWait(out.attempts, out.backoff_virtual_ms);
      }
      if (out.quarantined) {
        jr.Quarantine(RunFailureKindName(out.failure_kind), out.failure_detail);
      } else {
        jr.AttemptEnd(out.attempts, out.recovered ? "recovered" : "passed", 0);
      }
    }
    if (out.quarantined) {
      RunFailure failure;
      failure.run_id = static_cast<uint64_t>(i);
      failure.test = tests[i].qualified_name;
      failure.location = "<coverage>";
      failure.kind = out.failure_kind;
      failure.detail = out.failure_detail;
      failure.attempts = out.attempts;
      failure.chaos = out.failure_chaos;
      outcome.quarantined.push_back(std::move(failure));
      ++stats.quarantined;
    } else if (out.recovered) {
      ++stats.recovered;
    }
  }

  // Identical reduce to MapCoverageParallel over the surviving runs.
  std::set<size_t> cumulative;
  for (size_t i = 0; i < tests.size(); ++i) {
    cumulative.insert(per_test[i].hits.begin(), per_test[i].hits.end());
    if (obs.metrics != nullptr) {
      obs.metrics->AppendSeries("coverage.cumulative_locations",
                                static_cast<double>(cumulative.size()));
    }
    if (obs.tracer != nullptr) {
      obs.tracer->Counter("coverage.cumulative_locations", "locations",
                          static_cast<int64_t>(cumulative.size()));
    }
    if (!per_test[i].hits.empty()) {
      outcome.coverage[tests[i].qualified_name] = std::move(per_test[i].hits);
    }
  }
  if (obs.metrics != nullptr) {
    obs.metrics->Increment("coverage.runs_total", static_cast<int64_t>(tests.size()));
    obs.metrics->SetGauge("coverage.locations_covered", static_cast<double>(cumulative.size()));
  }
  ExportRobustMetrics(obs, stats);
  return outcome;
}

CoverageOutcome MapCoverageRobust(const TestRunner& runner, const std::vector<TestCase>& tests,
                                  const std::vector<RetryLocation>& locations, TaskPool& pool,
                                  const RobustnessOptions& options, const CampaignObs& obs) {
  std::vector<size_t> identity(tests.size());
  for (size_t i = 0; i < tests.size(); ++i) {
    identity[i] = i;
  }
  return ReduceCoverageOutcomes(
      tests, ExecuteCoverageRuns(runner, tests, locations, pool, options, obs, identity), obs);
}

}  // namespace wasabi
