// Parallel fault-injection campaign executor (§3.1 dynamic workflow, scaled).
//
// The planner emits {test, location} pairs; each pair is executed under every
// K setting, so a campaign is a flat list of independent runs. Runs share only
// immutable state — the parsed Program and its ProgramIndex are built once and
// never mutated after construction — while every run gets a fresh Interpreter
// (own environment, virtual clock, singletons, execution log) and its own
// FaultInjector, so workers never share a mutable sink.
//
// Determinism: every run carries a stable id assigned in expansion order
// (plan-entry-major, K-minor). The reducer orders results by that id before
// any downstream consumer (oracles, report grouping, JSON) sees them, so the
// output is byte-identical for any worker count and any scheduling.

#ifndef WASABI_SRC_EXEC_CAMPAIGN_H_
#define WASABI_SRC_EXEC_CAMPAIGN_H_

#include <cstdint>
#include <vector>

#include "src/exec/task_pool.h"
#include "src/obs/journal.h"
#include "src/obs/metrics.h"
#include "src/obs/progress.h"
#include "src/obs/trace.h"
#include "src/record/recorder.h"
#include "src/robust/robust.h"
#include "src/testing/coverage.h"
#include "src/testing/runner.h"

namespace wasabi {

// Optional observability sinks threaded through the executor. All four are
// non-owning and may be null; the default-constructed value is "fully off".
// Spans and progress ticks are recorded from worker threads as runs execute;
// metric aggregation over run records happens at reduce time, serially and in
// run-id order, so the metrics snapshot is deterministic too. The journal
// records worker-side events through per-run JournalRun handles (one worker
// per run per wave) and reduce-side events serially, so its collected stream
// is byte-identical at any worker count (docs/OBSERVABILITY.md).
struct CampaignObs {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  ProgressMeter* progress = nullptr;
  RetryJournal* journal = nullptr;
};

// One unit of campaign work: run `test` while injecting at `location_index`
// with budget `k`.
struct CampaignRunSpec {
  uint64_t id = 0;  // Stable: position in expansion order.
  TestCase test;
  size_t location_index = 0;
  int k = kInjectOnce;
};

struct CampaignRunResult {
  uint64_t id = 0;
  size_t location_index = 0;
  int k = kInjectOnce;
  TestRunRecord record;  // Holds this run's private execution log.
};

// Expands the plan into run specs: for each entry, one spec per K value, in
// the order given. Ids number the specs 0..n-1.
std::vector<CampaignRunSpec> ExpandPlan(const std::vector<PlanEntry>& plan,
                                        const std::vector<RetryLocation>& locations,
                                        const std::vector<int>& k_values);

// Executes every spec on the pool and returns the results sorted by run id.
// With `obs` attached, every run gets a "run" span tagged
// {run_id, test, location, k}, per-run step/loop-iteration/virtual-time
// histograms and injection counters are fed to the registry, and the progress
// meter ticks once per completed run.
std::vector<CampaignRunResult> ExecuteCampaign(const TestRunner& runner,
                                               const std::vector<RetryLocation>& locations,
                                               const std::vector<CampaignRunSpec>& specs,
                                               TaskPool& pool, const CampaignObs& obs = {});

// The coverage-discovery pass (one clean run of every test, each with its own
// CoverageRecorder) on the pool. Produces exactly the map the serial
// MapCoverage produces: keyed and ordered by test name, empty runs omitted.
// With `obs` attached, each test run gets a "coverage.run" span, and the
// reduce emits cumulative-locations-covered over runs as both a metrics
// series and a Chrome counter track.
CoverageMap MapCoverageParallel(const TestRunner& runner, const std::vector<TestCase>& tests,
                                const std::vector<RetryLocation>& locations, TaskPool& pool,
                                const CampaignObs& obs = {});

// Merges the per-run logs into one campaign-wide log, runs in id order and
// entries in per-run append order — the deterministic reduce-time counterpart
// of the old "one shared log" view, with no concurrent appends anywhere.
ExecutionLog MergeCampaignLogs(const std::vector<CampaignRunResult>& results);

// --- Fault-contained execution (docs/ROBUSTNESS.md) -------------------------
//
// The robust variants never let a host-level failure kill the campaign:
// a run whose task throws is retried per RobustnessOptions::retry (waves:
// a parallel attempt wave, then a serial id-ordered reduce that classifies
// failures, feeds the per-location circuit breaker, and decides retries —
// so every resilience decision is independent of worker scheduling), and
// quarantined with a structured RunFailure once attempts are exhausted, the
// location's circuit is open, or fail-fast / the quarantine budget cut the
// campaign short. With default options and no failures the completed results
// are byte-identical to ExecuteCampaign's.

struct CampaignOutcome {
  std::vector<CampaignRunResult> results;  // Completed runs only, id-ordered.
  std::vector<RunFailure> quarantined;     // Given-up runs, id-ordered.
  RobustnessStats robustness;
};

CampaignOutcome ExecuteCampaignRobust(const TestRunner& runner,
                                      const std::vector<RetryLocation>& locations,
                                      const std::vector<CampaignRunSpec>& specs, TaskPool& pool,
                                      const RobustnessOptions& options,
                                      const CampaignObs& obs = {});

// As above, with two extensions the flakiness prober and record/replay modes
// need (docs/FLAKINESS.md):
//   * `arenas` — caller-owned per-worker arenas (size >= pool.worker_count()).
//     Sharing them lets the prober reuse the campaign's warm interpreters.
//     Null falls back to executor-local arenas.
//   * `recorders` — when non-null, resized to specs.size() and filled with one
//     decision stream per run (indexed by run id): chaos draws, attempt
//     begin/end, backoff draws, dispatch resolutions, injector fire/skip
//     choices, and quarantine outcomes. The caller appends the final verdict
//     (an oracle-phase fact) and serializes. Recording never changes the
//     campaign's observable outcome.
CampaignOutcome ExecuteCampaignRobust(const TestRunner& runner,
                                      const std::vector<RetryLocation>& locations,
                                      const std::vector<CampaignRunSpec>& specs, TaskPool& pool,
                                      const RobustnessOptions& options, const CampaignObs& obs,
                                      std::vector<InterpreterArena>* arenas,
                                      std::vector<RunRecorder>* recorders);

// Fault-contained coverage discovery: a test whose coverage run keeps failing
// at the host level is quarantined (location "<coverage>") and simply covers
// nothing, instead of killing the whole pass. Chaos identities for coverage
// runs are tagged with the top bit so they never collide with campaign run
// ids under one seed.
struct CoverageOutcome {
  CoverageMap coverage;
  std::vector<RunFailure> quarantined;  // run_id = test index in `tests`.
  RobustnessStats robustness;
};

CoverageOutcome MapCoverageRobust(const TestRunner& runner, const std::vector<TestCase>& tests,
                                  const std::vector<RetryLocation>& locations, TaskPool& pool,
                                  const RobustnessOptions& options, const CampaignObs& obs = {});

// --- Coverage execute/reduce split (docs/CACHING.md) ------------------------
//
// The robust coverage pass factors into a wave executor and a deterministic
// reduce so the incremental cache (src/exec/campaign_cache.h) can execute
// only the tests whose entries are missing and still reduce the merged
// per-test outcomes exactly like a cache-off run. MapCoverageRobust is the
// composition of the two over the full test list.

// Everything one test's coverage run produced, including the per-test slice
// of the resilience counters (sums over tests reproduce RobustnessStats).
struct CoverageRunOutcome {
  std::vector<size_t> hits;  // Location indices; empty when quarantined.
  int attempts = 0;
  int64_t retries = 0;
  bool recovered = false;
  int64_t chaos_faults = 0;
  int64_t backoff_virtual_ms = 0;
  bool quarantined = false;
  RunFailureKind failure_kind = RunFailureKind::kHostException;
  std::string failure_detail;
  bool failure_chaos = false;
};

// Runs the wave loop over `tests`. `original_indices` (parallel to `tests`)
// carries each test's index in the FULL discovery list: chaos identities,
// backoff streams, and quarantine run ids derive from it, so executing a
// subset behaves byte-identically to its slice of a full pass.
std::vector<CoverageRunOutcome> ExecuteCoverageRuns(
    const TestRunner& runner, const std::vector<TestCase>& tests,
    const std::vector<RetryLocation>& locations, TaskPool& pool,
    const RobustnessOptions& options, const CampaignObs& obs,
    const std::vector<size_t>& original_indices);

// Serial reduce over the full, discovery-ordered outcome list: coverage map,
// id-ordered quarantine records, summed stats, and the reduce-time metric
// surface (cumulative-coverage series, run counters).
CoverageOutcome ReduceCoverageOutcomes(const std::vector<TestCase>& tests,
                                       std::vector<CoverageRunOutcome> per_test,
                                       const CampaignObs& obs);

}  // namespace wasabi

#endif  // WASABI_SRC_EXEC_CAMPAIGN_H_
