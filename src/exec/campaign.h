// Parallel fault-injection campaign executor (§3.1 dynamic workflow, scaled).
//
// The planner emits {test, location} pairs; each pair is executed under every
// K setting, so a campaign is a flat list of independent runs. Runs share only
// immutable state — the parsed Program and its ProgramIndex are built once and
// never mutated after construction — while every run gets a fresh Interpreter
// (own environment, virtual clock, singletons, execution log) and its own
// FaultInjector, so workers never share a mutable sink.
//
// Determinism: every run carries a stable id assigned in expansion order
// (plan-entry-major, K-minor). The reducer orders results by that id before
// any downstream consumer (oracles, report grouping, JSON) sees them, so the
// output is byte-identical for any worker count and any scheduling.

#ifndef WASABI_SRC_EXEC_CAMPAIGN_H_
#define WASABI_SRC_EXEC_CAMPAIGN_H_

#include <cstdint>
#include <vector>

#include "src/exec/task_pool.h"
#include "src/testing/coverage.h"
#include "src/testing/runner.h"

namespace wasabi {

// One unit of campaign work: run `test` while injecting at `location_index`
// with budget `k`.
struct CampaignRunSpec {
  uint64_t id = 0;  // Stable: position in expansion order.
  TestCase test;
  size_t location_index = 0;
  int k = kInjectOnce;
};

struct CampaignRunResult {
  uint64_t id = 0;
  size_t location_index = 0;
  int k = kInjectOnce;
  TestRunRecord record;  // Holds this run's private execution log.
};

// Expands the plan into run specs: for each entry, one spec per K value, in
// the order given. Ids number the specs 0..n-1.
std::vector<CampaignRunSpec> ExpandPlan(const std::vector<PlanEntry>& plan,
                                        const std::vector<RetryLocation>& locations,
                                        const std::vector<int>& k_values);

// Executes every spec on the pool and returns the results sorted by run id.
std::vector<CampaignRunResult> ExecuteCampaign(const TestRunner& runner,
                                               const std::vector<RetryLocation>& locations,
                                               const std::vector<CampaignRunSpec>& specs,
                                               TaskPool& pool);

// The coverage-discovery pass (one clean run of every test, each with its own
// CoverageRecorder) on the pool. Produces exactly the map the serial
// MapCoverage produces: keyed and ordered by test name, empty runs omitted.
CoverageMap MapCoverageParallel(const TestRunner& runner, const std::vector<TestCase>& tests,
                                const std::vector<RetryLocation>& locations, TaskPool& pool);

// Merges the per-run logs into one campaign-wide log, runs in id order and
// entries in per-run append order — the deterministic reduce-time counterpart
// of the old "one shared log" view, with no concurrent appends anywhere.
ExecutionLog MergeCampaignLogs(const std::vector<CampaignRunResult>& results);

}  // namespace wasabi

#endif  // WASABI_SRC_EXEC_CAMPAIGN_H_
