#include "src/exec/campaign_cache.h"

#include <cstdlib>

#include "src/lang/digest.h"

namespace wasabi {

namespace {

// Payload framing: records separated by '\x1e', fields by '\x1f'. String
// fields escape both separators (and the escape char) so arbitrary detail
// text round-trips; a bad escape fails the decode, which is just a miss.
constexpr char kRecordSep = '\x1e';
constexpr char kFieldSep = '\x1f';

std::string EscapePayload(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case kRecordSep: out += "\\R"; break;
      case kFieldSep: out += "\\F"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

bool UnescapePayload(std::string_view escaped, std::string* out) {
  out->clear();
  for (size_t i = 0; i < escaped.size(); ++i) {
    char c = escaped[i];
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (++i >= escaped.size()) {
      return false;
    }
    switch (escaped[i]) {
      case '\\': out->push_back('\\'); break;
      case 'R': out->push_back(kRecordSep); break;
      case 'F': out->push_back(kFieldSep); break;
      default: return false;
    }
  }
  return true;
}

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool ParseInt(std::string_view field, int64_t* out) {
  if (field.empty()) {
    return false;
  }
  std::string buffer(field);
  char* end = nullptr;
  long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (end != buffer.c_str() + buffer.size()) {
    return false;
  }
  *out = static_cast<int64_t>(value);
  return true;
}

bool ParseBool(std::string_view field, bool* out) {
  if (field == "0") {
    *out = false;
    return true;
  }
  if (field == "1") {
    *out = true;
    return true;
  }
  return false;
}

void AppendField(std::string& out, std::string_view field, bool escape = false) {
  if (!out.empty() && out.back() != kRecordSep) {
    out.push_back(kFieldSep);
  }
  out.append(escape ? EscapePayload(field) : std::string(field));
}

bool ParseFailureKind(std::string_view field, RunFailureKind* out) {
  int64_t kind = 0;
  if (!ParseInt(field, &kind) || kind < 0 ||
      kind > static_cast<int64_t>(RunFailureKind::kChaos)) {
    return false;
  }
  *out = static_cast<RunFailureKind>(kind);
  return true;
}

}  // namespace

std::string EncodeCoverageEntry(const CoverageRunOutcome& outcome) {
  std::string out;
  AppendField(out, outcome.quarantined ? "1" : "0");
  AppendField(out, std::to_string(outcome.attempts));
  AppendField(out, std::to_string(outcome.retries));
  AppendField(out, outcome.recovered ? "1" : "0");
  AppendField(out, std::to_string(outcome.chaos_faults));
  AppendField(out, std::to_string(outcome.backoff_virtual_ms));
  AppendField(out, std::to_string(static_cast<int>(outcome.failure_kind)));
  AppendField(out, outcome.failure_detail, /*escape=*/true);
  AppendField(out, outcome.failure_chaos ? "1" : "0");
  std::string hits;
  for (size_t hit : outcome.hits) {
    if (!hits.empty()) {
      hits.push_back(',');
    }
    hits += std::to_string(hit);
  }
  AppendField(out, hits);
  return out;
}

bool DecodeCoverageEntry(const std::string& entry, size_t location_count,
                         CoverageRunOutcome* outcome) {
  std::vector<std::string_view> fields = Split(entry, kFieldSep);
  if (fields.size() != 10) {
    return false;
  }
  CoverageRunOutcome out;
  int64_t attempts = 0;
  if (!ParseBool(fields[0], &out.quarantined) || !ParseInt(fields[1], &attempts) ||
      !ParseInt(fields[2], &out.retries) || !ParseBool(fields[3], &out.recovered) ||
      !ParseInt(fields[4], &out.chaos_faults) || !ParseInt(fields[5], &out.backoff_virtual_ms) ||
      !ParseFailureKind(fields[6], &out.failure_kind) ||
      !UnescapePayload(fields[7], &out.failure_detail) ||
      !ParseBool(fields[8], &out.failure_chaos)) {
    return false;
  }
  out.attempts = static_cast<int>(attempts);
  if (!fields[9].empty()) {
    for (std::string_view part : Split(fields[9], ',')) {
      int64_t hit = 0;
      if (!ParseInt(part, &hit) || hit < 0 || static_cast<size_t>(hit) >= location_count) {
        return false;  // Index out of range: stale or damaged entry.
      }
      out.hits.push_back(static_cast<size_t>(hit));
    }
  }
  if (out.quarantined && !out.hits.empty()) {
    return false;  // Quarantined runs cover nothing, by construction.
  }
  *outcome = std::move(out);
  return true;
}

CoverageOutcome MapCoverageCached(const TestRunner& runner, const std::vector<TestCase>& tests,
                                  const std::vector<RetryLocation>& locations, TaskPool& pool,
                                  const RobustnessOptions& options, const CampaignObs& obs,
                                  const CampaignCacheContext& cache) {
  if (!cache.enabled()) {
    return MapCoverageRobust(runner, tests, locations, pool, options, obs);
  }
  std::vector<CoverageRunOutcome> per_test(tests.size());
  std::vector<char> cached(tests.size(), 0);
  std::vector<TestCase> missing;
  std::vector<size_t> missing_indices;
  for (size_t i = 0; i < tests.size(); ++i) {
    std::optional<std::string> entry =
        cache.store->Get(kCacheNsCoverage, cache.prefix + tests[i].qualified_name);
    if (entry.has_value() && DecodeCoverageEntry(*entry, locations.size(), &per_test[i])) {
      cached[i] = 1;
      continue;
    }
    missing.push_back(tests[i]);
    missing_indices.push_back(i);
  }
  if (!missing.empty()) {
    std::vector<CoverageRunOutcome> executed =
        ExecuteCoverageRuns(runner, missing, locations, pool, options, obs, missing_indices);
    for (size_t m = 0; m < missing.size(); ++m) {
      cache.store->Put(kCacheNsCoverage, cache.prefix + missing[m].qualified_name,
                       EncodeCoverageEntry(executed[m]));
      per_test[missing_indices[m]] = std::move(executed[m]);
    }
  }
  const int64_t hits = static_cast<int64_t>(tests.size() - missing.size());
  const int64_t misses = static_cast<int64_t>(missing.size());
  if (obs.metrics != nullptr) {
    obs.metrics->Increment("cache.hits.cov", hits);
    obs.metrics->Increment("cache.misses.cov", misses);
  }
  if (obs.tracer != nullptr) {
    obs.tracer->Counter("cache.hits", "cov", hits);
    obs.tracer->Counter("cache.misses", "cov", misses);
  }
  if (obs.journal != nullptr) {
    obs.journal->CacheLookup("cov", /*hit=*/true, hits);
    obs.journal->CacheLookup("cov", /*hit=*/false, misses);
  }
  return ReduceCoverageOutcomes(tests, std::move(per_test), obs);
}

std::string CampaignRunKey(const CampaignCacheContext& cache, const CampaignRunSpec& spec,
                           const std::vector<RetryLocation>& locations) {
  return cache.prefix + spec.test.qualified_name + "|" +
         locations[spec.location_index].Key() + "|k=" + std::to_string(spec.k);
}

std::string CampaignAggregateKey(const CampaignCacheContext& cache,
                                 const std::vector<CampaignRunSpec>& specs,
                                 const std::vector<RetryLocation>& locations) {
  // The aggregate key pins the exact spec list (order included), so a plan
  // change under the same program/config — impossible today, cheap to guard —
  // reads as a miss rather than a mismatched verdict set.
  uint64_t digest = mj::kFnvOffsetBasis;
  for (const CampaignRunSpec& spec : specs) {
    digest = mj::Fnv1a64(spec.test.qualified_name, digest);
    digest = mj::Fnv1a64(locations[spec.location_index].Key(), digest);
    digest = mj::Fnv1a64Mix(static_cast<uint64_t>(spec.k), digest);
  }
  return cache.prefix + "specs=" + std::to_string(specs.size()) + "|" + mj::DigestHex(digest);
}

namespace {

std::string EncodeStats(const RobustnessStats& stats) {
  std::string out;
  AppendField(out, std::to_string(stats.retries));
  AppendField(out, std::to_string(stats.recovered));
  AppendField(out, std::to_string(stats.quarantined));
  AppendField(out, std::to_string(stats.chaos_faults));
  AppendField(out, std::to_string(stats.breaker_open));
  AppendField(out, std::to_string(stats.fail_fast_skipped));
  AppendField(out, std::to_string(stats.backoff_virtual_ms));
  AppendField(out, stats.aborted ? "1" : "0");
  AppendField(out, std::to_string(stats.open_locations.size()));
  for (const std::string& key : stats.open_locations) {
    out.push_back(kRecordSep);
    out.append(EscapePayload(key));
  }
  return out;
}

bool DecodeStats(std::string_view entry, RobustnessStats* stats) {
  std::vector<std::string_view> records = Split(entry, kRecordSep);
  std::vector<std::string_view> fields = Split(records[0], kFieldSep);
  if (fields.size() != 9) {
    return false;
  }
  RobustnessStats out;
  int64_t open_count = 0;
  if (!ParseInt(fields[0], &out.retries) || !ParseInt(fields[1], &out.recovered) ||
      !ParseInt(fields[2], &out.quarantined) || !ParseInt(fields[3], &out.chaos_faults) ||
      !ParseInt(fields[4], &out.breaker_open) || !ParseInt(fields[5], &out.fail_fast_skipped) ||
      !ParseInt(fields[6], &out.backoff_virtual_ms) || !ParseBool(fields[7], &out.aborted) ||
      !ParseInt(fields[8], &open_count)) {
    return false;
  }
  if (open_count < 0 || static_cast<size_t>(open_count) != records.size() - 1) {
    return false;
  }
  for (size_t r = 1; r < records.size(); ++r) {
    std::string key;
    if (!UnescapePayload(records[r], &key)) {
      return false;
    }
    out.open_locations.push_back(std::move(key));
  }
  *stats = std::move(out);
  return true;
}

std::string EncodeVerdict(const CachedRunVerdict& verdict) {
  std::string out;
  AppendField(out, verdict.completed ? "1" : "0");
  AppendField(out, std::to_string(static_cast<int>(verdict.failure_kind)));
  AppendField(out, verdict.failure_detail, /*escape=*/true);
  AppendField(out, std::to_string(verdict.failure_attempts));
  AppendField(out, verdict.failure_chaos ? "1" : "0");
  for (const CachedRunVerdict::Report& report : verdict.reports) {
    out.push_back(kRecordSep);
    std::string record;
    AppendField(record, std::to_string(report.kind));
    AppendField(record, report.detail, /*escape=*/true);
    AppendField(record, report.group_key, /*escape=*/true);
    AppendField(record, report.probed ? "1" : "0");
    AppendField(record, std::to_string(report.stability));
    AppendField(record, report.flaky_cause, /*escape=*/true);
    out.append(record);
  }
  return out;
}

bool DecodeVerdict(std::string_view entry, CachedRunVerdict* verdict) {
  std::vector<std::string_view> records = Split(entry, kRecordSep);
  std::vector<std::string_view> header = Split(records[0], kFieldSep);
  if (header.size() != 5) {
    return false;
  }
  CachedRunVerdict out;
  int64_t attempts = 0;
  if (!ParseBool(header[0], &out.completed) ||
      !ParseFailureKind(header[1], &out.failure_kind) ||
      !UnescapePayload(header[2], &out.failure_detail) || !ParseInt(header[3], &attempts) ||
      !ParseBool(header[4], &out.failure_chaos)) {
    return false;
  }
  out.failure_attempts = static_cast<int>(attempts);
  for (size_t r = 1; r < records.size(); ++r) {
    std::vector<std::string_view> fields = Split(records[r], kFieldSep);
    if (fields.size() != 6) {
      return false;
    }
    CachedRunVerdict::Report report;
    int64_t kind = 0;
    int64_t stability = 0;
    if (!ParseInt(fields[0], &kind) || kind < 0 ||
        kind > static_cast<int64_t>(OracleKind::kDifferentException) ||
        !UnescapePayload(fields[1], &report.detail) ||
        !UnescapePayload(fields[2], &report.group_key) ||
        !ParseBool(fields[3], &report.probed) || !ParseInt(fields[4], &stability) ||
        stability < 0 || stability > static_cast<int64_t>(VerdictStability::kChaosInduced) ||
        !UnescapePayload(fields[5], &report.flaky_cause)) {
      return false;
    }
    report.kind = static_cast<int>(kind);
    report.stability = static_cast<int>(stability);
    out.reports.push_back(std::move(report));
  }
  if (!out.completed && !out.reports.empty()) {
    return false;  // Quarantined runs produce no reports.
  }
  *verdict = std::move(out);
  return true;
}

}  // namespace

bool TryLoadCampaign(const CampaignCacheContext& cache,
                     const std::vector<CampaignRunSpec>& specs,
                     const std::vector<RetryLocation>& locations, CachedCampaign* out) {
  if (!cache.enabled()) {
    return false;
  }
  std::optional<std::string> aggregate =
      cache.store->Get(kCacheNsCampaign, CampaignAggregateKey(cache, specs, locations));
  if (!aggregate.has_value() || !DecodeStats(*aggregate, &out->stats)) {
    return false;
  }
  out->runs.clear();
  out->runs.reserve(specs.size());
  for (const CampaignRunSpec& spec : specs) {
    std::optional<std::string> entry =
        cache.store->Get(kCacheNsRun, CampaignRunKey(cache, spec, locations));
    CachedRunVerdict verdict;
    if (!entry.has_value() || !DecodeVerdict(*entry, &verdict)) {
      return false;  // All-or-nothing: any gap means a cold campaign.
    }
    out->runs.push_back(std::move(verdict));
  }
  return true;
}

void StoreCampaign(const CampaignCacheContext& cache, const std::vector<CampaignRunSpec>& specs,
                   const std::vector<RetryLocation>& locations, const CachedCampaign& campaign) {
  if (!cache.enabled() || campaign.runs.size() != specs.size()) {
    return;
  }
  for (size_t i = 0; i < specs.size(); ++i) {
    cache.store->Put(kCacheNsRun, CampaignRunKey(cache, specs[i], locations),
                     EncodeVerdict(campaign.runs[i]));
  }
  cache.store->Put(kCacheNsCampaign, CampaignAggregateKey(cache, specs, locations),
                   EncodeStats(campaign.stats));
}

}  // namespace wasabi
