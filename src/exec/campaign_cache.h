// Cache integration for the campaign executor (docs/CACHING.md).
//
// Two memo granularities, chosen for correctness under partial hits:
//
//  * Coverage runs are independent of each other, so they memoize PER TEST:
//    a warm pass executes only the tests whose entries are missing, with their
//    ORIGINAL indices driving chaos identities and backoff streams so the
//    merged outcome is byte-identical to a cache-off run.
//
//  * Injected-run verdicts memoize per run but are consumed ALL OR NOTHING:
//    admission control (circuit breaker, fail-fast, quarantine quota) makes a
//    run's fate depend on every earlier run's fate, so replaying a subset
//    against live executions could diverge from a cold campaign. The facade
//    skips the campaign phase only when the aggregate entry and every per-run
//    verdict are present; any gap runs the whole campaign cold and re-stores.
//    (Any corpus edit changes the program digest and hence every campaign key,
//    so the all-or-nothing rule costs nothing in the workflows that matter.)
//
// Every decode validates shape, bounds, and enum ranges; a record that fails
// decodes as a miss (the store already checksums raw bytes), so cache damage
// can only cause recomputation, never a wrong report.

#ifndef WASABI_SRC_EXEC_CAMPAIGN_CACHE_H_
#define WASABI_SRC_EXEC_CAMPAIGN_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cache/store.h"
#include "src/exec/campaign.h"
#include "src/testing/oracles.h"

namespace wasabi {

// Namespace tags inside the store.
inline constexpr char kCacheNsCoverage[] = "cov";
inline constexpr char kCacheNsRun[] = "run";
inline constexpr char kCacheNsCampaign[] = "camp";

// Threaded from the facade into the executor. `prefix` already folds in the
// program digest, the workflow-config digest (interp/robust/oracle/planner
// options, chaos seed, injected exception set via the location keys), and the
// retry-location-list digest, so keys built from it are fully qualified.
struct CampaignCacheContext {
  CacheStore* store = nullptr;
  std::string prefix;

  bool enabled() const { return store != nullptr; }
};

// Per-test coverage cache entry payload.
std::string EncodeCoverageEntry(const CoverageRunOutcome& outcome);
bool DecodeCoverageEntry(const std::string& entry, size_t location_count,
                         CoverageRunOutcome* outcome);

// MapCoverageRobust with per-test memoization. With a disabled context this
// is exactly MapCoverageRobust; with one enabled, cached tests are restored
// and only the misses execute (under their original identities), then the
// shared reduce produces the byte-identical outcome and new entries are
// stored.
CoverageOutcome MapCoverageCached(const TestRunner& runner, const std::vector<TestCase>& tests,
                                  const std::vector<RetryLocation>& locations, TaskPool& pool,
                                  const RobustnessOptions& options, const CampaignObs& obs,
                                  const CampaignCacheContext& cache);

// One memoized injected-run verdict: the post-oracle reports for a completed
// run, or the quarantine record for a given-up one. Identity fields
// (test/location/run id) are reconstructed from the spec list on load.
struct CachedRunVerdict {
  bool completed = true;
  // Completed runs: the oracle (or naive-ablation) reports this run produced.
  struct Report {
    int kind = 0;  // OracleKind as int.
    std::string detail;
    std::string group_key;
    // Flakiness-prober classification for this report (docs/FLAKINESS.md).
    // Cached alongside the verdict so a warm campaign restores the exact
    // stability output of the cold one without re-probing.
    bool probed = false;
    int stability = 0;  // VerdictStability as int.
    std::string flaky_cause;
  };
  std::vector<Report> reports;
  // Quarantined runs.
  RunFailureKind failure_kind = RunFailureKind::kHostException;
  std::string failure_detail;
  int failure_attempts = 0;
  bool failure_chaos = false;
};

// Whole-campaign verdict set, parallel to the spec list.
struct CachedCampaign {
  std::vector<CachedRunVerdict> runs;
  RobustnessStats stats;
};

std::string CampaignRunKey(const CampaignCacheContext& cache, const CampaignRunSpec& spec,
                           const std::vector<RetryLocation>& locations);
std::string CampaignAggregateKey(const CampaignCacheContext& cache,
                                 const std::vector<CampaignRunSpec>& specs,
                                 const std::vector<RetryLocation>& locations);

// All-or-nothing load: true only when the aggregate entry and every per-run
// verdict decode. On false the out-param is unspecified and the campaign must
// run cold.
bool TryLoadCampaign(const CampaignCacheContext& cache,
                     const std::vector<CampaignRunSpec>& specs,
                     const std::vector<RetryLocation>& locations, CachedCampaign* out);

// Stores the aggregate entry and one verdict per spec after a cold campaign.
void StoreCampaign(const CampaignCacheContext& cache, const std::vector<CampaignRunSpec>& specs,
                   const std::vector<RetryLocation>& locations, const CachedCampaign& campaign);

}  // namespace wasabi

#endif  // WASABI_SRC_EXEC_CAMPAIGN_CACHE_H_
