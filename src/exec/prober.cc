#include "src/exec/prober.h"

#include <utility>

namespace wasabi {

std::string OracleSignature(const std::vector<OracleReport>& reports) {
  std::string signature;
  for (const OracleReport& report : reports) {
    signature.append(OracleKindName(report.kind));
    signature.push_back('|');
    signature.append(report.location.Key());
    signature.push_back('|');
    signature.append(report.group_key);
    signature.push_back('|');
    signature.append(report.detail);
    signature.push_back('\n');
  }
  return signature;
}

namespace {

// Executes one probe rerun of `spec` and returns the rerun's report
// signature. Throws whatever the host run throws (caller contains it).
std::string ProbeSignature(const TestRunner& runner, const RetryLocation& location,
                           const CampaignRunSpec& spec, InterpreterArena* arena,
                           const OracleOptions& oracles, int64_t epoch_ms,
                           bool degraded_env) {
  FaultInjector injector({InjectionPoint{location.retried_method, location.coordinator,
                                         location.exception_name, spec.k}},
                         nullptr);
  RunPerturbation perturbation;
  perturbation.virtual_clock_epoch_ms = epoch_ms;
  perturbation.chaos_degraded_env = degraded_env;
  TestRunRecord record = runner.RunTest(spec.test, {&injector}, arena, perturbation);
  return OracleSignature(
      DeduplicateReports(EvaluateOracles(record, location, oracles)));
}

}  // namespace

std::vector<ProbeResult> ProbeFailingRuns(const TestRunner& runner,
                                          const std::vector<RetryLocation>& locations,
                                          const std::vector<CampaignRunSpec>& specs,
                                          const std::vector<ProbeRequest>& requests,
                                          const ChaosConfig& chaos,
                                          const OracleOptions& oracles,
                                          const ProberOptions& options, TaskPool& pool,
                                          std::vector<InterpreterArena>* arenas,
                                          const CampaignObs& obs) {
  std::vector<ProbeResult> results(requests.size());
  if (requests.empty() || !options.enabled()) {
    return results;
  }
  std::vector<InterpreterArena> local_arenas(
      arenas != nullptr ? 0 : static_cast<size_t>(pool.worker_count()));
  std::vector<InterpreterArena>& arena_pool = arenas != nullptr ? *arenas : local_arenas;

  // One journal handle per request; begun serially here (deterministic order),
  // repetitions appended by the single worker that owns the request's task,
  // verdicts appended by the serial reduce below.
  std::vector<JournalRun> journal_runs;
  if (obs.journal != nullptr) {
    journal_runs.resize(requests.size());
    for (size_t r = 0; r < requests.size(); ++r) {
      const CampaignRunSpec& spec = specs[requests[r].run_id];
      journal_runs[r].Begin(obs.journal, JournalStream::kProbe, requests[r].run_id,
                            spec.test.qualified_name,
                            locations[spec.location_index].Key(), spec.k);
    }
  }

  // Each request's probing is one self-contained task: its repetitions run
  // serially on one worker (reusing that worker's warm arena), so worker
  // count never changes the classification. Host failures inside a probe are
  // contained per request (captured, counted, fall back to stable) — a broken
  // probe must not kill the campaign that already produced its verdicts.
  std::vector<std::exception_ptr> errors =
      pool.ParallelForCaptured(requests.size(), [&](size_t r) {
        const ProbeRequest& request = requests[r];
        const CampaignRunSpec& spec = specs[request.run_id];
        const RetryLocation& location = locations[spec.location_index];
        InterpreterArena* arena =
            &arena_pool[static_cast<size_t>(TaskPool::CurrentWorker())];
        ScopedSpan span(obs.tracer, "probe.run");
        span.AddArg("run_id", static_cast<int64_t>(request.run_id));
        span.AddArg("test", spec.test.qualified_name);
        span.AddArg("k", static_cast<int64_t>(spec.k));

        ProbeResult& result = results[r];
        result.run_id = request.run_id;
        JournalRun* jr = obs.journal != nullptr ? &journal_runs[r] : nullptr;
        const bool degraded = ChaosDegradedEnvironment(chaos, spec.id);
        bool diverged = false;
        for (int rep = 1; rep <= options.repetitions; ++rep) {
          ++result.repetitions;
          std::string signature =
              ProbeSignature(runner, location, spec, arena, oracles,
                             static_cast<int64_t>(rep) * options.epoch_stride_ms, degraded);
          diverged = signature != request.baseline_signature;
          if (jr != nullptr) {
            jr->ProbeRepetition(rep, diverged, /*counterfactual=*/false);
          }
          if (diverged) {
            break;  // Any divergence settles the class; later reps add nothing.
          }
        }
        if (diverged) {
          result.stability = VerdictStability::kFlaky;
        } else {
          result.stability = VerdictStability::kStable;
          if (degraded) {
            // Counterfactual: original epoch, degradation off. If the verdict
            // vanishes, the environment caused it.
            ++result.repetitions;
            std::string signature = ProbeSignature(runner, location, spec, arena, oracles,
                                                   /*epoch_ms=*/0, /*degraded_env=*/false);
            const bool vanished = signature != request.baseline_signature;
            if (jr != nullptr) {
              jr->ProbeRepetition(result.repetitions, vanished, /*counterfactual=*/true);
            }
            if (vanished) {
              result.stability = VerdictStability::kChaosInduced;
            }
          }
        }
        if (obs.progress != nullptr) {
          obs.progress->Tick();
        }
      });

  // Serial reduce in request (== run id) order: contain probe failures and
  // export the deterministic flaky.* metric family.
  int64_t repetitions_total = 0;
  int64_t stable = 0;
  int64_t flaky = 0;
  int64_t chaos_induced = 0;
  int64_t probe_failures = 0;
  for (size_t r = 0; r < requests.size(); ++r) {
    ProbeResult& result = results[r];
    result.run_id = requests[r].run_id;
    if (errors[r]) {
      // The probe itself failed at the host level; the campaign verdict
      // stands, unclassified beyond the conservative default.
      result.probe_failed = true;
      result.stability = VerdictStability::kStable;
      ++probe_failures;
    }
    if (obs.journal != nullptr) {
      journal_runs[r].ProbeVerdict(VerdictStabilityName(result.stability), result.probe_failed);
    }
    repetitions_total += result.repetitions;
    switch (result.stability) {
      case VerdictStability::kStable:
        ++stable;
        break;
      case VerdictStability::kFlaky:
        ++flaky;
        break;
      case VerdictStability::kChaosInduced:
        ++chaos_induced;
        break;
    }
  }
  if (obs.metrics != nullptr) {
    obs.metrics->Increment("flaky.probed_runs", static_cast<int64_t>(requests.size()));
    obs.metrics->Increment("flaky.repetitions_total", repetitions_total);
    obs.metrics->Increment("flaky.stable_verdicts", stable);
    obs.metrics->Increment("flaky.flaky_verdicts", flaky);
    obs.metrics->Increment("flaky.chaos_induced_verdicts", chaos_induced);
    obs.metrics->Increment("flaky.probe_failures", probe_failures);
  }
  return results;
}

}  // namespace wasabi
