// N-repetition flakiness prober (docs/FLAKINESS.md).
//
// After the injection campaign and oracle evaluation, every FAILING verdict
// (a completed run with at least one oracle report) is re-executed N times
// with a perturbed virtual-clock epoch, reusing the campaign's warm per-worker
// InterpreterArenas. The rerun report signatures decide the verdict's
// stability class:
//   * any divergence under timing perturbation            -> flaky
//   * reproduces, but only in the chaos-degraded env      -> chaos-induced
//     (a counterfactual rerun with the degradation off and the clock at the
//     original epoch no longer produces the signature)
//   * reproduces everywhere                               -> stable
//
// Determinism contract: the classification of a run is a pure function of
// (program, spec, chaos config, prober options) — probe repetitions run on
// whatever worker picks them up, but each run's probing is self-contained and
// the reduce is serial in run-id order, so the result is identical for any
// worker count and for warm or cold caches.

#ifndef WASABI_SRC_EXEC_PROBER_H_
#define WASABI_SRC_EXEC_PROBER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/exec/campaign.h"
#include "src/testing/oracles.h"

namespace wasabi {

struct ProberOptions {
  // Probe repetitions per failing verdict; <= 0 disables the prober entirely
  // (the default — classification is opt-in via --repetitions).
  int repetitions = 0;
  // Probe repetition r (1-based) starts its virtual clock at r * stride ms.
  // A fixed stride (not a hash) so timing-dependent ground-truth apps flip
  // deterministically under probing.
  int64_t epoch_stride_ms = 1000;

  bool enabled() const { return repetitions > 0; }
};

// The canonical signature of a run's oracle reports: what "same verdict"
// means for both the prober and the record/replay validator. Covers kind,
// location, detail, and group key of every report, in order.
std::string OracleSignature(const std::vector<OracleReport>& reports);

// One failing verdict to classify.
struct ProbeRequest {
  uint64_t run_id = 0;  // Index into the campaign's spec list.
  std::string baseline_signature;
};

struct ProbeResult {
  uint64_t run_id = 0;
  VerdictStability stability = VerdictStability::kStable;
  int repetitions = 0;     // Probe reruns actually executed.
  bool probe_failed = false;  // A rerun failed at the host level (fell back to stable).
};

// Probes every request and returns results in request order (the caller
// passes requests id-ordered). `arenas` may be the campaign's warm arena pool
// (size >= pool.worker_count()); null uses prober-local arenas. Probe runs
// never pass the host-level chaos fault seam — `chaos` is consulted only for
// the degraded-environment draw. Emits a "probe.run" span per request and the
// flaky.* metric family at reduce time.
std::vector<ProbeResult> ProbeFailingRuns(const TestRunner& runner,
                                          const std::vector<RetryLocation>& locations,
                                          const std::vector<CampaignRunSpec>& specs,
                                          const std::vector<ProbeRequest>& requests,
                                          const ChaosConfig& chaos,
                                          const OracleOptions& oracles,
                                          const ProberOptions& options, TaskPool& pool,
                                          std::vector<InterpreterArena>* arenas,
                                          const CampaignObs& obs = {});

}  // namespace wasabi

#endif  // WASABI_SRC_EXEC_PROBER_H_
