#include "src/exec/task_pool.h"

#include <cassert>
#include <stdexcept>

namespace wasabi {

namespace {
// Written at task-execution entry points (RunJob, the serial fast path), read
// by task bodies that key per-worker state (e.g. interpreter arenas).
thread_local int current_worker = 0;
}  // namespace

int TaskPool::CurrentWorker() { return current_worker; }

int DefaultJobCount() {
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

uint64_t TaskPoolStats::total_tasks() const {
  uint64_t total = 0;
  for (const Worker& worker : workers) {
    total += worker.tasks;
  }
  return total;
}

uint64_t TaskPoolStats::total_steals() const {
  uint64_t total = 0;
  for (const Worker& worker : workers) {
    total += worker.steals;
  }
  return total;
}

int64_t TaskPoolStats::total_busy_us() const {
  int64_t total = 0;
  for (const Worker& worker : workers) {
    total += worker.busy_us;
  }
  return total;
}

TaskPool::TaskPool(int workers) {
  worker_count_ = workers <= 0 ? DefaultJobCount() : workers;
  slots_ = std::vector<Slot>(static_cast<size_t>(worker_count_));
  counters_ = std::vector<WorkerCounters>(static_cast<size_t>(worker_count_));
  threads_.reserve(static_cast<size_t>(worker_count_ - 1));
  for (int w = 1; w < worker_count_; ++w) {
    threads_.emplace_back([this, w] { WorkLoop(w); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

bool TaskPool::PopOwn(int worker, size_t* index) {
  std::atomic<uint64_t>& range = slots_[static_cast<size_t>(worker)].range;
  uint64_t bits = range.load(std::memory_order_acquire);
  while (true) {
    uint32_t next = RangeNext(bits);
    uint32_t end = RangeEnd(bits);
    if (next >= end) {
      return false;
    }
    if (range.compare_exchange_weak(bits, Pack(next + 1, end), std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      *index = next;
      return true;
    }
  }
}

bool TaskPool::Steal(int worker, size_t* index) {
  for (int offset = 1; offset < worker_count_; ++offset) {
    int victim = (worker + offset) % worker_count_;
    std::atomic<uint64_t>& range = slots_[static_cast<size_t>(victim)].range;
    uint64_t bits = range.load(std::memory_order_acquire);
    while (true) {
      uint32_t next = RangeNext(bits);
      uint32_t end = RangeEnd(bits);
      if (next >= end) {
        break;  // Victim is empty; try the next one.
      }
      // Take the back half (rounded up, so a 1-element range is stealable).
      uint32_t take = (end - next + 1) / 2;
      uint32_t split = end - take;
      if (!range.compare_exchange_weak(bits, Pack(next, split), std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        continue;  // Lost a race against the owner or another thief; re-read.
      }
      // Own the stolen range [split, end). Our own slot is empty (Steal only
      // runs after PopOwn failed) and only this thread installs into it, so a
      // plain store is safe; other thieves may immediately steal from it.
      slots_[static_cast<size_t>(worker)].range.store(Pack(split + 1, end),
                                                      std::memory_order_release);
      *index = split;
      return true;
    }
  }
  return false;
}

void TaskPool::RunJob(int worker) {
  using Clock = std::chrono::steady_clock;
  current_worker = worker;
  WorkerCounters& counters = counters_[static_cast<size_t>(worker)];
  // Counter writes are ordered before this worker's next job_pending_
  // fetch_sub (release), and ParallelFor returns only after job_pending_
  // reads 0 (acquire), so a post-join Stats() read races with nothing. The
  // one write NOT followed by a fetch_sub — the trailing idle stretch after a
  // worker's last task — is deliberately never recorded (see below).
  bool idle = false;
  Clock::time_point idle_since;
  while (job_pending_.load(std::memory_order_acquire) > 0) {
    size_t index;
    bool own = PopOwn(worker, &index);
    bool stolen = !own && Steal(worker, &index);
    if (own || stolen) {
      if (idle) {
        // A stretch that ended in work is a queue wait; trailing idle while
        // the job drains is not (and recording it would race with the join).
        counters.queue_wait_us.push_back(
            std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - idle_since)
                .count());
        idle = false;
      }
      if (stolen) {
        ++counters.steals;
      }
      Clock::time_point task_start = Clock::now();
      try {
        (*job_fn_)(index);
      } catch (...) {
        // Keep the failure's identity: index `index` ran exactly once, so
        // this slot write races with nothing.
        (*job_errors_)[index] = std::current_exception();
      }
      counters.busy_us +=
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - task_start)
              .count();
      ++counters.tasks;
      job_pending_.fetch_sub(1, std::memory_order_acq_rel);
    } else {
      if (!idle) {
        idle = true;
        idle_since = Clock::now();
      }
      std::this_thread::yield();
    }
  }
}

void TaskPool::WorkLoop(int worker) {
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_cv_.wait(lock, [&] { return shutdown_ || job_generation_ != seen_generation; });
      if (shutdown_) {
        return;
      }
      seen_generation = job_generation_;
    }
    RunJob(worker);
  }
}

void TaskPool::ParallelFor(size_t count, const std::function<void(size_t)>& fn) {
  std::vector<std::exception_ptr> errors = ParallelForCaptured(count, fn);
  // Rethrow the lowest-index failure so the escaping exception is the same
  // one a serial loop would have raised first.
  for (const std::exception_ptr& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
}

std::vector<std::exception_ptr> TaskPool::ParallelForCaptured(
    size_t count, const std::function<void(size_t)>& fn) {
  std::vector<std::exception_ptr> errors(count);
  if (count == 0) {
    return errors;
  }
  if (worker_count_ == 1) {
    // Strictly serial on the calling thread; no scheduling at all. Counters
    // are still maintained so --jobs 1 metrics stay meaningful.
    using Clock = std::chrono::steady_clock;
    current_worker = 0;
    WorkerCounters& counters = counters_[0];
    for (size_t i = 0; i < count; ++i) {
      Clock::time_point task_start = Clock::now();
      try {
        fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      counters.busy_us +=
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - task_start)
              .count();
      ++counters.tasks;
    }
    return errors;
  }
  assert(count <= UINT32_MAX);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_fn_ = &fn;
    job_errors_ = &errors;
    job_pending_.store(count, std::memory_order_release);
    // One contiguous chunk per worker; the imbalance is what stealing fixes.
    size_t base = count / static_cast<size_t>(worker_count_);
    size_t remainder = count % static_cast<size_t>(worker_count_);
    size_t begin = 0;
    for (int w = 0; w < worker_count_; ++w) {
      size_t length = base + (static_cast<size_t>(w) < remainder ? 1 : 0);
      slots_[static_cast<size_t>(w)].range.store(
          Pack(static_cast<uint32_t>(begin), static_cast<uint32_t>(begin + length)),
          std::memory_order_release);
      begin += length;
    }
    ++job_generation_;
  }
  job_cv_.notify_all();
  RunJob(0);  // The caller is worker 0; returns once every index completed.
  return errors;
}

TaskPoolStats TaskPool::Stats() const {
  TaskPoolStats stats;
  stats.workers.reserve(counters_.size());
  for (const WorkerCounters& counters : counters_) {
    TaskPoolStats::Worker worker;
    worker.tasks = counters.tasks;
    worker.steals = counters.steals;
    worker.busy_us = counters.busy_us;
    worker.queue_wait_us = counters.queue_wait_us;
    stats.workers.push_back(std::move(worker));
  }
  return stats;
}

void TaskPool::ResetStats() {
  for (WorkerCounters& counters : counters_) {
    counters.tasks = 0;
    counters.steals = 0;
    counters.busy_us = 0;
    counters.queue_wait_us.clear();
  }
}

}  // namespace wasabi
