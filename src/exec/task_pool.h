// Work-stealing thread pool for the parallel injection-campaign executor.
//
// Each ParallelFor splits [0, count) into one contiguous chunk per worker.
// A worker pops indices from the front of its own chunk; when its chunk runs
// dry it steals the back half of the largest-looking victim chunk. Ranges are
// packed {next, end} in a single 64-bit atomic so both pop and steal are one
// CAS — no locks on the hot path, and chunks stay contiguous, which keeps the
// per-run interpreter allocations cache-friendly.
//
// The calling thread participates as worker 0, so TaskPool(1) never spawns a
// thread and executes strictly serially on the caller — the property the
// determinism tests rely on to compare serial and parallel campaigns.

#ifndef WASABI_SRC_EXEC_TASK_POOL_H_
#define WASABI_SRC_EXEC_TASK_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wasabi {

// hardware_concurrency, never less than 1.
int DefaultJobCount();

// Cumulative per-worker execution counters, kept since construction (or the
// last ResetStats). Cheap enough to stay always-on: two clock reads per task
// and per idle stretch, against tasks that each run a whole interpreted test.
struct TaskPoolStats {
  struct Worker {
    uint64_t tasks = 0;   // Indices this worker executed.
    uint64_t steals = 0;  // Successful steals (tasks acquired from a victim).
    int64_t busy_us = 0;  // Time spent inside the task function.
    // One sample per contiguous stretch this worker spent looking for work
    // before acquiring a task — the queue-wait signal that separates "serial
    // phase" from "starved workers".
    std::vector<int64_t> queue_wait_us;
  };
  std::vector<Worker> workers;

  uint64_t total_tasks() const;
  uint64_t total_steals() const;
  int64_t total_busy_us() const;
};

class TaskPool {
 public:
  // `workers` is the TOTAL worker count including the calling thread;
  // <= 0 means DefaultJobCount().
  explicit TaskPool(int workers = 0);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  int worker_count() const { return worker_count_; }

  // Index of the pool worker executing the current task, valid inside a fn
  // passed to ParallelFor/ParallelForCaptured (the calling thread is worker 0).
  // Outside a task it returns the last index this thread ran as, or 0 on a
  // thread that never executed a task — callers use it only from inside tasks.
  static int CurrentWorker();

  // Runs fn(index) for every index in [0, count), distributed over the
  // workers, and blocks until all calls have returned. fn must be safe to
  // call concurrently for distinct indices. Rethrows the lowest-index
  // captured exception if any call threw. Not reentrant: one ParallelFor at
  // a time.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

  // Like ParallelFor, but never throws on task failure: every index runs to
  // completion or to its own exception, and the result holds one slot per
  // index — null for success, the captured std::exception_ptr for failure.
  // Each index is executed exactly once, so the slot writes are race-free.
  // This is the seam the campaign layer's quarantine/retry machinery builds
  // on: a poisoned run keeps its identity instead of collapsing into a
  // pool-wide boolean.
  std::vector<std::exception_ptr> ParallelForCaptured(size_t count,
                                                      const std::function<void(size_t)>& fn);

  // Snapshot / reset of the execution counters. Only valid between
  // ParallelFor calls (ParallelFor's join provides the happens-before edge
  // that makes the unsynchronized per-worker fields safe to read).
  TaskPoolStats Stats() const;
  void ResetStats();

 private:
  // Packed index range owned by one worker: next in the high 32 bits, end in
  // the low 32. Padded to a cache line so pops and steals don't false-share.
  struct alignas(64) Slot {
    std::atomic<uint64_t> range{0};
  };

  // Per-worker counters, written only by the owning worker while a job runs
  // and read only after the job joins. Padded like the range slots.
  struct alignas(64) WorkerCounters {
    uint64_t tasks = 0;
    uint64_t steals = 0;
    int64_t busy_us = 0;
    std::vector<int64_t> queue_wait_us;
  };

  static uint64_t Pack(uint32_t next, uint32_t end) {
    return (static_cast<uint64_t>(next) << 32) | end;
  }
  static uint32_t RangeNext(uint64_t bits) { return static_cast<uint32_t>(bits >> 32); }
  static uint32_t RangeEnd(uint64_t bits) { return static_cast<uint32_t>(bits); }

  bool PopOwn(int worker, size_t* index);
  // Steals the back half of some victim's remaining range into `worker`'s own
  // slot and pops from it. False when every slot is empty.
  bool Steal(int worker, size_t* index);
  void RunJob(int worker);
  void WorkLoop(int worker);

  int worker_count_ = 1;
  std::vector<Slot> slots_;
  std::vector<WorkerCounters> counters_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable job_cv_;
  const std::function<void(size_t)>* job_fn_ = nullptr;
  uint64_t job_generation_ = 0;
  std::atomic<size_t> job_pending_{0};  // Indices not yet fully executed.
  // Per-index exception slots for the running job. Each worker writes only
  // the slots of indices it executed (exactly once each), so no two threads
  // touch the same slot; the join in ParallelForCaptured orders the reads.
  std::vector<std::exception_ptr>* job_errors_ = nullptr;
  bool shutdown_ = false;
};

}  // namespace wasabi

#endif  // WASABI_SRC_EXEC_TASK_POOL_H_
