#include "src/inject/injector.h"

namespace wasabi {

FaultInjector::FaultInjector(std::vector<InjectionPoint> points, MetricsRegistry* metrics)
    : points_(std::move(points)),
      counts_(points_.size(), 0),
      skip_counts_(points_.size(), 0),
      metrics_(metrics) {}

void FaultInjector::OnCall(const CallEvent& event, Interpreter& interp) {
  for (size_t i = 0; i < points_.size(); ++i) {
    const InjectionPoint& point = points_[i];
    if (event.callee != point.callee) {
      continue;
    }
    if (!point.caller.empty() && event.caller != point.caller) {
      continue;
    }
    if (counts_[i] >= point.max_injections) {
      // Budget exhausted: the call proceeds un-faulted. That is still a
      // decision worth replay-validating (it is what ends a retry storm).
      ++skip_counts_[i];
      if (recorder_ != nullptr) {
        recorder_->InjectSkip(point.callee, event.caller, point.exception);
      }
      continue;
    }
    ++counts_[i];
    if (recorder_ != nullptr) {
      recorder_->Inject(point.callee, event.caller, point.exception, counts_[i]);
    }
    if (metrics_ != nullptr) {
      metrics_->Increment("injector.injections_total");
      metrics_->Increment("injector.injections.site." + point.callee);
      metrics_->Increment("injector.injections.exception." + point.exception);
    }

    LogEntry entry;
    entry.kind = LogEntryKind::kInjection;
    entry.virtual_time_ms = interp.now_ms();
    entry.amount = counts_[i];
    entry.injection_callee = point.callee;
    entry.injection_caller = point.caller.empty() ? std::string(event.caller) : point.caller;
    entry.injection_exception = point.exception;
    entry.caller_activation = event.caller_activation;
    entry.call_stack = interp.CaptureStack();
    entry.text = "injected " + point.exception + " #" + std::to_string(counts_[i]) + " at " +
                 point.callee + " from " + entry.injection_caller;
    interp.log().Append(std::move(entry));

    throw ThrownException{
        interp.MakeException(point.exception, "injected by WASABI at " + point.callee)};
  }
}

int FaultInjector::InjectionCount(size_t point_index) const {
  return point_index < counts_.size() ? counts_[point_index] : 0;
}

int FaultInjector::TotalInjections() const {
  int total = 0;
  for (int count : counts_) {
    total += count;
  }
  return total;
}

int FaultInjector::SkipCount(size_t point_index) const {
  return point_index < skip_counts_.size() ? skip_counts_[point_index] : 0;
}

int FaultInjector::TotalSkips() const {
  int total = 0;
  for (int count : skip_counts_) {
    total += count;
  }
  return total;
}

void FaultInjector::Reset() {
  counts_.assign(points_.size(), 0);
  skip_counts_.assign(points_.size(), 0);
}

}  // namespace wasabi
