// Fault injection for the repurposed-unit-testing workflow (§3.1.2).
//
// The FaultInjector is the Listing-5 handler: registered as a pointcut on the
// interpreter, it throws the configured trigger exception the first K times
// the retried method (callee) is invoked from the coordinator method (caller),
// and writes one log entry per injection so the oracles can count attempts and
// check inter-attempt delays. K = 1 exercises post-retry code (HOW bugs);
// K = 100 exercises cap/delay logic (WHEN bugs).

#ifndef WASABI_SRC_INJECT_INJECTOR_H_
#define WASABI_SRC_INJECT_INJECTOR_H_

#include <map>
#include <string>
#include <vector>

#include "src/interp/interpreter.h"
#include "src/obs/metrics.h"
#include "src/record/recorder.h"

namespace wasabi {

// The two K settings the paper runs every planned test with (§3.1.2).
inline constexpr int kInjectOnce = 1;
inline constexpr int kInjectRepeatedly = 100;

struct InjectionPoint {
  std::string callee;     // Qualified retried-method name.
  std::string caller;     // Qualified coordinator name; "" matches any caller.
  std::string exception;  // Trigger exception class to throw.
  int max_injections = kInjectOnce;  // K.

  std::string Key() const { return callee + "<-" + caller + ":" + exception; }
};

class FaultInjector : public CallInterceptor {
 public:
  // `metrics`, when non-null, receives one `injector.injections_total`
  // increment per fired injection plus per-site and per-trigger-exception
  // breakdowns (metric taxonomy in docs/OBSERVABILITY.md). The registry is
  // thread-safe and the counters commutative, so campaign workers can all
  // feed one registry without affecting the deterministic outputs.
  explicit FaultInjector(std::vector<InjectionPoint> points,
                         MetricsRegistry* metrics = nullptr);

  // Listing 5: if this (callee, caller, exception) point has fired fewer than
  // K times, log and throw the exception.
  void OnCall(const CallEvent& event, Interpreter& interp) override;

  const std::vector<InjectionPoint>& points() const { return points_; }

  // How many times the i-th point has fired.
  int InjectionCount(size_t point_index) const;
  int TotalInjections() const;

  // How many calls matched the i-th point after its budget was exhausted —
  // the application-level attempts a fault did NOT stop, which is what the
  // retry journal's amplification accounting needs.
  int SkipCount(size_t point_index) const;
  int TotalSkips() const;

  void Reset();

  // Non-owning; when set, every fire and exhausted-budget skip decision is
  // appended to the run's decision stream (docs/FLAKINESS.md record/replay).
  void set_recorder(RunRecorder* recorder) { recorder_ = recorder; }

 private:
  std::vector<InjectionPoint> points_;
  std::vector<int> counts_;
  std::vector<int> skip_counts_;
  MetricsRegistry* metrics_;  // Non-owning; null = no metric export.
  RunRecorder* recorder_ = nullptr;
};

}  // namespace wasabi

#endif  // WASABI_SRC_INJECT_INJECTOR_H_
