#include "src/interp/exec_log.h"

#include <sstream>

namespace wasabi {

std::string ExecutionLog::Dump() const {
  std::ostringstream out;
  for (const LogEntry& entry : entries_) {
    out << "[" << entry.virtual_time_ms << "ms] ";
    switch (entry.kind) {
      case LogEntryKind::kAppLog:
        out << "LOG " << entry.text;
        break;
      case LogEntryKind::kSleep:
        out << "SLEEP " << entry.amount << "ms";
        if (!entry.call_stack.empty()) {
          out << " in " << entry.call_stack.back();
        }
        break;
      case LogEntryKind::kInjection:
        out << "INJECT " << entry.injection_exception << " #" << entry.amount << " at "
            << entry.injection_callee << " from " << entry.injection_caller;
        break;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace wasabi
