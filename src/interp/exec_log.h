// Execution log for interpreted runs.
//
// The WASABI oracles are log-based (§3.1.3): the fault-injection handler and
// the sleep-API hook write entries during a test run; after the run, the
// oracles classify the log. Entries carry the virtual timestamp and, for sleep
// entries, the call stack at the time of the call ("WASABI compares the call
// stack to only consider a sleep issued from the corresponding coordinator
// method").

#ifndef WASABI_SRC_INTERP_EXEC_LOG_H_
#define WASABI_SRC_INTERP_EXEC_LOG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wasabi {

enum class LogEntryKind : uint8_t {
  kAppLog,     // Log.info/warn/error/debug from application code.
  kSleep,      // A sleep API was invoked.
  kInjection,  // The fault injector threw an exception.
};

struct LogEntry {
  LogEntryKind kind = LogEntryKind::kAppLog;
  int64_t virtual_time_ms = 0;
  std::string text;
  // kSleep: milliseconds slept. kInjection: how many times this point fired.
  int64_t amount = 0;
  // kInjection: identifies the injection point.
  std::string injection_callee;
  std::string injection_caller;
  std::string injection_exception;
  // kInjection: the caller activation the injection happened in (two
  // injections share it iff they hit the same invocation of the coordinator).
  int64_t caller_activation = 0;
  // Call stack (outermost first) at the time of the event, for kSleep and
  // kInjection entries.
  std::vector<std::string> call_stack;
};

// A log belongs to exactly one run (one Interpreter): Append is never called
// concurrently. Parallel campaigns keep one log per run and combine them with
// AppendAll at reduce time, in stable run-id order — there is no shared
// mutable sink for workers to race on.
class ExecutionLog {
 public:
  void Append(LogEntry entry) { entries_.push_back(std::move(entry)); }
  const std::vector<LogEntry>& entries() const { return entries_; }
  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }

  // Reduce-time merge: appends a whole finished run's entries, in order.
  void AppendAll(const ExecutionLog& other) {
    entries_.insert(entries_.end(), other.entries_.begin(), other.entries_.end());
  }

  // Rendering for debugging and EXPERIMENTS.md excerpts.
  std::string Dump() const;

 private:
  std::vector<LogEntry> entries_;
};

}  // namespace wasabi

#endif  // WASABI_SRC_INTERP_EXEC_LOG_H_
