#include "src/interp/interpreter.h"

#include <cstring>
#include <utility>

#include "src/vm/bytecode.h"
#include "src/vm/vm.h"

namespace wasabi {

using mj::AstKind;

const char* AbortReasonName(AbortReason reason) {
  switch (reason) {
    case AbortReason::kStepBudget:
      return "step budget exceeded";
    case AbortReason::kVirtualTimeBudget:
      return "virtual time budget exceeded";
    case AbortReason::kStackOverflow:
      return "stack overflow";
  }
  return "unknown";
}

Interpreter::Interpreter(const mj::Program& program, const mj::ProgramIndex& index,
                         InterpOptions options)
    : program_(program), index_(index), options_(options) {
  dispatch_cache_.resize(index.call_site_count());
  if (options_.engine == EngineKind::kVm) {
    compiled_ = vm::Compile(program, index);
  }
}

void Interpreter::ResetForRun() {
  singletons_.clear();
  config_.clear();
  frozen_config_keys_.clear();
  interceptors_.clear();
  dispatch_observer_ = nullptr;
  loop_observer_ = nullptr;
  log_.Clear();
  virtual_time_ms_ = 0;
  run_epoch_ms_ = 0;
  steps_ = 0;
  loop_iterations_ = 0;
  next_activation_ = 1;
  frame_depth_ = 0;
  for (Frame& frame : frames_) {
    frame.method = nullptr;
    frame.qualified_name = nullptr;
    frame.self = nullptr;
    frame.slots.clear();  // Keeps capacity, releases object references.
    frame.defined.clear();
  }
  for (std::vector<Value>& buffer : arg_buffers_) {
    buffer.clear();  // Keeps capacity, releases object references.
  }
  arg_buffer_depth_ = 0;
  for (std::vector<Value>& stack : vm_stacks_) {
    stack.clear();  // Keeps capacity, releases object references.
  }
  vm_stack_depth_ = 0;
  // dispatch_cache_ and compiled_ deliberately survive: both are pure
  // functions of the immutable shared program, so warm entries and compiled
  // chunks stay valid across runs.
}

void Interpreter::NotifyLoopIteration() {
  const std::string* name = frame_depth_ > 0 ? CurrentFrame().qualified_name : nullptr;
  loop_observer_->OnLoopIteration(name != nullptr ? std::string_view(*name) : std::string_view(),
                                  virtual_time_ms_);
}

void Interpreter::SetConfig(const std::string& key, Value value) {
  config_[key] = std::move(value);
}

void Interpreter::FreezeConfig(const std::string& key) {
  frozen_config_keys_.insert(key);
}

void Interpreter::AddInterceptor(CallInterceptor* interceptor) {
  interceptors_.push_back(interceptor);
}

std::vector<std::string> Interpreter::CaptureStack() const {
  std::vector<std::string> stack;
  stack.reserve(frame_depth_);
  for (size_t i = 0; i < frame_depth_; ++i) {
    stack.push_back(*frames_[i].qualified_name);
  }
  return stack;
}

Interpreter::Frame& Interpreter::PushFrame(const mj::MethodDecl* method,
                                           const std::string* qualified_name, ObjectRef self,
                                           uint32_t slot_count) {
  if (frame_depth_ == frames_.size()) {
    frames_.emplace_back();  // Deque: existing Frame references stay valid.
  }
  Frame& frame = frames_[frame_depth_++];
  frame.method = method;
  frame.qualified_name = qualified_name;
  frame.self = std::move(self);
  frame.activation = next_activation_++;
  // `defined` gates every slot read, so stale values left by earlier
  // activations are unreachable: grow the value vector as needed but never
  // refill it. `defined` itself must be EXACTLY slot_count long — LookupName
  // uses its size to recognize foreign frames — and assign() on a byte vector
  // with warm capacity is a memset.
  if (frame.slots.size() < slot_count) {
    frame.slots.resize(slot_count);
  }
  frame.defined.assign(slot_count, 0);
  return frame;
}

void Interpreter::PopFrame() {
  Frame& frame = frames_[--frame_depth_];
  frame.self = nullptr;
  // Slot values stay behind, unreachable (the next push zeroes `defined`);
  // ResetForRun or destruction releases pooled object references.
}

void Interpreter::Sleep(int64_t millis) {
  if (millis < 0) {
    millis = 0;
  }
  virtual_time_ms_ += millis;
  LogEntry entry;
  entry.kind = LogEntryKind::kSleep;
  entry.virtual_time_ms = virtual_time_ms_;
  entry.amount = millis;
  entry.call_stack = CaptureStack();
  log_.Append(std::move(entry));
  // Budget is epoch-relative: a run whose clock starts skewed (flakiness
  // probing) still gets the full virtual-time allowance.
  if (virtual_time_ms_ - run_epoch_ms_ > options_.virtual_time_budget_ms) {
    throw ExecutionAborted{AbortReason::kVirtualTimeBudget};
  }
}

ObjectRef Interpreter::MakeException(const std::string& class_name, const std::string& message) {
  const mj::ClassDecl* cls = index_.FindClass(class_name);
  ObjectRef exception;
  if (cls != nullptr) {
    exception = NewInstance(*cls);
  } else {
    exception = std::make_shared<Object>(ObjectKind::kException, class_name);
  }
  exception->set_message(message);
  exception->set_origin_stack(CaptureStack());
  return exception;
}

void Interpreter::ThrowMj(const std::string& class_name, const std::string& message) {
  throw ThrownException{MakeException(class_name, message)};
}

bool Interpreter::AsBool(const Value& value, mj::SourceLocation location) {
  if (const bool* b = std::get_if<bool>(&value)) {
    return *b;
  }
  ThrowTypeError("bool", value, location);
}

int64_t Interpreter::AsInt(const Value& value, mj::SourceLocation location) {
  if (const int64_t* i = std::get_if<int64_t>(&value)) {
    return *i;
  }
  ThrowTypeError("int", value, location);
}

void Interpreter::ThrowTypeError(const char* expected, const Value& value,
                                 mj::SourceLocation location) {
  ThrowMj("IllegalStateException", "type error at line " + std::to_string(location.line) +
                                       ": expected " + expected + ", got " +
                                       ValueToString(value));
}

// ---------------------------------------------------------------------------
// Objects, fields, variables
// ---------------------------------------------------------------------------

ObjectRef Interpreter::NewInstance(const mj::ClassDecl& cls) {
  const mj::FieldLayout& layout = index_.field_layout(cls);
  auto object = std::make_shared<Object>(ObjectKind::kInstance, cls.name);
  object->set_decl(&cls);
  object->BindLayout(&layout);

  // Run field initializers, base classes first, with `this` bound. The layout
  // pre-computed the base-first order and the slot of every declaration.
  PushFrame(nullptr, &layout.init_frame_name, object, 0);
  struct FramePopper {
    Interpreter* interp;
    ~FramePopper() { interp->PopFrame(); }
  } pop{this};
  for (const mj::FieldInitStep& step : layout.init_order) {
    Value value;  // null by default.
    if (step.field->init != nullptr) {
      value = Eval(*step.field->init);
    }
    object->field_slot(step.slot) = std::move(value);
  }
  return object;
}

ObjectRef Interpreter::SingletonOf(const mj::ClassDecl& cls) {
  auto it = singletons_.find(&cls);
  if (it != singletons_.end()) {
    return it->second;
  }
  ObjectRef instance = NewInstance(cls);
  singletons_.emplace(&cls, instance);
  return instance;
}

Value Interpreter::ReadField(const ObjectRef& object, const std::string& field,
                             mj::SymbolId symbol, mj::SourceLocation location) {
  const mj::FieldLayout* layout = object->layout();
  if (layout != nullptr && symbol != mj::kInvalidSymbol) {
    if (const uint32_t* slot = layout->SlotOf(symbol)) {
      return object->field_slot(*slot);
    }
  }
  auto& extra = object->extra_fields();
  auto it = extra.find(field);
  if (it != extra.end()) {
    return it->second;
  }
  // Declared but never assigned (no initializer ran because the declaration
  // lives on an unknown base class, etc.): null. Unknown fields are an error.
  const mj::ClassDecl* cls = object->decl();
  int depth = 0;
  while (cls != nullptr && depth++ < 64) {
    for (const mj::FieldDecl* decl : cls->fields) {
      if (decl->name == field) {
        return Value{};
      }
    }
    cls = cls->base_name.empty() ? nullptr : index_.FindClass(cls->base_name);
  }
  ThrowMj("IllegalStateException", "no such field '" + field + "' on " + object->class_name() +
                                       " at line " + std::to_string(location.line));
}

void Interpreter::WriteField(const ObjectRef& object, const std::string& field,
                             mj::SymbolId symbol, Value value) {
  const mj::FieldLayout* layout = object->layout();
  if (layout != nullptr && symbol != mj::kInvalidSymbol) {
    if (const uint32_t* slot = layout->SlotOf(symbol)) {
      object->field_slot(*slot) = std::move(value);
      return;
    }
  }
  object->extra_fields()[field] = std::move(value);
}

// ---------------------------------------------------------------------------
// Builtins
// ---------------------------------------------------------------------------

namespace {

// Exception-style constructor convention: (message), (cause), or both.
void ApplyExceptionCtorArgs(Object& object, const std::vector<Value>& args) {
  for (const Value& arg : args) {
    if (IsString(arg)) {
      object.set_message(std::get<std::string>(arg));
    } else if (IsObject(arg)) {
      object.set_cause(std::get<ObjectRef>(arg));
    }
  }
}

int64_t IntPow(int64_t base, int64_t exponent) {
  if (exponent < 0) {
    return 0;
  }
  int64_t result = 1;
  for (int64_t i = 0; i < exponent && i < 62; ++i) {
    result *= base;
    if (result > (int64_t{1} << 52)) {
      return result;  // Clamp-ish: avoid overflow in pathological backoffs.
    }
  }
  return result;
}

}  // namespace

bool Interpreter::TryBuiltinStatic(const std::string& receiver, const mj::CallExpr& call,
                                   Value* result) {
  auto eval_args = [&]() {
    std::vector<Value> args;
    args.reserve(call.args.size());
    for (const mj::Expr* arg : call.args) {
      args.push_back(Eval(*arg));
    }
    return args;
  };
  auto arg_count_error = [&]() {
    ThrowMj("IllegalArgumentException",
            "wrong argument count for " + receiver + "." + call.callee);
  };

  if (receiver == "Thread" || receiver == "TimeUnit" || receiver == "Timer" ||
      receiver == "Object") {
    // The sleep APIs the paper's delay oracle instruments (§3.1.3).
    bool is_sleep =
        (receiver == "Thread" && call.callee == "sleep") ||
        (receiver == "TimeUnit" &&
         (call.callee == "sleep" || call.callee == "timedWait" ||
          call.callee == "scheduledExecutionTime")) ||
        (receiver == "Timer" && (call.callee == "wait" || call.callee == "schedule")) ||
        (receiver == "Object" && call.callee == "wait");
    if (is_sleep) {
      std::vector<Value> args = eval_args();
      if (args.empty()) {
        arg_count_error();
      }
      // Timer.schedule(delay) and friends: the delay is the last int argument.
      Sleep(AsInt(args.back(), call.location));
      *result = Value{};
      return true;
    }
    return false;
  }

  if (receiver == "Clock") {
    if (call.callee == "nowMillis" || call.callee == "now") {
      *result = Value{virtual_time_ms_};
      return true;
    }
    return false;
  }

  if (receiver == "Log") {
    if (call.callee == "info" || call.callee == "warn" || call.callee == "error" ||
        call.callee == "debug") {
      std::vector<Value> args = eval_args();
      std::string text;
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) {
          text += " ";
        }
        text += ValueToString(args[i]);
      }
      LogEntry entry;
      entry.kind = LogEntryKind::kAppLog;
      entry.virtual_time_ms = virtual_time_ms_;
      entry.text = std::move(text);
      log_.Append(std::move(entry));
      *result = Value{};
      return true;
    }
    return false;
  }

  if (receiver == "Config") {
    std::vector<Value> args = eval_args();
    if (call.callee == "set") {
      if (args.size() != 2 || !IsString(args[0])) {
        arg_count_error();
      }
      const std::string& key = std::get<std::string>(args[0]);
      if (frozen_config_keys_.count(key) == 0) {
        config_[key] = args[1];
      }
      *result = Value{};
      return true;
    }
    if (call.callee == "getInt" || call.callee == "getBool" || call.callee == "getString" ||
        call.callee == "get") {
      if (args.empty() || !IsString(args[0])) {
        arg_count_error();
      }
      auto it = config_.find(std::get<std::string>(args[0]));
      if (it != config_.end()) {
        *result = it->second;
      } else if (args.size() >= 2) {
        *result = args[1];  // Caller-provided default.
      } else {
        *result = Value{};
      }
      return true;
    }
    return false;
  }

  if (receiver == "Math") {
    std::vector<Value> args = eval_args();
    if (call.callee == "pow" && args.size() == 2) {
      *result = Value{IntPow(AsInt(args[0], call.location), AsInt(args[1], call.location))};
      return true;
    }
    if (call.callee == "min" && args.size() == 2) {
      *result = Value{std::min(AsInt(args[0], call.location), AsInt(args[1], call.location))};
      return true;
    }
    if (call.callee == "max" && args.size() == 2) {
      *result = Value{std::max(AsInt(args[0], call.location), AsInt(args[1], call.location))};
      return true;
    }
    if (call.callee == "abs" && args.size() == 1) {
      int64_t v = AsInt(args[0], call.location);
      *result = Value{v < 0 ? -v : v};
      return true;
    }
    return false;
  }

  if (receiver == "Assert") {
    std::vector<Value> args = eval_args();
    auto message_from = [&](size_t index) {
      return args.size() > index && IsString(args[index]) ? std::get<std::string>(args[index])
                                                          : std::string();
    };
    if (call.callee == "assertTrue" || call.callee == "assertFalse") {
      if (args.empty()) {
        arg_count_error();
      }
      bool condition = AsBool(args[0], call.location);
      bool expected = call.callee == "assertTrue";
      if (condition != expected) {
        std::string msg = message_from(1);
        ThrowMj("AssertionError", msg.empty() ? call.callee + " failed" : msg);
      }
      *result = Value{};
      return true;
    }
    if (call.callee == "assertEquals") {
      if (args.size() < 2) {
        arg_count_error();
      }
      if (!ValueEquals(args[0], args[1])) {
        std::string msg = message_from(2);
        ThrowMj("AssertionError", msg.empty() ? "assertEquals failed: expected " +
                                                    ValueToString(args[0]) + ", got " +
                                                    ValueToString(args[1])
                                              : msg);
      }
      *result = Value{};
      return true;
    }
    if (call.callee == "assertNull" || call.callee == "assertNotNull") {
      if (args.empty()) {
        arg_count_error();
      }
      bool is_null = IsNull(args[0]);
      bool expected = call.callee == "assertNull";
      if (is_null != expected) {
        std::string msg = message_from(1);
        ThrowMj("AssertionError", msg.empty() ? call.callee + " failed" : msg);
      }
      *result = Value{};
      return true;
    }
    if (call.callee == "fail") {
      std::string msg = message_from(0);
      ThrowMj("AssertionError", msg.empty() ? "fail() called" : msg);
    }
    return false;
  }

  return false;
}

bool Interpreter::TryStringMethod(const std::string& text, const mj::CallExpr& call,
                                  std::vector<Value>& args, Value* result) {
  if (call.callee == "length" && args.empty()) {
    *result = Value{static_cast<int64_t>(text.size())};
    return true;
  }
  if (call.callee == "isEmpty" && args.empty()) {
    *result = Value{text.empty()};
    return true;
  }
  if ((call.callee == "contains" || call.callee == "startsWith" || call.callee == "endsWith" ||
       call.callee == "equals") &&
      args.size() == 1 && IsString(args[0])) {
    const std::string& needle = std::get<std::string>(args[0]);
    if (call.callee == "contains") {
      *result = Value{text.find(needle) != std::string::npos};
    } else if (call.callee == "startsWith") {
      *result = Value{text.rfind(needle, 0) == 0};
    } else if (call.callee == "endsWith") {
      *result = Value{needle.size() <= text.size() &&
                      text.compare(text.size() - needle.size(), needle.size(), needle) == 0};
    } else {
      *result = Value{text == needle};
    }
    return true;
  }
  return false;
}

bool Interpreter::TryBuiltinMethod(const ObjectRef& object, const mj::CallExpr& call,
                                   std::vector<Value>& args, Value* result) {
  const std::string& name = call.callee;
  switch (object->kind()) {
    case ObjectKind::kQueue: {
      auto& queue = object->elements();
      if ((name == "put" || name == "add" || name == "offer" || name == "enqueue" ||
           name == "reenqueue" || name == "push") &&
          args.size() == 1) {
        queue.push_back(args[0]);
        *result = Value{};
        return true;
      }
      if ((name == "take" || name == "remove") && args.empty()) {
        if (queue.empty()) {
          ThrowMj("IllegalStateException", "take() on empty Queue");
        }
        *result = queue.front();
        queue.pop_front();
        return true;
      }
      if (name == "poll" && args.empty()) {
        if (queue.empty()) {
          *result = Value{};
        } else {
          *result = queue.front();
          queue.pop_front();
        }
        return true;
      }
      if (name == "peek" && args.empty()) {
        *result = queue.empty() ? Value{} : queue.front();
        return true;
      }
      if (name == "size" && args.empty()) {
        *result = Value{static_cast<int64_t>(queue.size())};
        return true;
      }
      if (name == "isEmpty" && args.empty()) {
        *result = Value{queue.empty()};
        return true;
      }
      if (name == "clear" && args.empty()) {
        queue.clear();
        *result = Value{};
        return true;
      }
      return false;
    }
    case ObjectKind::kList: {
      auto& list = object->elements();
      if (name == "add" && args.size() == 1) {
        list.push_back(args[0]);
        *result = Value{};
        return true;
      }
      if ((name == "get" || name == "set") && !args.empty() && IsInt(args[0])) {
        int64_t i = std::get<int64_t>(args[0]);
        if (i < 0 || i >= static_cast<int64_t>(list.size())) {
          ThrowMj("IllegalArgumentException",
                  "index " + std::to_string(i) + " out of bounds for List of size " +
                      std::to_string(list.size()));
        }
        if (name == "get" && args.size() == 1) {
          *result = list[static_cast<size_t>(i)];
          return true;
        }
        if (name == "set" && args.size() == 2) {
          list[static_cast<size_t>(i)] = args[1];
          *result = Value{};
          return true;
        }
        return false;
      }
      if (name == "contains" && args.size() == 1) {
        bool found = false;
        for (const Value& element : list) {
          if (ValueEquals(element, args[0])) {
            found = true;
          }
        }
        *result = Value{found};
        return true;
      }
      if (name == "size" && args.empty()) {
        *result = Value{static_cast<int64_t>(list.size())};
        return true;
      }
      if (name == "isEmpty" && args.empty()) {
        *result = Value{list.empty()};
        return true;
      }
      if (name == "clear" && args.empty()) {
        list.clear();
        *result = Value{};
        return true;
      }
      return false;
    }
    case ObjectKind::kMap: {
      auto& map = object->entries();
      bool key_ok = false;
      if (name == "put" && args.size() == 2) {
        std::string key = MapKeyFor(args[0], &key_ok);
        if (!key_ok) {
          ThrowMj("IllegalArgumentException", "unsupported Map key type");
        }
        map[key] = args[1];
        *result = Value{};
        return true;
      }
      if ((name == "get" || name == "containsKey" || name == "remove") && args.size() == 1) {
        std::string key = MapKeyFor(args[0], &key_ok);
        if (!key_ok) {
          ThrowMj("IllegalArgumentException", "unsupported Map key type");
        }
        auto it = map.find(key);
        if (name == "get") {
          *result = it == map.end() ? Value{} : it->second;
        } else if (name == "containsKey") {
          *result = Value{it != map.end()};
        } else {
          if (it != map.end()) {
            map.erase(it);
          }
          *result = Value{};
        }
        return true;
      }
      if (name == "size" && args.empty()) {
        *result = Value{static_cast<int64_t>(map.size())};
        return true;
      }
      if (name == "isEmpty" && args.empty()) {
        *result = Value{map.empty()};
        return true;
      }
      if (name == "clear" && args.empty()) {
        map.clear();
        *result = Value{};
        return true;
      }
      return false;
    }
    case ObjectKind::kException:
    case ObjectKind::kInstance: {
      // Exception accessors available on any throwable-ish object whose user
      // class does not override them.
      if (name == "getMessage" && args.empty()) {
        *result = object->message().empty() ? Value{} : Value{object->message()};
        return true;
      }
      if (name == "getCause" && args.empty()) {
        *result = object->cause() == nullptr ? Value{} : Value{object->cause()};
        return true;
      }
      if (name == "toString" && args.empty()) {
        *result = Value{object->class_name() +
                        (object->message().empty() ? "" : ": " + object->message())};
        return true;
      }
      return false;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Calls
// ---------------------------------------------------------------------------

Value Interpreter::CallMethod(const mj::MethodDecl& method, ObjectRef self,
                              std::vector<Value>& args, const mj::CallExpr* site) {
  if (static_cast<int>(frame_depth_) >= options_.max_call_depth) {
    throw ExecutionAborted{AbortReason::kStackOverflow};
  }

  CallEvent event;
  if (frame_depth_ > 0) {
    const Frame& caller = frames_[frame_depth_ - 1];
    event.caller = *caller.qualified_name;
    event.caller_activation = caller.activation;
  }
  event.callee = method.qualified_cache;
  event.site = site;
  for (CallInterceptor* interceptor : interceptors_) {
    interceptor->OnCall(event, *this);  // May throw ThrownException.
  }

  if (method.body == nullptr) {
    ThrowMj("UnsupportedOperationException",
            "call to method without a body: " + method.QualifiedName());
  }

  Frame& frame = PushFrame(&method, &method.qualified_cache, std::move(self), method.max_slots);
  struct FramePopper {
    Interpreter* interp;
    ~FramePopper() { interp->PopFrame(); }
  } pop{this};

  // Bind parameters by their resolved slots, in order: duplicate names share
  // a slot, so the later argument wins like the old scope-map insert did.
  for (size_t i = 0; i < method.params.size(); ++i) {
    Value value = i < args.size() ? std::move(args[i]) : Value{};
    const auto slot = static_cast<size_t>(method.params[i]->slot);
    frame.slots[slot] = std::move(value);
    frame.defined[slot] = 1;
  }

  if (compiled_ != nullptr) {
    const vm::Chunk& chunk = compiled_->methods[method.method_index];
    if (chunk.compiled) {
      return vm::VmExecutor::Run(*this, chunk);
    }
  }
  Flow flow = ExecBlock(*method.body);
  if (flow.kind == FlowKind::kReturn) {
    return flow.value;
  }
  return Value{};
}

Value Interpreter::EvalCall(const mj::CallExpr& call) {
  Step();

  // --- Determine the receiver ------------------------------------------------
  Value receiver_value;
  bool have_receiver_value = false;

  if (call.base == nullptr || call.base->kind == AstKind::kThis) {
    // this-call.
    ObjectRef self = frame_depth_ == 0 ? nullptr : CurrentFrame().self;
    if (self == nullptr) {
      ThrowMj("IllegalStateException", "implicit this-call outside an instance: " + call.callee);
    }
    receiver_value = Value{self};
    have_receiver_value = true;
  } else if (call.base->kind == AstKind::kName) {
    const auto* receiver = static_cast<const mj::NameExpr*>(call.base);
    if (Value* local = LookupName(*receiver); local != nullptr) {
      receiver_value = *local;
      have_receiver_value = true;
    } else {
      // Not a live variable: builtin receiver, then class singleton (the
      // resolver cached the FindClass result), then error — same order the
      // dynamic lookup used.
      Value result;
      if (TryBuiltinStatic(receiver->name, call, &result)) {
        return result;
      }
      if (receiver->class_ref != nullptr) {
        receiver_value = Value{SingletonOf(*receiver->class_ref)};
        have_receiver_value = true;
      } else {
        ThrowMj("IllegalStateException", "undefined receiver '" + receiver->name + "' at line " +
                                             std::to_string(call.location.line));
      }
    }
  }

  if (!have_receiver_value) {
    receiver_value = Eval(*call.base);
  }

  // --- Evaluate arguments ------------------------------------------------------
  if (arg_buffer_depth_ == arg_buffers_.size()) {
    arg_buffers_.emplace_back();
  }
  std::vector<Value>& args = arg_buffers_[arg_buffer_depth_++];
  struct BufferReleaser {
    Interpreter* interp;
    std::vector<Value>* buffer;
    ~BufferReleaser() {
      buffer->clear();
      --interp->arg_buffer_depth_;
    }
  } release{this, &args};
  args.reserve(call.args.size());
  for (const mj::Expr* arg : call.args) {
    args.push_back(Eval(*arg));
  }

  // --- Dispatch ---------------------------------------------------------------
  if (IsNull(receiver_value)) {
    ThrowMj("NullPointerException", "call of '" + call.callee + "' on null at line " +
                                        std::to_string(call.location.line));
  }
  if (IsString(receiver_value)) {
    Value result;
    if (TryStringMethod(std::get<std::string>(receiver_value), call, args, &result)) {
      return result;
    }
    ThrowMj("IllegalStateException", "no String method '" + call.callee + "'");
  }
  if (!IsObject(receiver_value)) {
    ThrowMj("IllegalStateException", "call of '" + call.callee + "' on non-object " +
                                         ValueToString(receiver_value));
  }

  ObjectRef object = std::get<ObjectRef>(receiver_value);
  if (object->decl() != nullptr) {
    // Monomorphic per-site dispatch cache (with negative caching: a null
    // method for a matching class means "no user method, use builtins").
    const mj::MethodDecl* method = nullptr;
    if (call.site_index != mj::kNoCallSite) {
      DispatchEntry& entry = dispatch_cache_[call.site_index];
      if (entry.cls != object->decl()) {
        entry.cls = object->decl();
        entry.method = index_.ResolveMethod(*object->decl(), call.callee);
      }
      method = entry.method;
      if (dispatch_observer_ != nullptr) [[unlikely]] {
        dispatch_observer_->OnDispatch(
            call.site_index, object->decl()->name,
            method != nullptr ? std::string_view(method->qualified_cache)
                              : std::string_view());
      }
    } else {
      method = index_.ResolveMethod(*object->decl(), call.callee);
    }
    if (method != nullptr) {
      return CallMethod(*method, object, args, &call);
    }
  }
  Value result;
  if (TryBuiltinMethod(object, call, args, &result)) {
    return result;
  }
  ThrowMj("IllegalStateException", "no method '" + call.callee + "' on " +
                                       object->class_name() + " at line " +
                                       std::to_string(call.location.line));
}

Value Interpreter::EvalNew(const mj::NewExpr& expr) {
  Step();
  if (arg_buffer_depth_ == arg_buffers_.size()) {
    arg_buffers_.emplace_back();
  }
  std::vector<Value>& args = arg_buffers_[arg_buffer_depth_++];
  struct BufferReleaser {
    Interpreter* interp;
    std::vector<Value>* buffer;
    ~BufferReleaser() {
      buffer->clear();
      --interp->arg_buffer_depth_;
    }
  } release{this, &args};
  args.reserve(expr.args.size());
  for (const mj::Expr* arg : expr.args) {
    args.push_back(Eval(*arg));
  }

  // Resolution already classified the class name; skip the string dispatch.
  switch (expr.new_kind) {
    case mj::NewKind::kQueue:
      return Value{std::make_shared<Object>(ObjectKind::kQueue, "Queue")};
    case mj::NewKind::kList:
      return Value{std::make_shared<Object>(ObjectKind::kList, "List")};
    case mj::NewKind::kMap:
      return Value{std::make_shared<Object>(ObjectKind::kMap, "Map")};
    case mj::NewKind::kUserClass: {
      ObjectRef object = NewInstance(*expr.class_ref);
      object->set_origin_stack(CaptureStack());
      if (expr.init_method != nullptr) {
        CallMethod(*expr.init_method, object, args, nullptr);
        return Value{object};
      }
      ApplyExceptionCtorArgs(*object, args);
      return Value{object};
    }
    case mj::NewKind::kBuiltinException: {
      auto object = std::make_shared<Object>(ObjectKind::kException, expr.class_name);
      object->set_origin_stack(CaptureStack());
      ApplyExceptionCtorArgs(*object, args);
      return Value{object};
    }
    case mj::NewKind::kUnknownClass:
      ThrowMj("IllegalStateException", "unknown class '" + expr.class_name + "'");
    case mj::NewKind::kUnresolved:
      break;
  }
  return Instantiate(expr.class_name, std::move(args));
}

Value Interpreter::Instantiate(const std::string& class_name, std::vector<Value> args) {
  if (class_name == "Queue") {
    return Value{std::make_shared<Object>(ObjectKind::kQueue, "Queue")};
  }
  if (class_name == "List") {
    return Value{std::make_shared<Object>(ObjectKind::kList, "List")};
  }
  if (class_name == "Map") {
    return Value{std::make_shared<Object>(ObjectKind::kMap, "Map")};
  }

  ObjectRef object;
  const mj::ClassDecl* cls = index_.FindClass(class_name);
  if (cls != nullptr) {
    object = NewInstance(*cls);
  } else if (mj::IsBuiltinException(class_name)) {
    object = std::make_shared<Object>(ObjectKind::kException, class_name);
  } else {
    ThrowMj("IllegalStateException", "unknown class '" + class_name + "'");
  }
  object->set_origin_stack(CaptureStack());

  // Constructor conventions: an explicit `init` method wins; otherwise
  // (message), (cause), or (message, cause) in exception style.
  if (cls != nullptr) {
    const mj::MethodDecl* init = index_.ResolveMethod(*cls, "init");
    if (init != nullptr) {
      CallMethod(*init, object, args, nullptr);
      return Value{object};
    }
  }
  ApplyExceptionCtorArgs(*object, args);
  return Value{object};
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

bool Interpreter::EvalIntOperand(const mj::Expr& expr, int64_t* out, Value* boxed) {
  switch (expr.kind) {
    case AstKind::kIntLiteral:
      *out = static_cast<const mj::IntLiteralExpr&>(expr).value;
      return true;
    case AstKind::kName: {
      const auto& name = static_cast<const mj::NameExpr&>(expr);
      if (Value* local = LookupName(name); local != nullptr) {
        if (const int64_t* i = std::get_if<int64_t>(local)) {
          *out = *i;
          return true;
        }
        *boxed = *local;
        return false;
      }
      ThrowMj("IllegalStateException", "undefined variable '" + name.name + "' at line " +
                                           std::to_string(expr.location.line));
    }
    case AstKind::kBinary:
      // Nested int arithmetic chains through without a Value per node.
      return EvalBinaryFast(static_cast<const mj::BinaryExpr&>(expr), out, boxed);
    case AstKind::kUnary: {
      const auto& unary = static_cast<const mj::UnaryExpr&>(expr);
      if (unary.op != mj::UnaryOp::kNot) {
        int64_t operand = 0;
        if (EvalIntOperand(*unary.operand, &operand, boxed)) {
          *out = -operand;
          return true;
        }
        *out = -AsInt(*boxed, expr.location);  // Type error at the unary, as in Eval.
        return true;
      }
      *boxed = Eval(expr);
      return false;  // `!x` is a bool; never an int.
    }
    default: {
      *boxed = Eval(expr);
      if (const int64_t* i = std::get_if<int64_t>(boxed)) {
        *out = *i;
        return true;
      }
      return false;
    }
  }
}

bool Interpreter::EvalBool(const mj::Expr& expr, mj::SourceLocation location) {
  if (expr.kind == AstKind::kBinary) {
    const auto& bin = static_cast<const mj::BinaryExpr&>(expr);
    switch (bin.op) {
      // Comparisons — the dominant loop-condition shape — produce the raw
      // bool without a boxed Value. Operand evaluation order and the AsInt
      // type errors (both at the comparison's location) match EvalBinaryFast.
      case mj::BinaryOp::kLt:
      case mj::BinaryOp::kLe:
      case mj::BinaryOp::kGt:
      case mj::BinaryOp::kGe: {
        int64_t li = 0;
        int64_t ri = 0;
        Value lhs;
        Value rhs;
        const bool lok = EvalIntOperand(*bin.lhs, &li, &lhs);
        const bool rok = EvalIntOperand(*bin.rhs, &ri, &rhs);
        if (!lok || !rok) {
          li = AsInt(lok ? Value{li} : lhs, bin.location);
          ri = AsInt(rok ? Value{ri} : rhs, bin.location);
        }
        switch (bin.op) {
          case mj::BinaryOp::kLt:
            return li < ri;
          case mj::BinaryOp::kLe:
            return li <= ri;
          case mj::BinaryOp::kGt:
            return li > ri;
          default:
            return li >= ri;
        }
      }
      default: {
        int64_t out = 0;
        Value boxed;
        if (EvalBinaryFast(bin, &out, &boxed)) {
          ThrowTypeError("bool", Value{out}, location);  // An int is never a condition.
        }
        return AsBool(boxed, location);
      }
    }
  }
  return AsBool(Eval(expr), location);
}

bool Interpreter::EvalBinaryFast(const mj::BinaryExpr& expr, int64_t* out, Value* boxed) {
  using mj::BinaryOp;
  // Short-circuit operators first.
  if (expr.op == BinaryOp::kAnd || expr.op == BinaryOp::kOr) {
    bool lhs = EvalBool(*expr.lhs, expr.location);
    if (expr.op == BinaryOp::kAnd && !lhs) {
      *boxed = Value{false};
      return false;
    }
    if (expr.op == BinaryOp::kOr && lhs) {
      *boxed = Value{true};
      return false;
    }
    *boxed = Value{EvalBool(*expr.rhs, expr.location)};
    return false;
  }

  // Hot integer path: arithmetic and comparisons on two ints run without
  // materializing operand Values. Both operands are fully evaluated before any
  // type check (matching the boxed path, which Evals both and then converts),
  // and a non-int on either side re-boxes and falls through to the original
  // switch, so error ordering, messages, and string `+` stay byte-identical.
  int64_t li = 0;
  int64_t ri = 0;
  Value lhs;
  Value rhs;
  const bool lok = EvalIntOperand(*expr.lhs, &li, &lhs);
  const bool rok = EvalIntOperand(*expr.rhs, &ri, &rhs);
  if (lok && rok) {
    switch (expr.op) {
      case BinaryOp::kAdd:
        *out = li + ri;
        return true;
      case BinaryOp::kSub:
        *out = li - ri;
        return true;
      case BinaryOp::kMul:
        *out = li * ri;
        return true;
      case BinaryOp::kDiv:
        if (ri == 0) {
          ThrowMj("ArithmeticException", "division by zero");
        }
        *out = li / ri;
        return true;
      case BinaryOp::kMod:
        if (ri == 0) {
          ThrowMj("ArithmeticException", "modulo by zero");
        }
        *out = li % ri;
        return true;
      case BinaryOp::kEq:
        *boxed = Value{li == ri};
        return false;
      case BinaryOp::kNe:
        *boxed = Value{li != ri};
        return false;
      case BinaryOp::kLt:
        *boxed = Value{li < ri};
        return false;
      case BinaryOp::kLe:
        *boxed = Value{li <= ri};
        return false;
      case BinaryOp::kGt:
        *boxed = Value{li > ri};
        return false;
      case BinaryOp::kGe:
        *boxed = Value{li >= ri};
        return false;
      default:
        ThrowMj("IllegalStateException", "unsupported binary operator");
    }
  }
  if (lok) {
    lhs = Value{li};
  }
  if (rok) {
    rhs = Value{ri};
  }
  switch (expr.op) {
    case BinaryOp::kAdd:
      if (IsString(lhs) || IsString(rhs)) {
        *boxed = Value{ValueToString(lhs) + ValueToString(rhs)};
        return false;
      }
      *out = AsInt(lhs, expr.location) + AsInt(rhs, expr.location);
      return true;
    case BinaryOp::kSub:
      *out = AsInt(lhs, expr.location) - AsInt(rhs, expr.location);
      return true;
    case BinaryOp::kMul:
      *out = AsInt(lhs, expr.location) * AsInt(rhs, expr.location);
      return true;
    case BinaryOp::kDiv: {
      int64_t divisor = AsInt(rhs, expr.location);
      if (divisor == 0) {
        ThrowMj("ArithmeticException", "division by zero");
      }
      *out = AsInt(lhs, expr.location) / divisor;
      return true;
    }
    case BinaryOp::kMod: {
      int64_t divisor = AsInt(rhs, expr.location);
      if (divisor == 0) {
        ThrowMj("ArithmeticException", "modulo by zero");
      }
      *out = AsInt(lhs, expr.location) % divisor;
      return true;
    }
    case BinaryOp::kEq:
      *boxed = Value{ValueEquals(lhs, rhs)};
      return false;
    case BinaryOp::kNe:
      *boxed = Value{!ValueEquals(lhs, rhs)};
      return false;
    case BinaryOp::kLt:
      *boxed = Value{AsInt(lhs, expr.location) < AsInt(rhs, expr.location)};
      return false;
    case BinaryOp::kLe:
      *boxed = Value{AsInt(lhs, expr.location) <= AsInt(rhs, expr.location)};
      return false;
    case BinaryOp::kGt:
      *boxed = Value{AsInt(lhs, expr.location) > AsInt(rhs, expr.location)};
      return false;
    case BinaryOp::kGe:
      *boxed = Value{AsInt(lhs, expr.location) >= AsInt(rhs, expr.location)};
      return false;
    default:
      ThrowMj("IllegalStateException", "unsupported binary operator");
  }
}

Value Interpreter::ApplyBinary(mj::BinaryOp op, const Value& lhs, const Value& rhs,
                               mj::SourceLocation location) {
  using mj::BinaryOp;
  // Int-int first (the VM normally handles this inline; kept for safety), then
  // the boxed tail — the same order, coercion locations, and messages as
  // EvalBinaryFast with both operands already evaluated.
  const int64_t* li = std::get_if<int64_t>(&lhs);
  const int64_t* ri = std::get_if<int64_t>(&rhs);
  if (li != nullptr && ri != nullptr) {
    switch (op) {
      case BinaryOp::kAdd:
        return Value{*li + *ri};
      case BinaryOp::kSub:
        return Value{*li - *ri};
      case BinaryOp::kMul:
        return Value{*li * *ri};
      case BinaryOp::kDiv:
        if (*ri == 0) {
          ThrowMj("ArithmeticException", "division by zero");
        }
        return Value{*li / *ri};
      case BinaryOp::kMod:
        if (*ri == 0) {
          ThrowMj("ArithmeticException", "modulo by zero");
        }
        return Value{*li % *ri};
      case BinaryOp::kEq:
        return Value{*li == *ri};
      case BinaryOp::kNe:
        return Value{*li != *ri};
      case BinaryOp::kLt:
        return Value{*li < *ri};
      case BinaryOp::kLe:
        return Value{*li <= *ri};
      case BinaryOp::kGt:
        return Value{*li > *ri};
      case BinaryOp::kGe:
        return Value{*li >= *ri};
      default:
        ThrowMj("IllegalStateException", "unsupported binary operator");
    }
  }
  switch (op) {
    case BinaryOp::kAdd:
      if (IsString(lhs) || IsString(rhs)) {
        return Value{ValueToString(lhs) + ValueToString(rhs)};
      }
      return Value{AsInt(lhs, location) + AsInt(rhs, location)};
    case BinaryOp::kSub:
      return Value{AsInt(lhs, location) - AsInt(rhs, location)};
    case BinaryOp::kMul:
      return Value{AsInt(lhs, location) * AsInt(rhs, location)};
    case BinaryOp::kDiv: {
      int64_t divisor = AsInt(rhs, location);
      if (divisor == 0) {
        ThrowMj("ArithmeticException", "division by zero");
      }
      return Value{AsInt(lhs, location) / divisor};
    }
    case BinaryOp::kMod: {
      int64_t divisor = AsInt(rhs, location);
      if (divisor == 0) {
        ThrowMj("ArithmeticException", "modulo by zero");
      }
      return Value{AsInt(lhs, location) % divisor};
    }
    case BinaryOp::kEq:
      return Value{ValueEquals(lhs, rhs)};
    case BinaryOp::kNe:
      return Value{!ValueEquals(lhs, rhs)};
    case BinaryOp::kLt:
      return Value{AsInt(lhs, location) < AsInt(rhs, location)};
    case BinaryOp::kLe:
      return Value{AsInt(lhs, location) <= AsInt(rhs, location)};
    case BinaryOp::kGt:
      return Value{AsInt(lhs, location) > AsInt(rhs, location)};
    case BinaryOp::kGe:
      return Value{AsInt(lhs, location) >= AsInt(rhs, location)};
    default:
      ThrowMj("IllegalStateException", "unsupported binary operator");
  }
}

Value Interpreter::EvalBinary(const mj::BinaryExpr& expr) {
  int64_t out = 0;
  Value boxed;
  if (EvalBinaryFast(expr, &out, &boxed)) {
    return Value{out};
  }
  return boxed;
}

Value Interpreter::Eval(const mj::Expr& expr) {
  switch (expr.kind) {
    case AstKind::kIntLiteral:
      return Value{static_cast<const mj::IntLiteralExpr&>(expr).value};
    case AstKind::kBoolLiteral:
      return Value{static_cast<const mj::BoolLiteralExpr&>(expr).value};
    case AstKind::kStringLiteral:
      return Value{static_cast<const mj::StringLiteralExpr&>(expr).value};
    case AstKind::kNullLiteral:
      return Value{};
    case AstKind::kThis: {
      ObjectRef self = frame_depth_ == 0 ? nullptr : CurrentFrame().self;
      if (self == nullptr) {
        ThrowMj("IllegalStateException", "'this' outside an instance method");
      }
      return Value{self};
    }
    case AstKind::kName: {
      const auto& name = static_cast<const mj::NameExpr&>(expr);
      if (Value* local = LookupName(name); local != nullptr) {
        return *local;
      }
      ThrowMj("IllegalStateException", "undefined variable '" + name.name + "' at line " +
                                           std::to_string(expr.location.line));
    }
    case AstKind::kFieldAccess: {
      const auto& access = static_cast<const mj::FieldAccessExpr&>(expr);
      Value base = Eval(*access.base);
      if (IsNull(base)) {
        ThrowMj("NullPointerException", "field access '" + access.field + "' on null at line " +
                                            std::to_string(expr.location.line));
      }
      if (!IsObject(base)) {
        ThrowMj("IllegalStateException",
                "field access on non-object " + ValueToString(base));
      }
      return ReadField(std::get<ObjectRef>(base), access.field, access.field_symbol,
                       expr.location);
    }
    case AstKind::kCall:
      return EvalCall(static_cast<const mj::CallExpr&>(expr));
    case AstKind::kNew:
      return EvalNew(static_cast<const mj::NewExpr&>(expr));
    case AstKind::kUnary: {
      const auto& unary = static_cast<const mj::UnaryExpr&>(expr);
      Value operand = Eval(*unary.operand);
      if (unary.op == mj::UnaryOp::kNot) {
        return Value{!AsBool(operand, expr.location)};
      }
      return Value{-AsInt(operand, expr.location)};
    }
    case AstKind::kBinary:
      return EvalBinary(static_cast<const mj::BinaryExpr&>(expr));
    case AstKind::kInstanceOf: {
      const auto& iof = static_cast<const mj::InstanceOfExpr&>(expr);
      Value operand = Eval(*iof.operand);
      if (!IsObject(operand)) {
        return Value{false};
      }
      return Value{
          index_.IsSubtype(std::get<ObjectRef>(operand)->class_name(), iof.type_name)};
    }
    default:
      ThrowMj("IllegalStateException", "unsupported expression");
  }
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

Interpreter::Flow Interpreter::ExecBlock(const mj::BlockStmt& block) {
  // Entering the block invalidates its subtree's declarations — the dynamic
  // semantics rebuilt inner scope maps from scratch on every (re-)entry. No
  // scope-exit work is needed (exception unwinding included): dead slots are
  // unreachable until the next entry clears them.
  ClearSlotRange(CurrentFrame(), block.slot_base, block.slot_count);
  for (const mj::Stmt* stmt : block.statements) {
    Flow flow = ExecStmt(*stmt);
    if (flow.kind != FlowKind::kNormal) {
      return flow;
    }
  }
  return Flow{};
}

Interpreter::Flow Interpreter::ExecStmt(const mj::Stmt& stmt) {
  Step();
  switch (stmt.kind) {
    case AstKind::kBlock:
      return ExecBlock(static_cast<const mj::BlockStmt&>(stmt));

    case AstKind::kVarDecl: {
      const auto& decl = static_cast<const mj::VarDeclStmt&>(stmt);
      Value value = Eval(*decl.init);  // The initializer runs before the name binds.
      Frame& frame = CurrentFrame();
      const auto slot = static_cast<size_t>(decl.slot);
      frame.slots[slot] = std::move(value);
      frame.defined[slot] = 1;
      return Flow{};
    }

    case AstKind::kAssign: {
      const auto& assign = static_cast<const mj::AssignStmt&>(stmt);
      auto combine = [&](const Value& old_value, const Value& new_value) -> Value {
        switch (assign.op) {
          case mj::AssignOp::kAssign:
            return new_value;
          case mj::AssignOp::kAddAssign:
            if (IsString(old_value) || IsString(new_value)) {
              return Value{ValueToString(old_value) + ValueToString(new_value)};
            }
            return Value{AsInt(old_value, stmt.location) + AsInt(new_value, stmt.location)};
          case mj::AssignOp::kSubAssign:
            return Value{AsInt(old_value, stmt.location) - AsInt(new_value, stmt.location)};
        }
        return new_value;
      };
      if (assign.target->kind == AstKind::kName) {
        const auto* name = static_cast<const mj::NameExpr*>(assign.target);
        // The slot pointer stays valid across Eval: live frames are fixed-size
        // and the deque never moves them.
        Value* slot = LookupName(*name);
        if (slot == nullptr) {
          ThrowMj("IllegalStateException", "assignment to undefined variable '" + name->name +
                                               "' at line " + std::to_string(stmt.location.line));
        }
        // Int results flow from the rhs into an int-holding slot as a plain
        // store — no intermediate Value, no variant assignment (which must
        // dispatch on the old alternative to destroy it). Everything else
        // takes the original combine path, which owns the string-concat and
        // type-error behavior.
        int64_t ri = 0;
        Value rhs;
        const bool rok = EvalIntOperand(*assign.value, &ri, &rhs);
        int64_t* slot_i = std::get_if<int64_t>(slot);
        if (assign.op == mj::AssignOp::kAssign) {
          if (rok) {
            if (slot_i != nullptr) {
              *slot_i = ri;
            } else {
              *slot = Value{ri};
            }
          } else {
            *slot = std::move(rhs);
          }
          return Flow{};
        }
        if (rok && slot_i != nullptr) {
          *slot_i = assign.op == mj::AssignOp::kAddAssign ? *slot_i + ri : *slot_i - ri;
          return Flow{};
        }
        if (rok) {
          rhs = Value{ri};
        }
        *slot = combine(*slot, rhs);
        return Flow{};
      }
      const auto* access = static_cast<const mj::FieldAccessExpr*>(assign.target);
      Value base = Eval(*access->base);
      if (IsNull(base)) {
        ThrowMj("NullPointerException", "field assignment on null at line " +
                                            std::to_string(stmt.location.line));
      }
      if (!IsObject(base)) {
        ThrowMj("IllegalStateException", "field assignment on non-object");
      }
      ObjectRef object = std::get<ObjectRef>(base);
      Value rhs = Eval(*assign.value);
      if (assign.op == mj::AssignOp::kAssign) {
        WriteField(object, access->field, access->field_symbol, std::move(rhs));
      } else {
        Value old_value = ReadField(object, access->field, access->field_symbol, stmt.location);
        WriteField(object, access->field, access->field_symbol, combine(old_value, rhs));
      }
      return Flow{};
    }

    case AstKind::kExprStmt:
      Eval(*static_cast<const mj::ExprStmt&>(stmt).expr);
      return Flow{};

    case AstKind::kIf: {
      const auto& node = static_cast<const mj::IfStmt&>(stmt);
      if (EvalBool(*node.condition, stmt.location)) {
        return ExecStmt(*node.then_branch);
      }
      if (node.else_branch != nullptr) {
        return ExecStmt(*node.else_branch);
      }
      return Flow{};
    }

    case AstKind::kWhile: {
      const auto& node = static_cast<const mj::WhileStmt&>(stmt);
      while (EvalBool(*node.condition, stmt.location)) {
        Step();
        ++loop_iterations_;
        if (loop_observer_ != nullptr) {
          NotifyLoopIteration();
        }
        Flow flow = ExecStmt(*node.body);
        if (flow.kind == FlowKind::kBreak) {
          break;
        }
        if (flow.kind == FlowKind::kReturn) {
          return flow;
        }
        // kContinue and kNormal both loop.
      }
      return Flow{};
    }

    case AstKind::kFor: {
      const auto& node = static_cast<const mj::ForStmt&>(stmt);
      // The for-statement's own scope: cleared at entry; the init declaration
      // then persists across iterations, like its scope map did.
      ClearSlotRange(CurrentFrame(), node.slot_base, node.slot_count);
      if (node.init != nullptr) {
        Flow flow = ExecStmt(*node.init);
        if (flow.kind != FlowKind::kNormal) {
          return flow;
        }
      }
      while (node.condition == nullptr || EvalBool(*node.condition, stmt.location)) {
        Step();
        ++loop_iterations_;
        if (loop_observer_ != nullptr) {
          NotifyLoopIteration();
        }
        Flow flow = ExecStmt(*node.body);
        if (flow.kind == FlowKind::kBreak) {
          break;
        }
        if (flow.kind == FlowKind::kReturn) {
          return flow;
        }
        if (node.update != nullptr) {
          Flow update_flow = ExecStmt(*node.update);
          if (update_flow.kind != FlowKind::kNormal) {
            return update_flow;
          }
        }
      }
      return Flow{};
    }

    case AstKind::kSwitch: {
      const auto& node = static_cast<const mj::SwitchStmt&>(stmt);
      Value subject = Eval(*node.subject);
      // Find the matching case (or default), then execute with fallthrough.
      size_t start = node.cases.size();
      size_t default_index = node.cases.size();
      for (size_t i = 0; i < node.cases.size() && start == node.cases.size(); ++i) {
        if (node.cases[i].labels.empty()) {
          default_index = i;
          continue;
        }
        for (const mj::Expr* label : node.cases[i].labels) {
          if (ValueEquals(subject, Eval(*label))) {
            start = i;
            break;
          }
        }
      }
      if (start == node.cases.size()) {
        start = default_index;
      }
      for (size_t i = start; i < node.cases.size(); ++i) {
        for (const mj::Stmt* child : node.cases[i].body) {
          Flow flow = ExecStmt(*child);
          if (flow.kind == FlowKind::kBreak) {
            return Flow{};  // Break exits the switch.
          }
          if (flow.kind != FlowKind::kNormal) {
            return flow;  // Return/continue propagate.
          }
        }
      }
      return Flow{};
    }

    case AstKind::kTry: {
      const auto& node = static_cast<const mj::TryStmt&>(stmt);
      Flow flow;
      bool pending_throw = false;
      ObjectRef exception;
      try {
        flow = ExecBlock(*node.body);
      } catch (ThrownException& thrown) {
        pending_throw = true;
        exception = thrown.exception;
      }
      if (pending_throw) {
        for (const mj::CatchClause& clause : node.catches) {
          if (!index_.IsSubtype(exception->class_name(), clause.exception_type)) {
            continue;
          }
          pending_throw = false;
          Frame& frame = CurrentFrame();
          ClearSlotRange(frame, clause.slot_base, clause.slot_count);
          const auto var_slot = static_cast<size_t>(clause.var_slot);
          frame.slots[var_slot] = Value{exception};
          frame.defined[var_slot] = 1;
          try {
            flow = ExecBlock(*clause.body);
          } catch (ThrownException& rethrown) {
            pending_throw = true;
            exception = rethrown.exception;
          }
          break;
        }
      }
      if (node.finally != nullptr) {
        Flow finally_flow = ExecBlock(*node.finally);  // May itself throw.
        if (finally_flow.kind != FlowKind::kNormal) {
          return finally_flow;  // Finally control flow wins (Java semantics).
        }
      }
      if (pending_throw) {
        throw ThrownException{exception};
      }
      return flow;
    }

    case AstKind::kThrow: {
      const auto& node = static_cast<const mj::ThrowStmt&>(stmt);
      Value value = Eval(*node.value);
      if (!IsObject(value)) {
        ThrowMj("IllegalStateException", "throw of non-object value at line " +
                                             std::to_string(stmt.location.line));
      }
      throw ThrownException{std::get<ObjectRef>(value)};
    }

    case AstKind::kReturn: {
      const auto& node = static_cast<const mj::ReturnStmt&>(stmt);
      Flow flow;
      flow.kind = FlowKind::kReturn;
      if (node.value != nullptr) {
        flow.value = Eval(*node.value);
      }
      return flow;
    }

    case AstKind::kBreak:
      return Flow{FlowKind::kBreak, {}};
    case AstKind::kContinue:
      return Flow{FlowKind::kContinue, {}};

    default:
      ThrowMj("IllegalStateException", "unsupported statement");
  }
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

Value Interpreter::Invoke(const std::string& qualified_name, std::vector<Value> args) {
  const mj::MethodDecl* method = index_.FindQualified(qualified_name);
  if (method == nullptr) {
    ThrowMj("IllegalStateException", "no such method: " + qualified_name);
  }
  ObjectRef self = method->owner != nullptr ? SingletonOf(*method->owner) : nullptr;
  return CallMethod(*method, std::move(self), args, nullptr);
}

}  // namespace wasabi
