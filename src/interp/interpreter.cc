#include "src/interp/interpreter.h"

#include <cassert>
#include <utility>

namespace wasabi {

using mj::AstKind;

const char* AbortReasonName(AbortReason reason) {
  switch (reason) {
    case AbortReason::kStepBudget:
      return "step budget exceeded";
    case AbortReason::kVirtualTimeBudget:
      return "virtual time budget exceeded";
    case AbortReason::kStackOverflow:
      return "stack overflow";
  }
  return "unknown";
}

Interpreter::Interpreter(const mj::Program& program, const mj::ProgramIndex& index,
                         InterpOptions options)
    : program_(program), index_(index), options_(options) {}

void Interpreter::SetConfig(const std::string& key, Value value) {
  config_[key] = std::move(value);
}

void Interpreter::FreezeConfig(const std::string& key) {
  frozen_config_keys_.insert(key);
}

void Interpreter::AddInterceptor(CallInterceptor* interceptor) {
  interceptors_.push_back(interceptor);
}

std::vector<std::string> Interpreter::CaptureStack() const {
  std::vector<std::string> stack;
  stack.reserve(frames_.size());
  for (const Frame& frame : frames_) {
    stack.push_back(frame.qualified_name);
  }
  return stack;
}

Interpreter::Frame& Interpreter::CurrentFrame() {
  assert(!frames_.empty());
  return frames_.back();
}

void Interpreter::Step() {
  if (++steps_ > options_.step_budget) {
    throw ExecutionAborted{AbortReason::kStepBudget};
  }
}

void Interpreter::Sleep(int64_t millis) {
  if (millis < 0) {
    millis = 0;
  }
  virtual_time_ms_ += millis;
  LogEntry entry;
  entry.kind = LogEntryKind::kSleep;
  entry.virtual_time_ms = virtual_time_ms_;
  entry.amount = millis;
  entry.call_stack = CaptureStack();
  log_.Append(std::move(entry));
  if (virtual_time_ms_ > options_.virtual_time_budget_ms) {
    throw ExecutionAborted{AbortReason::kVirtualTimeBudget};
  }
}

ObjectRef Interpreter::MakeException(const std::string& class_name, const std::string& message) {
  const mj::ClassDecl* cls = index_.FindClass(class_name);
  ObjectRef exception;
  if (cls != nullptr) {
    exception = NewInstance(*cls);
  } else {
    exception = std::make_shared<Object>(ObjectKind::kException, class_name);
  }
  exception->set_message(message);
  exception->set_origin_stack(CaptureStack());
  return exception;
}

void Interpreter::ThrowMj(const std::string& class_name, const std::string& message) {
  throw ThrownException{MakeException(class_name, message)};
}

bool Interpreter::AsBool(const Value& value, mj::SourceLocation location) {
  if (IsBool(value)) {
    return std::get<bool>(value);
  }
  ThrowMj("IllegalStateException",
          "type error at line " + std::to_string(location.line) + ": expected bool, got " +
              ValueToString(value));
}

int64_t Interpreter::AsInt(const Value& value, mj::SourceLocation location) {
  if (IsInt(value)) {
    return std::get<int64_t>(value);
  }
  ThrowMj("IllegalStateException",
          "type error at line " + std::to_string(location.line) + ": expected int, got " +
              ValueToString(value));
}

// ---------------------------------------------------------------------------
// Objects, fields, variables
// ---------------------------------------------------------------------------

ObjectRef Interpreter::NewInstance(const mj::ClassDecl& cls) {
  auto object = std::make_shared<Object>(ObjectKind::kInstance, cls.name);
  object->set_decl(&cls);

  // Run field initializers, base classes first, with `this` bound.
  std::vector<const mj::ClassDecl*> chain;
  const mj::ClassDecl* current = &cls;
  int depth = 0;
  while (current != nullptr && depth++ < 64) {
    chain.push_back(current);
    current = current->base_name.empty() ? nullptr : index_.FindClass(current->base_name);
  }
  frames_.push_back(Frame{nullptr, cls.name + ".<init>", object, {{}}, next_activation_++});
  struct PopFrame {
    std::deque<Frame>* frames;
    ~PopFrame() { frames->pop_back(); }
  } pop{&frames_};
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (const mj::FieldDecl* field : (*it)->fields) {
      Value value;  // null by default.
      if (field->init != nullptr) {
        value = Eval(*field->init);
      }
      object->fields()[field->name] = std::move(value);
    }
  }
  return object;
}

ObjectRef Interpreter::SingletonOf(const mj::ClassDecl& cls) {
  auto it = singletons_.find(&cls);
  if (it != singletons_.end()) {
    return it->second;
  }
  ObjectRef instance = NewInstance(cls);
  singletons_.emplace(&cls, instance);
  return instance;
}

Value* Interpreter::FindVariable(const std::string& name) {
  if (frames_.empty()) {
    return nullptr;
  }
  Frame& frame = frames_.back();
  for (auto it = frame.scopes.rbegin(); it != frame.scopes.rend(); ++it) {
    auto found = it->find(name);
    if (found != it->end()) {
      return &found->second;
    }
  }
  return nullptr;
}

void Interpreter::DefineVariable(const std::string& name, Value value) {
  CurrentFrame().scopes.back()[name] = std::move(value);
}

Value Interpreter::ReadField(const ObjectRef& object, const std::string& field,
                             mj::SourceLocation location) {
  auto it = object->fields().find(field);
  if (it != object->fields().end()) {
    return it->second;
  }
  // Declared but never assigned (no initializer ran because the declaration
  // lives on an unknown base class, etc.): null. Unknown fields are an error.
  const mj::ClassDecl* cls = object->decl();
  int depth = 0;
  while (cls != nullptr && depth++ < 64) {
    for (const mj::FieldDecl* decl : cls->fields) {
      if (decl->name == field) {
        return Value{};
      }
    }
    cls = cls->base_name.empty() ? nullptr : index_.FindClass(cls->base_name);
  }
  ThrowMj("IllegalStateException", "no such field '" + field + "' on " + object->class_name() +
                                       " at line " + std::to_string(location.line));
}

void Interpreter::WriteField(const ObjectRef& object, const std::string& field, Value value) {
  object->fields()[field] = std::move(value);
}

// ---------------------------------------------------------------------------
// Builtins
// ---------------------------------------------------------------------------

namespace {

int64_t IntPow(int64_t base, int64_t exponent) {
  if (exponent < 0) {
    return 0;
  }
  int64_t result = 1;
  for (int64_t i = 0; i < exponent && i < 62; ++i) {
    result *= base;
    if (result > (int64_t{1} << 52)) {
      return result;  // Clamp-ish: avoid overflow in pathological backoffs.
    }
  }
  return result;
}

}  // namespace

bool Interpreter::TryBuiltinStatic(const std::string& receiver, const mj::CallExpr& call,
                                   Value* result) {
  auto eval_args = [&]() {
    std::vector<Value> args;
    args.reserve(call.args.size());
    for (const mj::Expr* arg : call.args) {
      args.push_back(Eval(*arg));
    }
    return args;
  };
  auto arg_count_error = [&]() {
    ThrowMj("IllegalArgumentException",
            "wrong argument count for " + receiver + "." + call.callee);
  };

  if (receiver == "Thread" || receiver == "TimeUnit" || receiver == "Timer" ||
      receiver == "Object") {
    // The sleep APIs the paper's delay oracle instruments (§3.1.3).
    bool is_sleep =
        (receiver == "Thread" && call.callee == "sleep") ||
        (receiver == "TimeUnit" &&
         (call.callee == "sleep" || call.callee == "timedWait" ||
          call.callee == "scheduledExecutionTime")) ||
        (receiver == "Timer" && (call.callee == "wait" || call.callee == "schedule")) ||
        (receiver == "Object" && call.callee == "wait");
    if (is_sleep) {
      std::vector<Value> args = eval_args();
      if (args.empty()) {
        arg_count_error();
      }
      // Timer.schedule(delay) and friends: the delay is the last int argument.
      Sleep(AsInt(args.back(), call.location));
      *result = Value{};
      return true;
    }
    return false;
  }

  if (receiver == "Clock") {
    if (call.callee == "nowMillis" || call.callee == "now") {
      *result = Value{virtual_time_ms_};
      return true;
    }
    return false;
  }

  if (receiver == "Log") {
    if (call.callee == "info" || call.callee == "warn" || call.callee == "error" ||
        call.callee == "debug") {
      std::vector<Value> args = eval_args();
      std::string text;
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) {
          text += " ";
        }
        text += ValueToString(args[i]);
      }
      LogEntry entry;
      entry.kind = LogEntryKind::kAppLog;
      entry.virtual_time_ms = virtual_time_ms_;
      entry.text = std::move(text);
      log_.Append(std::move(entry));
      *result = Value{};
      return true;
    }
    return false;
  }

  if (receiver == "Config") {
    std::vector<Value> args = eval_args();
    if (call.callee == "set") {
      if (args.size() != 2 || !IsString(args[0])) {
        arg_count_error();
      }
      const std::string& key = std::get<std::string>(args[0]);
      if (frozen_config_keys_.count(key) == 0) {
        config_[key] = args[1];
      }
      *result = Value{};
      return true;
    }
    if (call.callee == "getInt" || call.callee == "getBool" || call.callee == "getString" ||
        call.callee == "get") {
      if (args.empty() || !IsString(args[0])) {
        arg_count_error();
      }
      auto it = config_.find(std::get<std::string>(args[0]));
      if (it != config_.end()) {
        *result = it->second;
      } else if (args.size() >= 2) {
        *result = args[1];  // Caller-provided default.
      } else {
        *result = Value{};
      }
      return true;
    }
    return false;
  }

  if (receiver == "Math") {
    std::vector<Value> args = eval_args();
    if (call.callee == "pow" && args.size() == 2) {
      *result = Value{IntPow(AsInt(args[0], call.location), AsInt(args[1], call.location))};
      return true;
    }
    if (call.callee == "min" && args.size() == 2) {
      *result = Value{std::min(AsInt(args[0], call.location), AsInt(args[1], call.location))};
      return true;
    }
    if (call.callee == "max" && args.size() == 2) {
      *result = Value{std::max(AsInt(args[0], call.location), AsInt(args[1], call.location))};
      return true;
    }
    if (call.callee == "abs" && args.size() == 1) {
      int64_t v = AsInt(args[0], call.location);
      *result = Value{v < 0 ? -v : v};
      return true;
    }
    return false;
  }

  if (receiver == "Assert") {
    std::vector<Value> args = eval_args();
    auto message_from = [&](size_t index) {
      return args.size() > index && IsString(args[index]) ? std::get<std::string>(args[index])
                                                          : std::string();
    };
    if (call.callee == "assertTrue" || call.callee == "assertFalse") {
      if (args.empty()) {
        arg_count_error();
      }
      bool condition = AsBool(args[0], call.location);
      bool expected = call.callee == "assertTrue";
      if (condition != expected) {
        std::string msg = message_from(1);
        ThrowMj("AssertionError", msg.empty() ? call.callee + " failed" : msg);
      }
      *result = Value{};
      return true;
    }
    if (call.callee == "assertEquals") {
      if (args.size() < 2) {
        arg_count_error();
      }
      if (!ValueEquals(args[0], args[1])) {
        std::string msg = message_from(2);
        ThrowMj("AssertionError", msg.empty() ? "assertEquals failed: expected " +
                                                    ValueToString(args[0]) + ", got " +
                                                    ValueToString(args[1])
                                              : msg);
      }
      *result = Value{};
      return true;
    }
    if (call.callee == "assertNull" || call.callee == "assertNotNull") {
      if (args.empty()) {
        arg_count_error();
      }
      bool is_null = IsNull(args[0]);
      bool expected = call.callee == "assertNull";
      if (is_null != expected) {
        std::string msg = message_from(1);
        ThrowMj("AssertionError", msg.empty() ? call.callee + " failed" : msg);
      }
      *result = Value{};
      return true;
    }
    if (call.callee == "fail") {
      std::string msg = message_from(0);
      ThrowMj("AssertionError", msg.empty() ? "fail() called" : msg);
    }
    return false;
  }

  return false;
}

bool Interpreter::TryStringMethod(const std::string& text, const mj::CallExpr& call,
                                  std::vector<Value>& args, Value* result) {
  if (call.callee == "length" && args.empty()) {
    *result = Value{static_cast<int64_t>(text.size())};
    return true;
  }
  if (call.callee == "isEmpty" && args.empty()) {
    *result = Value{text.empty()};
    return true;
  }
  if ((call.callee == "contains" || call.callee == "startsWith" || call.callee == "endsWith" ||
       call.callee == "equals") &&
      args.size() == 1 && IsString(args[0])) {
    const std::string& needle = std::get<std::string>(args[0]);
    if (call.callee == "contains") {
      *result = Value{text.find(needle) != std::string::npos};
    } else if (call.callee == "startsWith") {
      *result = Value{text.rfind(needle, 0) == 0};
    } else if (call.callee == "endsWith") {
      *result = Value{needle.size() <= text.size() &&
                      text.compare(text.size() - needle.size(), needle.size(), needle) == 0};
    } else {
      *result = Value{text == needle};
    }
    return true;
  }
  return false;
}

bool Interpreter::TryBuiltinMethod(const ObjectRef& object, const mj::CallExpr& call,
                                   std::vector<Value>& args, Value* result) {
  const std::string& name = call.callee;
  switch (object->kind()) {
    case ObjectKind::kQueue: {
      auto& queue = object->elements();
      if ((name == "put" || name == "add" || name == "offer" || name == "enqueue" ||
           name == "reenqueue" || name == "push") &&
          args.size() == 1) {
        queue.push_back(args[0]);
        *result = Value{};
        return true;
      }
      if ((name == "take" || name == "remove") && args.empty()) {
        if (queue.empty()) {
          ThrowMj("IllegalStateException", "take() on empty Queue");
        }
        *result = queue.front();
        queue.pop_front();
        return true;
      }
      if (name == "poll" && args.empty()) {
        if (queue.empty()) {
          *result = Value{};
        } else {
          *result = queue.front();
          queue.pop_front();
        }
        return true;
      }
      if (name == "peek" && args.empty()) {
        *result = queue.empty() ? Value{} : queue.front();
        return true;
      }
      if (name == "size" && args.empty()) {
        *result = Value{static_cast<int64_t>(queue.size())};
        return true;
      }
      if (name == "isEmpty" && args.empty()) {
        *result = Value{queue.empty()};
        return true;
      }
      if (name == "clear" && args.empty()) {
        queue.clear();
        *result = Value{};
        return true;
      }
      return false;
    }
    case ObjectKind::kList: {
      auto& list = object->elements();
      if (name == "add" && args.size() == 1) {
        list.push_back(args[0]);
        *result = Value{};
        return true;
      }
      if ((name == "get" || name == "set") && !args.empty() && IsInt(args[0])) {
        int64_t i = std::get<int64_t>(args[0]);
        if (i < 0 || i >= static_cast<int64_t>(list.size())) {
          ThrowMj("IllegalArgumentException",
                  "index " + std::to_string(i) + " out of bounds for List of size " +
                      std::to_string(list.size()));
        }
        if (name == "get" && args.size() == 1) {
          *result = list[static_cast<size_t>(i)];
          return true;
        }
        if (name == "set" && args.size() == 2) {
          list[static_cast<size_t>(i)] = args[1];
          *result = Value{};
          return true;
        }
        return false;
      }
      if (name == "contains" && args.size() == 1) {
        bool found = false;
        for (const Value& element : list) {
          if (ValueEquals(element, args[0])) {
            found = true;
          }
        }
        *result = Value{found};
        return true;
      }
      if (name == "size" && args.empty()) {
        *result = Value{static_cast<int64_t>(list.size())};
        return true;
      }
      if (name == "isEmpty" && args.empty()) {
        *result = Value{list.empty()};
        return true;
      }
      if (name == "clear" && args.empty()) {
        list.clear();
        *result = Value{};
        return true;
      }
      return false;
    }
    case ObjectKind::kMap: {
      auto& map = object->entries();
      bool key_ok = false;
      if (name == "put" && args.size() == 2) {
        std::string key = MapKeyFor(args[0], &key_ok);
        if (!key_ok) {
          ThrowMj("IllegalArgumentException", "unsupported Map key type");
        }
        map[key] = args[1];
        *result = Value{};
        return true;
      }
      if ((name == "get" || name == "containsKey" || name == "remove") && args.size() == 1) {
        std::string key = MapKeyFor(args[0], &key_ok);
        if (!key_ok) {
          ThrowMj("IllegalArgumentException", "unsupported Map key type");
        }
        auto it = map.find(key);
        if (name == "get") {
          *result = it == map.end() ? Value{} : it->second;
        } else if (name == "containsKey") {
          *result = Value{it != map.end()};
        } else {
          if (it != map.end()) {
            map.erase(it);
          }
          *result = Value{};
        }
        return true;
      }
      if (name == "size" && args.empty()) {
        *result = Value{static_cast<int64_t>(map.size())};
        return true;
      }
      if (name == "isEmpty" && args.empty()) {
        *result = Value{map.empty()};
        return true;
      }
      if (name == "clear" && args.empty()) {
        map.clear();
        *result = Value{};
        return true;
      }
      return false;
    }
    case ObjectKind::kException:
    case ObjectKind::kInstance: {
      // Exception accessors available on any throwable-ish object whose user
      // class does not override them.
      if (name == "getMessage" && args.empty()) {
        *result = object->message().empty() ? Value{} : Value{object->message()};
        return true;
      }
      if (name == "getCause" && args.empty()) {
        *result = object->cause() == nullptr ? Value{} : Value{object->cause()};
        return true;
      }
      if (name == "toString" && args.empty()) {
        *result = Value{object->class_name() +
                        (object->message().empty() ? "" : ": " + object->message())};
        return true;
      }
      return false;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Calls
// ---------------------------------------------------------------------------

Value Interpreter::CallMethod(const mj::MethodDecl& method, ObjectRef self,
                              std::vector<Value> args, const mj::CallExpr* site) {
  if (static_cast<int>(frames_.size()) >= options_.max_call_depth) {
    throw ExecutionAborted{AbortReason::kStackOverflow};
  }

  CallEvent event;
  event.caller = frames_.empty() ? "" : frames_.back().qualified_name;
  event.callee = method.QualifiedName();
  event.site = site;
  event.caller_activation = frames_.empty() ? 0 : frames_.back().activation;
  for (CallInterceptor* interceptor : interceptors_) {
    interceptor->OnCall(event, *this);  // May throw ThrownException.
  }

  if (method.body == nullptr) {
    ThrowMj("UnsupportedOperationException",
            "call to method without a body: " + method.QualifiedName());
  }

  frames_.push_back(Frame{&method, method.QualifiedName(), std::move(self), {{}},
                          next_activation_++});
  struct PopFrame {
    std::deque<Frame>* frames;
    ~PopFrame() { frames->pop_back(); }
  } pop{&frames_};

  for (size_t i = 0; i < method.params.size(); ++i) {
    Value value = i < args.size() ? std::move(args[i]) : Value{};
    DefineVariable(method.params[i]->name, std::move(value));
  }

  Flow flow = ExecBlock(*method.body);
  if (flow.kind == FlowKind::kReturn) {
    return flow.value;
  }
  return Value{};
}

Value Interpreter::EvalCall(const mj::CallExpr& call) {
  Step();

  // --- Determine the receiver ------------------------------------------------
  Value receiver_value;
  bool have_receiver_value = false;

  if (call.base == nullptr || call.base->kind == AstKind::kThis) {
    // this-call.
    ObjectRef self = frames_.empty() ? nullptr : CurrentFrame().self;
    if (self == nullptr) {
      ThrowMj("IllegalStateException", "implicit this-call outside an instance: " + call.callee);
    }
    receiver_value = Value{self};
    have_receiver_value = true;
  } else if (call.base->kind == AstKind::kName) {
    const std::string& name = static_cast<const mj::NameExpr*>(call.base)->name;
    if (Value* local = FindVariable(name); local != nullptr) {
      receiver_value = *local;
      have_receiver_value = true;
    } else {
      Value result;
      if (TryBuiltinStatic(name, call, &result)) {
        return result;
      }
      if (const mj::ClassDecl* cls = index_.FindClass(name); cls != nullptr) {
        receiver_value = Value{SingletonOf(*cls)};
        have_receiver_value = true;
      } else {
        ThrowMj("IllegalStateException", "undefined receiver '" + name + "' at line " +
                                             std::to_string(call.location.line));
      }
    }
  }

  if (!have_receiver_value) {
    receiver_value = Eval(*call.base);
  }

  // --- Evaluate arguments ------------------------------------------------------
  std::vector<Value> args;
  args.reserve(call.args.size());
  for (const mj::Expr* arg : call.args) {
    args.push_back(Eval(*arg));
  }

  // --- Dispatch ---------------------------------------------------------------
  if (IsNull(receiver_value)) {
    ThrowMj("NullPointerException", "call of '" + call.callee + "' on null at line " +
                                        std::to_string(call.location.line));
  }
  if (IsString(receiver_value)) {
    Value result;
    if (TryStringMethod(std::get<std::string>(receiver_value), call, args, &result)) {
      return result;
    }
    ThrowMj("IllegalStateException", "no String method '" + call.callee + "'");
  }
  if (!IsObject(receiver_value)) {
    ThrowMj("IllegalStateException", "call of '" + call.callee + "' on non-object " +
                                         ValueToString(receiver_value));
  }

  ObjectRef object = std::get<ObjectRef>(receiver_value);
  if (object->decl() != nullptr) {
    const mj::MethodDecl* method = index_.ResolveMethod(*object->decl(), call.callee);
    if (method != nullptr) {
      return CallMethod(*method, object, std::move(args), &call);
    }
  }
  Value result;
  if (TryBuiltinMethod(object, call, args, &result)) {
    return result;
  }
  ThrowMj("IllegalStateException", "no method '" + call.callee + "' on " +
                                       object->class_name() + " at line " +
                                       std::to_string(call.location.line));
}

Value Interpreter::EvalNew(const mj::NewExpr& expr) {
  Step();
  std::vector<Value> args;
  args.reserve(expr.args.size());
  for (const mj::Expr* arg : expr.args) {
    args.push_back(Eval(*arg));
  }
  return Instantiate(expr.class_name, std::move(args));
}

Value Interpreter::Instantiate(const std::string& class_name, std::vector<Value> args) {
  if (class_name == "Queue") {
    return Value{std::make_shared<Object>(ObjectKind::kQueue, "Queue")};
  }
  if (class_name == "List") {
    return Value{std::make_shared<Object>(ObjectKind::kList, "List")};
  }
  if (class_name == "Map") {
    return Value{std::make_shared<Object>(ObjectKind::kMap, "Map")};
  }

  ObjectRef object;
  const mj::ClassDecl* cls = index_.FindClass(class_name);
  if (cls != nullptr) {
    object = NewInstance(*cls);
  } else if (mj::IsBuiltinException(class_name)) {
    object = std::make_shared<Object>(ObjectKind::kException, class_name);
  } else {
    ThrowMj("IllegalStateException", "unknown class '" + class_name + "'");
  }
  object->set_origin_stack(CaptureStack());

  // Constructor conventions: an explicit `init` method wins; otherwise
  // (message), (cause), or (message, cause) in exception style.
  if (cls != nullptr) {
    const mj::MethodDecl* init = index_.ResolveMethod(*cls, "init");
    if (init != nullptr) {
      CallMethod(*init, object, std::move(args), nullptr);
      return Value{object};
    }
  }
  for (const Value& arg : args) {
    if (IsString(arg)) {
      object->set_message(std::get<std::string>(arg));
    } else if (IsObject(arg)) {
      object->set_cause(std::get<ObjectRef>(arg));
    }
  }
  return Value{object};
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

Value Interpreter::EvalBinary(const mj::BinaryExpr& expr) {
  using mj::BinaryOp;
  // Short-circuit operators first.
  if (expr.op == BinaryOp::kAnd || expr.op == BinaryOp::kOr) {
    bool lhs = AsBool(Eval(*expr.lhs), expr.location);
    if (expr.op == BinaryOp::kAnd && !lhs) {
      return Value{false};
    }
    if (expr.op == BinaryOp::kOr && lhs) {
      return Value{true};
    }
    return Value{AsBool(Eval(*expr.rhs), expr.location)};
  }

  Value lhs = Eval(*expr.lhs);
  Value rhs = Eval(*expr.rhs);
  switch (expr.op) {
    case BinaryOp::kAdd:
      if (IsString(lhs) || IsString(rhs)) {
        return Value{ValueToString(lhs) + ValueToString(rhs)};
      }
      return Value{AsInt(lhs, expr.location) + AsInt(rhs, expr.location)};
    case BinaryOp::kSub:
      return Value{AsInt(lhs, expr.location) - AsInt(rhs, expr.location)};
    case BinaryOp::kMul:
      return Value{AsInt(lhs, expr.location) * AsInt(rhs, expr.location)};
    case BinaryOp::kDiv: {
      int64_t divisor = AsInt(rhs, expr.location);
      if (divisor == 0) {
        ThrowMj("ArithmeticException", "division by zero");
      }
      return Value{AsInt(lhs, expr.location) / divisor};
    }
    case BinaryOp::kMod: {
      int64_t divisor = AsInt(rhs, expr.location);
      if (divisor == 0) {
        ThrowMj("ArithmeticException", "modulo by zero");
      }
      return Value{AsInt(lhs, expr.location) % divisor};
    }
    case BinaryOp::kEq:
      return Value{ValueEquals(lhs, rhs)};
    case BinaryOp::kNe:
      return Value{!ValueEquals(lhs, rhs)};
    case BinaryOp::kLt:
      return Value{AsInt(lhs, expr.location) < AsInt(rhs, expr.location)};
    case BinaryOp::kLe:
      return Value{AsInt(lhs, expr.location) <= AsInt(rhs, expr.location)};
    case BinaryOp::kGt:
      return Value{AsInt(lhs, expr.location) > AsInt(rhs, expr.location)};
    case BinaryOp::kGe:
      return Value{AsInt(lhs, expr.location) >= AsInt(rhs, expr.location)};
    default:
      ThrowMj("IllegalStateException", "unsupported binary operator");
  }
}

Value Interpreter::Eval(const mj::Expr& expr) {
  switch (expr.kind) {
    case AstKind::kIntLiteral:
      return Value{static_cast<const mj::IntLiteralExpr&>(expr).value};
    case AstKind::kBoolLiteral:
      return Value{static_cast<const mj::BoolLiteralExpr&>(expr).value};
    case AstKind::kStringLiteral:
      return Value{static_cast<const mj::StringLiteralExpr&>(expr).value};
    case AstKind::kNullLiteral:
      return Value{};
    case AstKind::kThis: {
      ObjectRef self = frames_.empty() ? nullptr : CurrentFrame().self;
      if (self == nullptr) {
        ThrowMj("IllegalStateException", "'this' outside an instance method");
      }
      return Value{self};
    }
    case AstKind::kName: {
      const std::string& name = static_cast<const mj::NameExpr&>(expr).name;
      if (Value* local = FindVariable(name); local != nullptr) {
        return *local;
      }
      ThrowMj("IllegalStateException",
              "undefined variable '" + name + "' at line " + std::to_string(expr.location.line));
    }
    case AstKind::kFieldAccess: {
      const auto& access = static_cast<const mj::FieldAccessExpr&>(expr);
      Value base = Eval(*access.base);
      if (IsNull(base)) {
        ThrowMj("NullPointerException", "field access '" + access.field + "' on null at line " +
                                            std::to_string(expr.location.line));
      }
      if (!IsObject(base)) {
        ThrowMj("IllegalStateException",
                "field access on non-object " + ValueToString(base));
      }
      return ReadField(std::get<ObjectRef>(base), access.field, expr.location);
    }
    case AstKind::kCall:
      return EvalCall(static_cast<const mj::CallExpr&>(expr));
    case AstKind::kNew:
      return EvalNew(static_cast<const mj::NewExpr&>(expr));
    case AstKind::kUnary: {
      const auto& unary = static_cast<const mj::UnaryExpr&>(expr);
      Value operand = Eval(*unary.operand);
      if (unary.op == mj::UnaryOp::kNot) {
        return Value{!AsBool(operand, expr.location)};
      }
      return Value{-AsInt(operand, expr.location)};
    }
    case AstKind::kBinary:
      return EvalBinary(static_cast<const mj::BinaryExpr&>(expr));
    case AstKind::kInstanceOf: {
      const auto& iof = static_cast<const mj::InstanceOfExpr&>(expr);
      Value operand = Eval(*iof.operand);
      if (!IsObject(operand)) {
        return Value{false};
      }
      return Value{
          index_.IsSubtype(std::get<ObjectRef>(operand)->class_name(), iof.type_name)};
    }
    default:
      ThrowMj("IllegalStateException", "unsupported expression");
  }
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

Interpreter::Flow Interpreter::ExecBlock(const mj::BlockStmt& block) {
  CurrentFrame().scopes.emplace_back();
  struct PopScope {
    Frame* frame;
    ~PopScope() { frame->scopes.pop_back(); }
  } pop{&CurrentFrame()};
  for (const mj::Stmt* stmt : block.statements) {
    Flow flow = ExecStmt(*stmt);
    if (flow.kind != FlowKind::kNormal) {
      return flow;
    }
  }
  return Flow{};
}

Interpreter::Flow Interpreter::ExecStmt(const mj::Stmt& stmt) {
  Step();
  switch (stmt.kind) {
    case AstKind::kBlock:
      return ExecBlock(static_cast<const mj::BlockStmt&>(stmt));

    case AstKind::kVarDecl: {
      const auto& decl = static_cast<const mj::VarDeclStmt&>(stmt);
      DefineVariable(decl.name, Eval(*decl.init));
      return Flow{};
    }

    case AstKind::kAssign: {
      const auto& assign = static_cast<const mj::AssignStmt&>(stmt);
      auto combine = [&](const Value& old_value, const Value& new_value) -> Value {
        switch (assign.op) {
          case mj::AssignOp::kAssign:
            return new_value;
          case mj::AssignOp::kAddAssign:
            if (IsString(old_value) || IsString(new_value)) {
              return Value{ValueToString(old_value) + ValueToString(new_value)};
            }
            return Value{AsInt(old_value, stmt.location) + AsInt(new_value, stmt.location)};
          case mj::AssignOp::kSubAssign:
            return Value{AsInt(old_value, stmt.location) - AsInt(new_value, stmt.location)};
        }
        return new_value;
      };
      if (assign.target->kind == AstKind::kName) {
        const std::string& name = static_cast<const mj::NameExpr*>(assign.target)->name;
        Value* slot = FindVariable(name);
        if (slot == nullptr) {
          ThrowMj("IllegalStateException", "assignment to undefined variable '" + name +
                                               "' at line " + std::to_string(stmt.location.line));
        }
        Value rhs = Eval(*assign.value);
        *slot = combine(*slot, rhs);
        return Flow{};
      }
      const auto* access = static_cast<const mj::FieldAccessExpr*>(assign.target);
      Value base = Eval(*access->base);
      if (IsNull(base)) {
        ThrowMj("NullPointerException", "field assignment on null at line " +
                                            std::to_string(stmt.location.line));
      }
      if (!IsObject(base)) {
        ThrowMj("IllegalStateException", "field assignment on non-object");
      }
      ObjectRef object = std::get<ObjectRef>(base);
      Value rhs = Eval(*assign.value);
      if (assign.op == mj::AssignOp::kAssign) {
        WriteField(object, access->field, std::move(rhs));
      } else {
        Value old_value = ReadField(object, access->field, stmt.location);
        WriteField(object, access->field, combine(old_value, rhs));
      }
      return Flow{};
    }

    case AstKind::kExprStmt:
      Eval(*static_cast<const mj::ExprStmt&>(stmt).expr);
      return Flow{};

    case AstKind::kIf: {
      const auto& node = static_cast<const mj::IfStmt&>(stmt);
      if (AsBool(Eval(*node.condition), stmt.location)) {
        return ExecStmt(*node.then_branch);
      }
      if (node.else_branch != nullptr) {
        return ExecStmt(*node.else_branch);
      }
      return Flow{};
    }

    case AstKind::kWhile: {
      const auto& node = static_cast<const mj::WhileStmt&>(stmt);
      while (AsBool(Eval(*node.condition), stmt.location)) {
        Step();
        ++loop_iterations_;
        Flow flow = ExecStmt(*node.body);
        if (flow.kind == FlowKind::kBreak) {
          break;
        }
        if (flow.kind == FlowKind::kReturn) {
          return flow;
        }
        // kContinue and kNormal both loop.
      }
      return Flow{};
    }

    case AstKind::kFor: {
      const auto& node = static_cast<const mj::ForStmt&>(stmt);
      CurrentFrame().scopes.emplace_back();
      struct PopScope {
        Frame* frame;
        ~PopScope() { frame->scopes.pop_back(); }
      } pop{&CurrentFrame()};
      if (node.init != nullptr) {
        Flow flow = ExecStmt(*node.init);
        if (flow.kind != FlowKind::kNormal) {
          return flow;
        }
      }
      while (node.condition == nullptr || AsBool(Eval(*node.condition), stmt.location)) {
        Step();
        ++loop_iterations_;
        Flow flow = ExecStmt(*node.body);
        if (flow.kind == FlowKind::kBreak) {
          break;
        }
        if (flow.kind == FlowKind::kReturn) {
          return flow;
        }
        if (node.update != nullptr) {
          Flow update_flow = ExecStmt(*node.update);
          if (update_flow.kind != FlowKind::kNormal) {
            return update_flow;
          }
        }
      }
      return Flow{};
    }

    case AstKind::kSwitch: {
      const auto& node = static_cast<const mj::SwitchStmt&>(stmt);
      Value subject = Eval(*node.subject);
      // Find the matching case (or default), then execute with fallthrough.
      size_t start = node.cases.size();
      size_t default_index = node.cases.size();
      for (size_t i = 0; i < node.cases.size() && start == node.cases.size(); ++i) {
        if (node.cases[i].labels.empty()) {
          default_index = i;
          continue;
        }
        for (const mj::Expr* label : node.cases[i].labels) {
          if (ValueEquals(subject, Eval(*label))) {
            start = i;
            break;
          }
        }
      }
      if (start == node.cases.size()) {
        start = default_index;
      }
      for (size_t i = start; i < node.cases.size(); ++i) {
        for (const mj::Stmt* child : node.cases[i].body) {
          Flow flow = ExecStmt(*child);
          if (flow.kind == FlowKind::kBreak) {
            return Flow{};  // Break exits the switch.
          }
          if (flow.kind != FlowKind::kNormal) {
            return flow;  // Return/continue propagate.
          }
        }
      }
      return Flow{};
    }

    case AstKind::kTry: {
      const auto& node = static_cast<const mj::TryStmt&>(stmt);
      Flow flow;
      bool pending_throw = false;
      ObjectRef exception;
      try {
        flow = ExecBlock(*node.body);
      } catch (ThrownException& thrown) {
        pending_throw = true;
        exception = thrown.exception;
      }
      if (pending_throw) {
        for (const mj::CatchClause& clause : node.catches) {
          if (!index_.IsSubtype(exception->class_name(), clause.exception_type)) {
            continue;
          }
          pending_throw = false;
          CurrentFrame().scopes.emplace_back();
          struct PopScope {
            Frame* frame;
            ~PopScope() { frame->scopes.pop_back(); }
          } pop{&CurrentFrame()};
          DefineVariable(clause.variable, Value{exception});
          try {
            flow = ExecBlock(*clause.body);
          } catch (ThrownException& rethrown) {
            pending_throw = true;
            exception = rethrown.exception;
          }
          break;
        }
      }
      if (node.finally != nullptr) {
        Flow finally_flow = ExecBlock(*node.finally);  // May itself throw.
        if (finally_flow.kind != FlowKind::kNormal) {
          return finally_flow;  // Finally control flow wins (Java semantics).
        }
      }
      if (pending_throw) {
        throw ThrownException{exception};
      }
      return flow;
    }

    case AstKind::kThrow: {
      const auto& node = static_cast<const mj::ThrowStmt&>(stmt);
      Value value = Eval(*node.value);
      if (!IsObject(value)) {
        ThrowMj("IllegalStateException", "throw of non-object value at line " +
                                             std::to_string(stmt.location.line));
      }
      throw ThrownException{std::get<ObjectRef>(value)};
    }

    case AstKind::kReturn: {
      const auto& node = static_cast<const mj::ReturnStmt&>(stmt);
      Flow flow;
      flow.kind = FlowKind::kReturn;
      if (node.value != nullptr) {
        flow.value = Eval(*node.value);
      }
      return flow;
    }

    case AstKind::kBreak:
      return Flow{FlowKind::kBreak, {}};
    case AstKind::kContinue:
      return Flow{FlowKind::kContinue, {}};

    default:
      ThrowMj("IllegalStateException", "unsupported statement");
  }
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

Value Interpreter::Invoke(const std::string& qualified_name, std::vector<Value> args) {
  const mj::MethodDecl* method = index_.FindQualified(qualified_name);
  if (method == nullptr) {
    ThrowMj("IllegalStateException", "no such method: " + qualified_name);
  }
  ObjectRef self = method->owner != nullptr ? SingletonOf(*method->owner) : nullptr;
  return CallMethod(*method, std::move(self), std::move(args), nullptr);
}

}  // namespace wasabi
