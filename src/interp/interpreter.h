// Tree-walking interpreter for mj programs.
//
// This is the substrate that replaces "run the Java application under Maven +
// AspectJ" in the original WASABI: corpus applications and their unit tests
// execute in-process, with
//   * a virtual clock (Thread.sleep costs no wall time but advances virtual
//     time, so the paper's 15-minute test timeout is a virtual-time budget);
//   * AspectJ-style pointcuts: registered CallInterceptors run before every
//     user-method call and may throw an mj exception — exactly the Listing-5
//     fault-injection handler;
//   * an execution log capturing sleeps (with call stacks), injections, and
//     application log lines for the log-based test oracles;
//   * a step budget so buggy infinite retry loops terminate deterministically.
//
// mj exceptions propagate as the C++ exception ThrownException and are caught
// by mj `try` statements; an uncaught one escapes Invoke() to the caller.

#ifndef WASABI_SRC_INTERP_INTERPRETER_H_
#define WASABI_SRC_INTERP_INTERPRETER_H_

#include <cstdint>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/interp/exec_log.h"
#include "src/interp/value.h"
#include "src/lang/ast.h"
#include "src/lang/sema.h"

namespace wasabi {

namespace vm {
struct Chunk;
struct CompiledProgram;
class VmExecutor;
}  // namespace vm

// An mj-level exception crossing C++ frames.
struct ThrownException {
  ObjectRef exception;
};

// Abnormal termination of the whole execution (not catchable by mj code).
enum class AbortReason : uint8_t {
  kStepBudget,         // Too many interpreter steps (runaway loop without sleeps).
  kVirtualTimeBudget,  // Virtual clock passed the per-test budget ("timeout").
  kStackOverflow,      // Call depth exceeded.
};

struct ExecutionAborted {
  AbortReason reason;
};

const char* AbortReasonName(AbortReason reason);

// Event passed to interceptors before a user-method call executes. The name
// views are backed by resolver-owned storage (MethodDecl::qualified_cache /
// FieldLayout::init_frame_name), which outlives every run of the program.
struct CallEvent {
  std::string_view caller;  // Qualified name of the invoking method ("" at top level).
  std::string_view callee;  // Qualified name of the resolved target.
  const mj::CallExpr* site = nullptr;
  // Unique id of the caller's activation (frame). Two calls share it iff they
  // happen within the SAME invocation of the caller — the context signal the
  // §4.5 context-aware cap oracle needs to tell "100 retries of one task"
  // apart from "2 retries each of 50 tasks".
  int64_t caller_activation = 0;
};

class Interpreter;

// AspectJ-pointcut analog (§3.1.2): runs right before a callee executes and
// may throw ThrownException to simulate a fault.
class CallInterceptor {
 public:
  virtual ~CallInterceptor() = default;
  virtual void OnCall(const CallEvent& event, Interpreter& interp) = 0;
};

// Observes monomorphic dispatch-cache resolutions (docs/FLAKINESS.md). The
// observer fires on every cached-dispatch USE, not only on installs: installs
// depend on arena warmth (a reused interpreter may already hold the entry from
// an earlier run), while uses are a pure function of the run itself — which is
// what single-run record/replay needs. `method` is empty for a negative entry
// (receiver class resolves no user method; builtins handle the call).
class DispatchObserver {
 public:
  virtual ~DispatchObserver() = default;
  virtual void OnDispatch(uint32_t site_index, std::string_view cls,
                          std::string_view method) = 0;
};

// Observes while/for back-edges with the enclosing method's qualified name
// and the virtual clock. The retry journal uses it to count coordinator
// retry-loop iterations per attempt; like DispatchObserver, null (the
// default) keeps the loop hot path down to one pointer test.
class LoopObserver {
 public:
  virtual ~LoopObserver() = default;
  virtual void OnLoopIteration(std::string_view method, int64_t virtual_ms) = 0;
};

// Which engine executes method bodies (docs/PERFORMANCE.md "Bytecode VM").
// Both are byte-identical in every observable: verdicts, logs, step counts,
// error wording, abort kinds. The VM exists purely for throughput.
enum class EngineKind : uint8_t {
  kVm,    // Flat bytecode, threaded dispatch, superinstructions (src/vm).
  kTree,  // The original AST-walking evaluator; the reference semantics.
};

struct InterpOptions {
  int64_t step_budget = 2'000'000;
  int64_t virtual_time_budget_ms = 15LL * 60 * 1000;  // The paper's 15 minutes.
  int max_call_depth = 200;
  EngineKind engine = EngineKind::kVm;

  bool operator==(const InterpOptions&) const = default;
};

class Interpreter {
 public:
  Interpreter(const mj::Program& program, const mj::ProgramIndex& index,
              InterpOptions options = {});

  // --- Configuration (the application's Config.* builtin) -----------------
  void SetConfig(const std::string& key, Value value);
  // Makes mj-level `Config.set(key, ...)` a no-op for this key; used by the
  // test-preparation pass that restores default retry configurations (§3.1.4).
  void FreezeConfig(const std::string& key);

  // --- Instrumentation ------------------------------------------------------
  void AddInterceptor(CallInterceptor* interceptor);  // Non-owning.
  // Non-owning; cleared by ResetForRun. Null (the default) keeps the dispatch
  // hot path free of virtual calls.
  void set_dispatch_observer(DispatchObserver* observer) { dispatch_observer_ = observer; }
  // Non-owning; cleared by ResetForRun. Same null-by-default discipline.
  void set_loop_observer(LoopObserver* observer) { loop_observer_ = observer; }

  // --- Run perturbation ------------------------------------------------------
  // Starts the virtual clock at `epoch_ms` instead of 0. The time BUDGET stays
  // epoch-relative (a skewed run gets the full 15 virtual minutes), but
  // Clock.nowMillis() observes the absolute skewed clock — which is exactly how
  // the flakiness prober perturbs timing-dependent applications
  // (docs/FLAKINESS.md). Call after ResetForRun, before Invoke.
  void set_run_epoch_ms(int64_t epoch_ms) {
    run_epoch_ms_ = epoch_ms;
    virtual_time_ms_ = epoch_ms;
  }
  int64_t run_epoch_ms() const { return run_epoch_ms_; }

  // --- Execution -----------------------------------------------------------
  // Invokes "Class.method" on the class's singleton instance. Throws
  // ThrownException (uncaught mj exception) or ExecutionAborted.
  Value Invoke(const std::string& qualified_name, std::vector<Value> args = {});

  // Creates an instance of `class_name` (user class, builtin exception, or
  // container), running field initializers / the `init` convention method.
  Value Instantiate(const std::string& class_name, std::vector<Value> args = {});

  // Builds an exception object by type name; used by the fault injector.
  ObjectRef MakeException(const std::string& class_name, const std::string& message);

  // --- Observation -----------------------------------------------------------
  ExecutionLog& log() { return log_; }
  const ExecutionLog& log() const { return log_; }
  int64_t now_ms() const { return virtual_time_ms_; }
  int64_t steps() const { return steps_; }
  // while/for iterations executed; retry loops dominate this in injected
  // runs, so per-run telemetry exposes it (docs/OBSERVABILITY.md).
  int64_t loop_iterations() const { return loop_iterations_; }
  std::vector<std::string> CaptureStack() const;
  const mj::ProgramIndex& index() const { return index_; }

  // --- Run reuse -------------------------------------------------------------
  // Restores the observable state of a freshly-constructed interpreter while
  // keeping warm storage: pooled frames retain their slot-vector capacity and
  // the dispatch cache survives (it is a pure function of the immutable
  // program). Used by InterpreterArena for per-worker run reuse
  // (docs/PERFORMANCE.md).
  void ResetForRun();

 private:
  // The bytecode executor is an alternative body-execution strategy, not a
  // separate machine: it runs against this class's frames, budgets, caches,
  // and log, so it needs the same access ExecBlock has.
  friend class vm::VmExecutor;

  // A flat activation record: one slot per local declaration of the method
  // (the resolution pass assigned the indices), plus parallel defined-flags
  // that replicate "is this name in a scope map right now".
  struct Frame {
    const mj::MethodDecl* method = nullptr;
    const std::string* qualified_name = nullptr;  // Resolver-owned storage.
    ObjectRef self;
    std::vector<Value> slots;
    std::vector<uint8_t> defined;
    int64_t activation = 0;  // Unique per frame push.
  };

  // Per-call-site monomorphic dispatch cache entry. `method == nullptr` with
  // a non-null `cls` is a negative entry: this receiver class resolves no
  // user method here, fall through to builtins.
  struct DispatchEntry {
    const mj::ClassDecl* cls = nullptr;
    const mj::MethodDecl* method = nullptr;
  };

  // Statement execution outcome.
  enum class FlowKind : uint8_t { kNormal, kReturn, kBreak, kContinue };
  struct Flow {
    FlowKind kind = FlowKind::kNormal;
    Value value;  // Return value for kReturn.
  };

  // --- Statement/expression evaluation ---------------------------------------
  Flow ExecBlock(const mj::BlockStmt& block);
  Flow ExecStmt(const mj::Stmt& stmt);
  Value Eval(const mj::Expr& expr);

  Value EvalCall(const mj::CallExpr& call);
  Value EvalBinary(const mj::BinaryExpr& expr);
  // Evaluates one operand of a non-short-circuit binary expression. Returns
  // true with *out set when it produced an int; otherwise stores the full
  // value in *boxed and returns false. The operand is FULLY evaluated either
  // way (same side effects and errors as Eval), so EvalBinary can evaluate
  // both operands before any type check runs — preserving the boxed path's
  // error ordering exactly while skipping variant round-trips on the int path.
  bool EvalIntOperand(const mj::Expr& expr, int64_t* out, Value* boxed);
  // Core of EvalBinary: true with *out set for an all-int arithmetic result,
  // false with *boxed set for everything else (bools, strings, mixed). Nested
  // int subtrees chain through EvalIntOperand's kBinary case without ever
  // materializing intermediate Values.
  bool EvalBinaryFast(const mj::BinaryExpr& expr, int64_t* out, Value* boxed);
  // Condition evaluation for if/while/for and `&&`/`||` operands: same result
  // and errors as AsBool(Eval(expr), location) minus the Value round-trip for
  // the dominant comparison-expression shape.
  bool EvalBool(const mj::Expr& expr, mj::SourceLocation location);
  Value EvalNew(const mj::NewExpr& expr);
  // The boxed tail of EvalBinaryFast for operands that already exist as
  // Values: string `+`, mixed-type coercions (errors at `location`), and
  // ValueEquals for ==/!=. The VM's superinstruction slow paths land here
  // after evaluating operands natively; kAnd/kOr never reach it (the compiler
  // lowers them to jump chains).
  Value ApplyBinary(mj::BinaryOp op, const Value& lhs, const Value& rhs,
                    mj::SourceLocation location);
  // `args` is consumed (elements moved into the callee frame). By-reference so
  // EvalCall/EvalNew can pass pooled buffers instead of a fresh heap
  // allocation per call.
  Value CallMethod(const mj::MethodDecl& method, ObjectRef self, std::vector<Value>& args,
                   const mj::CallExpr* site);

  // Builtin dispatch. Returns true when handled.
  bool TryBuiltinStatic(const std::string& receiver, const mj::CallExpr& call, Value* result);
  bool TryBuiltinMethod(const ObjectRef& object, const mj::CallExpr& call,
                        std::vector<Value>& args, Value* result);
  bool TryStringMethod(const std::string& text, const mj::CallExpr& call,
                       std::vector<Value>& args, Value* result);

  // --- Variables and fields ---------------------------------------------------
  Frame& CurrentFrame() { return frames_[frame_depth_ - 1]; }
  // Frame management with high-water pooling: frames_[0, frame_depth_) are
  // live; popped frames keep their vector capacity for the next push.
  Frame& PushFrame(const mj::MethodDecl* method, const std::string* qualified_name,
                   ObjectRef self, uint32_t slot_count);
  void PopFrame();
  // Resolver-annotated name lookup: primary slot if its declaration executed,
  // else the outer fallback candidates, else null (== "undefined variable").
  // Inline: this sits on every name read/write in the interpreter loop.
  Value* LookupName(const mj::NameExpr& name) {
    if (frame_depth_ == 0 || name.slot == mj::kNoSlot) {
      return nullptr;
    }
    Frame& frame = frames_[frame_depth_ - 1];
    const auto slot = static_cast<size_t>(name.slot);
    if (slot >= frame.defined.size()) {
      return nullptr;  // Foreign frame (e.g. a field-init <init> frame).
    }
    if (frame.defined[slot]) {
      return &frame.slots[slot];
    }
    if (name.fallback_chain != mj::kNoNameChain) {
      for (mj::SlotIndex candidate : index_.name_chain(name.fallback_chain)) {
        const auto candidate_slot = static_cast<size_t>(candidate);
        if (frame.defined[candidate_slot]) {
          return &frame.slots[candidate_slot];
        }
      }
    }
    return nullptr;
  }
  // Invalidates a subtree's declarations on scope (re-)entry. Inline: runs on
  // every block entry, and most blocks declare nothing (count == 0).
  void ClearSlotRange(Frame& frame, uint32_t base, uint32_t count) {
    if (count > 0) {
      std::memset(frame.defined.data() + base, 0, count);
    }
  }
  Value ReadField(const ObjectRef& object, const std::string& field, mj::SymbolId symbol,
                  mj::SourceLocation location);
  void WriteField(const ObjectRef& object, const std::string& field, mj::SymbolId symbol,
                  Value value);

  // --- Helpers -----------------------------------------------------------------
  ObjectRef SingletonOf(const mj::ClassDecl& cls);
  ObjectRef NewInstance(const mj::ClassDecl& cls);
  void Sleep(int64_t millis);
  // Hot per-statement/per-iteration accounting — kept inline (with the throw
  // marked unlikely) so the check is a single increment-and-compare at every
  // call site instead of an out-of-line call.
  void Step() {
    if (++steps_ > options_.step_budget) [[unlikely]] {
      throw ExecutionAborted{AbortReason::kStepBudget};
    }
  }
  [[noreturn]] void ThrowMj(const std::string& class_name, const std::string& message);
  // AsBool/AsInt succeed on the expected alternative and otherwise delegate to
  // the out-of-line ThrowTypeError; splitting off the cold string-building
  // keeps the checks small enough to inline into Eval/EvalBinary.
  bool AsBool(const Value& value, mj::SourceLocation location);
  int64_t AsInt(const Value& value, mj::SourceLocation location);
  [[noreturn]] void ThrowTypeError(const char* expected, const Value& value,
                                   mj::SourceLocation location);

  const mj::Program& program_;
  const mj::ProgramIndex& index_;
  InterpOptions options_;

  // A deque so references to a frame stay valid while nested calls push and
  // pop frames. Frames above frame_depth_ are pooled storage kept warm for
  // reuse, not live activations.
  std::deque<Frame> frames_;
  size_t frame_depth_ = 0;
  // Pooled argument buffers, indexed by call-expression nesting depth (an
  // argument expression may itself contain calls). Saves the heap allocation
  // a fresh vector per call would cost; capacity stays warm across calls and
  // runs. A deque so held references survive deeper acquisitions.
  std::deque<std::vector<Value>> arg_buffers_;
  size_t arg_buffer_depth_ = 0;
  std::vector<DispatchEntry> dispatch_cache_;  // Indexed by CallExpr::site_index.
  // Bytecode for every method body (null when engine == kTree). Compiled once
  // at construction — a pure function of the immutable shared program, like
  // the dispatch cache — so it survives ResetForRun and arena reuse.
  std::shared_ptr<const vm::CompiledProgram> compiled_;
  // Pooled VM operand stacks, indexed by VM invocation depth (a callee's VM
  // run nests inside its caller's). Same warm-capacity discipline as
  // arg_buffers_; a deque so held references survive deeper acquisitions.
  std::deque<std::vector<Value>> vm_stacks_;
  size_t vm_stack_depth_ = 0;
  std::unordered_map<const mj::ClassDecl*, ObjectRef> singletons_;
  std::unordered_map<std::string, Value> config_;
  std::unordered_set<std::string> frozen_config_keys_;
  std::vector<CallInterceptor*> interceptors_;
  // Out-of-line cold path: called only when loop_observer_ is set.
  void NotifyLoopIteration();

  DispatchObserver* dispatch_observer_ = nullptr;
  LoopObserver* loop_observer_ = nullptr;
  ExecutionLog log_;
  int64_t virtual_time_ms_ = 0;
  int64_t run_epoch_ms_ = 0;
  int64_t steps_ = 0;
  int64_t loop_iterations_ = 0;
  int64_t next_activation_ = 1;
};

}  // namespace wasabi

#endif  // WASABI_SRC_INTERP_INTERPRETER_H_
