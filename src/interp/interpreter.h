// Tree-walking interpreter for mj programs.
//
// This is the substrate that replaces "run the Java application under Maven +
// AspectJ" in the original WASABI: corpus applications and their unit tests
// execute in-process, with
//   * a virtual clock (Thread.sleep costs no wall time but advances virtual
//     time, so the paper's 15-minute test timeout is a virtual-time budget);
//   * AspectJ-style pointcuts: registered CallInterceptors run before every
//     user-method call and may throw an mj exception — exactly the Listing-5
//     fault-injection handler;
//   * an execution log capturing sleeps (with call stacks), injections, and
//     application log lines for the log-based test oracles;
//   * a step budget so buggy infinite retry loops terminate deterministically.
//
// mj exceptions propagate as the C++ exception ThrownException and are caught
// by mj `try` statements; an uncaught one escapes Invoke() to the caller.

#ifndef WASABI_SRC_INTERP_INTERPRETER_H_
#define WASABI_SRC_INTERP_INTERPRETER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/interp/exec_log.h"
#include "src/interp/value.h"
#include "src/lang/ast.h"
#include "src/lang/sema.h"

namespace wasabi {

// An mj-level exception crossing C++ frames.
struct ThrownException {
  ObjectRef exception;
};

// Abnormal termination of the whole execution (not catchable by mj code).
enum class AbortReason : uint8_t {
  kStepBudget,         // Too many interpreter steps (runaway loop without sleeps).
  kVirtualTimeBudget,  // Virtual clock passed the per-test budget ("timeout").
  kStackOverflow,      // Call depth exceeded.
};

struct ExecutionAborted {
  AbortReason reason;
};

const char* AbortReasonName(AbortReason reason);

// Event passed to interceptors before a user-method call executes.
struct CallEvent {
  std::string caller;     // Qualified name of the invoking method ("" at top level).
  std::string callee;     // Qualified name of the resolved target.
  const mj::CallExpr* site = nullptr;
  // Unique id of the caller's activation (frame). Two calls share it iff they
  // happen within the SAME invocation of the caller — the context signal the
  // §4.5 context-aware cap oracle needs to tell "100 retries of one task"
  // apart from "2 retries each of 50 tasks".
  int64_t caller_activation = 0;
};

class Interpreter;

// AspectJ-pointcut analog (§3.1.2): runs right before a callee executes and
// may throw ThrownException to simulate a fault.
class CallInterceptor {
 public:
  virtual ~CallInterceptor() = default;
  virtual void OnCall(const CallEvent& event, Interpreter& interp) = 0;
};

struct InterpOptions {
  int64_t step_budget = 2'000'000;
  int64_t virtual_time_budget_ms = 15LL * 60 * 1000;  // The paper's 15 minutes.
  int max_call_depth = 200;
};

class Interpreter {
 public:
  Interpreter(const mj::Program& program, const mj::ProgramIndex& index,
              InterpOptions options = {});

  // --- Configuration (the application's Config.* builtin) -----------------
  void SetConfig(const std::string& key, Value value);
  // Makes mj-level `Config.set(key, ...)` a no-op for this key; used by the
  // test-preparation pass that restores default retry configurations (§3.1.4).
  void FreezeConfig(const std::string& key);

  // --- Instrumentation ------------------------------------------------------
  void AddInterceptor(CallInterceptor* interceptor);  // Non-owning.

  // --- Execution -----------------------------------------------------------
  // Invokes "Class.method" on the class's singleton instance. Throws
  // ThrownException (uncaught mj exception) or ExecutionAborted.
  Value Invoke(const std::string& qualified_name, std::vector<Value> args = {});

  // Creates an instance of `class_name` (user class, builtin exception, or
  // container), running field initializers / the `init` convention method.
  Value Instantiate(const std::string& class_name, std::vector<Value> args = {});

  // Builds an exception object by type name; used by the fault injector.
  ObjectRef MakeException(const std::string& class_name, const std::string& message);

  // --- Observation -----------------------------------------------------------
  ExecutionLog& log() { return log_; }
  const ExecutionLog& log() const { return log_; }
  int64_t now_ms() const { return virtual_time_ms_; }
  int64_t steps() const { return steps_; }
  // while/for iterations executed; retry loops dominate this in injected
  // runs, so per-run telemetry exposes it (docs/OBSERVABILITY.md).
  int64_t loop_iterations() const { return loop_iterations_; }
  std::vector<std::string> CaptureStack() const;
  const mj::ProgramIndex& index() const { return index_; }

 private:
  struct Frame {
    const mj::MethodDecl* method = nullptr;
    std::string qualified_name;
    ObjectRef self;
    std::vector<std::unordered_map<std::string, Value>> scopes;
    int64_t activation = 0;  // Unique per frame push.
  };

  // Statement execution outcome.
  enum class FlowKind : uint8_t { kNormal, kReturn, kBreak, kContinue };
  struct Flow {
    FlowKind kind = FlowKind::kNormal;
    Value value;  // Return value for kReturn.
  };

  // --- Statement/expression evaluation ---------------------------------------
  Flow ExecBlock(const mj::BlockStmt& block);
  Flow ExecStmt(const mj::Stmt& stmt);
  Value Eval(const mj::Expr& expr);

  Value EvalCall(const mj::CallExpr& call);
  Value EvalBinary(const mj::BinaryExpr& expr);
  Value EvalNew(const mj::NewExpr& expr);
  Value CallMethod(const mj::MethodDecl& method, ObjectRef self, std::vector<Value> args,
                   const mj::CallExpr* site);

  // Builtin dispatch. Returns true when handled.
  bool TryBuiltinStatic(const std::string& receiver, const mj::CallExpr& call, Value* result);
  bool TryBuiltinMethod(const ObjectRef& object, const mj::CallExpr& call,
                        std::vector<Value>& args, Value* result);
  bool TryStringMethod(const std::string& text, const mj::CallExpr& call,
                       std::vector<Value>& args, Value* result);

  // --- Variables and fields ---------------------------------------------------
  Frame& CurrentFrame();
  Value* FindVariable(const std::string& name);
  void DefineVariable(const std::string& name, Value value);
  Value ReadField(const ObjectRef& object, const std::string& field,
                  mj::SourceLocation location);
  void WriteField(const ObjectRef& object, const std::string& field, Value value);

  // --- Helpers -----------------------------------------------------------------
  ObjectRef SingletonOf(const mj::ClassDecl& cls);
  ObjectRef NewInstance(const mj::ClassDecl& cls);
  void Sleep(int64_t millis);
  void Step();
  [[noreturn]] void ThrowMj(const std::string& class_name, const std::string& message);
  bool AsBool(const Value& value, mj::SourceLocation location);
  int64_t AsInt(const Value& value, mj::SourceLocation location);

  const mj::Program& program_;
  const mj::ProgramIndex& index_;
  InterpOptions options_;

  // A deque so references to a frame stay valid while nested calls push and
  // pop frames (the RAII scope guards hold Frame pointers).
  std::deque<Frame> frames_;
  std::unordered_map<const mj::ClassDecl*, ObjectRef> singletons_;
  std::unordered_map<std::string, Value> config_;
  std::unordered_set<std::string> frozen_config_keys_;
  std::vector<CallInterceptor*> interceptors_;
  ExecutionLog log_;
  int64_t virtual_time_ms_ = 0;
  int64_t steps_ = 0;
  int64_t loop_iterations_ = 0;
  int64_t next_activation_ = 1;
};

}  // namespace wasabi

#endif  // WASABI_SRC_INTERP_INTERPRETER_H_
