#include "src/interp/value.h"

#include <sstream>

namespace wasabi {

bool ValueEquals(const Value& a, const Value& b) {
  if (IsNull(a) && IsNull(b)) {
    return true;
  }
  if (IsInt(a) && IsInt(b)) {
    return std::get<int64_t>(a) == std::get<int64_t>(b);
  }
  if (IsBool(a) && IsBool(b)) {
    return std::get<bool>(a) == std::get<bool>(b);
  }
  if (IsString(a) && IsString(b)) {
    return std::get<std::string>(a) == std::get<std::string>(b);
  }
  if (IsObject(a) && IsObject(b)) {
    return std::get<ObjectRef>(a) == std::get<ObjectRef>(b);  // Reference equality.
  }
  return false;
}

std::string ValueToString(const Value& value) {
  if (IsNull(value)) {
    return "null";
  }
  if (IsInt(value)) {
    return std::to_string(std::get<int64_t>(value));
  }
  if (IsBool(value)) {
    return std::get<bool>(value) ? "true" : "false";
  }
  if (IsString(value)) {
    return std::get<std::string>(value);
  }
  const ObjectRef& object = std::get<ObjectRef>(value);
  std::ostringstream out;
  out << object->class_name();
  switch (object->kind()) {
    case ObjectKind::kQueue:
    case ObjectKind::kList:
      out << "(size=" << object->elements().size() << ")";
      break;
    case ObjectKind::kMap:
      out << "(size=" << object->entries().size() << ")";
      break;
    case ObjectKind::kException:
    case ObjectKind::kInstance:
      if (!object->message().empty()) {
        out << "(\"" << object->message() << "\")";
      }
      break;
  }
  return out.str();
}

std::string MapKeyFor(const Value& value, bool* ok) {
  *ok = true;
  if (IsInt(value)) {
    return "i:" + std::to_string(std::get<int64_t>(value));
  }
  if (IsString(value)) {
    return "s:" + std::get<std::string>(value);
  }
  if (IsBool(value)) {
    return std::get<bool>(value) ? "b:true" : "b:false";
  }
  *ok = false;
  return "";
}

}  // namespace wasabi
