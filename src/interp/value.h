// Runtime values for the mj interpreter.
//
// mj is dynamically typed at run time: a Value is null, an integer, a bool, a
// string, or a reference to a heap Object. Objects serve for user class
// instances, builtin containers (Queue/List/Map), and exception instances
// (builtin or user-declared). Heap objects are shared_ptr-managed — reference
// semantics like Java, RAII like C++ (CppCoreGuidelines R.20).

#ifndef WASABI_SRC_INTERP_VALUE_H_
#define WASABI_SRC_INTERP_VALUE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "src/lang/ast.h"
#include "src/lang/resolve.h"

namespace wasabi {

class Object;
using ObjectRef = std::shared_ptr<Object>;

using Value = std::variant<std::monostate, int64_t, bool, std::string, ObjectRef>;

inline bool IsNull(const Value& value) {
  return std::holds_alternative<std::monostate>(value);
}
inline bool IsInt(const Value& value) { return std::holds_alternative<int64_t>(value); }
inline bool IsBool(const Value& value) { return std::holds_alternative<bool>(value); }
inline bool IsString(const Value& value) { return std::holds_alternative<std::string>(value); }
inline bool IsObject(const Value& value) { return std::holds_alternative<ObjectRef>(value); }

// What kind of heap object this is. User instances and exceptions use the
// field storage; builtin containers use their native payloads.
enum class ObjectKind : uint8_t {
  kInstance,   // User class instance (may also be an exception instance).
  kException,  // Builtin exception instance (no user ClassDecl).
  kQueue,      // FIFO of Values.
  kList,       // Indexable sequence of Values.
  kMap,        // String-keyed map of Values.
};

class Object {
 public:
  Object(ObjectKind kind, std::string class_name)
      : kind_(kind), class_name_(std::move(class_name)) {}

  ObjectKind kind() const { return kind_; }
  const std::string& class_name() const { return class_name_; }

  // Declared-field storage. Instances created from a user class bind their
  // class's FieldLayout once and store declared fields in a flat vector,
  // indexed by the layout's slots; everything else (ad-hoc WriteField names,
  // builtin exception payloads) lands in the extra-fields overflow map.
  void BindLayout(const mj::FieldLayout* layout) {
    layout_ = layout;
    field_slots_.resize(layout->field_count);
  }
  const mj::FieldLayout* layout() const { return layout_; }
  Value& field_slot(uint32_t slot) { return field_slots_[slot]; }
  const Value& field_slot(uint32_t slot) const { return field_slots_[slot]; }
  std::unordered_map<std::string, Value>& extra_fields() { return extra_fields_; }
  const std::unordered_map<std::string, Value>& extra_fields() const { return extra_fields_; }

  // Container payloads.
  std::deque<Value>& elements() { return elements_; }
  const std::deque<Value>& elements() const { return elements_; }
  std::map<std::string, Value>& entries() { return entries_; }
  const std::map<std::string, Value>& entries() const { return entries_; }

  // Exception payload (meaningful when the object is thrown).
  const std::string& message() const { return message_; }
  void set_message(std::string message) { message_ = std::move(message); }
  const ObjectRef& cause() const { return cause_; }
  void set_cause(ObjectRef cause) { cause_ = std::move(cause); }

  // The user declaration backing this object, if any.
  const mj::ClassDecl* decl() const { return decl_; }
  void set_decl(const mj::ClassDecl* decl) { decl_ = decl; }

  // Call stack at construction time (outermost first). Exceptions carry this
  // as their "crash stack"; the different-exception oracle groups duplicate
  // failures by it (§4.1).
  const std::vector<std::string>& origin_stack() const { return origin_stack_; }
  void set_origin_stack(std::vector<std::string> stack) { origin_stack_ = std::move(stack); }

 private:
  ObjectKind kind_;
  std::string class_name_;
  const mj::FieldLayout* layout_ = nullptr;
  std::vector<Value> field_slots_;
  std::unordered_map<std::string, Value> extra_fields_;
  std::deque<Value> elements_;
  std::map<std::string, Value> entries_;
  std::string message_;
  ObjectRef cause_;
  const mj::ClassDecl* decl_ = nullptr;
  std::vector<std::string> origin_stack_;
};

// Java-ish truthiness: only booleans are conditions; anything else is a type
// error handled by the interpreter. Exposed for tests.
bool ValueEquals(const Value& a, const Value& b);

// Debug/log rendering: 42, true, "text", null, ClassName@kind.
std::string ValueToString(const Value& value);

// Renders a map key for Map payloads (ints and strings only).
std::string MapKeyFor(const Value& value, bool* ok);

}  // namespace wasabi

#endif  // WASABI_SRC_INTERP_VALUE_H_
