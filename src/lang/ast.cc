#include "src/lang/ast.h"

namespace mj {

std::string MethodDecl::QualifiedName() const {
  if (!qualified_cache.empty()) {
    return qualified_cache;
  }
  if (owner == nullptr) {
    return name;
  }
  return owner->name + "." + name;
}

}  // namespace mj
