// Abstract syntax tree for mj, the Java-like substrate language.
//
// Ownership: every node is allocated in and owned by its CompilationUnit's
// arena (CppCoreGuidelines R.1/R.5: RAII, no naked new for callers). All
// cross-node references are non-owning raw pointers into the same arena, and
// every node has a unit-unique NodeId so analyses can attach side tables.

#ifndef WASABI_SRC_LANG_AST_H_
#define WASABI_SRC_LANG_AST_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/lang/source.h"
#include "src/lang/symtab.h"
#include "src/lang/token.h"

namespace mj {

struct ClassDecl;
struct MethodDecl;

using NodeId = uint32_t;
inline constexpr NodeId kInvalidNodeId = 0xFFFFFFFF;

// ---------------------------------------------------------------------------
// Resolution annotations
// ---------------------------------------------------------------------------
// Filled in place by the one-time resolution pass (src/lang/resolve.h) that
// ProgramIndex runs at construction. Default values mean "unresolved" and
// route the interpreter to its dynamic slow path; resolved values let it use
// flat slot-indexed frames and cached dispatch (docs/PERFORMANCE.md).

// Index of a local variable in its method's flat frame. Slots are unique per
// method (no reuse across sibling scopes): reuse would let a stale
// defined-flag from a dead sibling declaration resurrect a variable that the
// scope-map semantics would report as undefined.
using SlotIndex = int32_t;
inline constexpr SlotIndex kNoSlot = -1;

// Index into the resolution result's fallback name chains (outer same-named
// declarations a NameExpr may legally see when the innermost one has not
// executed yet).
inline constexpr uint32_t kNoNameChain = 0xFFFFFFFF;

// Dense per-program call-site index; keys the interpreter's dispatch cache.
inline constexpr uint32_t kNoCallSite = 0xFFFFFFFF;

// What `new ClassName(...)` will produce, decided once at resolution time.
enum class NewKind : uint8_t {
  kUnresolved,
  kQueue,
  kList,
  kMap,
  kUserClass,
  kBuiltinException,
  kUnknownClass,
};

enum class AstKind : uint8_t {
  // Expressions.
  kIntLiteral,
  kBoolLiteral,
  kStringLiteral,
  kNullLiteral,
  kName,
  kThis,
  kFieldAccess,
  kCall,
  kNew,
  kUnary,
  kBinary,
  kInstanceOf,
  // Statements.
  kBlock,
  kVarDecl,
  kAssign,
  kExprStmt,
  kIf,
  kWhile,
  kFor,
  kSwitch,
  kTry,
  kThrow,
  kReturn,
  kBreak,
  kContinue,
  // Declarations.
  kParam,
  kFieldDecl,
  kMethodDecl,
  kClassDecl,
};

struct AstNode {
  explicit AstNode(AstKind k) : kind(k) {}
  virtual ~AstNode() = default;

  AstKind kind;
  NodeId id = kInvalidNodeId;
  SourceLocation location;
};

struct Expr : AstNode {
  using AstNode::AstNode;
};

struct Stmt : AstNode {
  using AstNode::AstNode;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct IntLiteralExpr : Expr {
  IntLiteralExpr() : Expr(AstKind::kIntLiteral) {}
  int64_t value = 0;
};

struct BoolLiteralExpr : Expr {
  BoolLiteralExpr() : Expr(AstKind::kBoolLiteral) {}
  bool value = false;
};

struct StringLiteralExpr : Expr {
  StringLiteralExpr() : Expr(AstKind::kStringLiteral) {}
  std::string value;
};

struct NullLiteralExpr : Expr {
  NullLiteralExpr() : Expr(AstKind::kNullLiteral) {}
};

struct NameExpr : Expr {
  NameExpr() : Expr(AstKind::kName) {}
  std::string name;

  // Frame slot of the innermost declaration lexically visible here; kNoSlot
  // when no declaration is in scope (the dynamic semantics then error, or
  // fall through to builtin/class receivers in call position).
  SlotIndex slot = kNoSlot;
  // Outer same-named candidates (innermost first, primary excluded) consulted
  // when the primary slot's declaration has not executed; see resolve.h.
  uint32_t fallback_chain = kNoNameChain;
  // FindClass(name), cached for call-receiver position (`Helper.run()`).
  const ClassDecl* class_ref = nullptr;
};

struct ThisExpr : Expr {
  ThisExpr() : Expr(AstKind::kThis) {}
};

struct FieldAccessExpr : Expr {
  FieldAccessExpr() : Expr(AstKind::kFieldAccess) {}
  Expr* base = nullptr;
  std::string field;

  // Interned `field`; keys FieldLayout slot lookups.
  SymbolId field_symbol = kInvalidSymbol;
};

// A call `base.callee(args)` or `callee(args)` (base == nullptr; implicit
// this-call or free builtin). Calls like `Thread.sleep(...)` parse as base ==
// NameExpr("Thread"); whether that is an object or a builtin receiver is
// decided at evaluation/resolution time.
struct CallExpr : Expr {
  CallExpr() : Expr(AstKind::kCall) {}
  Expr* base = nullptr;
  std::string callee;
  std::vector<Expr*> args;

  // Dense per-program index of this call site (dispatch-cache key).
  uint32_t site_index = kNoCallSite;
};

struct NewExpr : Expr {
  NewExpr() : Expr(AstKind::kNew) {}
  std::string class_name;
  std::vector<Expr*> args;

  // Resolution of `class_name`: container/user-class/builtin-exception, plus
  // the class and its `init` method when it names a user class.
  NewKind new_kind = NewKind::kUnresolved;
  const ClassDecl* class_ref = nullptr;
  const MethodDecl* init_method = nullptr;
};

enum class UnaryOp : uint8_t {
  kNot,
  kNegate,
};

struct UnaryExpr : Expr {
  UnaryExpr() : Expr(AstKind::kUnary) {}
  UnaryOp op = UnaryOp::kNot;
  Expr* operand = nullptr;
};

enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

struct BinaryExpr : Expr {
  BinaryExpr() : Expr(AstKind::kBinary) {}
  BinaryOp op = BinaryOp::kAdd;
  Expr* lhs = nullptr;
  Expr* rhs = nullptr;
};

struct InstanceOfExpr : Expr {
  InstanceOfExpr() : Expr(AstKind::kInstanceOf) {}
  Expr* operand = nullptr;
  std::string type_name;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct BlockStmt : Stmt {
  BlockStmt() : Stmt(AstKind::kBlock) {}
  std::vector<Stmt*> statements;

  // Slot range declared anywhere in this block's subtree. Entering the block
  // clears the `defined` flags of the range — the scope-map semantics rebuild
  // inner scopes from scratch on every (re-)entry.
  uint32_t slot_base = 0;
  uint32_t slot_count = 0;
};

struct VarDeclStmt : Stmt {
  VarDeclStmt() : Stmt(AstKind::kVarDecl) {}
  std::string name;
  Expr* init = nullptr;  // Never null: `var x = e;` requires an initializer.

  SlotIndex slot = kNoSlot;
};

enum class AssignOp : uint8_t {
  kAssign,      // =
  kAddAssign,   // += (also x++)
  kSubAssign,   // -= (also x--)
};

struct AssignStmt : Stmt {
  AssignStmt() : Stmt(AstKind::kAssign) {}
  Expr* target = nullptr;  // NameExpr or FieldAccessExpr.
  AssignOp op = AssignOp::kAssign;
  Expr* value = nullptr;
};

struct ExprStmt : Stmt {
  ExprStmt() : Stmt(AstKind::kExprStmt) {}
  Expr* expr = nullptr;
};

struct IfStmt : Stmt {
  IfStmt() : Stmt(AstKind::kIf) {}
  Expr* condition = nullptr;
  Stmt* then_branch = nullptr;
  Stmt* else_branch = nullptr;  // May be null.
};

struct WhileStmt : Stmt {
  WhileStmt() : Stmt(AstKind::kWhile) {}
  Expr* condition = nullptr;
  Stmt* body = nullptr;
};

struct ForStmt : Stmt {
  ForStmt() : Stmt(AstKind::kFor) {}
  Stmt* init = nullptr;       // VarDeclStmt, AssignStmt, or null.
  Expr* condition = nullptr;  // Null means "true".
  Stmt* update = nullptr;     // AssignStmt/ExprStmt or null.
  Stmt* body = nullptr;

  // Slot range of the for-statement's own scope (init + subtree); cleared at
  // for-entry. The init slot survives iterations, like its scope map did.
  uint32_t slot_base = 0;
  uint32_t slot_count = 0;
};

struct SwitchCase {
  // Empty labels == `default:`. Labels are constant expressions (literals or
  // names, compared by value at run time).
  std::vector<Expr*> labels;
  std::vector<Stmt*> body;
  SourceLocation location;
};

struct SwitchStmt : Stmt {
  SwitchStmt() : Stmt(AstKind::kSwitch) {}
  Expr* subject = nullptr;
  std::vector<SwitchCase> cases;
};

struct CatchClause {
  std::string exception_type;
  std::string variable;
  BlockStmt* body = nullptr;
  SourceLocation location;

  // The catch variable's slot plus the clause's whole subtree range (cleared
  // when the clause is entered, like its fresh scope map).
  SlotIndex var_slot = kNoSlot;
  uint32_t slot_base = 0;
  uint32_t slot_count = 0;
};

struct TryStmt : Stmt {
  TryStmt() : Stmt(AstKind::kTry) {}
  BlockStmt* body = nullptr;
  std::vector<CatchClause> catches;
  BlockStmt* finally = nullptr;  // May be null.
};

struct ThrowStmt : Stmt {
  ThrowStmt() : Stmt(AstKind::kThrow) {}
  Expr* value = nullptr;
};

struct ReturnStmt : Stmt {
  ReturnStmt() : Stmt(AstKind::kReturn) {}
  Expr* value = nullptr;  // May be null (void return).
};

struct BreakStmt : Stmt {
  BreakStmt() : Stmt(AstKind::kBreak) {}
};

struct ContinueStmt : Stmt {
  ContinueStmt() : Stmt(AstKind::kContinue) {}
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct ParamDecl : AstNode {
  ParamDecl() : AstNode(AstKind::kParam) {}
  std::string type_name;  // Recorded, not enforced (mj is dynamically checked).
  std::string name;

  SlotIndex slot = kNoSlot;  // Duplicate param names share one slot.
};

struct FieldDecl : AstNode {
  FieldDecl() : AstNode(AstKind::kFieldDecl) {}
  std::string type_name;
  std::string name;
  Expr* init = nullptr;  // May be null -> null value.

  SymbolId name_symbol = kInvalidSymbol;  // Interned `name`.
};

struct MethodDecl : AstNode {
  MethodDecl() : AstNode(AstKind::kMethodDecl) {}
  std::string return_type;
  std::string name;
  std::vector<ParamDecl*> params;
  std::vector<std::string> throws;  // Declared checked exceptions.
  BlockStmt* body = nullptr;        // Null for abstract/declared-only methods.
  bool is_static = false;
  ClassDecl* owner = nullptr;

  // Flat frame size: one slot per distinct local declaration (params
  // included). Filled by the resolution pass.
  uint32_t max_slots = 0;
  // Dense program-wide method index, assigned by the resolution pass in
  // declaration order. Indexes per-method side tables (the bytecode engine's
  // compiled chunks) without a pointer map on the hot call path.
  uint32_t method_index = 0;
  // Cached QualifiedName(); also the stable backing storage for the
  // string_view CallEvent::callee.
  std::string qualified_cache;

  // "Class.method" — the qualified name used throughout reports and plans.
  std::string QualifiedName() const;
};

struct ClassDecl : AstNode {
  ClassDecl() : AstNode(AstKind::kClassDecl) {}
  std::string name;
  std::string base_name;  // Empty if no `extends`.
  std::vector<FieldDecl*> fields;
  std::vector<MethodDecl*> methods;
};

// ---------------------------------------------------------------------------
// Compilation unit
// ---------------------------------------------------------------------------

// Owns the source file, all AST nodes, and the retained comments of one file.
class CompilationUnit {
 public:
  explicit CompilationUnit(std::shared_ptr<const SourceFile> file) : file_(std::move(file)) {}

  CompilationUnit(const CompilationUnit&) = delete;
  CompilationUnit& operator=(const CompilationUnit&) = delete;

  const SourceFile& file() const { return *file_; }
  std::shared_ptr<const SourceFile> file_ptr() const { return file_; }

  template <typename T, typename... Args>
  T* Create(SourceLocation location, Args&&... args) {
    auto node = std::make_unique<T>(std::forward<Args>(args)...);
    node->id = static_cast<NodeId>(nodes_.size());
    node->location = location;
    T* raw = node.get();
    nodes_.push_back(std::move(node));
    return raw;
  }

  const AstNode* node(NodeId node_id) const {
    assert(node_id < nodes_.size());
    return nodes_[node_id].get();
  }
  size_t node_count() const { return nodes_.size(); }

  std::vector<ClassDecl*>& classes() { return classes_; }
  const std::vector<ClassDecl*>& classes() const { return classes_; }

  std::vector<Comment>& comments() { return comments_; }
  const std::vector<Comment>& comments() const { return comments_; }

 private:
  std::shared_ptr<const SourceFile> file_;
  std::vector<std::unique_ptr<AstNode>> nodes_;
  std::vector<ClassDecl*> classes_;
  std::vector<Comment> comments_;
};

// ---------------------------------------------------------------------------
// Generic walkers
// ---------------------------------------------------------------------------

// Pre-order traversal invoking `fn(const Expr&)` on every expression reachable
// from `expr` / `stmt`. Fn: void(const Expr&).
template <typename Fn>
void WalkExprs(const Expr* expr, Fn&& fn);

// Pre-order traversal invoking callbacks on statements and expressions inside
// `stmt`. StmtFn: void(const Stmt&); ExprFn: void(const Expr&).
template <typename StmtFn, typename ExprFn>
void WalkStmts(const Stmt* stmt, StmtFn&& stmt_fn, ExprFn&& expr_fn);

template <typename Fn>
void WalkExprs(const Expr* expr, Fn&& fn) {
  if (expr == nullptr) {
    return;
  }
  fn(*expr);
  switch (expr->kind) {
    case AstKind::kFieldAccess:
      WalkExprs(static_cast<const FieldAccessExpr*>(expr)->base, fn);
      break;
    case AstKind::kCall: {
      const auto* call = static_cast<const CallExpr*>(expr);
      WalkExprs(call->base, fn);
      for (const Expr* arg : call->args) {
        WalkExprs(arg, fn);
      }
      break;
    }
    case AstKind::kNew:
      for (const Expr* arg : static_cast<const NewExpr*>(expr)->args) {
        WalkExprs(arg, fn);
      }
      break;
    case AstKind::kUnary:
      WalkExprs(static_cast<const UnaryExpr*>(expr)->operand, fn);
      break;
    case AstKind::kBinary:
      WalkExprs(static_cast<const BinaryExpr*>(expr)->lhs, fn);
      WalkExprs(static_cast<const BinaryExpr*>(expr)->rhs, fn);
      break;
    case AstKind::kInstanceOf:
      WalkExprs(static_cast<const InstanceOfExpr*>(expr)->operand, fn);
      break;
    default:
      break;
  }
}

template <typename StmtFn, typename ExprFn>
void WalkStmts(const Stmt* stmt, StmtFn&& stmt_fn, ExprFn&& expr_fn) {
  if (stmt == nullptr) {
    return;
  }
  stmt_fn(*stmt);
  switch (stmt->kind) {
    case AstKind::kBlock:
      for (const Stmt* child : static_cast<const BlockStmt*>(stmt)->statements) {
        WalkStmts(child, stmt_fn, expr_fn);
      }
      break;
    case AstKind::kVarDecl:
      WalkExprs(static_cast<const VarDeclStmt*>(stmt)->init, expr_fn);
      break;
    case AstKind::kAssign:
      WalkExprs(static_cast<const AssignStmt*>(stmt)->target, expr_fn);
      WalkExprs(static_cast<const AssignStmt*>(stmt)->value, expr_fn);
      break;
    case AstKind::kExprStmt:
      WalkExprs(static_cast<const ExprStmt*>(stmt)->expr, expr_fn);
      break;
    case AstKind::kIf: {
      const auto* node = static_cast<const IfStmt*>(stmt);
      WalkExprs(node->condition, expr_fn);
      WalkStmts(node->then_branch, stmt_fn, expr_fn);
      WalkStmts(node->else_branch, stmt_fn, expr_fn);
      break;
    }
    case AstKind::kWhile: {
      const auto* node = static_cast<const WhileStmt*>(stmt);
      WalkExprs(node->condition, expr_fn);
      WalkStmts(node->body, stmt_fn, expr_fn);
      break;
    }
    case AstKind::kFor: {
      const auto* node = static_cast<const ForStmt*>(stmt);
      WalkStmts(node->init, stmt_fn, expr_fn);
      WalkExprs(node->condition, expr_fn);
      WalkStmts(node->update, stmt_fn, expr_fn);
      WalkStmts(node->body, stmt_fn, expr_fn);
      break;
    }
    case AstKind::kSwitch: {
      const auto* node = static_cast<const SwitchStmt*>(stmt);
      WalkExprs(node->subject, expr_fn);
      for (const SwitchCase& switch_case : node->cases) {
        for (const Expr* label : switch_case.labels) {
          WalkExprs(label, expr_fn);
        }
        for (const Stmt* child : switch_case.body) {
          WalkStmts(child, stmt_fn, expr_fn);
        }
      }
      break;
    }
    case AstKind::kTry: {
      const auto* node = static_cast<const TryStmt*>(stmt);
      WalkStmts(node->body, stmt_fn, expr_fn);
      for (const CatchClause& clause : node->catches) {
        WalkStmts(clause.body, stmt_fn, expr_fn);
      }
      WalkStmts(node->finally, stmt_fn, expr_fn);
      break;
    }
    case AstKind::kThrow:
      WalkExprs(static_cast<const ThrowStmt*>(stmt)->value, expr_fn);
      break;
    case AstKind::kReturn:
      WalkExprs(static_cast<const ReturnStmt*>(stmt)->value, expr_fn);
      break;
    default:
      break;
  }
}

}  // namespace mj

#endif  // WASABI_SRC_LANG_AST_H_
