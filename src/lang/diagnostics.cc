#include "src/lang/diagnostics.h"

#include <sstream>

namespace mj {

namespace {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "unknown";
}

}  // namespace

void DiagnosticEngine::Report(Severity severity, SourceLocation location, std::string message) {
  if (severity == Severity::kError) {
    ++error_count_;
  }
  diagnostics_.push_back(Diagnostic{severity, location, std::move(message)});
}

std::string DiagnosticEngine::FormatAll(const SourceFile* file) const {
  std::ostringstream out;
  for (const Diagnostic& diag : diagnostics_) {
    if (file != nullptr) {
      out << file->name() << ":";
    }
    out << diag.location.line << ":" << diag.location.column << ": "
        << SeverityName(diag.severity) << ": " << diag.message << "\n";
  }
  return out.str();
}

void DiagnosticEngine::Clear() {
  diagnostics_.clear();
  error_count_ = 0;
}

}  // namespace mj
