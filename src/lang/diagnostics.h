// Diagnostic collection for the mj front end.

#ifndef WASABI_SRC_LANG_DIAGNOSTICS_H_
#define WASABI_SRC_LANG_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "src/lang/source.h"

namespace mj {

enum class Severity {
  kError,
  kWarning,
  kNote,
};

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLocation location;
  std::string message;
};

// Accumulates diagnostics produced while lexing/parsing/indexing one or more
// compilation units. The front end never aborts the process: callers check
// has_errors() after each phase.
class DiagnosticEngine {
 public:
  void Report(Severity severity, SourceLocation location, std::string message);
  void Error(SourceLocation location, std::string message) {
    Report(Severity::kError, location, std::move(message));
  }
  void Warning(SourceLocation location, std::string message) {
    Report(Severity::kWarning, location, std::move(message));
  }

  bool has_errors() const { return error_count_ > 0; }
  size_t error_count() const { return error_count_; }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  // Renders all diagnostics, one per line, as "file:line:col: severity: message".
  // `file` provides the name and line text for carets; pass nullptr to omit.
  std::string FormatAll(const SourceFile* file) const;

  void Clear();

 private:
  std::vector<Diagnostic> diagnostics_;
  size_t error_count_ = 0;
};

}  // namespace mj

#endif  // WASABI_SRC_LANG_DIAGNOSTICS_H_
