#include "src/lang/digest.h"

namespace mj {

uint64_t SourceContentDigest(const SourceFile& file) {
  uint64_t hash = kFnvOffsetBasis;
  hash = Fnv1a64Mix(static_cast<uint64_t>(file.text().size()), hash);
  return Fnv1a64(file.text(), hash);
}

std::string DigestHex(uint64_t digest) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[digest & 0xf];
    digest >>= 4;
  }
  return out;
}

}  // namespace mj
