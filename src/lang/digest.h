// Content digests over mj source, the foundation of the incremental cache
// (docs/CACHING.md).
//
// A file's digest is FNV-1a 64 over its raw bytes (plus the byte length as a
// prefix, so concatenation patterns cannot collide). Raw bytes subsume every
// downstream view of the file: the token stream, token positions, retained
// comments, and SimLLM's attention window are all pure functions of the text,
// so two files share a digest only when every analysis in the pipeline is
// guaranteed to treat them identically. Hashing bytes instead of a re-lexed
// token stream also keeps digesting out of the warm-path profile: a cache-hit
// run must still digest every file to build its keys, and that pass has to be
// cheap for the warm/cold speedup to materialize.

#ifndef WASABI_SRC_LANG_DIGEST_H_
#define WASABI_SRC_LANG_DIGEST_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/lang/source.h"

namespace mj {

// FNV-1a 64-bit, the repo-wide stable hash (matches the golden tests).
inline constexpr uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t Fnv1a64(std::string_view data, uint64_t hash = kFnvOffsetBasis) {
  for (unsigned char c : data) {
    hash ^= c;
    hash *= kFnvPrime;
  }
  return hash;
}

inline uint64_t Fnv1a64Mix(uint64_t value, uint64_t hash) {
  for (int i = 0; i < 8; ++i) {
    hash ^= value & 0xffu;
    hash *= kFnvPrime;
    value >>= 8;
  }
  return hash;
}

// Digest of one source file's content (see the header comment for exactly
// what is hashed and why).
uint64_t SourceContentDigest(const SourceFile& file);

// Lower-case hex rendering used wherever a digest becomes a cache-key part.
std::string DigestHex(uint64_t digest);

}  // namespace mj

#endif  // WASABI_SRC_LANG_DIGEST_H_
