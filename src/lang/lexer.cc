#include "src/lang/lexer.h"

#include <cctype>
#include <cstdlib>
#include <string>

namespace mj {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string TrimCopy(std::string_view view) {
  size_t begin = 0;
  size_t end = view.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(view[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(view[end - 1]))) {
    --end;
  }
  return std::string(view.substr(begin, end - begin));
}

}  // namespace

Lexer::Lexer(const SourceFile& file, DiagnosticEngine& diag)
    : file_(file), diag_(diag), text_(file.text()) {}

std::vector<Token> Lexer::LexAll() {
  std::vector<Token> tokens;
  while (true) {
    Token token = Next();
    tokens.push_back(token);
    if (token.kind == TokenKind::kEndOfFile) {
      break;
    }
  }
  return tokens;
}

char Lexer::Peek(uint32_t lookahead) const {
  uint64_t index = static_cast<uint64_t>(pos_) + lookahead;
  return index < text_.size() ? text_[index] : '\0';
}

char Lexer::Advance() {
  return text_[pos_++];
}

bool Lexer::Match(char expected) {
  if (AtEnd() || text_[pos_] != expected) {
    return false;
  }
  ++pos_;
  return true;
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos_;
      continue;
    }
    if (c == '/' && Peek(1) == '/') {
      uint32_t start = pos_;
      pos_ += 2;
      uint32_t text_start = pos_;
      while (!AtEnd() && Peek() != '\n') {
        ++pos_;
      }
      Comment comment;
      comment.location = file_.LocationFor(start);
      comment.text = TrimCopy(text_.substr(text_start, pos_ - text_start));
      comment.is_block = false;
      comments_.push_back(std::move(comment));
      continue;
    }
    if (c == '/' && Peek(1) == '*') {
      uint32_t start = pos_;
      pos_ += 2;
      uint32_t text_start = pos_;
      while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) {
        ++pos_;
      }
      uint32_t text_end = pos_;
      if (AtEnd()) {
        diag_.Error(file_.LocationFor(start), "unterminated block comment");
      } else {
        pos_ += 2;
      }
      Comment comment;
      comment.location = file_.LocationFor(start);
      comment.text = TrimCopy(text_.substr(text_start, text_end - text_start));
      comment.is_block = true;
      comments_.push_back(std::move(comment));
      continue;
    }
    break;
  }
}

Token Lexer::MakeToken(TokenKind kind, uint32_t start) {
  Token token;
  token.kind = kind;
  token.location = file_.LocationFor(start);
  token.text = text_.substr(start, pos_ - start);
  return token;
}

Token Lexer::LexIdentifierOrKeyword() {
  uint32_t start = pos_;
  while (!AtEnd() && IsIdentCont(Peek())) {
    ++pos_;
  }
  std::string_view lexeme = text_.substr(start, pos_ - start);
  Token token = MakeToken(KeywordKind(lexeme), start);
  if (token.kind == TokenKind::kIdentifier) {
    token.symbol = symbols_.Intern(lexeme);
  }
  return token;
}

Token Lexer::LexNumber() {
  uint32_t start = pos_;
  while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
    ++pos_;
  }
  // Optional suffix 'L' for long literals, accepted and ignored.
  if (!AtEnd() && (Peek() == 'L' || Peek() == 'l')) {
    ++pos_;
  }
  Token token = MakeToken(TokenKind::kIntLiteral, start);
  std::string digits(token.text);
  if (!digits.empty() && (digits.back() == 'L' || digits.back() == 'l')) {
    digits.pop_back();
  }
  token.int_value = std::strtoll(digits.c_str(), nullptr, 10);
  return token;
}

Token Lexer::LexString() {
  uint32_t start = pos_;
  ++pos_;  // Opening quote.
  std::string value;
  while (!AtEnd() && Peek() != '"') {
    char c = Advance();
    if (c == '\\' && !AtEnd()) {
      char escaped = Advance();
      switch (escaped) {
        case 'n':
          value.push_back('\n');
          break;
        case 't':
          value.push_back('\t');
          break;
        case '\\':
          value.push_back('\\');
          break;
        case '"':
          value.push_back('"');
          break;
        default:
          value.push_back(escaped);
          break;
      }
      continue;
    }
    if (c == '\n') {
      diag_.Error(file_.LocationFor(start), "unterminated string literal");
      Token token = MakeToken(TokenKind::kStringLiteral, start);
      token.string_value = string_storage_.emplace_back(std::move(value));
      return token;
    }
    value.push_back(c);
  }
  if (AtEnd()) {
    diag_.Error(file_.LocationFor(start), "unterminated string literal");
  } else {
    ++pos_;  // Closing quote.
  }
  Token token = MakeToken(TokenKind::kStringLiteral, start);
  token.string_value = string_storage_.emplace_back(std::move(value));
  return token;
}

Token Lexer::Next() {
  SkipWhitespaceAndComments();
  if (AtEnd()) {
    return MakeToken(TokenKind::kEndOfFile, pos_);
  }
  uint32_t start = pos_;
  char c = Peek();
  if (IsIdentStart(c)) {
    return LexIdentifierOrKeyword();
  }
  if (std::isdigit(static_cast<unsigned char>(c))) {
    return LexNumber();
  }
  if (c == '"') {
    return LexString();
  }
  ++pos_;
  switch (c) {
    case '(':
      return MakeToken(TokenKind::kLParen, start);
    case ')':
      return MakeToken(TokenKind::kRParen, start);
    case '{':
      return MakeToken(TokenKind::kLBrace, start);
    case '}':
      return MakeToken(TokenKind::kRBrace, start);
    case '[':
      return MakeToken(TokenKind::kLBracket, start);
    case ']':
      return MakeToken(TokenKind::kRBracket, start);
    case ',':
      return MakeToken(TokenKind::kComma, start);
    case ';':
      return MakeToken(TokenKind::kSemicolon, start);
    case ':':
      return MakeToken(TokenKind::kColon, start);
    case '.':
      return MakeToken(TokenKind::kDot, start);
    case '+':
      if (Match('+')) {
        return MakeToken(TokenKind::kPlusPlus, start);
      }
      if (Match('=')) {
        return MakeToken(TokenKind::kPlusAssign, start);
      }
      return MakeToken(TokenKind::kPlus, start);
    case '-':
      if (Match('-')) {
        return MakeToken(TokenKind::kMinusMinus, start);
      }
      if (Match('=')) {
        return MakeToken(TokenKind::kMinusAssign, start);
      }
      return MakeToken(TokenKind::kMinus, start);
    case '*':
      return MakeToken(TokenKind::kStar, start);
    case '/':
      return MakeToken(TokenKind::kSlash, start);
    case '%':
      return MakeToken(TokenKind::kPercent, start);
    case '=':
      return MakeToken(Match('=') ? TokenKind::kEq : TokenKind::kAssign, start);
    case '!':
      return MakeToken(Match('=') ? TokenKind::kNe : TokenKind::kNot, start);
    case '<':
      return MakeToken(Match('=') ? TokenKind::kLe : TokenKind::kLt, start);
    case '>':
      return MakeToken(Match('=') ? TokenKind::kGe : TokenKind::kGt, start);
    case '&':
      if (Match('&')) {
        return MakeToken(TokenKind::kAndAnd, start);
      }
      diag_.Error(file_.LocationFor(start), "unexpected character '&'");
      return Next();
    case '|':
      if (Match('|')) {
        return MakeToken(TokenKind::kOrOr, start);
      }
      diag_.Error(file_.LocationFor(start), "unexpected character '|'");
      return Next();
    default:
      diag_.Error(file_.LocationFor(start),
                  std::string("unexpected character '") + c + "'");
      return Next();
  }
}

}  // namespace mj
