// Lexer for mj source text.

#ifndef WASABI_SRC_LANG_LEXER_H_
#define WASABI_SRC_LANG_LEXER_H_

#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "src/lang/diagnostics.h"
#include "src/lang/source.h"
#include "src/lang/symtab.h"
#include "src/lang/token.h"

namespace mj {

// Tokenizes one SourceFile. Comments are preserved in a side list (they are
// analysis input — the paper's keyword filter and LLM both read them). The
// lexer never throws; malformed input produces diagnostics and the lexer
// resynchronizes at the next character.
//
// Lifetime: Token::text views into the SourceFile's text, so the file must
// outlive the returned tokens (the Parser guarantees this by holding the file
// through a shared_ptr for the CompilationUnit's lifetime).
// Token::string_value views into this lexer's decoded-string storage; a caller
// that outlives the lexer must TakeStringStorage() (deque moves preserve
// element addresses, so the views stay valid across the transfer).
class Lexer {
 public:
  Lexer(const SourceFile& file, DiagnosticEngine& diag);

  // Lexes the whole file. The returned vector always ends with kEndOfFile.
  std::vector<Token> LexAll();

  const std::vector<Comment>& comments() const { return comments_; }

  // Identifier spellings interned while lexing (Token::symbol indexes this).
  const SymbolTable& symbols() const { return symbols_; }

  // Transfers ownership of the decoded string-literal storage backing
  // Token::string_value views.
  std::deque<std::string> TakeStringStorage() { return std::move(string_storage_); }

 private:
  Token Next();
  Token MakeToken(TokenKind kind, uint32_t start);
  void SkipWhitespaceAndComments();
  Token LexIdentifierOrKeyword();
  Token LexNumber();
  Token LexString();

  char Peek(uint32_t lookahead = 0) const;
  char Advance();
  bool Match(char expected);
  bool AtEnd() const { return pos_ >= text_.size(); }

  const SourceFile& file_;
  DiagnosticEngine& diag_;
  std::string_view text_;
  uint32_t pos_ = 0;
  std::vector<Comment> comments_;
  SymbolTable symbols_;
  std::deque<std::string> string_storage_;  // Stable addresses for the views.
};

}  // namespace mj

#endif  // WASABI_SRC_LANG_LEXER_H_
