#include "src/lang/parser.h"

#include <sstream>

#include "src/lang/lexer.h"

namespace mj {

Parser::Parser(std::shared_ptr<const SourceFile> file, DiagnosticEngine& diag)
    : file_(std::move(file)), diag_(diag) {}

std::unique_ptr<CompilationUnit> Parser::ParseUnit() {
  unit_ = std::make_unique<CompilationUnit>(file_);
  Lexer lexer(*file_, diag_);
  tokens_ = lexer.LexAll();
  token_strings_ = lexer.TakeStringStorage();
  unit_->comments() = lexer.comments();
  pos_ = 0;

  while (!AtEnd()) {
    if (Check(TokenKind::kKwClass)) {
      ClassDecl* cls = ParseClass();
      if (cls != nullptr) {
        unit_->classes().push_back(cls);
      }
    } else {
      diag_.Error(Current().location, "expected 'class' at top level, got " +
                                          std::string(TokenKindName(Current().kind)));
      Advance();
    }
  }
  return std::move(unit_);
}

// --------------------------------------------------------------------------
// Token helpers
// --------------------------------------------------------------------------

const Token& Parser::Peek(size_t lookahead) const {
  size_t index = pos_ + lookahead;
  if (index >= tokens_.size()) {
    index = tokens_.size() - 1;  // EOF token.
  }
  return tokens_[index];
}

Token Parser::Advance() {
  Token token = Current();
  if (pos_ + 1 < tokens_.size()) {
    ++pos_;
  }
  return token;
}

bool Parser::Match(TokenKind kind) {
  if (Check(kind)) {
    Advance();
    return true;
  }
  return false;
}

Token Parser::Expect(TokenKind kind, const char* context) {
  if (Check(kind)) {
    return Advance();
  }
  std::ostringstream msg;
  msg << "expected " << TokenKindName(kind) << " " << context << ", got "
      << TokenKindName(Current().kind);
  diag_.Error(Current().location, msg.str());
  // Return a synthesized token so callers can continue.
  Token token;
  token.kind = kind;
  token.location = Current().location;
  return token;
}

void Parser::SynchronizeStmt() {
  while (!AtEnd()) {
    if (Match(TokenKind::kSemicolon)) {
      return;
    }
    if (Check(TokenKind::kRBrace)) {
      return;
    }
    Advance();
  }
}

void Parser::SynchronizeMember() {
  int depth = 0;
  while (!AtEnd()) {
    if (Check(TokenKind::kLBrace)) {
      ++depth;
    } else if (Check(TokenKind::kRBrace)) {
      if (depth == 0) {
        return;
      }
      --depth;
    } else if (depth == 0 && Check(TokenKind::kSemicolon)) {
      Advance();
      return;
    }
    Advance();
  }
}

// --------------------------------------------------------------------------
// Declarations
// --------------------------------------------------------------------------

ClassDecl* Parser::ParseClass() {
  Token class_kw = Expect(TokenKind::kKwClass, "to start a class");
  Token name = Expect(TokenKind::kIdentifier, "after 'class'");
  ClassDecl* cls = unit_->Create<ClassDecl>(class_kw.location);
  cls->name = std::string(name.text);
  if (Match(TokenKind::kKwExtends)) {
    Token base = Expect(TokenKind::kIdentifier, "after 'extends'");
    cls->base_name = std::string(base.text);
  }
  Expect(TokenKind::kLBrace, "to open the class body");
  while (!Check(TokenKind::kRBrace) && !AtEnd()) {
    ParseMember(cls);
  }
  Expect(TokenKind::kRBrace, "to close the class body");
  return cls;
}

void Parser::ParseMember(ClassDecl* cls) {
  bool is_static = Match(TokenKind::kKwStatic);

  // Members start with a type name (an identifier such as `void`, `int`,
  // `HttpResponse`, ...) or `var`, then the member name.
  std::string type_name;
  SourceLocation start = Current().location;
  if (Match(TokenKind::kKwVar)) {
    type_name = "var";
  } else if (Check(TokenKind::kIdentifier)) {
    type_name = std::string(Advance().text);
  } else {
    diag_.Error(Current().location, "expected a member declaration, got " +
                                        std::string(TokenKindName(Current().kind)));
    SynchronizeMember();
    return;
  }

  Token name = Expect(TokenKind::kIdentifier, "as the member name");

  if (Check(TokenKind::kLParen)) {
    // Method.
    MethodDecl* method = unit_->Create<MethodDecl>(start);
    method->return_type = type_name;
    method->name = std::string(name.text);
    method->is_static = is_static;
    method->owner = cls;
    Expect(TokenKind::kLParen, "to open the parameter list");
    if (!Check(TokenKind::kRParen)) {
      do {
        SourceLocation param_loc = Current().location;
        std::string param_type;
        if (Match(TokenKind::kKwVar)) {
          param_type = "var";
        } else {
          param_type = std::string(Expect(TokenKind::kIdentifier, "as a parameter type").text);
        }
        // Single-identifier parameters are allowed: `m(x)` means `m(var x)`.
        std::string param_name;
        if (Check(TokenKind::kIdentifier)) {
          param_name = std::string(Advance().text);
        } else {
          param_name = param_type;
          param_type = "var";
        }
        ParamDecl* param = unit_->Create<ParamDecl>(param_loc);
        param->type_name = std::move(param_type);
        param->name = std::move(param_name);
        method->params.push_back(param);
      } while (Match(TokenKind::kComma));
    }
    Expect(TokenKind::kRParen, "to close the parameter list");
    if (Match(TokenKind::kKwThrows)) {
      do {
        Token exc = Expect(TokenKind::kIdentifier, "in the throws clause");
        method->throws.push_back(std::string(exc.text));
      } while (Match(TokenKind::kComma));
    }
    if (Check(TokenKind::kLBrace)) {
      method->body = ParseBlock();
    } else {
      Expect(TokenKind::kSemicolon, "after an abstract method declaration");
    }
    cls->methods.push_back(method);
    return;
  }

  // Field.
  FieldDecl* field = unit_->Create<FieldDecl>(start);
  field->type_name = type_name;
  field->name = std::string(name.text);
  if (Match(TokenKind::kAssign)) {
    field->init = ParseExpr();
  }
  Expect(TokenKind::kSemicolon, "after a field declaration");
  cls->fields.push_back(field);
}

// --------------------------------------------------------------------------
// Statements
// --------------------------------------------------------------------------

Stmt* Parser::ParseStmt() {
  if (stmt_depth_ >= kMaxStmtDepth) {
    ReportDepthExceeded();
    // Skip to a statement boundary (guaranteeing progress) and hand the
    // caller an empty block: parents like ParseIf attach the child without a
    // null check, so the placeholder must be a real statement.
    SynchronizeStmt();
    return unit_->Create<BlockStmt>(Current().location);
  }
  ++stmt_depth_;
  Stmt* stmt = ParseStmtImpl();
  --stmt_depth_;
  return stmt;
}

Stmt* Parser::ParseStmtImpl() {
  switch (Current().kind) {
    case TokenKind::kLBrace:
      return ParseBlock();
    case TokenKind::kKwVar:
      return ParseVarDecl();
    case TokenKind::kKwIf:
      return ParseIf();
    case TokenKind::kKwWhile:
      return ParseWhile();
    case TokenKind::kKwFor:
      return ParseFor();
    case TokenKind::kKwSwitch:
      return ParseSwitch();
    case TokenKind::kKwTry:
      return ParseTry();
    case TokenKind::kKwThrow:
      return ParseThrow();
    case TokenKind::kKwReturn:
      return ParseReturn();
    case TokenKind::kKwBreak: {
      Token token = Advance();
      Expect(TokenKind::kSemicolon, "after 'break'");
      return unit_->Create<BreakStmt>(token.location);
    }
    case TokenKind::kKwContinue: {
      Token token = Advance();
      Expect(TokenKind::kSemicolon, "after 'continue'");
      return unit_->Create<ContinueStmt>(token.location);
    }
    default:
      return ParseSimpleStmt(/*consume_semicolon=*/true);
  }
}

BlockStmt* Parser::ParseBlock() {
  Token open = Expect(TokenKind::kLBrace, "to open a block");
  BlockStmt* block = unit_->Create<BlockStmt>(open.location);
  while (!Check(TokenKind::kRBrace) && !AtEnd()) {
    size_t before = pos_;
    Stmt* stmt = ParseStmt();
    if (stmt != nullptr) {
      block->statements.push_back(stmt);
    }
    if (pos_ == before) {
      // Defensive: guarantee progress even on malformed input.
      SynchronizeStmt();
    }
  }
  Expect(TokenKind::kRBrace, "to close a block");
  return block;
}

Stmt* Parser::ParseVarDecl() {
  Token var_kw = Expect(TokenKind::kKwVar, "to start a variable declaration");
  Token name = Expect(TokenKind::kIdentifier, "as the variable name");
  VarDeclStmt* decl = unit_->Create<VarDeclStmt>(var_kw.location);
  decl->name = std::string(name.text);
  Expect(TokenKind::kAssign, "in a variable declaration (mj requires an initializer)");
  decl->init = ParseExpr();
  Expect(TokenKind::kSemicolon, "after a variable declaration");
  return decl;
}

Stmt* Parser::ParseIf() {
  Token if_kw = Expect(TokenKind::kKwIf, "");
  Expect(TokenKind::kLParen, "after 'if'");
  IfStmt* stmt = unit_->Create<IfStmt>(if_kw.location);
  stmt->condition = ParseExpr();
  Expect(TokenKind::kRParen, "after the if condition");
  stmt->then_branch = ParseStmt();
  if (Match(TokenKind::kKwElse)) {
    stmt->else_branch = ParseStmt();
  }
  return stmt;
}

Stmt* Parser::ParseWhile() {
  Token while_kw = Expect(TokenKind::kKwWhile, "");
  Expect(TokenKind::kLParen, "after 'while'");
  WhileStmt* stmt = unit_->Create<WhileStmt>(while_kw.location);
  stmt->condition = ParseExpr();
  Expect(TokenKind::kRParen, "after the while condition");
  stmt->body = ParseStmt();
  return stmt;
}

Stmt* Parser::ParseFor() {
  Token for_kw = Expect(TokenKind::kKwFor, "");
  Expect(TokenKind::kLParen, "after 'for'");
  ForStmt* stmt = unit_->Create<ForStmt>(for_kw.location);
  if (!Check(TokenKind::kSemicolon)) {
    if (Check(TokenKind::kKwVar)) {
      // `var i = 0;` — ParseVarDecl consumes the ';'.
      stmt->init = ParseVarDecl();
    } else {
      stmt->init = ParseSimpleStmt(/*consume_semicolon=*/true);
    }
  } else {
    Advance();  // Empty init.
  }
  if (!Check(TokenKind::kSemicolon)) {
    stmt->condition = ParseExpr();
  }
  Expect(TokenKind::kSemicolon, "after the for condition");
  if (!Check(TokenKind::kRParen)) {
    stmt->update = ParseSimpleStmt(/*consume_semicolon=*/false);
  }
  Expect(TokenKind::kRParen, "after the for clauses");
  stmt->body = ParseStmt();
  return stmt;
}

Stmt* Parser::ParseSwitch() {
  Token switch_kw = Expect(TokenKind::kKwSwitch, "");
  Expect(TokenKind::kLParen, "after 'switch'");
  SwitchStmt* stmt = unit_->Create<SwitchStmt>(switch_kw.location);
  stmt->subject = ParseExpr();
  Expect(TokenKind::kRParen, "after the switch subject");
  Expect(TokenKind::kLBrace, "to open the switch body");
  while (!Check(TokenKind::kRBrace) && !AtEnd()) {
    SwitchCase switch_case;
    switch_case.location = Current().location;
    bool saw_label = false;
    while (true) {
      if (Match(TokenKind::kKwCase)) {
        switch_case.labels.push_back(ParseExpr());
        Expect(TokenKind::kColon, "after a case label");
        saw_label = true;
        continue;
      }
      if (Check(TokenKind::kKwDefault)) {
        Advance();
        Expect(TokenKind::kColon, "after 'default'");
        saw_label = true;  // Empty label list == default.
        continue;
      }
      break;
    }
    if (!saw_label) {
      diag_.Error(Current().location, "expected 'case' or 'default' in switch body");
      SynchronizeStmt();
      continue;
    }
    while (!Check(TokenKind::kKwCase) && !Check(TokenKind::kKwDefault) &&
           !Check(TokenKind::kRBrace) && !AtEnd()) {
      switch_case.body.push_back(ParseStmt());
    }
    stmt->cases.push_back(std::move(switch_case));
  }
  Expect(TokenKind::kRBrace, "to close the switch body");
  return stmt;
}

Stmt* Parser::ParseTry() {
  Token try_kw = Expect(TokenKind::kKwTry, "");
  TryStmt* stmt = unit_->Create<TryStmt>(try_kw.location);
  stmt->body = ParseBlock();
  while (Check(TokenKind::kKwCatch)) {
    Token catch_kw = Advance();
    CatchClause clause;
    clause.location = catch_kw.location;
    Expect(TokenKind::kLParen, "after 'catch'");
    Token type = Expect(TokenKind::kIdentifier, "as the caught exception type");
    clause.exception_type = std::string(type.text);
    Token var = Expect(TokenKind::kIdentifier, "as the caught exception variable");
    clause.variable = std::string(var.text);
    Expect(TokenKind::kRParen, "after the catch clause");
    clause.body = ParseBlock();
    stmt->catches.push_back(std::move(clause));
  }
  if (Match(TokenKind::kKwFinally)) {
    stmt->finally = ParseBlock();
  }
  if (stmt->catches.empty() && stmt->finally == nullptr) {
    diag_.Error(try_kw.location, "try statement requires at least one catch or a finally");
  }
  return stmt;
}

Stmt* Parser::ParseThrow() {
  Token throw_kw = Expect(TokenKind::kKwThrow, "");
  ThrowStmt* stmt = unit_->Create<ThrowStmt>(throw_kw.location);
  stmt->value = ParseExpr();
  Expect(TokenKind::kSemicolon, "after a throw statement");
  return stmt;
}

Stmt* Parser::ParseReturn() {
  Token return_kw = Expect(TokenKind::kKwReturn, "");
  ReturnStmt* stmt = unit_->Create<ReturnStmt>(return_kw.location);
  if (!Check(TokenKind::kSemicolon)) {
    stmt->value = ParseExpr();
  }
  Expect(TokenKind::kSemicolon, "after a return statement");
  return stmt;
}

Stmt* Parser::ParseSimpleStmt(bool consume_semicolon) {
  SourceLocation start = Current().location;
  Expr* expr = ParseExpr();

  Stmt* result = nullptr;
  if (Check(TokenKind::kAssign) || Check(TokenKind::kPlusAssign) ||
      Check(TokenKind::kMinusAssign)) {
    Token op = Advance();
    AssignStmt* assign = unit_->Create<AssignStmt>(start);
    assign->target = expr;
    assign->op = op.kind == TokenKind::kAssign      ? AssignOp::kAssign
                 : op.kind == TokenKind::kPlusAssign ? AssignOp::kAddAssign
                                                     : AssignOp::kSubAssign;
    assign->value = ParseExpr();
    if (expr->kind != AstKind::kName && expr->kind != AstKind::kFieldAccess) {
      diag_.Error(start, "assignment target must be a variable or field");
    }
    result = assign;
  } else if (Check(TokenKind::kPlusPlus) || Check(TokenKind::kMinusMinus)) {
    Token op = Advance();
    AssignStmt* assign = unit_->Create<AssignStmt>(start);
    assign->target = expr;
    assign->op =
        op.kind == TokenKind::kPlusPlus ? AssignOp::kAddAssign : AssignOp::kSubAssign;
    auto* one = unit_->Create<IntLiteralExpr>(op.location);
    one->value = 1;
    assign->value = one;
    if (expr->kind != AstKind::kName && expr->kind != AstKind::kFieldAccess) {
      diag_.Error(start, "increment target must be a variable or field");
    }
    result = assign;
  } else {
    ExprStmt* expr_stmt = unit_->Create<ExprStmt>(start);
    expr_stmt->expr = expr;
    result = expr_stmt;
  }

  if (consume_semicolon) {
    Expect(TokenKind::kSemicolon, "after a statement");
  }
  return result;
}

// --------------------------------------------------------------------------
// Expressions
// --------------------------------------------------------------------------

bool Parser::ExprDepthExceeded() {
  if (expr_depth_ < kMaxExprDepth) {
    return false;
  }
  ReportDepthExceeded();
  return true;
}

void Parser::ReportDepthExceeded() {
  // One diagnostic per unit: a 50k-deep input would otherwise drown every
  // real diagnostic in repeats of this one.
  if (!depth_error_reported_) {
    depth_error_reported_ = true;
    diag_.Error(Current().location,
                "expression or statement nesting is too deep; giving up on this subtree");
  }
}

Expr* Parser::ParseExpr() {
  if (ExprDepthExceeded()) {
    // Consume nothing; the enclosing construct's Expect calls recover. Every
    // path into this guard consumed at least one token ('(', an operator,
    // ...), so parsing still makes progress.
    return unit_->Create<NullLiteralExpr>(Current().location);
  }
  ++expr_depth_;
  Expr* expr = ParseOr();
  --expr_depth_;
  return expr;
}

Expr* Parser::ParseOr() {
  Expr* lhs = ParseAnd();
  while (Check(TokenKind::kOrOr)) {
    Token op = Advance();
    BinaryExpr* expr = unit_->Create<BinaryExpr>(op.location);
    expr->op = BinaryOp::kOr;
    expr->lhs = lhs;
    expr->rhs = ParseAnd();
    lhs = expr;
  }
  return lhs;
}

Expr* Parser::ParseAnd() {
  Expr* lhs = ParseEquality();
  while (Check(TokenKind::kAndAnd)) {
    Token op = Advance();
    BinaryExpr* expr = unit_->Create<BinaryExpr>(op.location);
    expr->op = BinaryOp::kAnd;
    expr->lhs = lhs;
    expr->rhs = ParseEquality();
    lhs = expr;
  }
  return lhs;
}

Expr* Parser::ParseEquality() {
  Expr* lhs = ParseRelational();
  while (Check(TokenKind::kEq) || Check(TokenKind::kNe)) {
    Token op = Advance();
    BinaryExpr* expr = unit_->Create<BinaryExpr>(op.location);
    expr->op = op.kind == TokenKind::kEq ? BinaryOp::kEq : BinaryOp::kNe;
    expr->lhs = lhs;
    expr->rhs = ParseRelational();
    lhs = expr;
  }
  return lhs;
}

Expr* Parser::ParseRelational() {
  Expr* lhs = ParseAdditive();
  while (true) {
    if (Check(TokenKind::kKwInstanceof)) {
      Token op = Advance();
      Token type = Expect(TokenKind::kIdentifier, "after 'instanceof'");
      InstanceOfExpr* expr = unit_->Create<InstanceOfExpr>(op.location);
      expr->operand = lhs;
      expr->type_name = std::string(type.text);
      lhs = expr;
      continue;
    }
    BinaryOp bin_op;
    if (Check(TokenKind::kLt)) {
      bin_op = BinaryOp::kLt;
    } else if (Check(TokenKind::kLe)) {
      bin_op = BinaryOp::kLe;
    } else if (Check(TokenKind::kGt)) {
      bin_op = BinaryOp::kGt;
    } else if (Check(TokenKind::kGe)) {
      bin_op = BinaryOp::kGe;
    } else {
      break;
    }
    Token op = Advance();
    BinaryExpr* expr = unit_->Create<BinaryExpr>(op.location);
    expr->op = bin_op;
    expr->lhs = lhs;
    expr->rhs = ParseAdditive();
    lhs = expr;
  }
  return lhs;
}

Expr* Parser::ParseAdditive() {
  Expr* lhs = ParseMultiplicative();
  while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
    Token op = Advance();
    BinaryExpr* expr = unit_->Create<BinaryExpr>(op.location);
    expr->op = op.kind == TokenKind::kPlus ? BinaryOp::kAdd : BinaryOp::kSub;
    expr->lhs = lhs;
    expr->rhs = ParseMultiplicative();
    lhs = expr;
  }
  return lhs;
}

Expr* Parser::ParseMultiplicative() {
  Expr* lhs = ParseUnary();
  while (Check(TokenKind::kStar) || Check(TokenKind::kSlash) || Check(TokenKind::kPercent)) {
    Token op = Advance();
    BinaryExpr* expr = unit_->Create<BinaryExpr>(op.location);
    expr->op = op.kind == TokenKind::kStar    ? BinaryOp::kMul
               : op.kind == TokenKind::kSlash ? BinaryOp::kDiv
                                              : BinaryOp::kMod;
    expr->lhs = lhs;
    expr->rhs = ParseUnary();
    lhs = expr;
  }
  return lhs;
}

Expr* Parser::ParseUnary() {
  if (Check(TokenKind::kNot) || Check(TokenKind::kMinus)) {
    // Self-recursive, so it needs its own depth guard: `!!!!...x` never goes
    // back through ParseExpr.
    if (ExprDepthExceeded()) {
      Token op = Advance();  // Consume the operator: progress even here.
      return unit_->Create<NullLiteralExpr>(op.location);
    }
    Token op = Advance();
    UnaryExpr* expr = unit_->Create<UnaryExpr>(op.location);
    expr->op = op.kind == TokenKind::kNot ? UnaryOp::kNot : UnaryOp::kNegate;
    ++expr_depth_;
    expr->operand = ParseUnary();
    --expr_depth_;
    return expr;
  }
  return ParsePostfix();
}

Expr* Parser::ParsePostfix() {
  Expr* expr = ParsePrimary();
  while (Check(TokenKind::kDot)) {
    Token dot = Advance();
    Token member = Expect(TokenKind::kIdentifier, "after '.'");
    if (Check(TokenKind::kLParen)) {
      CallExpr* call = unit_->Create<CallExpr>(dot.location);
      call->base = expr;
      call->callee = std::string(member.text);
      call->args = ParseArgs();
      expr = call;
    } else {
      FieldAccessExpr* access = unit_->Create<FieldAccessExpr>(dot.location);
      access->base = expr;
      access->field = std::string(member.text);
      expr = access;
    }
  }
  return expr;
}

std::vector<Expr*> Parser::ParseArgs() {
  Expect(TokenKind::kLParen, "to open the argument list");
  std::vector<Expr*> args;
  if (!Check(TokenKind::kRParen)) {
    do {
      args.push_back(ParseExpr());
    } while (Match(TokenKind::kComma));
  }
  Expect(TokenKind::kRParen, "to close the argument list");
  return args;
}

Expr* Parser::ParsePrimary() {
  Token token = Current();
  switch (token.kind) {
    case TokenKind::kIntLiteral: {
      Advance();
      auto* expr = unit_->Create<IntLiteralExpr>(token.location);
      expr->value = token.int_value;
      return expr;
    }
    case TokenKind::kStringLiteral: {
      Advance();
      auto* expr = unit_->Create<StringLiteralExpr>(token.location);
      expr->value = token.string_value;
      return expr;
    }
    case TokenKind::kKwTrue:
    case TokenKind::kKwFalse: {
      Advance();
      auto* expr = unit_->Create<BoolLiteralExpr>(token.location);
      expr->value = token.kind == TokenKind::kKwTrue;
      return expr;
    }
    case TokenKind::kKwNull:
      Advance();
      return unit_->Create<NullLiteralExpr>(token.location);
    case TokenKind::kKwThis:
      Advance();
      return unit_->Create<ThisExpr>(token.location);
    case TokenKind::kKwNew: {
      Advance();
      Token name = Expect(TokenKind::kIdentifier, "after 'new'");
      NewExpr* expr = unit_->Create<NewExpr>(token.location);
      expr->class_name = std::string(name.text);
      expr->args = ParseArgs();
      return expr;
    }
    case TokenKind::kLParen: {
      Advance();
      Expr* expr = ParseExpr();
      Expect(TokenKind::kRParen, "to close the parenthesized expression");
      return expr;
    }
    case TokenKind::kIdentifier: {
      Advance();
      if (Check(TokenKind::kLParen)) {
        CallExpr* call = unit_->Create<CallExpr>(token.location);
        call->base = nullptr;
        call->callee = std::string(token.text);
        call->args = ParseArgs();
        return call;
      }
      NameExpr* expr = unit_->Create<NameExpr>(token.location);
      expr->name = std::string(token.text);
      return expr;
    }
    default: {
      diag_.Error(token.location, "expected an expression, got " +
                                      std::string(TokenKindName(token.kind)));
      Advance();
      return unit_->Create<NullLiteralExpr>(token.location);
    }
  }
}

std::unique_ptr<CompilationUnit> ParseSource(std::string name, std::string text,
                                             DiagnosticEngine& diag) {
  auto file = std::make_shared<SourceFile>(std::move(name), std::move(text));
  Parser parser(file, diag);
  return parser.ParseUnit();
}

}  // namespace mj
