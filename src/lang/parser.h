// Recursive-descent parser for mj.

#ifndef WASABI_SRC_LANG_PARSER_H_
#define WASABI_SRC_LANG_PARSER_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/lang/ast.h"
#include "src/lang/diagnostics.h"
#include "src/lang/token.h"

namespace mj {

// Parses one mj source file into a CompilationUnit. On syntax errors the
// parser reports a diagnostic and synchronizes at the next statement/member
// boundary, so a single pass reports multiple errors. Callers should treat the
// returned unit as unusable when `diag.has_errors()`.
class Parser {
 public:
  Parser(std::shared_ptr<const SourceFile> file, DiagnosticEngine& diag);

  std::unique_ptr<CompilationUnit> ParseUnit();

 private:
  // Token cursor helpers.
  const Token& Peek(size_t lookahead = 0) const;
  const Token& Current() const { return Peek(0); }
  Token Advance();
  bool Check(TokenKind kind) const { return Current().kind == kind; }
  bool Match(TokenKind kind);
  Token Expect(TokenKind kind, const char* context);
  bool AtEnd() const { return Current().kind == TokenKind::kEndOfFile; }
  void SynchronizeStmt();
  void SynchronizeMember();

  // Declarations.
  ClassDecl* ParseClass();
  void ParseMember(ClassDecl* cls);

  // Statements.
  Stmt* ParseStmt();
  Stmt* ParseStmtImpl();
  BlockStmt* ParseBlock();
  Stmt* ParseVarDecl();
  Stmt* ParseIf();
  Stmt* ParseWhile();
  Stmt* ParseFor();
  Stmt* ParseSwitch();
  Stmt* ParseTry();
  Stmt* ParseThrow();
  Stmt* ParseReturn();
  // An assignment, increment, or expression statement; used both as a normal
  // statement (with trailing ';') and as a for-clause (without).
  Stmt* ParseSimpleStmt(bool consume_semicolon);

  // Expressions, by descending precedence.
  Expr* ParseExpr();
  Expr* ParseOr();
  Expr* ParseAnd();
  Expr* ParseEquality();
  Expr* ParseRelational();
  Expr* ParseAdditive();
  Expr* ParseMultiplicative();
  Expr* ParseUnary();
  Expr* ParsePostfix();
  Expr* ParsePrimary();
  std::vector<Expr*> ParseArgs();

  // Recursion-depth containment: analyzed input is untrusted, so
  // pathologically nested expressions/statements must produce a diagnostic
  // instead of overflowing the host stack (docs/ROBUSTNESS.md). The limits
  // leave generous headroom over anything the corpus or a human writes.
  static constexpr int kMaxExprDepth = 500;
  static constexpr int kMaxStmtDepth = 400;
  bool ExprDepthExceeded();
  void ReportDepthExceeded();

  std::shared_ptr<const SourceFile> file_;
  DiagnosticEngine& diag_;
  std::unique_ptr<CompilationUnit> unit_;
  std::vector<Token> tokens_;
  // Backs Token::string_value views for the lifetime of tokens_ (taken from
  // the lexer; deque moves keep element addresses stable).
  std::deque<std::string> token_strings_;
  size_t pos_ = 0;
  int expr_depth_ = 0;
  int stmt_depth_ = 0;
  bool depth_error_reported_ = false;
};

// Convenience: lex + parse `text` as file `name`, reporting into `diag`.
std::unique_ptr<CompilationUnit> ParseSource(std::string name, std::string text,
                                             DiagnosticEngine& diag);

}  // namespace mj

#endif  // WASABI_SRC_LANG_PARSER_H_
