#include "src/lang/printer.h"

#include <sstream>

namespace mj {

namespace {

std::string Indent(int indent) {
  return std::string(static_cast<size_t>(indent) * 2, ' ');
}

std::string EscapeString(const std::string& value) {
  std::string out;
  out.reserve(value.size() + 2);
  for (char c : value) {
    switch (c) {
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      default:
        out.push_back(c);
        break;
    }
  }
  return out;
}

const char* BinaryOpText(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "==";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "&&";
    case BinaryOp::kOr:
      return "||";
  }
  return "?";
}

void PrintStmtTo(const Stmt& stmt, int indent, std::ostringstream& out);

void PrintBlockTo(const BlockStmt& block, int indent, std::ostringstream& out) {
  out << "{\n";
  for (const Stmt* child : block.statements) {
    PrintStmtTo(*child, indent + 1, out);
  }
  out << Indent(indent) << "}";
}

void PrintSimpleStmtTo(const Stmt& stmt, std::ostringstream& out) {
  // A statement without trailing newline/semicolon handling, used in for-clauses.
  switch (stmt.kind) {
    case AstKind::kAssign: {
      const auto& assign = static_cast<const AssignStmt&>(stmt);
      out << PrintExpr(*assign.target);
      switch (assign.op) {
        case AssignOp::kAssign:
          out << " = ";
          break;
        case AssignOp::kAddAssign:
          out << " += ";
          break;
        case AssignOp::kSubAssign:
          out << " -= ";
          break;
      }
      out << PrintExpr(*assign.value);
      break;
    }
    case AstKind::kExprStmt:
      out << PrintExpr(*static_cast<const ExprStmt&>(stmt).expr);
      break;
    case AstKind::kVarDecl: {
      const auto& decl = static_cast<const VarDeclStmt&>(stmt);
      out << "var " << decl.name << " = " << PrintExpr(*decl.init);
      break;
    }
    default:
      out << "/* unsupported for-clause */";
      break;
  }
}

void PrintStmtTo(const Stmt& stmt, int indent, std::ostringstream& out) {
  out << Indent(indent);
  switch (stmt.kind) {
    case AstKind::kBlock:
      PrintBlockTo(static_cast<const BlockStmt&>(stmt), indent, out);
      out << "\n";
      break;
    case AstKind::kVarDecl:
    case AstKind::kAssign:
    case AstKind::kExprStmt:
      PrintSimpleStmtTo(stmt, out);
      out << ";\n";
      break;
    case AstKind::kIf: {
      const auto& node = static_cast<const IfStmt&>(stmt);
      out << "if (" << PrintExpr(*node.condition) << ") ";
      if (node.then_branch->kind == AstKind::kBlock) {
        PrintBlockTo(static_cast<const BlockStmt&>(*node.then_branch), indent, out);
      } else {
        out << "{\n";
        PrintStmtTo(*node.then_branch, indent + 1, out);
        out << Indent(indent) << "}";
      }
      if (node.else_branch != nullptr) {
        out << " else ";
        if (node.else_branch->kind == AstKind::kBlock) {
          PrintBlockTo(static_cast<const BlockStmt&>(*node.else_branch), indent, out);
        } else if (node.else_branch->kind == AstKind::kIf) {
          // Print `else if` chains without extra nesting blocks.
          std::ostringstream nested;
          PrintStmtTo(*node.else_branch, indent, nested);
          std::string text = nested.str();
          // Strip the leading indentation so it follows "else " inline.
          out << text.substr(Indent(indent).size(),
                             text.size() - Indent(indent).size() - 1);
          out << "\n";
          return;
        } else {
          out << "{\n";
          PrintStmtTo(*node.else_branch, indent + 1, out);
          out << Indent(indent) << "}";
        }
      }
      out << "\n";
      break;
    }
    case AstKind::kWhile: {
      const auto& node = static_cast<const WhileStmt&>(stmt);
      out << "while (" << PrintExpr(*node.condition) << ") ";
      if (node.body->kind == AstKind::kBlock) {
        PrintBlockTo(static_cast<const BlockStmt&>(*node.body), indent, out);
      } else {
        out << "{\n";
        PrintStmtTo(*node.body, indent + 1, out);
        out << Indent(indent) << "}";
      }
      out << "\n";
      break;
    }
    case AstKind::kFor: {
      const auto& node = static_cast<const ForStmt&>(stmt);
      out << "for (";
      if (node.init != nullptr) {
        PrintSimpleStmtTo(*node.init, out);
      }
      out << "; ";
      if (node.condition != nullptr) {
        out << PrintExpr(*node.condition);
      }
      out << "; ";
      if (node.update != nullptr) {
        PrintSimpleStmtTo(*node.update, out);
      }
      out << ") ";
      if (node.body->kind == AstKind::kBlock) {
        PrintBlockTo(static_cast<const BlockStmt&>(*node.body), indent, out);
      } else {
        out << "{\n";
        PrintStmtTo(*node.body, indent + 1, out);
        out << Indent(indent) << "}";
      }
      out << "\n";
      break;
    }
    case AstKind::kSwitch: {
      const auto& node = static_cast<const SwitchStmt&>(stmt);
      out << "switch (" << PrintExpr(*node.subject) << ") {\n";
      for (const SwitchCase& switch_case : node.cases) {
        if (switch_case.labels.empty()) {
          out << Indent(indent + 1) << "default:\n";
        } else {
          for (const Expr* label : switch_case.labels) {
            out << Indent(indent + 1) << "case " << PrintExpr(*label) << ":\n";
          }
        }
        for (const Stmt* child : switch_case.body) {
          PrintStmtTo(*child, indent + 2, out);
        }
      }
      out << Indent(indent) << "}\n";
      break;
    }
    case AstKind::kTry: {
      const auto& node = static_cast<const TryStmt&>(stmt);
      out << "try ";
      PrintBlockTo(*node.body, indent, out);
      for (const CatchClause& clause : node.catches) {
        out << " catch (" << clause.exception_type << " " << clause.variable << ") ";
        PrintBlockTo(*clause.body, indent, out);
      }
      if (node.finally != nullptr) {
        out << " finally ";
        PrintBlockTo(*node.finally, indent, out);
      }
      out << "\n";
      break;
    }
    case AstKind::kThrow:
      out << "throw " << PrintExpr(*static_cast<const ThrowStmt&>(stmt).value) << ";\n";
      break;
    case AstKind::kReturn: {
      const auto& node = static_cast<const ReturnStmt&>(stmt);
      out << "return";
      if (node.value != nullptr) {
        out << " " << PrintExpr(*node.value);
      }
      out << ";\n";
      break;
    }
    case AstKind::kBreak:
      out << "break;\n";
      break;
    case AstKind::kContinue:
      out << "continue;\n";
      break;
    default:
      out << "/* unsupported statement */\n";
      break;
  }
}

}  // namespace

std::string PrintExpr(const Expr& expr) {
  std::ostringstream out;
  switch (expr.kind) {
    case AstKind::kIntLiteral:
      out << static_cast<const IntLiteralExpr&>(expr).value;
      break;
    case AstKind::kBoolLiteral:
      out << (static_cast<const BoolLiteralExpr&>(expr).value ? "true" : "false");
      break;
    case AstKind::kStringLiteral:
      out << '"' << EscapeString(static_cast<const StringLiteralExpr&>(expr).value) << '"';
      break;
    case AstKind::kNullLiteral:
      out << "null";
      break;
    case AstKind::kName:
      out << static_cast<const NameExpr&>(expr).name;
      break;
    case AstKind::kThis:
      out << "this";
      break;
    case AstKind::kFieldAccess: {
      const auto& node = static_cast<const FieldAccessExpr&>(expr);
      out << PrintExpr(*node.base) << "." << node.field;
      break;
    }
    case AstKind::kCall: {
      const auto& node = static_cast<const CallExpr&>(expr);
      if (node.base != nullptr) {
        out << PrintExpr(*node.base) << ".";
      }
      out << node.callee << "(";
      for (size_t i = 0; i < node.args.size(); ++i) {
        if (i > 0) {
          out << ", ";
        }
        out << PrintExpr(*node.args[i]);
      }
      out << ")";
      break;
    }
    case AstKind::kNew: {
      const auto& node = static_cast<const NewExpr&>(expr);
      out << "new " << node.class_name << "(";
      for (size_t i = 0; i < node.args.size(); ++i) {
        if (i > 0) {
          out << ", ";
        }
        out << PrintExpr(*node.args[i]);
      }
      out << ")";
      break;
    }
    case AstKind::kUnary: {
      const auto& node = static_cast<const UnaryExpr&>(expr);
      out << (node.op == UnaryOp::kNot ? "!" : "-") << "(" << PrintExpr(*node.operand) << ")";
      break;
    }
    case AstKind::kBinary: {
      const auto& node = static_cast<const BinaryExpr&>(expr);
      out << "(" << PrintExpr(*node.lhs) << " " << BinaryOpText(node.op) << " "
          << PrintExpr(*node.rhs) << ")";
      break;
    }
    case AstKind::kInstanceOf: {
      const auto& node = static_cast<const InstanceOfExpr&>(expr);
      out << "(" << PrintExpr(*node.operand) << " instanceof " << node.type_name << ")";
      break;
    }
    default:
      out << "/* unsupported expression */";
      break;
  }
  return out.str();
}

std::string PrintStmt(const Stmt& stmt, int indent) {
  std::ostringstream out;
  PrintStmtTo(stmt, indent, out);
  return out.str();
}

std::string PrintMethod(const MethodDecl& method, int indent) {
  std::ostringstream out;
  out << Indent(indent);
  if (method.is_static) {
    out << "static ";
  }
  out << method.return_type << " " << method.name << "(";
  for (size_t i = 0; i < method.params.size(); ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << method.params[i]->type_name << " " << method.params[i]->name;
  }
  out << ")";
  if (!method.throws.empty()) {
    out << " throws ";
    for (size_t i = 0; i < method.throws.size(); ++i) {
      if (i > 0) {
        out << ", ";
      }
      out << method.throws[i];
    }
  }
  if (method.body == nullptr) {
    out << ";\n";
    return out.str();
  }
  out << " ";
  PrintBlockTo(*method.body, indent, out);
  out << "\n";
  return out.str();
}

std::string PrintClass(const ClassDecl& cls) {
  std::ostringstream out;
  out << "class " << cls.name;
  if (!cls.base_name.empty()) {
    out << " extends " << cls.base_name;
  }
  out << " {\n";
  for (const FieldDecl* field : cls.fields) {
    out << Indent(1) << field->type_name << " " << field->name;
    if (field->init != nullptr) {
      out << " = " << PrintExpr(*field->init);
    }
    out << ";\n";
  }
  if (!cls.fields.empty() && !cls.methods.empty()) {
    out << "\n";
  }
  for (size_t i = 0; i < cls.methods.size(); ++i) {
    if (i > 0) {
      out << "\n";
    }
    out << PrintMethod(*cls.methods[i], 1);
  }
  out << "}\n";
  return out.str();
}

std::string PrintUnit(const CompilationUnit& unit) {
  std::ostringstream out;
  for (size_t i = 0; i < unit.classes().size(); ++i) {
    if (i > 0) {
      out << "\n";
    }
    out << PrintClass(*unit.classes()[i]);
  }
  return out.str();
}

}  // namespace mj
