// Pretty printer for mj ASTs.
//
// Prints a canonical form that the Parser accepts again; `Parse(Print(Parse(s)))`
// is structurally identical to `Parse(s)` (round-trip property tested in
// tests/lang). Comments are not re-emitted (they live in the CompilationUnit
// side table and analyses read them from there).

#ifndef WASABI_SRC_LANG_PRINTER_H_
#define WASABI_SRC_LANG_PRINTER_H_

#include <string>

#include "src/lang/ast.h"

namespace mj {

std::string PrintExpr(const Expr& expr);
std::string PrintStmt(const Stmt& stmt, int indent = 0);
std::string PrintMethod(const MethodDecl& method, int indent = 0);
std::string PrintClass(const ClassDecl& cls);
std::string PrintUnit(const CompilationUnit& unit);

}  // namespace mj

#endif  // WASABI_SRC_LANG_PRINTER_H_
