#include "src/lang/resolve.h"

#include <cassert>

#include "src/lang/sema.h"

namespace mj {
namespace {

// Walks one class at a time, mirroring the interpreter's dynamic scoping
// exactly: a scope opens at method entry (parameters), per block, around a
// for-statement, and per catch clause; everything else (if/while bodies,
// switch cases) declares into the enclosing scope.
class Resolver {
 public:
  Resolver(const ProgramIndex& index, ResolveResult& result) : index_(index), result_(result) {}

  void ResolveClass(ClassDecl& cls) {
    for (FieldDecl* field : cls.fields) {
      field->name_symbol = result_.symbols.Intern(field->name);
      // Field initializers run in a parameterless <init> frame where no local
      // is ever visible: resolve them against an empty binding stack so their
      // names keep the dynamic not-found behavior.
      assert(bindings_.empty());
      ResolveExpr(field->init);
    }
    for (MethodDecl* method : cls.methods) {
      ResolveMethodDecl(*method);
    }
  }

 private:
  struct Binding {
    SymbolId name = kInvalidSymbol;
    SlotIndex slot = kNoSlot;
  };

  void ResolveMethodDecl(MethodDecl& method) {
    method.qualified_cache =
        method.owner == nullptr ? method.name : method.owner->name + "." + method.name;
    method.method_index = result_.method_count++;
    method.max_slots = 0;
    if (method.body == nullptr) {
      return;
    }
    next_slot_ = 0;
    OpenScope();  // The parameter scope the interpreter opens at frame entry.
    for (ParamDecl* param : method.params) {
      param->slot = Declare(param->name);
    }
    ResolveBlock(*method.body);
    CloseScope();
    method.max_slots = next_slot_;
  }

  void OpenScope() { scope_starts_.push_back(bindings_.size()); }

  void CloseScope() {
    // Only the name bindings are rolled back; slots stay unique per method so
    // a dead sibling declaration can never alias a live one.
    bindings_.resize(scope_starts_.back());
    scope_starts_.pop_back();
  }

  SlotIndex Declare(const std::string& name) {
    SymbolId symbol = result_.symbols.Intern(name);
    // Redeclaration in the same scope overwrites the same map entry
    // dynamically, so it reuses the slot (this also makes Declare idempotent
    // for the loop predeclaration pass below).
    for (size_t i = bindings_.size(); i > scope_starts_.back();) {
      --i;
      if (bindings_[i].name == symbol) {
        return bindings_[i].slot;
      }
    }
    SlotIndex slot = static_cast<SlotIndex>(next_slot_++);
    bindings_.push_back({symbol, slot});
    return slot;
  }

  // Annotates `name` with the innermost visible declaration plus the chain of
  // outer same-named candidates. At run time the defined-flags pick the first
  // candidate whose declaration actually executed — which is precisely the
  // entry the reverse scope-map search would have found.
  void ResolveName(NameExpr& name) {
    SymbolId symbol = result_.symbols.Intern(name.name);
    name.slot = kNoSlot;
    name.fallback_chain = kNoNameChain;
    std::vector<SlotIndex> outer;
    for (size_t i = bindings_.size(); i > 0;) {
      --i;
      if (bindings_[i].name != symbol) {
        continue;
      }
      if (name.slot == kNoSlot) {
        name.slot = bindings_[i].slot;
      } else if (bindings_[i].slot != name.slot) {
        outer.push_back(bindings_[i].slot);
      }
    }
    if (!outer.empty()) {
      name.fallback_chain = static_cast<uint32_t>(result_.name_chains.size());
      result_.name_chains.push_back(std::move(outer));
    }
  }

  void ResolveExpr(Expr* expr) {
    if (expr == nullptr) {
      return;
    }
    switch (expr->kind) {
      case AstKind::kName:
        ResolveName(*static_cast<NameExpr*>(expr));
        break;
      case AstKind::kFieldAccess: {
        auto* access = static_cast<FieldAccessExpr*>(expr);
        access->field_symbol = result_.symbols.Intern(access->field);
        ResolveExpr(access->base);
        break;
      }
      case AstKind::kCall: {
        auto* call = static_cast<CallExpr*>(expr);
        call->site_index = result_.call_site_count++;
        if (call->base != nullptr && call->base->kind == AstKind::kName) {
          // Receiver position: besides the variable lookup, cache the
          // class-name fallback (`Helper.run()`); evaluation order between
          // the two stays with the interpreter.
          auto* receiver = static_cast<NameExpr*>(call->base);
          ResolveName(*receiver);
          receiver->class_ref = index_.FindClass(receiver->name);
        } else {
          ResolveExpr(call->base);
        }
        for (Expr* arg : call->args) {
          ResolveExpr(arg);
        }
        break;
      }
      case AstKind::kNew: {
        auto* node = static_cast<NewExpr*>(expr);
        ResolveNew(*node);
        for (Expr* arg : node->args) {
          ResolveExpr(arg);
        }
        break;
      }
      case AstKind::kUnary:
        ResolveExpr(static_cast<UnaryExpr*>(expr)->operand);
        break;
      case AstKind::kBinary:
        ResolveExpr(static_cast<BinaryExpr*>(expr)->lhs);
        ResolveExpr(static_cast<BinaryExpr*>(expr)->rhs);
        break;
      case AstKind::kInstanceOf:
        ResolveExpr(static_cast<InstanceOfExpr*>(expr)->operand);
        break;
      default:
        break;  // Literals and `this`.
    }
  }

  void ResolveNew(NewExpr& node) {
    // Container names win over user classes, matching Instantiate().
    if (node.class_name == "Queue") {
      node.new_kind = NewKind::kQueue;
      return;
    }
    if (node.class_name == "List") {
      node.new_kind = NewKind::kList;
      return;
    }
    if (node.class_name == "Map") {
      node.new_kind = NewKind::kMap;
      return;
    }
    node.class_ref = index_.FindClass(node.class_name);
    if (node.class_ref != nullptr) {
      node.new_kind = NewKind::kUserClass;
      node.init_method = index_.ResolveMethod(*node.class_ref, "init");
      return;
    }
    node.new_kind =
        IsBuiltinException(node.class_name) ? NewKind::kBuiltinException : NewKind::kUnknownClass;
  }

  void ResolveBlock(BlockStmt& block) {
    OpenScope();
    const uint32_t base = next_slot_;
    for (Stmt* stmt : block.statements) {
      ResolveStmt(stmt);
    }
    block.slot_base = base;
    block.slot_count = next_slot_ - base;
    CloseScope();
  }

  // Declarations inside a loop body that land in scopes surviving the
  // iteration boundary (i.e. not inside a block/for/catch of their own) are
  // visible to the condition, the update, and textually-earlier statements on
  // later iterations. Pre-declaring them before the loop's real resolution
  // walk gives those names their slot; the runtime defined-flags reproduce
  // the first-iteration "not declared yet" behavior.
  void PredeclareLoopBody(Stmt* stmt) {
    if (stmt == nullptr) {
      return;
    }
    switch (stmt->kind) {
      case AstKind::kVarDecl:
        Declare(static_cast<VarDeclStmt*>(stmt)->name);
        break;
      case AstKind::kIf: {
        auto* node = static_cast<IfStmt*>(stmt);
        PredeclareLoopBody(node->then_branch);
        PredeclareLoopBody(node->else_branch);
        break;
      }
      case AstKind::kWhile:
        PredeclareLoopBody(static_cast<WhileStmt*>(stmt)->body);
        break;
      case AstKind::kSwitch:
        for (SwitchCase& switch_case : static_cast<SwitchStmt*>(stmt)->cases) {
          for (Stmt* child : switch_case.body) {
            PredeclareLoopBody(child);
          }
        }
        break;
      default:
        // Blocks, for-statements and try/catch open their own per-execution
        // scopes: nothing inside them survives an enclosing-loop iteration.
        break;
    }
  }

  void ResolveStmt(Stmt* stmt) {
    if (stmt == nullptr) {
      return;
    }
    switch (stmt->kind) {
      case AstKind::kBlock:
        ResolveBlock(*static_cast<BlockStmt*>(stmt));
        break;
      case AstKind::kVarDecl: {
        auto* decl = static_cast<VarDeclStmt*>(stmt);
        // The initializer is resolved before the declaration binds, matching
        // `var x = e` evaluating e first.
        ResolveExpr(decl->init);
        decl->slot = Declare(decl->name);
        break;
      }
      case AstKind::kAssign: {
        auto* assign = static_cast<AssignStmt*>(stmt);
        ResolveExpr(assign->target);
        ResolveExpr(assign->value);
        break;
      }
      case AstKind::kExprStmt:
        ResolveExpr(static_cast<ExprStmt*>(stmt)->expr);
        break;
      case AstKind::kIf: {
        auto* node = static_cast<IfStmt*>(stmt);
        ResolveExpr(node->condition);
        ResolveStmt(node->then_branch);
        ResolveStmt(node->else_branch);
        break;
      }
      case AstKind::kWhile: {
        auto* node = static_cast<WhileStmt*>(stmt);
        PredeclareLoopBody(node->body);
        ResolveExpr(node->condition);
        ResolveStmt(node->body);
        break;
      }
      case AstKind::kFor: {
        auto* node = static_cast<ForStmt*>(stmt);
        OpenScope();
        const uint32_t base = next_slot_;
        ResolveStmt(node->init);
        PredeclareLoopBody(node->body);
        ResolveExpr(node->condition);
        ResolveStmt(node->body);
        ResolveStmt(node->update);
        node->slot_base = base;
        node->slot_count = next_slot_ - base;
        CloseScope();
        break;
      }
      case AstKind::kSwitch: {
        auto* node = static_cast<SwitchStmt*>(stmt);
        ResolveExpr(node->subject);
        for (SwitchCase& switch_case : node->cases) {
          for (Expr* label : switch_case.labels) {
            ResolveExpr(label);
          }
          for (Stmt* child : switch_case.body) {
            ResolveStmt(child);
          }
        }
        break;
      }
      case AstKind::kTry: {
        auto* node = static_cast<TryStmt*>(stmt);
        ResolveBlock(*node->body);
        for (CatchClause& clause : node->catches) {
          OpenScope();
          const uint32_t base = next_slot_;
          clause.var_slot = Declare(clause.variable);
          ResolveBlock(*clause.body);
          clause.slot_base = base;
          clause.slot_count = next_slot_ - base;
          CloseScope();
        }
        if (node->finally != nullptr) {
          ResolveBlock(*node->finally);
        }
        break;
      }
      case AstKind::kThrow:
        ResolveExpr(static_cast<ThrowStmt*>(stmt)->value);
        break;
      case AstKind::kReturn:
        ResolveExpr(static_cast<ReturnStmt*>(stmt)->value);
        break;
      default:
        break;  // break/continue.
    }
  }

  const ProgramIndex& index_;
  ResolveResult& result_;
  std::vector<Binding> bindings_;
  std::vector<size_t> scope_starts_;
  uint32_t next_slot_ = 0;
};

FieldLayout BuildFieldLayout(const ClassDecl& cls, const ProgramIndex& index,
                             SymbolTable& symbols) {
  FieldLayout layout;
  layout.init_frame_name = cls.name + ".<init>";
  // Base-first chain, bounded like NewInstance's walk.
  std::vector<const ClassDecl*> chain;
  const ClassDecl* current = &cls;
  for (int depth = 0; current != nullptr && depth < 64; ++depth) {
    chain.push_back(current);
    current = current->base_name.empty() ? nullptr : index.FindClass(current->base_name);
  }
  for (size_t i = chain.size(); i > 0;) {
    --i;
    for (const FieldDecl* field : chain[i]->fields) {
      SymbolId symbol = symbols.Intern(field->name);
      auto [it, inserted] = layout.slot_of.emplace(symbol, layout.field_count);
      if (inserted) {
        ++layout.field_count;
      }
      // Duplicates keep their init step (every initializer runs; later writes
      // to the shared slot win, like the old per-name map).
      layout.init_order.push_back({field, it->second});
    }
  }
  return layout;
}

}  // namespace

ResolveResult ResolveProgram(const Program& program, const ProgramIndex& index) {
  ResolveResult result;
  Resolver resolver(index, result);
  for (const auto& unit : program.units()) {
    for (ClassDecl* cls : unit->classes()) {
      result.field_layouts.emplace(cls, BuildFieldLayout(*cls, index, result.symbols));
      resolver.ResolveClass(*cls);
    }
  }
  return result;
}

}  // namespace mj
