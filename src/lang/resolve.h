// One-time resolution pass over a Program (docs/PERFORMANCE.md).
//
// ProgramIndex runs this at construction, annotating the AST in place so the
// interpreter's hot path becomes index arithmetic instead of string-keyed map
// traffic:
//
//   - every local declaration (params, var-decls, catch variables) gets a
//     frame slot, unique within its method;
//   - every NameExpr gets the slot of its innermost visible declaration plus a
//     fallback chain of outer same-named candidates, which together replicate
//     the dynamic scope-map search exactly (including conditional declarations
//     that may or may not have executed);
//   - every block/for/catch records the slot range of its subtree so frame
//     entry can invalidate exactly the declarations a fresh scope map would
//     drop;
//   - every CallExpr gets a dense site index keying the dispatch cache;
//   - every class gets a FieldLayout interning field names and assigning
//     object slots, so instances store declared fields in a flat vector.
//
// The pass is deterministic and idempotent: resolving the same Program twice
// (even from two ProgramIndex instances) produces identical annotations, so a
// shared immutable Program stays safe to annotate before workers start.

#ifndef WASABI_SRC_LANG_RESOLVE_H_
#define WASABI_SRC_LANG_RESOLVE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/lang/ast.h"
#include "src/lang/symtab.h"

namespace mj {

class Program;
class ProgramIndex;

// One field-initializer execution step of `new Cls(...)`.
struct FieldInitStep {
  const FieldDecl* field = nullptr;
  uint32_t slot = 0;
};

// Flat storage layout for a class's declared fields, base classes included.
struct FieldLayout {
  // Base-first initialization order. Duplicate declarations of one name (in a
  // class or across its bases) all appear — each initializer still runs — but
  // share one slot, so later writes win exactly like the old field map.
  std::vector<FieldInitStep> init_order;
  std::unordered_map<SymbolId, uint32_t> slot_of;
  uint32_t field_count = 0;
  // "Cls.<init>" — stable backing for the constructor frame's name.
  std::string init_frame_name;

  const uint32_t* SlotOf(SymbolId symbol) const {
    auto it = slot_of.find(symbol);
    return it == slot_of.end() ? nullptr : &it->second;
  }
};

struct ResolveResult {
  SymbolTable symbols;
  // Fallback slot chains referenced by NameExpr::fallback_chain.
  std::vector<std::vector<SlotIndex>> name_chains;
  // Layouts for every class in the program (duplicate-name losers included).
  std::unordered_map<const ClassDecl*, FieldLayout> field_layouts;
  uint32_t call_site_count = 0;
  // Methods annotated (MethodDecl::method_index values are [0, method_count)).
  uint32_t method_count = 0;
};

// Annotates every class of every unit in `program`. Must run single-threaded,
// before the program is shared across interpreter workers.
ResolveResult ResolveProgram(const Program& program, const ProgramIndex& index);

}  // namespace mj

#endif  // WASABI_SRC_LANG_RESOLVE_H_
