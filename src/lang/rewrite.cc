#include "src/lang/rewrite.h"

#include <memory>
#include <utility>

#include "src/lang/diagnostics.h"
#include "src/lang/parser.h"
#include "src/lang/printer.h"

namespace mj {

namespace {

struct ParsedUnit {
  std::unique_ptr<CompilationUnit> unit;
  std::string error;
};

ParsedUnit ParseChecked(const std::string& file_name, const std::string& source,
                        const char* what) {
  ParsedUnit parsed;
  DiagnosticEngine diag;
  parsed.unit = ParseSource(file_name, source, diag);
  if (diag.has_errors()) {
    parsed.error = std::string(what) + " does not parse:\n" + diag.FormatAll(nullptr);
    parsed.unit.reset();
  }
  return parsed;
}

ClassDecl* FindClass(CompilationUnit& unit, const std::string& name) {
  for (ClassDecl* cls : unit.classes()) {
    if (cls->name == name) {
      return cls;
    }
  }
  return nullptr;
}

MethodDecl* FindMethod(ClassDecl& cls, const std::string& name) {
  for (MethodDecl* method : cls.methods) {
    if (method->name == name) {
      return method;
    }
  }
  return nullptr;
}

}  // namespace

RewriteResult RewriteMethod(const std::string& file_name, const std::string& source,
                            const std::string& class_name, const std::string& method_name,
                            const MethodMutator& mutator) {
  RewriteResult result;

  // Two independent parses: one to mutate, one kept pristine for the
  // leak check below.
  ParsedUnit mutable_parse = ParseChecked(file_name, source, "original source");
  if (mutable_parse.unit == nullptr) {
    result.error = mutable_parse.error;
    return result;
  }
  ParsedUnit pristine_parse = ParseChecked(file_name, source, "original source");
  if (pristine_parse.unit == nullptr) {
    result.error = pristine_parse.error;
    return result;
  }

  ClassDecl* cls = FindClass(*mutable_parse.unit, class_name);
  if (cls == nullptr) {
    result.error = "class '" + class_name + "' not found in " + file_name;
    return result;
  }
  MethodDecl* method = FindMethod(*cls, method_name);
  if (method == nullptr || method->body == nullptr) {
    result.error = "method '" + class_name + "." + method_name + "' not found (or has no body)";
    return result;
  }

  std::string mutator_error;
  if (!mutator(*mutable_parse.unit, *cls, *method, &mutator_error)) {
    result.error = mutator_error.empty() ? "mutation preconditions not met" : mutator_error;
    return result;
  }

  const std::string patched = PrintUnit(*mutable_parse.unit);

  // Property 1: the patch parses.
  ParsedUnit reparse = ParseChecked(file_name, patched, "patched source");
  if (reparse.unit == nullptr) {
    result.error = reparse.error;
    return result;
  }

  // Property 2: printer fixpoint — re-printing the re-parse must not move.
  if (PrintUnit(*reparse.unit) != patched) {
    result.error = "patched source is not a printer fixpoint";
    return result;
  }

  // Property 3: nothing outside the target method changed. Compare the
  // pristine parse against the re-parse class by class, method by method
  // (the printer is canonical, so byte equality of PrintMethod output is
  // structural equality).
  const auto& pristine_classes = pristine_parse.unit->classes();
  const auto& patched_classes = reparse.unit->classes();
  if (pristine_classes.size() != patched_classes.size()) {
    result.error = "rewrite changed the class list";
    return result;
  }
  for (size_t ci = 0; ci < pristine_classes.size(); ++ci) {
    const ClassDecl* before = pristine_classes[ci];
    const ClassDecl* after = patched_classes[ci];
    if (before->name != after->name || before->methods.size() != after->methods.size() ||
        before->fields.size() != after->fields.size()) {
      result.error = "rewrite changed the shape of class '" + before->name + "'";
      return result;
    }
    for (size_t mi = 0; mi < before->methods.size(); ++mi) {
      const MethodDecl* method_before = before->methods[mi];
      const MethodDecl* method_after = after->methods[mi];
      if (method_before->name != method_after->name) {
        result.error = "rewrite renamed a method in class '" + before->name + "'";
        return result;
      }
      if (before->name == class_name && method_before->name == method_name) {
        continue;  // The one method a patch may change.
      }
      if (PrintMethod(*method_before, 1) != PrintMethod(*method_after, 1)) {
        result.error = "rewrite leaked into '" + before->name + "." + method_before->name + "'";
        return result;
      }
    }
  }

  result.ok = true;
  result.patched_source = patched;
  return result;
}

}  // namespace mj
