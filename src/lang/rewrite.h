// AST-level method rewriting for the automated-repair pipeline
// (docs/REPAIR.md).
//
// A repair patch is a mutation of ONE method's AST, applied to a freshly
// parsed copy of the unit and materialized through the canonical printer, so
// the patched file is guaranteed to round-trip parse -> print -> parse. The
// rewriter verifies three properties before returning a patch:
//
//   1. The patched source parses with no diagnostics.
//   2. Printing the re-parse reproduces the patched source byte for byte
//      (the printer-fixpoint property the fuzzer pins for unpatched code).
//   3. Every method OTHER than the declared target prints byte-identically
//      to its pristine form — a mutation that leaks outside its target is
//      rejected here, before any validation campaign spends time on it.
//
// Comments are not re-emitted by the printer (they live in the unit's side
// table), so a patched file is the canonical printed form of the whole unit.
// Per-file cache keys (docs/CACHING.md) digest the text, so the patched file
// invalidates exactly its own entries and every other file stays warm.

#ifndef WASABI_SRC_LANG_REWRITE_H_
#define WASABI_SRC_LANG_REWRITE_H_

#include <functional>
#include <string>

#include "src/lang/ast.h"

namespace mj {

// Mutates `method` (owned by `unit`, declared on `cls`) in place. Returns
// false with `error` set when the method does not have the shape the
// mutation needs (e.g. no retry loop); the rewrite is then abandoned with no
// output. New nodes must be allocated via unit.Create<T>(...).
using MethodMutator =
    std::function<bool(CompilationUnit& unit, ClassDecl& cls, MethodDecl& method,
                       std::string* error)>;

struct RewriteResult {
  bool ok = false;
  std::string error;           // Why the rewrite was rejected, when !ok.
  std::string patched_source;  // Canonical printed form of the patched unit.
};

// Parses `source` (as file `file_name`), applies `mutator` to
// `class_name::method_name`, prints, and verifies the three properties above.
RewriteResult RewriteMethod(const std::string& file_name, const std::string& source,
                            const std::string& class_name, const std::string& method_name,
                            const MethodMutator& mutator);

}  // namespace mj

#endif  // WASABI_SRC_LANG_REWRITE_H_
