#include "src/lang/sema.h"

#include <algorithm>
#include <unordered_set>

namespace mj {

const std::vector<std::string> ProgramIndex::kNoThrows = {};

CompilationUnit* Program::AddUnit(std::unique_ptr<CompilationUnit> unit) {
  units_.push_back(std::move(unit));
  return units_.back().get();
}

const std::vector<BuiltinException>& BuiltinExceptions() {
  // Mirrors the exception types named by the paper's studied bugs (§2) plus
  // the common Java types the corpus applications use. `typically_transient`
  // is ground-truth metadata for corpus generation.
  static const std::vector<BuiltinException> kExceptions = {
      {"Exception", "", false},
      {"RuntimeException", "Exception", false},
      {"NullPointerException", "RuntimeException", false},
      {"IllegalArgumentException", "RuntimeException", false},
      {"IllegalStateException", "RuntimeException", false},
      {"UnsupportedOperationException", "RuntimeException", false},
      {"ArithmeticException", "RuntimeException", false},
      {"IOException", "Exception", true},
      {"ConnectException", "IOException", true},
      {"SocketException", "IOException", true},
      {"SocketTimeoutException", "IOException", true},
      {"EOFException", "IOException", false},
      {"FileNotFoundException", "IOException", false},
      {"AccessControlException", "IOException", false},
      {"RemoteException", "IOException", true},
      {"TimeoutException", "Exception", true},
      {"InterruptedException", "Exception", false},
      {"KeeperException", "Exception", true},
      {"KeeperConnectionLossException", "KeeperException", true},
      {"KeeperRequestTimeoutException", "KeeperException", true},
      {"TTransportException", "Exception", true},
      {"ServiceUnavailableException", "Exception", true},
      {"ResourceExhaustedException", "Exception", true},
      {"LeaseExpiredException", "Exception", true},
      {"ExitException", "Exception", false},
      {"HadoopException", "Exception", false},          // Generic wrapper type.
      {"RetriableException", "Exception", true},
      {"UnknownTopicOrPartitionException", "RetriableException", true},
      {"CoordinatorLoadInProgressException", "RetriableException", true},
      {"CommitFailedException", "Exception", false},
      {"TaskCanceledException", "Exception", false},
      {"ShutdownException", "Exception", false},
      {"AssertionError", "Exception", false},           // Thrown by Assert builtins.
  };
  return kExceptions;
}

namespace {

const std::unordered_map<std::string_view, const BuiltinException*>& BuiltinExceptionMap() {
  static const auto* kMap = [] {
    auto* map = new std::unordered_map<std::string_view, const BuiltinException*>();
    for (const BuiltinException& exc : BuiltinExceptions()) {
      map->emplace(exc.name, &exc);
    }
    return map;
  }();
  return *kMap;
}

}  // namespace

bool IsBuiltinException(std::string_view name) {
  return BuiltinExceptionMap().count(name) > 0;
}

ProgramIndex::ProgramIndex(const Program& program, DiagnosticEngine* diag) {
  for (const auto& unit : program.units()) {
    for (const ClassDecl* cls : unit->classes()) {
      auto [it, inserted] = classes_by_name_.emplace(cls->name, cls);
      if (!inserted && diag != nullptr) {
        diag->Error(cls->location, "duplicate class '" + cls->name + "'");
      }
      if (inserted) {
        all_classes_.push_back(cls);
        unit_of_class_.emplace(cls, unit.get());
        for (const MethodDecl* method : cls->methods) {
          all_methods_.push_back(method);
          methods_by_name_[method->name].push_back(method);
          methods_by_qualified_name_.emplace(method->QualifiedName(), method);
        }
      }
    }
  }
  // Annotate the AST for the interpreter's slot frames, dispatch cache and
  // field layouts. Deterministic and idempotent, so building several indexes
  // over one program is safe (each produces identical annotations).
  resolution_ = ResolveProgram(program, *this);
}

const ClassDecl* ProgramIndex::FindClass(std::string_view name) const {
  auto it = classes_by_name_.find(name);
  return it == classes_by_name_.end() ? nullptr : it->second;
}

const CompilationUnit* ProgramIndex::UnitOf(const ClassDecl& cls) const {
  auto it = unit_of_class_.find(&cls);
  return it == unit_of_class_.end() ? nullptr : it->second;
}

const CompilationUnit* ProgramIndex::UnitOfMethod(const MethodDecl& method) const {
  return method.owner == nullptr ? nullptr : UnitOf(*method.owner);
}

const MethodDecl* ProgramIndex::ResolveMethod(const ClassDecl& cls,
                                              std::string_view name) const {
  const ClassDecl* current = &cls;
  // Bounded walk defends against base cycles without per-call allocation.
  for (int depth = 0; current != nullptr && depth < 64; ++depth) {
    for (const MethodDecl* method : current->methods) {
      if (method->name == name) {
        return method;
      }
    }
    current = current->base_name.empty() ? nullptr : FindClass(current->base_name);
  }
  return nullptr;
}

const MethodDecl* ProgramIndex::FindQualified(std::string_view qualified_name) const {
  auto it = methods_by_qualified_name_.find(qualified_name);
  return it == methods_by_qualified_name_.end() ? nullptr : it->second;
}

std::vector<const MethodDecl*> ProgramIndex::MethodsNamed(std::string_view name) const {
  auto it = methods_by_name_.find(name);
  return it == methods_by_name_.end() ? std::vector<const MethodDecl*>{} : it->second;
}

bool ProgramIndex::IsExceptionType(std::string_view name) const {
  if (IsBuiltinException(name)) {
    return true;
  }
  // A user class is an exception type if its base chain reaches a builtin
  // exception.
  const ClassDecl* cls = FindClass(name);
  std::unordered_set<const ClassDecl*> visited;
  while (cls != nullptr && visited.insert(cls).second) {
    if (IsBuiltinException(cls->base_name)) {
      return true;
    }
    cls = cls->base_name.empty() ? nullptr : FindClass(cls->base_name);
  }
  return false;
}

std::string_view ProgramIndex::ParentOf(std::string_view type) const {
  auto it = BuiltinExceptionMap().find(type);
  if (it != BuiltinExceptionMap().end()) {
    return it->second->parent;
  }
  const ClassDecl* cls = FindClass(type);
  if (cls != nullptr) {
    return cls->base_name;
  }
  return {};
}

bool ProgramIndex::IsSubtype(std::string_view sub, std::string_view super) const {
  std::string_view current = sub;
  // Bounded walk defends against accidental extends-cycles in corpus source.
  for (int depth = 0; depth < 64 && !current.empty(); ++depth) {
    if (current == super) {
      return true;
    }
    current = ParentOf(current);
  }
  return false;
}

const std::vector<std::string>& ProgramIndex::DeclaredThrows(const MethodDecl& method) const {
  if (method.throws.empty()) {
    return kNoThrows;
  }
  return method.throws;
}

std::vector<std::string> ProgramIndex::PotentialThrows(const MethodDecl& method) const {
  std::vector<std::string> result = method.throws;
  std::unordered_set<std::string> seen(result.begin(), result.end());
  if (method.body != nullptr) {
    WalkStmts(
        method.body,
        [&](const Stmt& stmt) {
          if (stmt.kind != AstKind::kThrow) {
            return;
          }
          const Expr* value = static_cast<const ThrowStmt&>(stmt).value;
          if (value != nullptr && value->kind == AstKind::kNew) {
            const std::string& name = static_cast<const NewExpr*>(value)->class_name;
            if (seen.insert(name).second) {
              result.push_back(name);
            }
          }
        },
        [](const Expr&) {});
  }
  return result;
}

}  // namespace mj
