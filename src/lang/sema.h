// Program-level semantic index for mj.
//
// A Program is a set of compilation units (one per file) that together form an
// application. The ProgramIndex provides the name-based lookups every later
// stage needs: class and method resolution, the exception type hierarchy
// (builtin Java-like exceptions plus user classes extending them), and
// callee-signature exception inference ("which exceptions could method M
// throw"), which is how the paper's CodeQL queries find retry triggers.

#ifndef WASABI_SRC_LANG_SEMA_H_
#define WASABI_SRC_LANG_SEMA_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/lang/ast.h"
#include "src/lang/diagnostics.h"
#include "src/lang/resolve.h"
#include "src/lang/symtab.h"

namespace mj {

// Transparent hasher so string_view lookups hit string-keyed maps without
// materializing a std::string per query (hot on the interpreter's slow paths).
struct StringHash {
  using is_transparent = void;
  size_t operator()(std::string_view text) const { return std::hash<std::string_view>{}(text); }
};

// A whole application: owns its compilation units.
class Program {
 public:
  Program() = default;
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  CompilationUnit* AddUnit(std::unique_ptr<CompilationUnit> unit);

  const std::vector<std::unique_ptr<CompilationUnit>>& units() const { return units_; }

 private:
  std::vector<std::unique_ptr<CompilationUnit>> units_;
};

// One entry of the builtin exception hierarchy.
struct BuiltinException {
  std::string_view name;
  std::string_view parent;  // Empty for the root ("Exception").
  // True when production systems typically consider this error transient, i.e.
  // a sensible retry trigger. Used by corpus generation and ground truth, not
  // by the detectors themselves (the paper's point is that systems must decide
  // this, and often get it wrong).
  bool typically_transient;
};

// The preloaded exception hierarchy: Java-like names used across the corpus,
// mirroring the exception types that appear in the paper's studied bugs.
const std::vector<BuiltinException>& BuiltinExceptions();

// True if `name` is one of the builtin exception type names.
bool IsBuiltinException(std::string_view name);

// Name-based program index. Construction never fails; unresolved names simply
// yield null lookups (mj is dynamically checked, like the paper's subject
// systems are to the analyses that only see one file at a time).
class ProgramIndex {
 public:
  // `diag` may be null; when provided, duplicate class definitions are reported.
  explicit ProgramIndex(const Program& program, DiagnosticEngine* diag = nullptr);

  const ClassDecl* FindClass(std::string_view name) const;
  const CompilationUnit* UnitOf(const ClassDecl& cls) const;
  const CompilationUnit* UnitOfMethod(const MethodDecl& method) const;

  // Resolves `name` against `cls` and its base chain; null if absent.
  const MethodDecl* ResolveMethod(const ClassDecl& cls, std::string_view name) const;

  // Finds a method by qualified name "Class.method"; null if absent.
  const MethodDecl* FindQualified(std::string_view qualified_name) const;

  // All methods with simple name `name` across the program (best-effort call
  // resolution when the receiver's class is unknown).
  std::vector<const MethodDecl*> MethodsNamed(std::string_view name) const;

  // True for builtin exceptions, and for user classes that (transitively)
  // extend an exception type.
  bool IsExceptionType(std::string_view name) const;

  // Subtype test across user classes and builtin exceptions. A type is a
  // subtype of itself.
  bool IsSubtype(std::string_view sub, std::string_view super) const;

  // Immediate supertype name, or empty for roots/unknown types.
  std::string_view ParentOf(std::string_view type) const;

  // Exceptions the method's signature declares (the paper's "prototype" view).
  const std::vector<std::string>& DeclaredThrows(const MethodDecl& method) const;

  // Declared throws plus exception types directly constructed by `throw new E(...)`
  // statements in the body. This approximates interprocedural may-throw without
  // whole-program dataflow, which is exactly the precision CodeQL-style checks
  // in the paper work at.
  std::vector<std::string> PotentialThrows(const MethodDecl& method) const;

  const std::vector<const ClassDecl*>& all_classes() const { return all_classes_; }
  const std::vector<const MethodDecl*>& all_methods() const { return all_methods_; }

  // --- Resolution-pass output (the interpreter's fast path) ----------------
  // Construction runs ResolveProgram over the (shared, immutable) program;
  // see src/lang/resolve.h and docs/PERFORMANCE.md.

  const SymbolTable& symbols() const { return resolution_.symbols; }

  // Flat field layout of `cls` (present for every class of this program).
  const FieldLayout& field_layout(const ClassDecl& cls) const {
    return resolution_.field_layouts.at(&cls);
  }

  // Fallback slots behind NameExpr::fallback_chain.
  const std::vector<SlotIndex>& name_chain(uint32_t chain) const {
    return resolution_.name_chains[chain];
  }

  // Number of CallExpr sites in the program; sizes dispatch caches.
  uint32_t call_site_count() const { return resolution_.call_site_count; }

  // Number of methods annotated by the resolution pass; sizes per-method side
  // tables (MethodDecl::method_index is dense in [0, method_count)).
  uint32_t method_count() const { return resolution_.method_count; }

 private:
  std::unordered_map<std::string, const ClassDecl*, StringHash, std::equal_to<>> classes_by_name_;
  std::unordered_map<const ClassDecl*, const CompilationUnit*> unit_of_class_;
  std::unordered_map<std::string, std::vector<const MethodDecl*>, StringHash, std::equal_to<>>
      methods_by_name_;
  std::unordered_map<std::string, const MethodDecl*, StringHash, std::equal_to<>>
      methods_by_qualified_name_;
  std::vector<const ClassDecl*> all_classes_;
  std::vector<const MethodDecl*> all_methods_;
  ResolveResult resolution_;
  static const std::vector<std::string> kNoThrows;
};

}  // namespace mj

#endif  // WASABI_SRC_LANG_SEMA_H_
