#include "src/lang/source.h"

#include <algorithm>
#include <cassert>

namespace mj {

SourceFile::SourceFile(std::string name, std::string text)
    : name_(std::move(name)), text_(std::move(text)) {
  line_offsets_.push_back(0);
  for (uint32_t i = 0; i < text_.size(); ++i) {
    if (text_[i] == '\n' && i + 1 < text_.size()) {
      line_offsets_.push_back(i + 1);
    }
  }
}

uint32_t SourceFile::line_count() const {
  return static_cast<uint32_t>(line_offsets_.size());
}

SourceLocation SourceFile::LocationFor(uint32_t offset) const {
  offset = std::min<uint32_t>(offset, static_cast<uint32_t>(text_.size()));
  auto it = std::upper_bound(line_offsets_.begin(), line_offsets_.end(), offset);
  assert(it != line_offsets_.begin());
  uint32_t line_index = static_cast<uint32_t>(it - line_offsets_.begin() - 1);
  SourceLocation loc;
  loc.offset = offset;
  loc.line = line_index + 1;
  loc.column = offset - line_offsets_[line_index] + 1;
  return loc;
}

std::string_view SourceFile::LineText(uint32_t line) const {
  if (line == 0 || line > line_count()) {
    return {};
  }
  uint32_t start = line_offsets_[line - 1];
  uint32_t end = line < line_count() ? line_offsets_[line] : static_cast<uint32_t>(text_.size());
  std::string_view view(text_);
  view = view.substr(start, end - start);
  while (!view.empty() && (view.back() == '\n' || view.back() == '\r')) {
    view.remove_suffix(1);
  }
  return view;
}

std::string FormatLocation(const SourceFile& file, const SourceLocation& loc) {
  return file.name() + ":" + std::to_string(loc.line) + ":" + std::to_string(loc.column);
}

}  // namespace mj
