// Source text management for MiniJava (mj) compilation units.
//
// MiniJava is the Java-like substrate language this repository uses in place of
// the Java subject systems studied by the WASABI paper (SOSP'24). A SourceFile
// owns the raw text of one compilation unit; SourceLocation values index into
// it and can be rendered as "file:line:col" for diagnostics and bug reports.

#ifndef WASABI_SRC_LANG_SOURCE_H_
#define WASABI_SRC_LANG_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace mj {

// A position inside a source file. Offsets are byte offsets; line and column
// are 1-based and derived lazily by SourceFile.
struct SourceLocation {
  uint32_t offset = 0;
  uint32_t line = 0;    // 1-based; 0 means "unknown".
  uint32_t column = 0;  // 1-based; 0 means "unknown".

  bool IsValid() const { return line != 0; }
};

// One mj source file: a name (used in reports, e.g. "hbase/UnassignProcedure.mj")
// and its full text. Line offsets are precomputed so location lookups are
// O(log #lines).
class SourceFile {
 public:
  SourceFile(std::string name, std::string text);

  const std::string& name() const { return name_; }
  std::string_view text() const { return text_; }

  // Total number of lines (a trailing newline does not start a new line).
  uint32_t line_count() const;

  // Builds a full SourceLocation (line/column) for a byte offset. Offsets past
  // the end of the file are clamped to the last position.
  SourceLocation LocationFor(uint32_t offset) const;

  // Returns the text of a 1-based line without its trailing newline.
  std::string_view LineText(uint32_t line) const;

 private:
  std::string name_;
  std::string text_;
  std::vector<uint32_t> line_offsets_;  // Byte offset of the start of each line.
};

// Renders "name:line:col" for report output.
std::string FormatLocation(const SourceFile& file, const SourceLocation& loc);

}  // namespace mj

#endif  // WASABI_SRC_LANG_SOURCE_H_
