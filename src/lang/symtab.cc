#include "src/lang/symtab.h"

#include <cassert>

namespace mj {

SymbolId SymbolTable::Intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) {
    return it->second;
  }
  storage_.emplace_back(name);
  SymbolId id = static_cast<SymbolId>(storage_.size() - 1);
  ids_.emplace(std::string_view(storage_.back()), id);
  return id;
}

SymbolId SymbolTable::Lookup(std::string_view name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidSymbol : it->second;
}

std::string_view SymbolTable::Name(SymbolId id) const {
  assert(id < storage_.size());
  return storage_[id];
}

}  // namespace mj
