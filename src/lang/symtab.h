// Symbol interning for mj identifiers.
//
// The interpreter hot path (docs/PERFORMANCE.md) replaces string-keyed maps
// with dense indices; the SymbolTable is the bridge: every identifier spelling
// is interned once into a SymbolId, and all later comparisons/lookups are
// integer operations. Interned spellings have stable addresses (deque
// storage), so string_views handed out by Name() stay valid for the table's
// lifetime.

#ifndef WASABI_SRC_LANG_SYMTAB_H_
#define WASABI_SRC_LANG_SYMTAB_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace mj {

using SymbolId = uint32_t;
inline constexpr SymbolId kInvalidSymbol = 0xFFFFFFFF;

class SymbolTable {
 public:
  // Returns the id of `name`, interning it on first sight.
  SymbolId Intern(std::string_view name);

  // Returns the id of `name`, or kInvalidSymbol when it was never interned.
  SymbolId Lookup(std::string_view name) const;

  // The interned spelling. Valid for the table's lifetime.
  std::string_view Name(SymbolId id) const;

  size_t size() const { return storage_.size(); }

 private:
  // Deque keeps element addresses stable, so ids_ can key on views into it.
  std::deque<std::string> storage_;
  std::unordered_map<std::string_view, SymbolId> ids_;
};

}  // namespace mj

#endif  // WASABI_SRC_LANG_SYMTAB_H_
