#include "src/lang/token.h"

#include <unordered_map>

namespace mj {

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEndOfFile:
      return "end of file";
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kIntLiteral:
      return "integer literal";
    case TokenKind::kStringLiteral:
      return "string literal";
    case TokenKind::kKwClass:
      return "'class'";
    case TokenKind::kKwExtends:
      return "'extends'";
    case TokenKind::kKwVar:
      return "'var'";
    case TokenKind::kKwIf:
      return "'if'";
    case TokenKind::kKwElse:
      return "'else'";
    case TokenKind::kKwWhile:
      return "'while'";
    case TokenKind::kKwFor:
      return "'for'";
    case TokenKind::kKwSwitch:
      return "'switch'";
    case TokenKind::kKwCase:
      return "'case'";
    case TokenKind::kKwDefault:
      return "'default'";
    case TokenKind::kKwTry:
      return "'try'";
    case TokenKind::kKwCatch:
      return "'catch'";
    case TokenKind::kKwFinally:
      return "'finally'";
    case TokenKind::kKwThrow:
      return "'throw'";
    case TokenKind::kKwThrows:
      return "'throws'";
    case TokenKind::kKwReturn:
      return "'return'";
    case TokenKind::kKwBreak:
      return "'break'";
    case TokenKind::kKwContinue:
      return "'continue'";
    case TokenKind::kKwNew:
      return "'new'";
    case TokenKind::kKwThis:
      return "'this'";
    case TokenKind::kKwNull:
      return "'null'";
    case TokenKind::kKwTrue:
      return "'true'";
    case TokenKind::kKwFalse:
      return "'false'";
    case TokenKind::kKwInstanceof:
      return "'instanceof'";
    case TokenKind::kKwStatic:
      return "'static'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kAssign:
      return "'='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPercent:
      return "'%'";
    case TokenKind::kEq:
      return "'=='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kAndAnd:
      return "'&&'";
    case TokenKind::kOrOr:
      return "'||'";
    case TokenKind::kNot:
      return "'!'";
    case TokenKind::kPlusPlus:
      return "'++'";
    case TokenKind::kMinusMinus:
      return "'--'";
    case TokenKind::kPlusAssign:
      return "'+='";
    case TokenKind::kMinusAssign:
      return "'-='";
  }
  return "unknown";
}

TokenKind KeywordKind(std::string_view text) {
  static const std::unordered_map<std::string_view, TokenKind> kKeywords = {
      {"class", TokenKind::kKwClass},
      {"extends", TokenKind::kKwExtends},
      {"var", TokenKind::kKwVar},
      {"if", TokenKind::kKwIf},
      {"else", TokenKind::kKwElse},
      {"while", TokenKind::kKwWhile},
      {"for", TokenKind::kKwFor},
      {"switch", TokenKind::kKwSwitch},
      {"case", TokenKind::kKwCase},
      {"default", TokenKind::kKwDefault},
      {"try", TokenKind::kKwTry},
      {"catch", TokenKind::kKwCatch},
      {"finally", TokenKind::kKwFinally},
      {"throw", TokenKind::kKwThrow},
      {"throws", TokenKind::kKwThrows},
      {"return", TokenKind::kKwReturn},
      {"break", TokenKind::kKwBreak},
      {"continue", TokenKind::kKwContinue},
      {"new", TokenKind::kKwNew},
      {"this", TokenKind::kKwThis},
      {"null", TokenKind::kKwNull},
      {"true", TokenKind::kKwTrue},
      {"false", TokenKind::kKwFalse},
      {"instanceof", TokenKind::kKwInstanceof},
      {"static", TokenKind::kKwStatic},
  };
  auto it = kKeywords.find(text);
  return it == kKeywords.end() ? TokenKind::kIdentifier : it->second;
}

}  // namespace mj
