// Token definitions for the mj lexer.

#ifndef WASABI_SRC_LANG_TOKEN_H_
#define WASABI_SRC_LANG_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/lang/source.h"
#include "src/lang/symtab.h"

namespace mj {

enum class TokenKind : uint8_t {
  kEndOfFile,

  // Literals and names.
  kIdentifier,
  kIntLiteral,
  kStringLiteral,

  // Keywords.
  kKwClass,
  kKwExtends,
  kKwVar,
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwFor,
  kKwSwitch,
  kKwCase,
  kKwDefault,
  kKwTry,
  kKwCatch,
  kKwFinally,
  kKwThrow,
  kKwThrows,
  kKwReturn,
  kKwBreak,
  kKwContinue,
  kKwNew,
  kKwThis,
  kKwNull,
  kKwTrue,
  kKwFalse,
  kKwInstanceof,
  kKwStatic,

  // Punctuation and operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kSemicolon,
  kColon,
  kDot,
  kAssign,        // =
  kPlus,          // +
  kMinus,         // -
  kStar,          // *
  kSlash,         // /
  kPercent,       // %
  kEq,            // ==
  kNe,            // !=
  kLt,            // <
  kLe,            // <=
  kGt,            // >
  kGe,            // >=
  kAndAnd,        // &&
  kOrOr,          // ||
  kNot,           // !
  kPlusPlus,      // ++
  kMinusMinus,    // --
  kPlusAssign,    // +=
  kMinusAssign,   // -=
};

// Human-readable token kind name, e.g. "identifier" or "'=='".
std::string_view TokenKindName(TokenKind kind);

// Maps identifier text to a keyword kind, or kIdentifier if not a keyword.
TokenKind KeywordKind(std::string_view text);

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  SourceLocation location;
  std::string_view text;   // Lexeme as it appears in the source.
  int64_t int_value = 0;   // Valid when kind == kIntLiteral.
  // Decoded value when kind == kStringLiteral. A view into the lexer's decoded
  // string storage (Lexer::TakeStringStorage transfers ownership), so tokens
  // stay trivially copyable and carry no per-token allocation.
  std::string_view string_value;
  // Interned id when kind == kIdentifier (one hash per distinct spelling for
  // the whole unit instead of one std::string per occurrence).
  SymbolId symbol = kInvalidSymbol;

  bool is(TokenKind k) const { return kind == k; }
};

// A comment retained from the source. The WASABI paper's static techniques use
// comments as evidence of retry intent, so the lexer keeps them instead of
// discarding them.
struct Comment {
  SourceLocation location;
  std::string text;   // Without the // or /* */ markers, trimmed.
  bool is_block = false;
};

}  // namespace mj

#endif  // WASABI_SRC_LANG_TOKEN_H_
