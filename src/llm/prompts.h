// The WASABI prompt set (Figure 2 of the paper), kept verbatim so that the
// simulated LLM's token accounting and the documentation of the static
// workflow match the original design.

#ifndef WASABI_SRC_LLM_PROMPTS_H_
#define WASABI_SRC_LLM_PROMPTS_H_

#include <string_view>

namespace wasabi {

// Q1: retry identification (fed one file at a time).
inline constexpr std::string_view kPromptQ1 =
    "Q1. Does the following code perform retry anywhere? Answer (Yes) or (No).\n"
    "- Say NO if the file only _defines_ or _creates_ retry policies, or only passes retry\n"
    "  parameters to other builders/constructors.\n"
    "- Say NO if the file does not check for exception or errors before retry.\n"
    "**Remember that retry mechanisms can be implemented through for or while loops or data\n"
    "structures like state machines and queues.**\n";

// Q1 follow-up: which methods implement the retry.
inline constexpr std::string_view kPromptQ1FollowUp =
    "Q1b. List the names of the methods that implement the retry, and for each one say\n"
    "whether the retry is loop-based, queue-based, or state-machine-based.\n";

// Q2: delay between attempts.
inline constexpr std::string_view kPromptQ2 =
    "Q2. Does the code sleep before retrying or resubmitting the request? Answer (Yes) or "
    "(No).\n"
    "**Remember that delay might be implemented through scheduling after an interval or some\n"
    "other mechanism.**\n";

// Q3: cap on attempts or time.
inline constexpr std::string_view kPromptQ3 =
    "Q3. Does the code have a cap OR time limit on the number times a request is retried or\n"
    "resubmitted? Answer (Yes) or (No).\n"
    "**Remember that timeouts or caps should be specifically applied to retry and not other\n"
    "behaviors**\n";

// Q4: poll/spin-lock exclusion.
inline constexpr std::string_view kPromptQ4 =
    "Q4. Do any of the retry-containing methods either call \"compareAndSet\" or contain\n"
    "poll-related behavior? Answer (Yes) or (No)\n";

// F1: flakiness-cause judgment (docs/FLAKINESS.md). Fed the failing source
// when the prober classifies a verdict as non-stable.
inline constexpr std::string_view kPromptFlaky =
    "F1. The test failure in the method below reproduces inconsistently across reruns.\n"
    "Judging only from the code, is the inconsistency caused by (a) timing-dependence\n"
    "(wall-clock reads, time-window branching), (b) environment-dependence (behavior\n"
    "switching on degraded-environment configuration), or (c) unknown? Answer (a), (b),\n"
    "or (c).\n";

}  // namespace wasabi

#endif  // WASABI_SRC_LLM_PROMPTS_H_
