#include "src/llm/sim_llm.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/llm/prompts.h"

namespace wasabi {

using mj::AstKind;

namespace {

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool ContainsAny(std::string_view text, const std::vector<std::string_view>& words) {
  std::string lower = ToLower(text);
  for (std::string_view word : words) {
    if (lower.find(word) != std::string::npos) {
      return true;
    }
  }
  return false;
}

const std::vector<std::string_view>& RetryWords() {
  static const std::vector<std::string_view> kWords = {
      "retry", "retries", "retrying", "reattempt", "resubmit", "reschedule", "try again",
  };
  return kWords;
}

const std::vector<std::string_view>& SoftRetryWords() {
  static const std::vector<std::string_view> kWords = {"backoff", "attempt"};
  return kWords;
}

const std::vector<std::string_view>& PollSpinWords() {
  static const std::vector<std::string_view> kWords = {"poll", "spin", "busywait"};
  return kWords;
}

// The sleep APIs the paper instruments (§3.1.3 "missing delay" oracle).
bool IsSleepCall(const mj::CallExpr& call) {
  if (call.base == nullptr || call.base->kind != AstKind::kName) {
    return false;
  }
  const std::string& receiver = static_cast<const mj::NameExpr*>(call.base)->name;
  const std::string& callee = call.callee;
  if (receiver == "Thread" && callee == "sleep") {
    return true;
  }
  if (receiver == "TimeUnit" &&
      (callee == "sleep" || callee == "timedWait" || callee == "scheduledExecutionTime")) {
    return true;
  }
  if (receiver == "Timer" && (callee == "wait" || callee == "schedule")) {
    return true;
  }
  if (receiver == "Object" && callee == "wait") {
    return true;
  }
  return false;
}

// Wall-clock reads: the only time API in mj is Clock.nowMillis().
bool IsClockRead(const mj::CallExpr& call) {
  return call.base != nullptr && call.base->kind == AstKind::kName &&
         static_cast<const mj::NameExpr*>(call.base)->name == "Clock";
}

// Config reads of the injected degraded-environment namespace.
bool IsChaosConfigRead(const mj::CallExpr& call) {
  if (call.base == nullptr || call.base->kind != AstKind::kName ||
      static_cast<const mj::NameExpr*>(call.base)->name != "Config") {
    return false;
  }
  if (call.args.empty() || call.args[0]->kind != AstKind::kStringLiteral) {
    return false;
  }
  const std::string& key = static_cast<const mj::StringLiteralExpr*>(call.args[0])->value;
  return key.rfind("chaos.", 0) == 0;
}

bool IsEnqueueCallee(std::string_view name) {
  static const std::unordered_set<std::string_view> kNames = {
      "put", "add", "offer", "enqueue", "requeue", "resubmit", "submit", "push", "reenqueue",
  };
  return kNames.count(name) > 0;
}

bool IsPollSpinCallee(std::string_view name) {
  static const std::unordered_set<std::string_view> kNames = {
      "compareAndSet", "poll", "tryLock", "spinWait", "park", "compareAndSwap",
  };
  return kNames.count(name) > 0;
}

// True when the catch body is nothing but `throw <caught variable>;` —
// pure rethrow, which the Q1 prompt tells the model not to count as retry.
bool CatchOnlyRethrows(const mj::CatchClause& clause) {
  if (clause.body->statements.size() != 1) {
    return false;
  }
  const mj::Stmt* only = clause.body->statements[0];
  if (only->kind != AstKind::kThrow) {
    return false;
  }
  const mj::Expr* value = static_cast<const mj::ThrowStmt*>(only)->value;
  return value != nullptr && value->kind == AstKind::kName &&
         static_cast<const mj::NameExpr*>(value)->name == clause.variable;
}

// Shape facts about one method, gathered in a single pass.
struct MethodShape {
  bool has_loop = false;
  bool has_try = false;
  bool loop_contains_meaningful_catch = false;  // try-in-loop, catch not pure rethrow.
  bool catch_contains_enqueue = false;
  bool has_switch = false;
  bool mentions_state = false;
  bool has_poll_spin_call = false;
  bool has_poll_spin_word = false;
  int retry_word_hits = 0;       // Identifiers / literals / callees, capped later.
  bool retry_word_in_name = false;
  int soft_word_hits = 0;
};

void ScanStmtShape(const mj::Stmt* stmt, int loop_depth, int catch_depth, MethodShape& shape);

void ScanExprShape(const mj::Expr* expr, int catch_depth, MethodShape& shape) {
  mj::WalkExprs(expr, [&](const mj::Expr& e) {
    switch (e.kind) {
      case AstKind::kName: {
        const std::string& name = static_cast<const mj::NameExpr&>(e).name;
        if (ContainsAny(name, RetryWords())) {
          ++shape.retry_word_hits;
        }
        if (ContainsAny(name, SoftRetryWords())) {
          ++shape.soft_word_hits;
        }
        if (ContainsAny(name, PollSpinWords())) {
          shape.has_poll_spin_word = true;
        }
        if (ContainsAny(name, {"state"})) {
          shape.mentions_state = true;
        }
        break;
      }
      case AstKind::kStringLiteral: {
        const std::string& value = static_cast<const mj::StringLiteralExpr&>(e).value;
        if (ContainsAny(value, RetryWords())) {
          ++shape.retry_word_hits;
        }
        if (ContainsAny(value, SoftRetryWords())) {
          ++shape.soft_word_hits;
        }
        break;
      }
      case AstKind::kFieldAccess: {
        const std::string& field = static_cast<const mj::FieldAccessExpr&>(e).field;
        if (ContainsAny(field, RetryWords())) {
          ++shape.retry_word_hits;
        }
        if (ContainsAny(field, {"state"})) {
          shape.mentions_state = true;
        }
        break;
      }
      case AstKind::kCall: {
        const auto& call = static_cast<const mj::CallExpr&>(e);
        if (ContainsAny(call.callee, RetryWords())) {
          ++shape.retry_word_hits;
        }
        if (ContainsAny(call.callee, SoftRetryWords())) {
          ++shape.soft_word_hits;
        }
        if (IsPollSpinCallee(call.callee)) {
          shape.has_poll_spin_call = true;
        }
        if (ContainsAny(call.callee, {"state"})) {
          shape.mentions_state = true;
        }
        if (catch_depth > 0 && IsEnqueueCallee(call.callee)) {
          shape.catch_contains_enqueue = true;
        }
        break;
      }
      default:
        break;
    }
  });
}

void ScanBlockShape(const std::vector<mj::Stmt*>& stmts, int loop_depth, int catch_depth,
                    MethodShape& shape) {
  for (const mj::Stmt* child : stmts) {
    ScanStmtShape(child, loop_depth, catch_depth, shape);
  }
}

void ScanStmtShape(const mj::Stmt* stmt, int loop_depth, int catch_depth, MethodShape& shape) {
  if (stmt == nullptr) {
    return;
  }
  switch (stmt->kind) {
    case AstKind::kBlock:
      ScanBlockShape(static_cast<const mj::BlockStmt*>(stmt)->statements, loop_depth,
                     catch_depth, shape);
      break;
    case AstKind::kVarDecl: {
      const auto* decl = static_cast<const mj::VarDeclStmt*>(stmt);
      if (ContainsAny(decl->name, RetryWords())) {
        ++shape.retry_word_hits;
      }
      if (ContainsAny(decl->name, SoftRetryWords())) {
        ++shape.soft_word_hits;
      }
      ScanExprShape(decl->init, catch_depth, shape);
      break;
    }
    case AstKind::kAssign:
      ScanExprShape(static_cast<const mj::AssignStmt*>(stmt)->target, catch_depth, shape);
      ScanExprShape(static_cast<const mj::AssignStmt*>(stmt)->value, catch_depth, shape);
      break;
    case AstKind::kExprStmt:
      ScanExprShape(static_cast<const mj::ExprStmt*>(stmt)->expr, catch_depth, shape);
      break;
    case AstKind::kIf: {
      const auto* node = static_cast<const mj::IfStmt*>(stmt);
      ScanExprShape(node->condition, catch_depth, shape);
      ScanStmtShape(node->then_branch, loop_depth, catch_depth, shape);
      ScanStmtShape(node->else_branch, loop_depth, catch_depth, shape);
      break;
    }
    case AstKind::kWhile: {
      const auto* node = static_cast<const mj::WhileStmt*>(stmt);
      shape.has_loop = true;
      ScanExprShape(node->condition, catch_depth, shape);
      ScanStmtShape(node->body, loop_depth + 1, catch_depth, shape);
      break;
    }
    case AstKind::kFor: {
      const auto* node = static_cast<const mj::ForStmt*>(stmt);
      shape.has_loop = true;
      ScanStmtShape(node->init, loop_depth + 1, catch_depth, shape);
      ScanExprShape(node->condition, catch_depth, shape);
      ScanStmtShape(node->update, loop_depth + 1, catch_depth, shape);
      ScanStmtShape(node->body, loop_depth + 1, catch_depth, shape);
      break;
    }
    case AstKind::kSwitch: {
      const auto* node = static_cast<const mj::SwitchStmt*>(stmt);
      shape.has_switch = true;
      ScanExprShape(node->subject, catch_depth, shape);
      for (const mj::SwitchCase& switch_case : node->cases) {
        for (const mj::Expr* label : switch_case.labels) {
          ScanExprShape(label, catch_depth, shape);
        }
        ScanBlockShape(switch_case.body, loop_depth, catch_depth, shape);
      }
      break;
    }
    case AstKind::kTry: {
      const auto* node = static_cast<const mj::TryStmt*>(stmt);
      shape.has_try = true;
      ScanBlockShape(node->body->statements, loop_depth, catch_depth, shape);
      for (const mj::CatchClause& clause : node->catches) {
        if (loop_depth > 0 && !CatchOnlyRethrows(clause)) {
          shape.loop_contains_meaningful_catch = true;
        }
        ScanBlockShape(clause.body->statements, loop_depth, catch_depth + 1, shape);
      }
      if (node->finally != nullptr) {
        ScanBlockShape(node->finally->statements, loop_depth, catch_depth, shape);
      }
      break;
    }
    case AstKind::kThrow:
      ScanExprShape(static_cast<const mj::ThrowStmt*>(stmt)->value, catch_depth, shape);
      break;
    case AstKind::kReturn:
      ScanExprShape(static_cast<const mj::ReturnStmt*>(stmt)->value, catch_depth, shape);
      break;
    default:
      break;
  }
}

// Attributes each comment to the method it most plausibly describes: the
// method whose declaration starts within 2 lines after the comment (doc
// comment), otherwise the method whose body the comment sits inside.
std::unordered_map<const mj::MethodDecl*, std::vector<const mj::Comment*>> AttributeComments(
    const mj::CompilationUnit& unit) {
  std::vector<const mj::MethodDecl*> methods;
  for (const mj::ClassDecl* cls : unit.classes()) {
    for (const mj::MethodDecl* method : cls->methods) {
      methods.push_back(method);
    }
  }
  std::sort(methods.begin(), methods.end(),
            [](const mj::MethodDecl* a, const mj::MethodDecl* b) {
              return a->location.line < b->location.line;
            });
  std::unordered_map<const mj::MethodDecl*, std::vector<const mj::Comment*>> result;
  for (const mj::Comment& comment : unit.comments()) {
    const mj::MethodDecl* doc_target = nullptr;
    const mj::MethodDecl* inside_target = nullptr;
    for (const mj::MethodDecl* method : methods) {
      if (method->location.line > comment.location.line) {
        if (method->location.line - comment.location.line <= 2) {
          doc_target = method;
        }
        break;
      }
      inside_target = method;
    }
    const mj::MethodDecl* target = doc_target != nullptr ? doc_target : inside_target;
    if (target != nullptr) {
      result[target].push_back(&comment);
    }
  }
  return result;
}

uint64_t Fnv1a(uint64_t seed, std::string_view a, std::string_view b, char c) {
  uint64_t hash = 14695981039346656037ULL ^ seed;
  auto mix = [&hash](char ch) {
    hash ^= static_cast<unsigned char>(ch);
    hash *= 1099511628211ULL;
  };
  for (char ch : a) {
    mix(ch);
  }
  mix('|');
  for (char ch : b) {
    mix(ch);
  }
  mix(c);
  return hash;
}

// Identifier names that suggest an attempt/limit quantity for Q3.
bool IsAttemptIsh(std::string_view name) {
  return ContainsAny(name, {"attempt", "retry", "retries", "count", "tries", "max", "limit",
                            "cap", "deadline", "elapsed", "timeout", "remaining"});
}

bool ExprMentionsAttemptIsh(const mj::Expr* expr) {
  bool found = false;
  mj::WalkExprs(expr, [&](const mj::Expr& e) {
    if (e.kind == AstKind::kName && IsAttemptIsh(static_cast<const mj::NameExpr&>(e).name)) {
      found = true;
    }
    if (e.kind == AstKind::kFieldAccess &&
        IsAttemptIsh(static_cast<const mj::FieldAccessExpr&>(e).field)) {
      found = true;
    }
    if (e.kind == AstKind::kCall) {
      const auto& call = static_cast<const mj::CallExpr&>(e);
      if (IsAttemptIsh(call.callee)) {
        found = true;
      }
      if (call.base != nullptr && call.base->kind == AstKind::kName &&
          static_cast<const mj::NameExpr*>(call.base)->name == "Clock") {
        found = true;  // Time-limit style cap.
      }
    }
  });
  return found;
}

bool ExprHasRelationalOp(const mj::Expr* expr) {
  bool found = false;
  mj::WalkExprs(expr, [&](const mj::Expr& e) {
    if (e.kind == AstKind::kBinary) {
      mj::BinaryOp op = static_cast<const mj::BinaryExpr&>(e).op;
      if (op == mj::BinaryOp::kLt || op == mj::BinaryOp::kLe || op == mj::BinaryOp::kGt ||
          op == mj::BinaryOp::kGe || op == mj::BinaryOp::kEq || op == mj::BinaryOp::kNe) {
        found = true;
      }
    }
  });
  return found;
}

bool StmtSubtreeExits(const mj::Stmt* stmt) {
  bool exits = false;
  mj::WalkStmts(
      stmt,
      [&](const mj::Stmt& s) {
        if (s.kind == AstKind::kBreak || s.kind == AstKind::kReturn ||
            s.kind == AstKind::kThrow) {
          exits = true;
        }
      },
      [](const mj::Expr&) {});
  return exits;
}

}  // namespace

SimLlm::SimLlm(SimLlmConfig config) : config_(config) {}

void SimLlm::ChargeCall(const mj::CompilationUnit& unit, std::string_view prompt) {
  ++usage_.calls;
  int64_t bytes = static_cast<int64_t>(prompt.size() + unit.file().text().size());
  usage_.bytes_sent += bytes;
  usage_.prompt_tokens += bytes / 4;
}

bool SimLlm::NoiseFlip(std::string_view file, std::string_view method, char question) const {
  if (config_.comprehension_noise_percent <= 0) {
    return false;
  }
  uint64_t hash = Fnv1a(config_.seed, file, method, question);
  return static_cast<int>(hash % 100) < config_.comprehension_noise_percent;
}

LlmFileFindings SimLlm::AnalyzeFile(const mj::CompilationUnit& unit) {
  ChargeCall(unit, kPromptQ1);

  LlmFileFindings findings;
  findings.file = unit.file().name();

  const int64_t window_bytes = config_.attention_window_tokens > 0
                                   ? static_cast<int64_t>(config_.attention_window_tokens) * 4
                                   : -1;
  auto comments_by_method = AttributeComments(unit);

  for (const mj::ClassDecl* cls : unit.classes()) {
    for (const mj::MethodDecl* method : cls->methods) {
      if (method->body == nullptr) {
        continue;
      }
      if (window_bytes >= 0 && static_cast<int64_t>(method->location.offset) > window_bytes) {
        // Large-file miss mode: evidence beyond the attention window is unseen.
        findings.truncated_by_attention = true;
        continue;
      }

      MethodShape shape;
      ScanStmtShape(method->body, /*loop_depth=*/0, /*catch_depth=*/0, shape);
      shape.retry_word_in_name = ContainsAny(method->name, RetryWords());
      bool any_retry_wording = shape.retry_word_in_name || shape.retry_word_hits > 0 ||
                               shape.soft_word_hits > 0;

      int score = 0;
      bool has_shape = false;
      RetryMechanism mechanism = RetryMechanism::kLoop;
      if (shape.catch_contains_enqueue) {
        score += 3;
        has_shape = true;
        mechanism = RetryMechanism::kQueue;
      } else if (shape.has_switch && shape.has_try && shape.mentions_state) {
        score += 3;
        has_shape = true;
        mechanism = RetryMechanism::kStateMachine;
      } else if (shape.loop_contains_meaningful_catch) {
        // A try-in-loop with a non-rethrow catch is the ambiguous shape:
        // genuine loop retry and per-item error handling look identical. With
        // retry wording around, the model says retry; with NO wording at all,
        // only a small deterministic fraction gets mislabeled (the paper's
        // iteration/polling FP mode).
        if (any_retry_wording ||
            static_cast<int>(Fnv1a(config_.seed, findings.file, method->name, '1') % 100) <
                config_.q1_iteration_fp_percent) {
          score += 3;
          has_shape = true;
          mechanism = RetryMechanism::kLoop;
        }
      } else if (shape.has_loop && shape.retry_word_in_name && shape.retry_word_hits > 0) {
        // Error-code / condition-driven retry: no exception handling at all,
        // but a loop whose naming plainly says it retries. Only fuzzy
        // comprehension finds these (they are invisible to the catch-to-header
        // control-flow query).
        score += 2;
        has_shape = true;
        mechanism = RetryMechanism::kLoop;
      }
      if (shape.retry_word_in_name) {
        score += 2;
      }
      score += std::min(shape.retry_word_hits, 3);
      score += std::min(shape.soft_word_hits, 2);
      int comment_score = 0;
      auto it = comments_by_method.find(method);
      if (it != comments_by_method.end()) {
        for (const mj::Comment* comment : it->second) {
          if (ContainsAny(comment->text, RetryWords())) {
            comment_score += 2;
          }
        }
      }
      score += std::min(comment_score, 4);

      // The Q1 prompt instructs "Say NO for files that only define retry
      // policies / pass retry parameters": without structural retry shape the
      // bar is much higher — but overwhelming retry wording still fools the
      // model (the paper's FP mode 1).
      int threshold = has_shape ? config_.retry_threshold : config_.retry_threshold + 4;
      if (score < threshold) {
        continue;
      }

      // Q4: poll/spin exclusion. Strong retry wording overrides it ("the
      // exclusion prompt is not always successful", §4.3).
      if (config_.enable_q4_exclusion &&
          (shape.has_poll_spin_call || shape.has_poll_spin_word) &&
          score < config_.q4_override_score) {
        continue;
      }

      LlmCoordinator coordinator;
      coordinator.qualified_name = method->QualifiedName();
      coordinator.method = method;
      coordinator.mechanism = mechanism;
      coordinator.evidence_score = score;
      findings.coordinators.push_back(std::move(coordinator));
    }
  }

  findings.performs_retry = !findings.coordinators.empty();
  if (findings.performs_retry) {
    ChargeCall(unit, kPromptQ1FollowUp);
  }
  return findings;
}

LlmWhenJudgment SimLlm::JudgeWhen(const mj::CompilationUnit& unit,
                                  const LlmCoordinator& coordinator) {
  ChargeCall(unit, kPromptQ2);
  ChargeCall(unit, kPromptQ3);
  ChargeCall(unit, kPromptQ4);

  LlmWhenJudgment judgment;
  const mj::MethodDecl* method = coordinator.method;
  if (method == nullptr || method->body == nullptr) {
    return judgment;
  }

  // --- Same-file helper map: method name -> contains a direct sleep call.
  std::unordered_map<std::string, bool> helper_sleeps;
  for (const mj::ClassDecl* cls : unit.classes()) {
    for (const mj::MethodDecl* other : cls->methods) {
      if (other->body == nullptr) {
        continue;
      }
      bool sleeps = false;
      mj::WalkStmts(
          other->body, [](const mj::Stmt&) {},
          [&](const mj::Expr& expr) {
            if (expr.kind == AstKind::kCall &&
                IsSleepCall(static_cast<const mj::CallExpr&>(expr))) {
              sleeps = true;
            }
          });
      helper_sleeps[other->name] = sleeps;
    }
  }

  // --- Q2: delay before retrying.
  bool sleeps = false;
  mj::WalkStmts(
      method->body, [](const mj::Stmt&) {},
      [&](const mj::Expr& expr) {
        if (expr.kind != AstKind::kCall) {
          return;
        }
        const auto& call = static_cast<const mj::CallExpr&>(expr);
        if (IsSleepCall(call)) {
          sleeps = true;
          return;
        }
        // Single-file scope: a helper defined in THIS file is visible; a
        // helper defined elsewhere is not (the paper's missing-delay FP mode)
        // — unless its name plainly says it sleeps.
        auto it = helper_sleeps.find(call.callee);
        if (it != helper_sleeps.end() && it->second) {
          sleeps = true;
          return;
        }
        if (it == helper_sleeps.end() &&
            ContainsAny(call.callee, {"sleep", "backoff", "pause", "delay"})) {
          sleeps = true;
        }
      });
  judgment.q2_noise_flipped = NoiseFlip(unit.file().name(), method->name, '2');
  judgment.sleeps_before_retry = sleeps != judgment.q2_noise_flipped;

  // --- Q3: cap or time limit on retry.
  bool has_cap = false;
  mj::WalkStmts(
      method->body,
      [&](const mj::Stmt& stmt) {
        if (stmt.kind == AstKind::kWhile) {
          const auto* loop = static_cast<const mj::WhileStmt*>(&stmt);
          if (ExprHasRelationalOp(loop->condition) && ExprMentionsAttemptIsh(loop->condition)) {
            has_cap = true;
          }
        } else if (stmt.kind == AstKind::kFor) {
          const auto* loop = static_cast<const mj::ForStmt*>(&stmt);
          if (loop->condition != nullptr && ExprHasRelationalOp(loop->condition) &&
              ExprMentionsAttemptIsh(loop->condition)) {
            has_cap = true;
          }
        } else if (stmt.kind == AstKind::kIf) {
          const auto* branch = static_cast<const mj::IfStmt*>(&stmt);
          // An attempt-count comparison that either exits or splits into a
          // retry-vs-give-up pair of branches reads as a cap.
          if (ExprHasRelationalOp(branch->condition) &&
              ExprMentionsAttemptIsh(branch->condition) &&
              (branch->else_branch != nullptr || StmtSubtreeExits(branch->then_branch) ||
               StmtSubtreeExits(branch->else_branch))) {
            has_cap = true;
          }
        }
      },
      [](const mj::Expr&) {});
  judgment.q3_noise_flipped = NoiseFlip(unit.file().name(), method->name, '3');
  judgment.has_cap = has_cap != judgment.q3_noise_flipped;

  // --- Q4: poll/spin behavior (re-asked at judgment time).
  MethodShape shape;
  ScanStmtShape(method->body, 0, 0, shape);
  judgment.poll_or_spin = config_.enable_q4_exclusion &&
                          (shape.has_poll_spin_call || shape.has_poll_spin_word) &&
                          coordinator.evidence_score < config_.q4_override_score;
  return judgment;
}

LlmFlakinessJudgment SimLlm::JudgeFlakinessCause(const mj::CompilationUnit& unit,
                                                 const mj::MethodDecl* method) {
  ChargeCall(unit, kPromptFlaky);
  LlmFlakinessJudgment judgment;
  if (method == nullptr || method->body == nullptr) {
    return judgment;  // Nothing to read: "unknown".
  }
  bool reads_clock = false;
  bool reads_chaos_config = false;
  mj::WalkStmts(
      method->body, [](const mj::Stmt&) {},
      [&](const mj::Expr& expr) {
        if (expr.kind != AstKind::kCall) {
          return;
        }
        const auto& call = static_cast<const mj::CallExpr&>(expr);
        if (IsClockRead(call)) {
          reads_clock = true;
        }
        if (IsChaosConfigRead(call)) {
          reads_chaos_config = true;
        }
      });
  // Environment evidence outranks timing evidence: reading the degraded flag
  // is specific, wall-clock reads show up in ordinary bookkeeping too.
  if (reads_chaos_config) {
    judgment.cause = "chaos-environment";
  } else if (reads_clock) {
    judgment.cause = "timing-dependence";
  }
  judgment.noise_flipped = NoiseFlip(unit.file().name(), method->name, 'F');
  if (judgment.noise_flipped) {
    // Comprehension error mode: the model commits to the wrong concrete cause.
    judgment.cause = judgment.cause == "timing-dependence" ? "chaos-environment"
                                                           : "timing-dependence";
  }
  return judgment;
}

}  // namespace wasabi
