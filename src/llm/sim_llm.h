// SimLLM: a deterministic stand-in for the GPT-4 component of WASABI.
//
// The paper uses GPT-4's "fuzzy code comprehension" to (a) identify retry
// logic — including non-loop queue/state-machine retry that defeats
// control-flow analysis — from non-structural evidence such as comments,
// identifier names, and code shape, and (b) answer the WHEN-bug prompts
// (Figure 2: delay? cap? poll-exclusion?). No LLM is available in this offline
// reproduction, so SimLLM implements the same *kind* of judgment: lexical and
// shape evidence scored per method, one file at a time.
//
// Crucially, SimLLM also reproduces the LLM's characteristic error modes that
// the paper's evaluation quantifies:
//   * large-file misses (§4.2): evidence past a configurable attention window
//     is not seen, so retry implemented late in a big file goes undetected;
//   * single-file context (§4.3): a delay implemented by a helper defined in a
//     DIFFERENT file is invisible, producing missing-delay false positives;
//   * imperfect poll/spin exclusion (§4.3): Q4 fails when retry-ish wording is
//     strong, so polling code is sometimes labeled as retry;
//   * comprehension noise (§4.3): a deterministic, seeded fraction of Q2/Q3
//     answers is flipped, modeling "GPT-4 wrongly comprehends code behavior".
//
// Everything is deterministic: same input + config => same answers.

#ifndef WASABI_SRC_LLM_SIM_LLM_H_
#define WASABI_SRC_LLM_SIM_LLM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/retry_model.h"
#include "src/lang/ast.h"

namespace wasabi {

struct SimLlmConfig {
  // Evidence threshold for reporting a method as retry-implementing.
  int retry_threshold = 3;

  // Attention window in estimated tokens (~4 bytes/token). Methods whose body
  // starts beyond the window are invisible (large-file miss mode). <=0
  // disables the limitation.
  int attention_window_tokens = 2500;

  // Percentage [0,100] of Q2/Q3 judgments flipped by deterministic seeded
  // noise (comprehension errors). 0 disables.
  int comprehension_noise_percent = 3;

  // Seed mixed into the noise hash.
  uint64_t seed = 0x5EEDu;

  // Percentage [0,100] of loop-with-catch methods carrying NO retry wording
  // that the model nevertheless labels as retry (the paper's "GPT-4 sometimes
  // labels re-execution behavior such as iterating through queues as retry").
  // Deterministic per (file, method).
  int q1_iteration_fp_percent = 6;

  // Whether the Q4 poll/spin exclusion prompt is applied.
  bool enable_q4_exclusion = true;

  // Evidence score at which retry wording overrides the Q4 exclusion (models
  // "the poll-exclusion prompt is not always successful").
  int q4_override_score = 7;
};

// API usage accounting, mirroring the paper's §4.3 cost analysis.
struct LlmUsage {
  int64_t calls = 0;
  int64_t bytes_sent = 0;
  int64_t prompt_tokens = 0;  // Estimated at 4 bytes/token.
};

// One method the model believes implements retry.
struct LlmCoordinator {
  std::string qualified_name;
  const mj::MethodDecl* method = nullptr;
  RetryMechanism mechanism = RetryMechanism::kLoop;
  int evidence_score = 0;
};

// Q1 (+ follow-up) result for one file.
struct LlmFileFindings {
  std::string file;
  bool performs_retry = false;
  std::vector<LlmCoordinator> coordinators;
  // True if part of the file fell outside the attention window.
  bool truncated_by_attention = false;
};

// F1 result: judged root cause of a non-stable failing verdict
// (docs/FLAKINESS.md).
struct LlmFlakinessJudgment {
  // "timing-dependence", "chaos-environment", or "unknown".
  std::string cause = "unknown";
  // True when seeded comprehension noise swapped the heuristic answer.
  bool noise_flipped = false;
};

// Q2/Q3/Q4 result for one coordinator.
struct LlmWhenJudgment {
  bool sleeps_before_retry = false;  // Q2.
  bool has_cap = false;              // Q3.
  bool poll_or_spin = false;         // Q4 (true => excluded from retry).
  // Bookkeeping for evaluation: true when noise flipped the heuristic answer.
  bool q2_noise_flipped = false;
  bool q3_noise_flipped = false;
};

class SimLlm {
 public:
  explicit SimLlm(SimLlmConfig config = {});

  // Q1 + follow-up: identify retry-implementing methods in one file.
  LlmFileFindings AnalyzeFile(const mj::CompilationUnit& unit);

  // Q2–Q4 for one coordinator previously reported by AnalyzeFile on the same
  // unit. Single-file scope: helper methods outside `unit` are invisible.
  LlmWhenJudgment JudgeWhen(const mj::CompilationUnit& unit, const LlmCoordinator& coordinator);

  // F1: judge why a failing verdict at `method` reproduces inconsistently.
  // Lexical evidence only — wall-clock reads say timing, reads of the injected
  // "chaos.*" configuration namespace say environment — with the usual seeded
  // comprehension-noise error mode. Deterministic per (file, method).
  LlmFlakinessJudgment JudgeFlakinessCause(const mj::CompilationUnit& unit,
                                           const mj::MethodDecl* method);

  const LlmUsage& usage() const { return usage_; }
  void ResetUsage() { usage_ = LlmUsage(); }

  const SimLlmConfig& config() const { return config_; }

 private:
  void ChargeCall(const mj::CompilationUnit& unit, std::string_view prompt);
  bool NoiseFlip(std::string_view file, std::string_view method, char question) const;

  SimLlmConfig config_;
  LlmUsage usage_;
};

}  // namespace wasabi

#endif  // WASABI_SRC_LLM_SIM_LLM_H_
