#include "src/llm/sim_repair.h"

#include "src/lang/digest.h"

namespace wasabi {

namespace {

// One deterministic 0-99 roll per (bug, mode). The mode tag keeps the three
// rolls independent: a bug that escapes wrong-location can still draw
// cap-too-low, exactly like SimLLM's per-question noise flips.
int Roll(uint64_t seed, std::string_view file, std::string_view coordinator,
         std::string_view template_name, char mode_tag) {
  uint64_t hash = mj::Fnv1a64Mix(seed, mj::kFnvOffsetBasis);
  hash = mj::Fnv1a64(file, hash);
  hash = mj::Fnv1a64(coordinator, hash);
  hash = mj::Fnv1a64(template_name, hash);
  hash = mj::Fnv1a64(std::string_view(&mode_tag, 1), hash);
  return static_cast<int>(hash % 100);
}

}  // namespace

const char* RepairErrorModeName(RepairErrorMode mode) {
  switch (mode) {
    case RepairErrorMode::kNone:
      return "none";
    case RepairErrorMode::kWrongLocation:
      return "wrong-location";
    case RepairErrorMode::kCapTooLow:
      return "cap-too-low";
    case RepairErrorMode::kDropJitter:
      return "drop-jitter";
  }
  return "none";
}

RepairErrorMode SimRepair::ModeFor(std::string_view file, std::string_view coordinator,
                                   std::string_view template_name) const {
  if (config_.wrong_location_percent > 0 &&
      Roll(config_.seed, file, coordinator, template_name, 'w') <
          config_.wrong_location_percent) {
    return RepairErrorMode::kWrongLocation;
  }
  if (template_name == "bound-retry" && config_.cap_too_low_percent > 0 &&
      Roll(config_.seed, file, coordinator, template_name, 'c') < config_.cap_too_low_percent) {
    return RepairErrorMode::kCapTooLow;
  }
  if (template_name == "add-jitter" && config_.drop_jitter_percent > 0 &&
      Roll(config_.seed, file, coordinator, template_name, 'j') < config_.drop_jitter_percent) {
    return RepairErrorMode::kDropJitter;
  }
  return RepairErrorMode::kNone;
}

}  // namespace wasabi
