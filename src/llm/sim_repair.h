// SimRepair: deterministic model of LLM repair-error modes (docs/REPAIR.md).
//
// The repair pipeline's patch synthesis is template-based and correct by
// construction; a real LLM-driven repairer is not. Mirroring how SimLLM
// models the paper's §4.2/§4.3 identification errors, SimRepair injects the
// failure modes characterized for LLM program repair — patching the wrong
// location, bounding retries with a uselessly low cap, and adding backoff
// while forgetting the jitter — as deterministic per-bug decisions, so the
// validator's ability to CATCH bad patches is itself exactly testable:
// every injected error must surface as not-fixed or regressed, never fixed.
//
// Decisions are pure functions of (seed, file, coordinator, template): the
// same bug draws the same error mode in every run, at every worker count,
// under every cache state.

#ifndef WASABI_SRC_LLM_SIM_REPAIR_H_
#define WASABI_SRC_LLM_SIM_REPAIR_H_

#include <cstdint>
#include <string_view>

namespace wasabi {

enum class RepairErrorMode : uint8_t {
  kNone,           // Faithful template application.
  kWrongLocation,  // Plausible patch applied to a sibling method.
  kCapTooLow,      // Bounded retry with cap 1: kills the retry entirely.
  kDropJitter,     // Jitter scaffolding added but the sleep stays fixed.
};

const char* RepairErrorModeName(RepairErrorMode mode);

struct SimRepairConfig {
  uint64_t seed = 0xF1F0;
  // Each knob is a 0-100 percentage; 0 (the default) disables that mode.
  // kWrongLocation can hit any template; kCapTooLow only bound-retry
  // patches; kDropJitter only add-jitter patches.
  int wrong_location_percent = 0;
  int cap_too_low_percent = 0;
  int drop_jitter_percent = 0;
};

class SimRepair {
 public:
  explicit SimRepair(SimRepairConfig config) : config_(config) {}

  // The error mode this bug's patch draws. `template_name` is the repair
  // template's stable name ("bound-retry", "add-jitter", ...) — passed as a
  // string so src/llm does not depend on src/repair.
  RepairErrorMode ModeFor(std::string_view file, std::string_view coordinator,
                          std::string_view template_name) const;

  const SimRepairConfig& config() const { return config_; }

 private:
  SimRepairConfig config_;
};

}  // namespace wasabi

#endif  // WASABI_SRC_LLM_SIM_REPAIR_H_
