#include "src/obs/journal.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace wasabi {

namespace {

constexpr std::string_view kJournalVersion = "wasabi-journal-v1";

std::atomic<uint64_t> g_next_journal_id{1};

// Every thread caches the buffers it registered, keyed by process-unique
// journal id — the same never-reused-id scheme as Tracer, so a stale entry
// for a destroyed journal can never alias a live one.
struct CachedBuffer {
  uint64_t journal_id = 0;
  void* buffer = nullptr;
};
thread_local std::vector<CachedBuffer> t_buffer_cache;

// Local JSON string escaping, deliberately duplicated per obs source file so
// the substrate stays dependency-free and linkable from every layer.
std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(static_cast<char>(c));
        }
        break;
    }
  }
  return out;
}

constexpr JournalStream kAllStreams[] = {
    JournalStream::kCoverage,
    JournalStream::kCampaign,
    JournalStream::kProbe,
    JournalStream::kCache,
    JournalStream::kStorm,
};

constexpr JournalEventKind kAllKinds[] = {
    JournalEventKind::kRunBegin,        JournalEventKind::kAttemptBegin,
    JournalEventKind::kAttemptEnd,      JournalEventKind::kWork,
    JournalEventKind::kLoopIterations,  JournalEventKind::kInjectFire,
    JournalEventKind::kInjectSkip,      JournalEventKind::kSleep,
    JournalEventKind::kBackoffWait,     JournalEventKind::kHostFailure,
    JournalEventKind::kBreakerOpen,     JournalEventKind::kQuarantine,
    JournalEventKind::kCacheHit,        JournalEventKind::kCacheMiss,
    JournalEventKind::kProbeRepetition, JournalEventKind::kProbeVerdict,
    JournalEventKind::kQueueDepth,      JournalEventKind::kInflightRetries,
    JournalEventKind::kFaultBegin,      JournalEventKind::kFaultEnd,
    JournalEventKind::kBreakerHalfOpen, JournalEventKind::kBreakerClose,
};

bool StreamFromName(std::string_view name, JournalStream* out) {
  for (JournalStream stream : kAllStreams) {
    if (name == JournalStreamName(stream)) {
      *out = stream;
      return true;
    }
  }
  return false;
}

bool KindFromName(std::string_view name, JournalEventKind* out) {
  for (JournalEventKind kind : kAllKinds) {
    if (name == JournalEventKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

// --- Strict scanner for the exact shape ToJson writes. -----------------
//
// The writer emits every key in a fixed order, so the parser can demand that
// order and stay ~100 lines with exact error positions instead of carrying a
// generic JSON DOM.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  bool Fail(const std::string& message, std::string* error) {
    *error = message + " at offset " + std::to_string(pos_);
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Literal(std::string_view expected, std::string* error) {
    SkipWs();
    if (text_.substr(pos_, expected.size()) != expected) {
      return Fail("expected '" + std::string(expected) + "'", error);
    }
    pos_ += expected.size();
    return true;
  }

  bool String(std::string* out, std::string* error) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string", error);
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape", error);
          }
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned int>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned int>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned int>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape", error);
            }
          }
          // The writer only escapes control bytes, so the code point always
          // fits one byte.
          if (code > 0xff) {
            return Fail("unsupported \\u escape", error);
          }
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          return Fail("bad escape", error);
      }
    }
    return Fail("unterminated string", error);
  }

  bool Int(int64_t* out, std::string* error) {
    SkipWs();
    bool negative = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Fail("expected integer", error);
    }
    int64_t value = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      value = value * 10 + (text_[pos_] - '0');
      ++pos_;
    }
    *out = negative ? -value : value;
    return true;
  }

  char Peek() {
    SkipWs();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  bool AtEnd() {
    SkipWs();
    return pos_ >= text_.size();
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

void AppendEventJson(std::ostringstream& out, const JournalEvent& event) {
  out << "{\"stream\":\"" << JournalStreamName(event.stream) << "\",\"run\":" << event.run_id
      << ",\"seq\":" << event.seq << ",\"kind\":\"" << JournalEventKindName(event.kind)
      << "\",\"test\":\"" << EscapeJson(event.test) << "\",\"location\":\""
      << EscapeJson(event.location) << "\",\"k\":" << event.k << ",\"attempt\":" << event.attempt
      << ",\"t_ms\":" << event.t_ms << ",\"value\":" << event.value << ",\"detail\":\""
      << EscapeJson(event.detail) << "\"}";
}

bool ParseEvent(Scanner& scan, JournalEvent* event, std::string* error) {
  std::string text;
  int64_t number = 0;
  if (!scan.Literal("{", error)) return false;
  if (!scan.Literal("\"stream\"", error) || !scan.Literal(":", error) ||
      !scan.String(&text, error)) {
    return false;
  }
  if (!StreamFromName(text, &event->stream)) {
    return scan.Fail("unknown stream '" + text + "'", error);
  }
  if (!scan.Literal(",", error) || !scan.Literal("\"run\"", error) ||
      !scan.Literal(":", error) || !scan.Int(&number, error)) {
    return false;
  }
  event->run_id = static_cast<uint64_t>(number);
  if (!scan.Literal(",", error) || !scan.Literal("\"seq\"", error) ||
      !scan.Literal(":", error) || !scan.Int(&number, error)) {
    return false;
  }
  event->seq = static_cast<uint32_t>(number);
  if (!scan.Literal(",", error) || !scan.Literal("\"kind\"", error) ||
      !scan.Literal(":", error) || !scan.String(&text, error)) {
    return false;
  }
  if (!KindFromName(text, &event->kind)) {
    return scan.Fail("unknown kind '" + text + "'", error);
  }
  if (!scan.Literal(",", error) || !scan.Literal("\"test\"", error) ||
      !scan.Literal(":", error) || !scan.String(&event->test, error)) {
    return false;
  }
  if (!scan.Literal(",", error) || !scan.Literal("\"location\"", error) ||
      !scan.Literal(":", error) || !scan.String(&event->location, error)) {
    return false;
  }
  if (!scan.Literal(",", error) || !scan.Literal("\"k\"", error) || !scan.Literal(":", error) ||
      !scan.Int(&number, error)) {
    return false;
  }
  event->k = static_cast<int>(number);
  if (!scan.Literal(",", error) || !scan.Literal("\"attempt\"", error) ||
      !scan.Literal(":", error) || !scan.Int(&number, error)) {
    return false;
  }
  event->attempt = static_cast<int>(number);
  if (!scan.Literal(",", error) || !scan.Literal("\"t_ms\"", error) ||
      !scan.Literal(":", error) || !scan.Int(&event->t_ms, error)) {
    return false;
  }
  if (!scan.Literal(",", error) || !scan.Literal("\"value\"", error) ||
      !scan.Literal(":", error) || !scan.Int(&event->value, error)) {
    return false;
  }
  if (!scan.Literal(",", error) || !scan.Literal("\"detail\"", error) ||
      !scan.Literal(":", error) || !scan.String(&event->detail, error)) {
    return false;
  }
  return scan.Literal("}", error);
}

}  // namespace

const char* JournalStreamName(JournalStream stream) {
  switch (stream) {
    case JournalStream::kCoverage:
      return "coverage";
    case JournalStream::kCampaign:
      return "campaign";
    case JournalStream::kProbe:
      return "probe";
    case JournalStream::kCache:
      return "cache";
    case JournalStream::kStorm:
      return "storm";
  }
  return "unknown";
}

const char* JournalEventKindName(JournalEventKind kind) {
  switch (kind) {
    case JournalEventKind::kRunBegin:
      return "run_begin";
    case JournalEventKind::kAttemptBegin:
      return "attempt_begin";
    case JournalEventKind::kAttemptEnd:
      return "attempt_end";
    case JournalEventKind::kWork:
      return "work";
    case JournalEventKind::kLoopIterations:
      return "loop_iterations";
    case JournalEventKind::kInjectFire:
      return "inject_fire";
    case JournalEventKind::kInjectSkip:
      return "inject_skip";
    case JournalEventKind::kSleep:
      return "sleep";
    case JournalEventKind::kBackoffWait:
      return "backoff_wait";
    case JournalEventKind::kHostFailure:
      return "host_failure";
    case JournalEventKind::kBreakerOpen:
      return "breaker_open";
    case JournalEventKind::kQuarantine:
      return "quarantine";
    case JournalEventKind::kCacheHit:
      return "cache_hit";
    case JournalEventKind::kCacheMiss:
      return "cache_miss";
    case JournalEventKind::kProbeRepetition:
      return "probe_rep";
    case JournalEventKind::kProbeVerdict:
      return "probe_verdict";
    case JournalEventKind::kQueueDepth:
      return "queue_depth";
    case JournalEventKind::kInflightRetries:
      return "inflight_retries";
    case JournalEventKind::kFaultBegin:
      return "fault_begin";
    case JournalEventKind::kFaultEnd:
      return "fault_end";
    case JournalEventKind::kBreakerHalfOpen:
      return "breaker_half_open";
    case JournalEventKind::kBreakerClose:
      return "breaker_close";
  }
  return "unknown";
}

RetryJournal::RetryJournal()
    : journal_id_(g_next_journal_id.fetch_add(1, std::memory_order_relaxed)) {}

RetryJournal::Buffer& RetryJournal::ThisThreadBuffer() {
  for (const CachedBuffer& cached : t_buffer_cache) {
    if (cached.journal_id == journal_id_) {
      return *static_cast<Buffer*>(cached.buffer);
    }
  }
  std::lock_guard<std::mutex> lock(register_mutex_);
  buffers_.push_back(std::make_unique<Buffer>());
  Buffer& buffer = *buffers_.back();
  t_buffer_cache.push_back(CachedBuffer{journal_id_, &buffer});
  return buffer;
}

void RetryJournal::Append(JournalEvent event) {
  ThisThreadBuffer().events.push_back(std::move(event));
}

void RetryJournal::CacheLookup(std::string_view ns, bool hit, int64_t count) {
  if (count <= 0) {
    return;
  }
  JournalEvent event;
  event.stream = JournalStream::kCache;
  event.run_id = 0;
  event.seq = cache_seq_.fetch_add(1, std::memory_order_relaxed);
  event.kind = hit ? JournalEventKind::kCacheHit : JournalEventKind::kCacheMiss;
  event.detail.assign(ns);
  event.value = count;
  Append(std::move(event));
}

std::vector<JournalEvent> RetryJournal::Collect() const {
  std::vector<JournalEvent> merged;
  {
    std::lock_guard<std::mutex> lock(register_mutex_);
    size_t total = 0;
    for (const auto& buffer : buffers_) {
      total += buffer->events.size();
    }
    merged.reserve(total);
    for (const auto& buffer : buffers_) {
      merged.insert(merged.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::stable_sort(merged.begin(), merged.end(), [](const JournalEvent& a, const JournalEvent& b) {
    if (a.stream != b.stream) {
      return static_cast<uint8_t>(a.stream) < static_cast<uint8_t>(b.stream);
    }
    if (a.run_id != b.run_id) {
      return a.run_id < b.run_id;
    }
    return a.seq < b.seq;
  });
  return merged;
}

size_t RetryJournal::event_count() const {
  std::lock_guard<std::mutex> lock(register_mutex_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->events.size();
  }
  return total;
}

std::string RetryJournal::ToJson(std::string_view app) const {
  std::vector<JournalEvent> events = Collect();
  std::ostringstream out;
  out << "{\n\"version\": \"" << kJournalVersion << "\",\n\"app\": \"" << EscapeJson(app)
      << "\",\n\"event_count\": " << events.size() << ",\n\"events\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    out << (i > 0 ? ",\n" : "\n");
    AppendEventJson(out, events[i]);
  }
  out << "\n]\n}\n";
  return out.str();
}

bool RetryJournal::ParseJson(std::string_view text, std::vector<JournalEvent>* events,
                             std::string* app, std::string* error) {
  events->clear();
  app->clear();
  error->clear();
  Scanner scan(text);
  std::string version;
  if (!scan.Literal("{", error) || !scan.Literal("\"version\"", error) ||
      !scan.Literal(":", error) || !scan.String(&version, error)) {
    return false;
  }
  if (version != kJournalVersion) {
    return scan.Fail("unsupported journal version '" + version + "'", error);
  }
  if (!scan.Literal(",", error) || !scan.Literal("\"app\"", error) || !scan.Literal(":", error) ||
      !scan.String(app, error)) {
    return false;
  }
  int64_t declared_count = 0;
  if (!scan.Literal(",", error) || !scan.Literal("\"event_count\"", error) ||
      !scan.Literal(":", error) || !scan.Int(&declared_count, error)) {
    return false;
  }
  if (!scan.Literal(",", error) || !scan.Literal("\"events\"", error) ||
      !scan.Literal(":", error) || !scan.Literal("[", error)) {
    return false;
  }
  if (scan.Peek() == ']') {
    scan.Literal("]", error);
  } else {
    while (true) {
      JournalEvent event;
      if (!ParseEvent(scan, &event, error)) {
        return false;
      }
      events->push_back(std::move(event));
      if (scan.Peek() == ',') {
        scan.Literal(",", error);
        continue;
      }
      if (!scan.Literal("]", error)) {
        return false;
      }
      break;
    }
  }
  if (!scan.Literal("}", error)) {
    return false;
  }
  if (!scan.AtEnd()) {
    return scan.Fail("trailing content", error);
  }
  if (declared_count != static_cast<int64_t>(events->size())) {
    return scan.Fail("event_count mismatch", error);
  }
  return true;
}

void JournalRun::Begin(RetryJournal* journal, JournalStream stream, uint64_t run_id,
                       std::string_view test, std::string_view location, int k) {
  journal_ = journal;
  stream_ = stream;
  run_id_ = run_id;
  test_.assign(test);
  location_.assign(location);
  k_ = k;
  next_seq_ = 0;
  Emit(JournalEventKind::kRunBegin, 0, 0, k, {});
}

void JournalRun::Emit(JournalEventKind kind, int attempt, int64_t t_ms, int64_t value,
                      std::string_view detail) {
  if (journal_ == nullptr) {
    return;
  }
  JournalEvent event;
  event.stream = stream_;
  event.run_id = run_id_;
  event.seq = next_seq_++;
  event.kind = kind;
  event.test = test_;
  event.location = location_;
  event.k = k_;
  event.attempt = attempt;
  event.t_ms = t_ms;
  event.value = value;
  event.detail.assign(detail);
  journal_->Append(std::move(event));
}

void JournalRun::AttemptBegin(int attempt) {
  Emit(JournalEventKind::kAttemptBegin, attempt, 0, 0, {});
}

void JournalRun::AttemptEnd(int attempt, std::string_view status, int64_t virtual_ms) {
  Emit(JournalEventKind::kAttemptEnd, attempt, 0, virtual_ms, status);
}

void JournalRun::Work(int attempt, int64_t steps) {
  Emit(JournalEventKind::kWork, attempt, 0, steps, {});
}

void JournalRun::LoopIterations(int attempt, int64_t iterations, int64_t last_ms) {
  Emit(JournalEventKind::kLoopIterations, attempt, last_ms, iterations, {});
}

void JournalRun::InjectFire(int attempt, int64_t t_ms, int64_t fire_index) {
  Emit(JournalEventKind::kInjectFire, attempt, t_ms, fire_index, {});
}

void JournalRun::InjectSkip(int attempt, int64_t skips) {
  Emit(JournalEventKind::kInjectSkip, attempt, 0, skips, {});
}

void JournalRun::Sleep(int attempt, int64_t t_ms, int64_t slept_ms) {
  Emit(JournalEventKind::kSleep, attempt, t_ms, slept_ms, {});
}

void JournalRun::BackoffWait(int next_attempt, int64_t virtual_ms) {
  Emit(JournalEventKind::kBackoffWait, next_attempt, 0, virtual_ms, {});
}

void JournalRun::HostFailure(int attempt, std::string_view kind, bool chaos) {
  Emit(JournalEventKind::kHostFailure, attempt, 0, chaos ? 1 : 0, kind);
}

void JournalRun::BreakerOpen(int attempt) {
  Emit(JournalEventKind::kBreakerOpen, attempt, 0, 1, {});
}

void JournalRun::Quarantine(std::string_view kind, std::string_view detail) {
  std::string text(kind);
  if (!detail.empty()) {
    text += ": ";
    text += detail;
  }
  Emit(JournalEventKind::kQuarantine, 0, 0, 0, text);
}

void JournalRun::ProbeRepetition(int repetition, bool diverged, bool counterfactual) {
  Emit(JournalEventKind::kProbeRepetition, repetition, 0, diverged ? 1 : 0,
       counterfactual ? "counterfactual" : std::string_view{});
}

void JournalRun::ProbeVerdict(std::string_view stability, bool probe_failed) {
  Emit(JournalEventKind::kProbeVerdict, 0, 0, probe_failed ? 1 : 0, stability);
}

void JournalRun::QueueDepth(int64_t t_ms, int64_t depth) {
  Emit(JournalEventKind::kQueueDepth, 0, t_ms, depth, {});
}

void JournalRun::InflightRetries(int64_t t_ms, int64_t count) {
  Emit(JournalEventKind::kInflightRetries, 0, t_ms, count, {});
}

void JournalRun::FaultBegin(int64_t t_ms) {
  Emit(JournalEventKind::kFaultBegin, 0, t_ms, 0, {});
}

void JournalRun::FaultEnd(int64_t t_ms) {
  Emit(JournalEventKind::kFaultEnd, 0, t_ms, 0, {});
}

void JournalRun::BreakerTransition(JournalEventKind kind, int64_t t_ms) {
  if (kind != JournalEventKind::kBreakerOpen && kind != JournalEventKind::kBreakerHalfOpen &&
      kind != JournalEventKind::kBreakerClose) {
    return;
  }
  Emit(kind, 0, t_ms, 1, {});
}

}  // namespace wasabi
