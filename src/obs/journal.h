// Retry-behavior journal for the WASABI pipeline.
//
// A RetryJournal is a default-off, structured event stream recording what the
// retry machinery actually *did* during a campaign: attempt begin/end,
// retry-loop iterations inside the coordinator, injected-fault fires and
// budget skips, application sleeps and host backoff waits (virtual ms),
// circuit-breaker transitions, quarantines, cache hits/misses, and flakiness
// prober repetitions. Every event is tagged {stream, run_id, test, location,
// k, attempt} so it joins against Chrome-trace spans and src/record decision
// streams by run id.
//
// Recording follows the same lock-free discipline as Tracer: every thread
// appends to its own buffer (registered once under a mutex on first use) and
// buffers are merged only at collect time, after the executors have joined.
//
// Determinism: events carry NO wall-clock timestamps — only virtual
// milliseconds and logical indices (attempt number, per-run sequence number).
// Each run's events get their sequence numbers from a JournalRun handle; a
// run is touched by exactly one worker per campaign wave and the reduce step
// is serial, so sequences never race and the collected journal — sorted by
// (stream, run_id, seq) — is byte-identical at any worker count.
//
// A null RetryJournal* means "off" everywhere, and a default-constructed
// JournalRun is inert, so unjournaled runs pay one pointer test and nothing
// else.

#ifndef WASABI_SRC_OBS_JOURNAL_H_
#define WASABI_SRC_OBS_JOURNAL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wasabi {

// Which pipeline phase emitted the event. The enum order is the export sort
// order, so keep it stable.
enum class JournalStream : uint8_t {
  kCoverage = 0,  // Per-test coverage runs (aggregated at reduce time).
  kCampaign = 1,  // Injection-campaign runs (one run id per planned run).
  kProbe = 2,     // Flakiness-prober repetitions of failing runs.
  kCache = 3,     // Content-addressed cache lookups (no run identity).
  kStorm = 4,     // Storm-simulation timelines (run 0 = backend, 1.. = edges).
};

const char* JournalStreamName(JournalStream stream);

enum class JournalEventKind : uint8_t {
  kRunBegin,        // Run admitted to its stream. value = k.
  kAttemptBegin,    // Host attempt started (after the chaos seam).
  kAttemptEnd,      // Host attempt finished. value = virtual ms, detail = status.
  kWork,            // Interpreter work of the attempt. value = steps.
  kLoopIterations,  // Coordinator retry-loop iterations. value = count,
                    // t_ms = virtual time of the last iteration.
  kInjectFire,      // Fault injected. t_ms = virtual time, value = fire index.
  kInjectSkip,      // Budget-exhausted skips, coalesced. value = skip count.
  kSleep,           // Application sleep. t_ms = virtual time, value = ms.
  kBackoffWait,     // Host retry backoff. value = virtual ms charged.
  kHostFailure,     // Attempt failed at host level. detail = failure kind,
                    // value = 1 when chaos-injected.
  kBreakerOpen,     // Circuit breaker opened for this run's location.
  kQuarantine,      // Run quarantined. detail = "kind: detail".
  kCacheHit,        // detail = cache namespace, value = lookup count.
  kCacheMiss,       // detail = cache namespace, value = lookup count.
  kProbeRepetition, // One prober rerun. attempt = repetition index,
                    // value = 1 when the signature diverged,
                    // detail = "counterfactual" for the degraded-off rerun.
  kProbeVerdict,    // detail = stability class, value = 1 when probe failed.
  // --- Storm-simulation kinds (stream kStorm, src/storm) -------------------
  // All t_ms values are simulated milliseconds from the storm's virtual
  // clock; sampling and breaker transitions happen in the serial event loop,
  // so the storm sub-journal is deterministic by construction.
  kQueueDepth,       // Backend queue depth sample. value = depth (incl. in service).
  kInflightRetries,  // Edge in-flight retrying requests sample. value = count.
  kFaultBegin,       // Transient backend fault window opens. t_ms = start.
  kFaultEnd,         // Fault window closes. t_ms = end.
  kBreakerHalfOpen,  // Edge breaker admitted its probe after cooldown.
  kBreakerClose,     // Probe succeeded; edge breaker closed.
};

const char* JournalEventKindName(JournalEventKind kind);

// One journal event. Fields not meaningful for a kind are zero/empty; the
// JSON export still writes every field so the format is trivially parseable.
struct JournalEvent {
  JournalStream stream = JournalStream::kCampaign;
  uint64_t run_id = 0;
  uint32_t seq = 0;  // Dense per-(stream, run) order, assigned by JournalRun.
  JournalEventKind kind = JournalEventKind::kRunBegin;
  std::string test;
  std::string location;
  int k = 0;
  int attempt = 0;
  int64_t t_ms = 0;   // Virtual milliseconds where meaningful; never wall time.
  int64_t value = 0;  // Kind-specific payload (see JournalEventKind).
  std::string detail;
};

class RetryJournal {
 public:
  RetryJournal();
  RetryJournal(const RetryJournal&) = delete;
  RetryJournal& operator=(const RetryJournal&) = delete;

  // Appends to the calling thread's buffer. Safe from any number of threads.
  void Append(JournalEvent event);

  // Cache-stream convenience: one event per lookup batch, sequenced by an
  // internal counter. All cache-lookup sites run serially on the coordinating
  // thread, so the sequence order is deterministic. Zero counts are dropped.
  void CacheLookup(std::string_view ns, bool hit, int64_t count = 1);

  // Merge of every thread's buffer, sorted by (stream, run_id, seq). Must not
  // run concurrently with Append; callers collect after parallel phases join.
  std::vector<JournalEvent> Collect() const;

  // Versioned JSON export ("wasabi-journal-v1"). Every event is one object
  // with the full fixed field set in fixed key order, so the output is
  // byte-stable and ParseJson below can stay strict and small.
  std::string ToJson(std::string_view app) const;

  // Strict parser for the exact format ToJson writes (used by the `wasabi
  // report` subcommand). Returns false and sets *error on any malformation;
  // on success fills *events (already in export order) and *app.
  static bool ParseJson(std::string_view text, std::vector<JournalEvent>* events,
                        std::string* app, std::string* error);

  size_t event_count() const;

 private:
  struct Buffer {
    std::vector<JournalEvent> events;
  };

  Buffer& ThisThreadBuffer();

  const uint64_t journal_id_;  // Process-unique; keys the thread-local cache.
  std::atomic<uint32_t> cache_seq_{0};
  mutable std::mutex register_mutex_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

// Per-run event emitter: stamps the run identity {stream, run_id, test,
// location, k} on every event and assigns the dense per-run sequence. One
// handle per planned run, owned by the (serial) executor driver; the worker
// that executes an attempt borrows the handle for that wave, and the serial
// reduce step continues the same sequence after the wave joins.
//
// Default-constructed handles are inert: every emitter is a no-op until
// Begin() attaches a journal.
class JournalRun {
 public:
  JournalRun() = default;

  // Attaches the handle and emits the kRunBegin event (seq 0).
  void Begin(RetryJournal* journal, JournalStream stream, uint64_t run_id,
             std::string_view test, std::string_view location, int k);

  bool active() const { return journal_ != nullptr; }

  void AttemptBegin(int attempt);
  void AttemptEnd(int attempt, std::string_view status, int64_t virtual_ms);
  void Work(int attempt, int64_t steps);
  void LoopIterations(int attempt, int64_t iterations, int64_t last_ms);
  void InjectFire(int attempt, int64_t t_ms, int64_t fire_index);
  void InjectSkip(int attempt, int64_t skips);
  void Sleep(int attempt, int64_t t_ms, int64_t slept_ms);
  void BackoffWait(int next_attempt, int64_t virtual_ms);
  void HostFailure(int attempt, std::string_view kind, bool chaos);
  void BreakerOpen(int attempt);
  void Quarantine(std::string_view kind, std::string_view detail);
  void ProbeRepetition(int repetition, bool diverged, bool counterfactual);
  void ProbeVerdict(std::string_view stability, bool probe_failed);

  // --- Storm-simulation emitters (stream kStorm, src/storm) ----------------
  void QueueDepth(int64_t t_ms, int64_t depth);
  void InflightRetries(int64_t t_ms, int64_t count);
  void FaultBegin(int64_t t_ms);
  void FaultEnd(int64_t t_ms);
  // kind must be kBreakerOpen, kBreakerHalfOpen, or kBreakerClose; the storm
  // engine stamps transitions with simulated time (the campaign's
  // BreakerOpen(attempt) carries no clock — its reduce step is untimed).
  void BreakerTransition(JournalEventKind kind, int64_t t_ms);

 private:
  void Emit(JournalEventKind kind, int attempt, int64_t t_ms, int64_t value,
            std::string_view detail);

  RetryJournal* journal_ = nullptr;
  JournalStream stream_ = JournalStream::kCampaign;
  uint64_t run_id_ = 0;
  std::string test_;
  std::string location_;
  int k_ = 0;
  uint32_t next_seq_ = 0;
};

}  // namespace wasabi

#endif  // WASABI_SRC_OBS_JOURNAL_H_
