#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace wasabi {

namespace {

// Bucket 0 holds exact zeros (and negatives, which the pipeline never
// produces); bucket i in [1, kBuckets-2] holds samples with |value| in
// (2^(i-2), 2^(i-1)]; the last bucket is the overflow.
constexpr size_t kBuckets = 48;

size_t BucketIndex(double value) {
  if (!(value > 0)) {
    return 0;
  }
  double bound = 1.0;
  for (size_t i = 1; i + 1 < kBuckets; ++i) {
    if (value <= bound) {
      return i;
    }
    bound *= 2.0;
  }
  return kBuckets - 1;
}

double BucketUpperBound(size_t index) {
  if (index == 0) {
    return 0.0;
  }
  double bound = 1.0;
  for (size_t i = 1; i < index; ++i) {
    bound *= 2.0;
  }
  return bound;
}

// See trace.cc for why this tiny escaper is duplicated rather than shared
// with core/report_json: obs sits below every other layer.
std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(static_cast<char>(c));
        }
        break;
    }
  }
  return out;
}

// JSON-safe number rendering: integral values print without a fraction,
// non-finite values (which no metric should produce) degrade to 0.
std::string NumberJson(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

}  // namespace

void MetricsRegistry::Increment(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  Histogram& histogram = histograms_[name];
  if (histogram.bucket_counts.empty()) {
    histogram.bucket_counts.assign(kBuckets, 0);
  }
  if (histogram.count == 0 || value < histogram.min) {
    histogram.min = value;
  }
  if (histogram.count == 0 || value > histogram.max) {
    histogram.max = value;
  }
  ++histogram.count;
  histogram.sum += value;
  ++histogram.bucket_counts[BucketIndex(value)];
}

void MetricsRegistry::AppendSeries(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  series_[name].push_back(value);
}

int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramSnapshot MetricsRegistry::HistogramFor(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot snapshot;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    return snapshot;
  }
  const Histogram& histogram = it->second;
  snapshot.count = histogram.count;
  snapshot.sum = histogram.sum;
  snapshot.min = histogram.min;
  snapshot.max = histogram.max;
  for (size_t i = 0; i < histogram.bucket_counts.size(); ++i) {
    if (histogram.bucket_counts[i] > 0) {
      snapshot.buckets.emplace_back(BucketUpperBound(i), histogram.bucket_counts[i]);
    }
  }
  return snapshot;
}

std::vector<double> MetricsRegistry::SeriesFor(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(name);
  return it == series_.end() ? std::vector<double>{} : it->second;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out << (first ? "" : ",") << "\n    \"" << EscapeJson(name) << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    out << (first ? "" : ",") << "\n    \"" << EscapeJson(name) << "\": " << NumberJson(value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "" : ",") << "\n    \"" << EscapeJson(name) << "\": {\"count\": "
        << histogram.count << ", \"sum\": " << NumberJson(histogram.sum)
        << ", \"min\": " << NumberJson(histogram.min)
        << ", \"max\": " << NumberJson(histogram.max) << ", \"mean\": "
        << NumberJson(histogram.count == 0 ? 0.0
                                           : histogram.sum / static_cast<double>(histogram.count))
        << ", \"buckets\": [";
    bool first_bucket = true;
    for (size_t i = 0; i < histogram.bucket_counts.size(); ++i) {
      if (histogram.bucket_counts[i] == 0) {
        continue;
      }
      out << (first_bucket ? "" : ", ") << "{\"le\": " << NumberJson(BucketUpperBound(i))
          << ", \"count\": " << histogram.bucket_counts[i] << "}";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"series\": {";
  first = true;
  for (const auto& [name, values] : series_) {
    out << (first ? "" : ",") << "\n    \"" << EscapeJson(name) << "\": [";
    for (size_t i = 0; i < values.size(); ++i) {
      out << (i > 0 ? ", " : "") << NumberJson(values[i]);
    }
    out << "]";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

}  // namespace wasabi
