#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace wasabi {

namespace {

// Bucket 0 holds exact zeros (and negatives, which the pipeline never
// produces); bucket i in [1, kBuckets-2] holds samples with |value| in
// (2^(i-2), 2^(i-1)]; the last bucket is the overflow.
constexpr size_t kBuckets = 48;

size_t BucketIndex(double value) {
  if (!(value > 0)) {
    return 0;
  }
  double bound = 1.0;
  for (size_t i = 1; i + 1 < kBuckets; ++i) {
    if (value <= bound) {
      return i;
    }
    bound *= 2.0;
  }
  return kBuckets - 1;
}

double BucketUpperBound(size_t index) {
  if (index == 0) {
    return 0.0;
  }
  double bound = 1.0;
  for (size_t i = 1; i < index; ++i) {
    bound *= 2.0;
  }
  return bound;
}

// See trace.cc for why this tiny escaper is duplicated rather than shared
// with core/report_json: obs sits below every other layer.
std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(static_cast<char>(c));
        }
        break;
    }
  }
  return out;
}

// JSON-safe number rendering: integral values print without a fraction,
// non-finite values (which no metric should produce) degrade to 0.
std::string NumberJson(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

// OpenMetrics metric names are limited to [a-zA-Z0-9_:] and must not start
// with a digit; the registry's dotted names map onto that with '_'.
std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // 0-based fractional rank of the requested quantile among `count` samples.
  const double rank = q * static_cast<double>(count - 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const double upper = buckets[i].first;
    const uint64_t in_bucket = buckets[i].second;
    const bool last = i + 1 == buckets.size();
    if (!last && rank >= static_cast<double>(seen + in_bucket)) {
      seen += in_bucket;
      continue;
    }
    // Bucket bounds tightened by the observed extremes; the overflow bucket
    // has no real upper bound, so `max` stands in for it.
    const double lower = upper > 1.0 ? upper / 2.0 : 0.0;
    const double lo = std::max(lower, min);
    double hi = last ? max : std::min(upper, max);
    if (hi < lo) {
      hi = lo;
    }
    const double within =
        (rank - static_cast<double>(seen) + 1.0) / static_cast<double>(in_bucket);
    const double estimate = lo + (hi - lo) * std::min(within, 1.0);
    return std::clamp(estimate, min, max);
  }
  return max;
}

void MetricsRegistry::Increment(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  Histogram& histogram = histograms_[name];
  if (histogram.bucket_counts.empty()) {
    histogram.bucket_counts.assign(kBuckets, 0);
  }
  if (histogram.count == 0 || value < histogram.min) {
    histogram.min = value;
  }
  if (histogram.count == 0 || value > histogram.max) {
    histogram.max = value;
  }
  ++histogram.count;
  histogram.sum += value;
  ++histogram.bucket_counts[BucketIndex(value)];
}

void MetricsRegistry::AppendSeries(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  series_[name].push_back(value);
}

int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

HistogramSnapshot MetricsRegistry::HistogramFor(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramSnapshot snapshot;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    return snapshot;
  }
  const Histogram& histogram = it->second;
  snapshot.count = histogram.count;
  snapshot.sum = histogram.sum;
  snapshot.min = histogram.min;
  snapshot.max = histogram.max;
  for (size_t i = 0; i < histogram.bucket_counts.size(); ++i) {
    if (histogram.bucket_counts[i] > 0) {
      snapshot.buckets.emplace_back(BucketUpperBound(i), histogram.bucket_counts[i]);
    }
  }
  return snapshot;
}

std::vector<double> MetricsRegistry::SeriesFor(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(name);
  return it == series_.end() ? std::vector<double>{} : it->second;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out << (first ? "" : ",") << "\n    \"" << EscapeJson(name) << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges_) {
    out << (first ? "" : ",") << "\n    \"" << EscapeJson(name) << "\": " << NumberJson(value);
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out << (first ? "" : ",") << "\n    \"" << EscapeJson(name) << "\": {\"count\": "
        << histogram.count << ", \"sum\": " << NumberJson(histogram.sum)
        << ", \"min\": " << NumberJson(histogram.min)
        << ", \"max\": " << NumberJson(histogram.max) << ", \"mean\": "
        << NumberJson(histogram.count == 0 ? 0.0
                                           : histogram.sum / static_cast<double>(histogram.count))
        << ", \"buckets\": [";
    bool first_bucket = true;
    for (size_t i = 0; i < histogram.bucket_counts.size(); ++i) {
      if (histogram.bucket_counts[i] == 0) {
        continue;
      }
      out << (first_bucket ? "" : ", ") << "{\"le\": " << NumberJson(BucketUpperBound(i))
          << ", \"count\": " << histogram.bucket_counts[i] << "}";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"series\": {";
  first = true;
  for (const auto& [name, values] : series_) {
    out << (first ? "" : ",") << "\n    \"" << EscapeJson(name) << "\": [";
    for (size_t i = 0; i < values.size(); ++i) {
      out << (i > 0 ? ", " : "") << NumberJson(values[i]);
    }
    out << "]";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

std::string MetricsRegistry::ToOpenMetrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, value] : counters_) {
    std::string family = SanitizeMetricName(name);
    // Counter sample names carry a mandatory _total suffix; avoid doubling it
    // for registry names that already end that way.
    constexpr std::string_view kTotal = "_total";
    if (family.size() > kTotal.size() &&
        family.compare(family.size() - kTotal.size(), kTotal.size(), kTotal) == 0) {
      family.resize(family.size() - kTotal.size());
    }
    out << "# TYPE " << family << " counter\n" << family << "_total " << value << "\n";
  }
  for (const auto& [name, value] : gauges_) {
    const std::string family = SanitizeMetricName(name);
    out << "# TYPE " << family << " gauge\n" << family << " " << NumberJson(value) << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string family = SanitizeMetricName(name);
    out << "# TYPE " << family << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram.bucket_counts.size(); ++i) {
      if (histogram.bucket_counts[i] == 0) {
        continue;
      }
      cumulative += histogram.bucket_counts[i];
      out << family << "_bucket{le=\"" << NumberJson(BucketUpperBound(i)) << "\"} " << cumulative
          << "\n";
    }
    out << family << "_bucket{le=\"+Inf\"} " << histogram.count << "\n";
    out << family << "_sum " << NumberJson(histogram.sum) << "\n";
    out << family << "_count " << histogram.count << "\n";
  }
  out << "# EOF\n";
  return out.str();
}

}  // namespace wasabi
