// Named counters, gauges, log2-bucket histograms, and append-only series for
// pipeline metrics — the flat-JSON counterpart of the Tracer's timeline.
//
// Thread-safe: one registry can be fed from campaign workers and the main
// thread at once (a short mutex section per update; update sites are coarse —
// per run, per injection — never per interpreter step). All exported values
// are order-independent aggregates (sums, min/max, bucket counts), so the
// JSON snapshot is deterministic for a deterministic workload regardless of
// worker scheduling. Series are the one exception: AppendSeries must be
// called from reduce-time (serial) code, which is where the pipeline computes
// its cumulative-coverage time series anyway.

#ifndef WASABI_SRC_OBS_METRICS_H_
#define WASABI_SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace wasabi {

// Aggregate view of one histogram. Buckets are powers of two over the
// absolute value: bucket i counts samples with value <= 2^i (after the
// dedicated zero bucket), the last bucket is unbounded.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  // (inclusive upper bound, samples in bucket); only non-empty buckets.
  std::vector<std::pair<double, uint64_t>> buckets;

  double mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  // Quantile estimate (q in [0, 1]) by linear interpolation inside the log2
  // bucket holding rank q*(count-1), clamped to the observed [min, max]. The
  // estimate is always within the true quantile's bucket bounds, which the
  // retry analytics tests assert on.
  double Quantile(double q) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void Increment(const std::string& name, int64_t delta = 1);
  void SetGauge(const std::string& name, double value);
  void Observe(const std::string& name, double value);  // Histogram sample.
  void AppendSeries(const std::string& name, double value);

  // Snapshot accessors; missing names read as zero / empty.
  int64_t CounterValue(const std::string& name) const;
  double GaugeValue(const std::string& name) const;
  HistogramSnapshot HistogramFor(const std::string& name) const;
  std::vector<double> SeriesFor(const std::string& name) const;

  // One JSON object {"counters":{...},"gauges":{...},"histograms":{...},
  // "series":{...}}, keys sorted (std::map iteration), always valid JSON.
  std::string ToJson() const;

  // OpenMetrics text exposition (the `--metrics-format=openmetrics` scrape
  // path): counters as `<name>_total`, gauges verbatim, histograms with
  // cumulative `_bucket{le=...}` lines plus `_sum`/`_count`, names sanitized
  // to [a-zA-Z0-9_:], terminated by `# EOF`. Series have no OpenMetrics
  // equivalent and are deliberately omitted.
  std::string ToOpenMetrics() const;

 private:
  struct Histogram {
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    // kZeroBucket + one bucket per power of two + overflow; see metrics.cc.
    std::vector<uint64_t> bucket_counts;
  };

  mutable std::mutex mutex_;
  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::vector<double>> series_;
};

}  // namespace wasabi

#endif  // WASABI_SRC_OBS_METRICS_H_
