#include "src/obs/progress.h"

#include <cstdio>
#include <ostream>

namespace wasabi {

ProgressMeter::ProgressMeter(std::ostream* out, int64_t interval_ms)
    : out_(out), interval_ms_(interval_ms), phase_start_(std::chrono::steady_clock::now()) {}

void ProgressMeter::Begin(const std::string& label, uint64_t total) {
  std::lock_guard<std::mutex> lock(mutex_);
  label_ = label;
  total_ = total;
  phase_start_ = std::chrono::steady_clock::now();
  done_.store(0, std::memory_order_relaxed);
  last_print_ms_.store(-1, std::memory_order_relaxed);
}

void ProgressMeter::Tick(uint64_t n) {
  done_.fetch_add(n, std::memory_order_relaxed);
  if (out_ == nullptr) {
    return;
  }
  int64_t elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - phase_start_)
                           .count();
  int64_t last = last_print_ms_.load(std::memory_order_relaxed);
  if (last >= 0 && elapsed_ms - last < interval_ms_) {
    return;
  }
  // One winner per interval; losers skip the print entirely.
  if (!last_print_ms_.compare_exchange_strong(last, elapsed_ms, std::memory_order_relaxed)) {
    return;
  }
  PrintLine(false);
}

void ProgressMeter::Finish() {
  if (out_ != nullptr) {
    PrintLine(true);
  }
}

void ProgressMeter::PrintLine(bool final_line) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t done = done_.load(std::memory_order_relaxed);
  double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - phase_start_)
                       .count();
  double rate = seconds > 0 ? static_cast<double>(done) / seconds : 0.0;
  char line[160];
  if (final_line || done >= total_ || rate <= 0) {
    std::snprintf(line, sizeof(line), "[%s] %llu/%llu runs  %.1f runs/s  %.2fs",
                  label_.c_str(), static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total_), rate, seconds);
  } else {
    double eta = static_cast<double>(total_ - done) / rate;
    std::snprintf(line, sizeof(line), "[%s] %llu/%llu runs  %.1f runs/s  ETA %.0fs",
                  label_.c_str(), static_cast<unsigned long long>(done),
                  static_cast<unsigned long long>(total_), rate, eta);
  }
  *out_ << "\r" << line;
  if (final_line) {
    *out_ << "\n";
  }
  out_->flush();
}

}  // namespace wasabi
