// Periodic progress reporting for long campaign phases: a single stderr line
// ("[campaign] 120/480 runs  24.3 runs/s  ETA 15s") rewritten in place at a
// bounded rate.
//
// Thread-safe: Tick may be called from every campaign worker. Printing is
// rate-limited by an atomic timestamp CAS, so at most one thread formats a
// line per interval and the others pay one relaxed load. Output goes to the
// stream passed at construction (stderr in the CLI) and never to stdout, so
// report output stays byte-identical with progress enabled.

#ifndef WASABI_SRC_OBS_PROGRESS_H_
#define WASABI_SRC_OBS_PROGRESS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

namespace wasabi {

class ProgressMeter {
 public:
  // `out` may be null, which disables all output (ticks still count).
  explicit ProgressMeter(std::ostream* out, int64_t interval_ms = 250);

  // Starts a new phase: resets the counter and the rate clock.
  void Begin(const std::string& label, uint64_t total);

  // Marks `n` more units done; prints at most once per interval.
  void Tick(uint64_t n = 1);

  // Prints the final line for the phase, newline-terminated.
  void Finish();

  uint64_t done() const { return done_.load(std::memory_order_relaxed); }

 private:
  void PrintLine(bool final_line);

  std::ostream* out_;
  const int64_t interval_ms_;
  std::mutex mutex_;  // Guards label_/total_/stream writes.
  std::string label_;
  uint64_t total_ = 0;
  std::chrono::steady_clock::time_point phase_start_;
  std::atomic<uint64_t> done_{0};
  std::atomic<int64_t> last_print_ms_{-1};
};

}  // namespace wasabi

#endif  // WASABI_SRC_OBS_PROGRESS_H_
