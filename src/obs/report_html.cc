#include "src/obs/report_html.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace wasabi {

namespace {

// Charts cap their per-location strip count so a huge campaign stays a
// readable page; the cap is always announced next to the chart (never a
// silent truncation) and the run table carries every run regardless.
constexpr size_t kMaxTimelineRuns = 8;

std::string EscapeHtml(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&#39;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

// Thousands-grouped integer: the report is full of step counts in the
// millions, and ungrouped digits are unreadable at a glance.
std::string FmtInt(int64_t value) {
  char raw[32];
  std::snprintf(raw, sizeof(raw), "%" PRId64, value < 0 ? -value : value);
  std::string digits(raw);
  std::string out = value < 0 ? "-" : "";
  const size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) {
      out.push_back(',');
    }
    out.push_back(digits[i]);
  }
  return out;
}

std::string FmtF(double value, int precision) {
  char raw[64];
  std::snprintf(raw, sizeof(raw), "%.*f", precision, value);
  return std::string(raw);
}

std::string FmtCoord(double value) { return FmtF(value, 1); }

// --- SVG builders -----------------------------------------------------------
//
// All charts share the mark specs from the dashboard stylesheet: bars <= 24px
// with 4px rounded data-ends (square at the baseline), >= 8px markers with a
// 2px surface ring, hairline axes in the muted ink, text in text tokens only.

void SvgOpen(std::string* out, int width, int height) {
  *out += "<svg viewBox=\"0 0 " + std::to_string(width) + " " + std::to_string(height) +
          "\" width=\"" + std::to_string(width) + "\" height=\"" + std::to_string(height) +
          "\" role=\"img\">";
}

void SvgRect(std::string* out, double x, double y, double w, double h, const char* fill,
             double rx, const std::string& tip) {
  *out += "<rect x=\"" + FmtCoord(x) + "\" y=\"" + FmtCoord(y) + "\" width=\"" + FmtCoord(w) +
          "\" height=\"" + FmtCoord(h) + "\" fill=\"" + fill + "\"";
  if (rx > 0) {
    *out += " rx=\"" + FmtCoord(rx) + "\"";
  }
  if (!tip.empty()) {
    *out += " data-tip=\"" + tip + "\"";
  }
  *out += "/>";
}

void SvgCircle(std::string* out, double cx, double cy, double r, const char* fill,
               const std::string& tip) {
  *out += "<circle cx=\"" + FmtCoord(cx) + "\" cy=\"" + FmtCoord(cy) + "\" r=\"" + FmtCoord(r) +
          "\" fill=\"" + fill + "\" stroke=\"var(--surface-1)\" stroke-width=\"2\"";
  if (!tip.empty()) {
    *out += " data-tip=\"" + tip + "\"";
  }
  *out += "/>";
}

void SvgText(std::string* out, double x, double y, const char* cls, const std::string& text,
             const char* anchor = "start") {
  *out += "<text x=\"" + FmtCoord(x) + "\" y=\"" + FmtCoord(y) + "\" class=\"" + cls +
          "\" text-anchor=\"" + std::string(anchor) + "\">" + text + "</text>";
}

void SvgLine(std::string* out, double x1, double y1, double x2, double y2) {
  *out += "<line x1=\"" + FmtCoord(x1) + "\" y1=\"" + FmtCoord(y1) + "\" x2=\"" + FmtCoord(x2) +
          "\" y2=\"" + FmtCoord(y2) + "\" stroke=\"var(--axis)\" stroke-width=\"1\"/>";
}

// Truncates a location key for strip labels; the full key lives in the
// heading and every tooltip.
std::string ShortLabel(const std::string& text, size_t max) {
  if (text.size() <= max) {
    return EscapeHtml(text);
  }
  return EscapeHtml("…" + text.substr(text.size() - (max - 1)));
}

void StatTile(std::string* out, const std::string& label, const std::string& value,
              const std::string& note) {
  *out += "<div class=\"tile\"><div class=\"tile-label\">" + label +
          "</div><div class=\"tile-value\">" + value + "</div>";
  if (!note.empty()) {
    *out += "<div class=\"tile-note\">" + note + "</div>";
  }
  *out += "</div>";
}

// One run's strip on the per-location retry timeline: a recessive track the
// length of the run's final-attempt virtual duration, aqua sleep segments,
// and orange fire markers, all on one shared virtual-ms x scale.
void TimelineStrip(std::string* out, const RunRetryTimeline& run, double x0, double y,
                   double width, int64_t max_ms) {
  const double scale = width / static_cast<double>(std::max<int64_t>(max_ms, 1));
  const double track_ms = static_cast<double>(std::max<int64_t>(run.virtual_ms, 1));
  SvgRect(out, x0, y + 7, track_ms * scale, 8, "var(--track)", 4,
          "run " + std::to_string(run.run_id) + " \xc2\xb7 " + EscapeHtml(run.final_status) +
              " \xc2\xb7 " + FmtInt(run.virtual_ms) + " virtual ms \xc2\xb7 " +
              FmtInt(run.steps) + " steps");
  for (const RetryTimelinePoint& point : run.points) {
    if (point.kind == JournalEventKind::kSleep) {
      SvgRect(out, x0 + static_cast<double>(point.t_ms) * scale, y + 7,
              std::max(2.0, static_cast<double>(point.value) * scale), 8, "var(--series-3)", 2,
              "sleep " + FmtInt(point.value) + " ms at t=" + FmtInt(point.t_ms) +
                  " ms (attempt " + std::to_string(point.attempt) + ")");
    }
  }
  for (const RetryTimelinePoint& point : run.points) {
    if (point.kind == JournalEventKind::kInjectFire) {
      SvgCircle(out, x0 + static_cast<double>(point.t_ms) * scale, y + 11, 4, "var(--series-2)",
                "fault #" + FmtInt(point.value) + " fired at t=" + FmtInt(point.t_ms) +
                    " ms (attempt " + std::to_string(point.attempt) + ")");
    }
  }
}

// Column chart shared by the backoff schedule and the latency histogram:
// single blue series, <= 24px columns with 4px rounded caps growing from one
// baseline, 2px surface gaps, selective cap labels when the count is small.
void ColumnChart(std::string* out, const std::vector<std::pair<std::string, int64_t>>& columns,
                 const std::string& value_unit) {
  const int width = 720;
  const int height = 150;
  const double plot_h = 110;
  const double base_y = 126;
  int64_t max_value = 1;
  for (const auto& [label, value] : columns) {
    max_value = std::max(max_value, value);
  }
  const double slot = static_cast<double>(width) / static_cast<double>(columns.size());
  const double bar_w = std::min(24.0, std::max(4.0, slot - 2.0));
  const bool label_caps = columns.size() <= 16;
  SvgOpen(out, width, height);
  SvgLine(out, 0, base_y, width, base_y);
  for (size_t i = 0; i < columns.size(); ++i) {
    const double h =
        std::max(2.0, static_cast<double>(columns[i].second) / static_cast<double>(max_value) *
                          plot_h);
    const double x = slot * static_cast<double>(i) + (slot - bar_w) / 2;
    // Rounded data-end, square baseline: draw the rounded bar, then square
    // off its bottom corners with a small patch.
    SvgRect(out, x, base_y - h, bar_w, h, "var(--series-1)", 4,
            columns[i].first + ": " + FmtInt(columns[i].second) + " " + value_unit);
    if (h > 6) {
      SvgRect(out, x, base_y - std::min(h, 4.0), bar_w, std::min(h, 4.0), "var(--series-1)", 0,
              "");
    }
    if (label_caps) {
      SvgText(out, x + bar_w / 2, base_y - h - 5, "svg-value", FmtInt(columns[i].second),
              "middle");
      SvgText(out, x + bar_w / 2, base_y + 14, "svg-axis", columns[i].first, "middle");
    }
  }
  if (!label_caps) {
    SvgText(out, 0, base_y + 14, "svg-axis", columns.front().first);
    SvgText(out, width, base_y + 14, "svg-axis", columns.back().first, "end");
  }
  *out += "</svg>";
}

std::string OutcomeClass(const RunRetryTimeline& run) {
  if (run.quarantined) {
    return "cell-quarantined";
  }
  if (run.breaker_opened) {
    return "cell-breaker";
  }
  return run.passed ? "cell-passed" : "cell-failed";
}

std::string OutcomeName(const RunRetryTimeline& run) {
  if (run.quarantined) {
    return "quarantined";
  }
  if (run.breaker_opened) {
    return "breaker opened";
  }
  return run.passed ? "passed" : "failed (" + EscapeHtml(run.final_status) + ")";
}

const char kStyle[] = R"css(
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --track: #e1e0d9;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --status-good: #0ca30c; --status-serious: #ec835a; --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --track: #2c2c2a;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
  }
}
* { box-sizing: border-box; }
body { margin: 0; padding: 24px; background: var(--page); color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif; }
main { max-width: 860px; margin: 0 auto; }
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 32px 0 8px; }
h3 { font-size: 13px; font-weight: 600; color: var(--text-secondary); margin: 16px 0 4px;
  overflow-wrap: anywhere; }
.subtitle { color: var(--text-secondary); margin-bottom: 24px; }
.card { background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px;
  padding: 16px; margin-bottom: 16px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile { background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px;
  padding: 12px 16px; min-width: 130px; flex: 1; }
.tile-label { font-size: 12px; color: var(--text-secondary); }
.tile-value { font-size: 22px; font-weight: 600; }
.tile-note { font-size: 11px; color: var(--muted); }
.hero { font-size: 48px; font-weight: 600; line-height: 1.1; }
.hero-label { font-size: 13px; color: var(--text-secondary); }
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th { text-align: left; color: var(--text-secondary); font-weight: 500;
  border-bottom: 1px solid var(--axis); padding: 4px 8px; }
td { border-bottom: 1px solid var(--grid); padding: 4px 8px;
  font-variant-numeric: tabular-nums; overflow-wrap: anywhere; }
td.num, th.num { text-align: right; }
.legend { display: flex; gap: 16px; font-size: 12px; color: var(--text-secondary);
  margin: 4px 0 8px; flex-wrap: wrap; }
.key { display: inline-block; width: 10px; height: 10px; border-radius: 5px;
  margin-right: 4px; vertical-align: -1px; }
.key-bar { display: inline-block; width: 14px; height: 8px; border-radius: 2px;
  margin-right: 4px; }
.cells { display: flex; flex-wrap: wrap; gap: 2px; }
.cell { width: 14px; height: 14px; border-radius: 3px; }
.cell-passed { background: var(--status-good); }
.cell-failed { background: var(--muted); }
.cell-breaker { background: var(--status-serious); }
.cell-quarantined { background: var(--status-critical); }
.svg-axis { font: 11px system-ui, sans-serif; fill: var(--muted); }
.svg-value { font: 11px system-ui, sans-serif; fill: var(--text-secondary); }
.svg-label { font: 12px system-ui, sans-serif; fill: var(--text-secondary); }
.note { font-size: 12px; color: var(--muted); }
details { margin-top: 8px; }
summary { cursor: pointer; color: var(--text-secondary); font-size: 13px; }
pre { background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px;
  padding: 12px; overflow-x: auto; font-size: 12px; max-height: 360px; }
#tip { display: none; position: absolute; background: var(--text-primary);
  color: var(--page); padding: 4px 8px; border-radius: 4px; font-size: 12px;
  pointer-events: none; max-width: 320px; z-index: 10; }
)css";

const char kScript[] = R"js(
var tip = document.getElementById('tip');
document.addEventListener('mousemove', function (e) {
  var t = e.target.closest ? e.target.closest('[data-tip]') : null;
  if (t) {
    tip.textContent = t.getAttribute('data-tip');
    tip.style.display = 'block';
    tip.style.left = (e.pageX + 12) + 'px';
    tip.style.top = (e.pageY + 12) + 'px';
  } else {
    tip.style.display = 'none';
  }
});
)js";

// Minimal field extractor for the fixed-format "wasabi-repair-v1" JSON this
// toolkit itself emits (flat rows, known keys, no nested objects). Returns ""
// when the key is absent. Handles string values (with escape folding) and
// bare scalars.
std::string RepairJsonField(std::string_view row, const std::string& key) {
  const std::string pattern = "\"" + key + "\": ";
  size_t pos = row.find(pattern);
  if (pos == std::string_view::npos) {
    return std::string();
  }
  pos += pattern.size();
  if (pos >= row.size()) {
    return std::string();
  }
  if (row[pos] == '"') {
    std::string out;
    for (size_t i = pos + 1; i < row.size(); ++i) {
      char c = row[i];
      if (c == '\\' && i + 1 < row.size()) {
        out += row[++i];
        continue;
      }
      if (c == '"') {
        break;
      }
      out += c;
    }
    return out;
  }
  size_t end = row.find_first_of(",}", pos);
  if (end == std::string_view::npos) {
    end = row.size();
  }
  return std::string(row.substr(pos, end - pos));
}

}  // namespace

std::string RenderHtmlReport(std::string_view app, const std::vector<JournalEvent>& events,
                             const RetryStatsReport& stats, std::string_view metrics_json,
                             std::string_view trace_json, std::string_view repair_json) {
  std::string out;
  out.reserve(1 << 16);
  const std::string app_html = EscapeHtml(app);
  out += "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">";
  out += "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">";
  out += "<title>Retry report \xc2\xb7 " + app_html + "</title>";
  out += "<style>";
  out += kStyle;
  out += "</style></head><body><div id=\"tip\"></div><main>";

  out += "<h1>Retry report \xc2\xb7 " + app_html + "</h1>";
  out += "<div class=\"subtitle\">" + FmtInt(static_cast<int64_t>(events.size())) +
         " journal events \xc2\xb7 " + FmtInt(static_cast<int64_t>(stats.campaign_runs)) +
         " campaign runs \xc2\xb7 " + FmtInt(static_cast<int64_t>(stats.locations.size())) +
         " retry locations</div>";

  // --- Headline: amplification hero + stat tiles ----------------------------
  out += "<div class=\"card\"><div class=\"hero-label\">Retry amplification "
         "(attempts executed \xc3\xb7 attempts a correct policy needs)</div>";
  out += "<div class=\"hero\">" + FmtF(stats.amplification, 2) + "&times;</div></div>";
  out += "<div class=\"tiles\">";
  StatTile(&out, "Goodput ratio", FmtF(stats.goodput_ratio * 100.0, 1) + "%",
           FmtInt(stats.goodput_steps) + " of " + FmtInt(stats.total_steps) + " steps");
  StatTile(&out, "Wasted work", FmtInt(stats.wasted_steps),
           "interpreter steps beyond a correct policy");
  StatTile(&out, "Attempts", FmtInt(stats.attempts_observed),
           "observed \xc2\xb7 " + FmtInt(stats.attempts_needed) + " needed");
  StatTile(&out, "Time to recover", FmtInt(stats.time_to_recover_ms_max) + " ms",
           "max \xc2\xb7 " + FmtInt(stats.time_to_recover_ms_total) + " ms total");
  StatTile(&out, "Run latency p50", FmtF(stats.latency_p50_ms, 1) + " ms",
           "p90 " + FmtF(stats.latency_p90_ms, 1) + " \xc2\xb7 p99 " +
               FmtF(stats.latency_p99_ms, 1));
  out += "</div>";

  // --- Per-location amplification / goodput table ---------------------------
  out += "<h2>Amplification &amp; goodput by retry location</h2><div class=\"card\">";
  if (stats.locations.empty()) {
    out += "<div class=\"note\">No campaign runs were journaled.</div>";
  } else {
    out += "<table><thead><tr><th>Location</th><th class=\"num\">Runs</th>"
           "<th class=\"num\">Passed</th><th class=\"num\">Quarantined</th>"
           "<th class=\"num\">Amplification</th><th class=\"num\">Goodput</th>"
           "<th class=\"num\">Wasted steps</th><th class=\"num\">TTR max (ms)</th>"
           "<th class=\"num\">p50 (ms)</th><th class=\"num\">p99 (ms)</th></tr></thead><tbody>";
    for (const LocationRetryStats& loc : stats.locations) {
      out += "<tr><td>" + EscapeHtml(loc.location) + "</td><td class=\"num\">" +
             FmtInt(static_cast<int64_t>(loc.runs)) + "</td><td class=\"num\">" +
             FmtInt(static_cast<int64_t>(loc.passed_runs)) + "</td><td class=\"num\">" +
             FmtInt(static_cast<int64_t>(loc.quarantined_runs)) + "</td><td class=\"num\">" +
             FmtF(loc.amplification, 2) + "&times;</td><td class=\"num\">" +
             FmtF(loc.goodput_ratio * 100.0, 1) + "%</td><td class=\"num\">" +
             FmtInt(loc.wasted_steps) + "</td><td class=\"num\">" +
             FmtInt(loc.time_to_recover_ms_max) + "</td><td class=\"num\">" +
             FmtF(loc.latency_p50_ms, 1) + "</td><td class=\"num\">" +
             FmtF(loc.latency_p99_ms, 1) + "</td></tr>";
    }
    out += "</tbody></table>";
  }
  out += "</div>";

  // --- Per-location retry timelines -----------------------------------------
  // Index runs by location once; every chart below walks the same groups.
  std::map<std::string, std::vector<const RunRetryTimeline*>> runs_by_location;
  for (const RunRetryTimeline& run : stats.runs) {
    runs_by_location[run.location].push_back(&run);
  }

  out += "<h2>Retry timelines</h2>";
  out += "<div class=\"legend\"><span><span class=\"key\" "
         "style=\"background:var(--series-2)\"></span>fault fired</span>"
         "<span><span class=\"key-bar\" style=\"background:var(--series-3)\"></span>"
         "application sleep</span><span><span class=\"key-bar\" "
         "style=\"background:var(--track)\"></span>run duration (virtual ms)</span></div>";
  if (runs_by_location.empty()) {
    out += "<div class=\"card\"><div class=\"note\">No campaign runs were journaled.</div></div>";
  }
  for (const auto& [location, runs] : runs_by_location) {
    const size_t shown = std::min(runs.size(), kMaxTimelineRuns);
    int64_t max_ms = 1;
    for (size_t i = 0; i < shown; ++i) {
      max_ms = std::max(max_ms, runs[i]->virtual_ms);
      for (const RetryTimelinePoint& point : runs[i]->points) {
        if (point.kind != JournalEventKind::kBackoffWait) {
          max_ms = std::max(max_ms, point.t_ms + point.value);
        }
      }
    }
    out += "<div class=\"card\"><h3>" + EscapeHtml(location) + "</h3>";
    const double label_w = 120;
    const double plot_w = 600;
    const int height = static_cast<int>(shown) * 22 + 20;
    SvgOpen(&out, 740, height);
    for (size_t i = 0; i < shown; ++i) {
      const double y = static_cast<double>(i) * 22;
      SvgText(&out, 0, y + 15, "svg-label",
              "run " + std::to_string(runs[i]->run_id) + " \xc2\xb7 k=" +
                  std::to_string(runs[i]->k));
      TimelineStrip(&out, *runs[i], label_w, y, plot_w, max_ms);
    }
    SvgLine(&out, label_w, static_cast<double>(shown) * 22 + 2, label_w + plot_w,
            static_cast<double>(shown) * 22 + 2);
    SvgText(&out, label_w, height - 2, "svg-axis", "0 ms");
    SvgText(&out, label_w + plot_w, height - 2, "svg-axis", FmtInt(max_ms) + " ms", "end");
    out += "</svg>";
    if (shown < runs.size()) {
      out += "<div class=\"note\">Showing the first " + FmtInt(static_cast<int64_t>(shown)) +
             " of " + FmtInt(static_cast<int64_t>(runs.size())) +
             " runs; the run table and journal carry all of them.</div>";
    }
    out += "</div>";
  }

  // --- Backoff schedules ----------------------------------------------------
  out += "<h2>Host backoff schedule</h2>";
  bool any_backoff = false;
  for (const auto& [location, runs] : runs_by_location) {
    std::vector<std::pair<std::string, int64_t>> columns;
    for (const RunRetryTimeline* run : runs) {
      for (const RetryTimelinePoint& point : run->points) {
        if (point.kind == JournalEventKind::kBackoffWait) {
          columns.emplace_back("r" + std::to_string(run->run_id) + "\xc2\xb7" +
                                   std::to_string(point.attempt),
                               point.value);
        }
      }
    }
    if (columns.empty()) {
      continue;
    }
    any_backoff = true;
    out += "<div class=\"card\"><h3>" + EscapeHtml(location) + "</h3>";
    ColumnChart(&out, columns, "ms backoff before attempt");
    out += "<div class=\"note\">One column per host retry, labeled run\xc2\xb7"
           "attempt; height is the virtual backoff wait.</div></div>";
  }
  if (!any_backoff) {
    out += "<div class=\"card\"><div class=\"note\">No host-level backoff waits were "
           "journaled \xe2\x80\x94 no run failed at the host level.</div></div>";
  }

  // --- Run outcome / breaker strips -----------------------------------------
  out += "<h2>Run outcomes &amp; circuit breaker</h2>";
  out += "<div class=\"legend\"><span><span class=\"key\" "
         "style=\"background:var(--status-good)\"></span>\xe2\x9c\x93 passed</span>"
         "<span><span class=\"key\" style=\"background:var(--muted)\"></span>"
         "\xe2\x9c\x95 failed</span><span><span class=\"key\" "
         "style=\"background:var(--status-serious)\"></span>\xe2\x9a\xa0 breaker opened</span>"
         "<span><span class=\"key\" style=\"background:var(--status-critical)\"></span>"
         "\xe2\x9b\x94 quarantined</span></div>";
  if (runs_by_location.empty()) {
    out += "<div class=\"card\"><div class=\"note\">No campaign runs were journaled.</div></div>";
  } else {
    out += "<div class=\"card\">";
    for (const auto& [location, runs] : runs_by_location) {
      out += "<h3>" + EscapeHtml(location) + "</h3><div class=\"cells\">";
      for (const RunRetryTimeline* run : runs) {
        out += "<div class=\"cell " + OutcomeClass(*run) + "\" data-tip=\"run " +
               std::to_string(run->run_id) + " \xc2\xb7 k=" + std::to_string(run->k) +
               " \xc2\xb7 " + OutcomeName(*run) + " \xc2\xb7 " +
               std::to_string(run->host_attempts) + " host attempt(s)\"></div>";
      }
      out += "</div>";
    }
    out += "</div>";
  }

  // --- Latency histogram ----------------------------------------------------
  out += "<h2>Run latency (virtual ms, completed runs)</h2><div class=\"card\">";
  {
    std::map<int, int64_t> buckets;  // Key: log2 bucket index (0 = value 0).
    for (const RunRetryTimeline& run : stats.runs) {
      if (!run.completed) {
        continue;
      }
      const uint64_t v = static_cast<uint64_t>(std::max<int64_t>(run.virtual_ms, 0));
      buckets[v == 0 ? 0 : std::bit_width(v)] += 1;
    }
    if (buckets.empty()) {
      out += "<div class=\"note\">No completed campaign runs were journaled.</div>";
    } else {
      std::vector<std::pair<std::string, int64_t>> columns;
      const int lo_bucket = buckets.begin()->first;
      const int hi_bucket = buckets.rbegin()->first;
      for (int b = lo_bucket; b <= hi_bucket; ++b) {
        std::string label;
        if (b == 0) {
          label = "0";
        } else {
          const int64_t lo = int64_t{1} << (b - 1);
          const int64_t hi = (int64_t{1} << b) - 1;
          label = lo == hi ? FmtInt(lo) : FmtInt(lo) + "\xe2\x80\x93" + FmtInt(hi);
        }
        const auto it = buckets.find(b);
        columns.emplace_back(label, it == buckets.end() ? 0 : it->second);
      }
      ColumnChart(&out, columns, "runs");
      out += "<div class=\"note\">Power-of-two latency buckets (ms); exact quantiles: p50 " +
             FmtF(stats.latency_p50_ms, 1) + " \xc2\xb7 p90 " + FmtF(stats.latency_p90_ms, 1) +
             " \xc2\xb7 p99 " + FmtF(stats.latency_p99_ms, 1) + " ms.</div>";
    }
  }
  out += "</div>";

  // --- Prober + cache streams (from the raw journal) ------------------------
  {
    std::map<uint64_t, std::pair<int64_t, std::string>> probes;  // run -> (reps, verdict).
    std::map<std::string, std::pair<int64_t, int64_t>> cache;    // ns -> (hits, misses).
    for (const JournalEvent& event : events) {
      if (event.stream == JournalStream::kProbe) {
        auto& entry = probes[event.run_id];
        if (event.kind == JournalEventKind::kProbeRepetition) {
          ++entry.first;
        } else if (event.kind == JournalEventKind::kProbeVerdict) {
          entry.second = event.detail + (event.value != 0 ? " (probe failed)" : "");
        }
      } else if (event.kind == JournalEventKind::kCacheHit) {
        cache[event.detail].first += event.value;
      } else if (event.kind == JournalEventKind::kCacheMiss) {
        cache[event.detail].second += event.value;
      }
    }
    if (!probes.empty()) {
      out += "<h2>Flakiness prober</h2><div class=\"card\"><table><thead><tr>"
             "<th class=\"num\">Run</th><th class=\"num\">Repetitions</th>"
             "<th>Verdict stability</th></tr></thead><tbody>";
      for (const auto& [run_id, entry] : probes) {
        out += "<tr><td class=\"num\">" + std::to_string(run_id) + "</td><td class=\"num\">" +
               FmtInt(entry.first) + "</td><td>" + EscapeHtml(entry.second) + "</td></tr>";
      }
      out += "</tbody></table></div>";
    }
    if (!cache.empty()) {
      out += "<h2>Result cache</h2><div class=\"card\"><table><thead><tr>"
             "<th>Namespace</th><th class=\"num\">Hits</th><th class=\"num\">Misses</th>"
             "</tr></thead><tbody>";
      for (const auto& [ns, counts] : cache) {
        out += "<tr><td>" + EscapeHtml(ns) + "</td><td class=\"num\">" + FmtInt(counts.first) +
               "</td><td class=\"num\">" + FmtInt(counts.second) + "</td></tr>";
      }
      out += "</tbody></table></div>";
    }
  }

  // --- Storm simulation timelines (stream kStorm) ---------------------------
  // Rendered only when a `wasabi storm` run journaled the kStorm stream: the
  // backend queue-depth timeline with the fault window shaded, then one
  // in-flight-retries track per edge with its breaker transitions marked.
  {
    struct StormEdgeTrack {
      std::string location;
      std::vector<std::pair<int64_t, int64_t>> inflight;  // (t_ms, count).
      std::vector<std::pair<int64_t, JournalEventKind>> transitions;
    };
    std::vector<std::pair<int64_t, int64_t>> depth;  // Backend (t_ms, depth).
    int64_t fault_begin = -1;
    int64_t fault_end = -1;
    std::map<uint64_t, StormEdgeTrack> storm_edges;
    for (const JournalEvent& event : events) {
      if (event.stream != JournalStream::kStorm) {
        continue;
      }
      if (event.run_id == 0) {
        if (event.kind == JournalEventKind::kQueueDepth) {
          depth.emplace_back(event.t_ms, event.value);
        } else if (event.kind == JournalEventKind::kFaultBegin) {
          fault_begin = event.t_ms;
        } else if (event.kind == JournalEventKind::kFaultEnd) {
          fault_end = event.t_ms;
        }
        continue;
      }
      StormEdgeTrack& track = storm_edges[event.run_id];
      if (track.location.empty()) {
        track.location = event.location;
      }
      if (event.kind == JournalEventKind::kInflightRetries) {
        track.inflight.emplace_back(event.t_ms, event.value);
      } else if (event.kind == JournalEventKind::kBreakerOpen ||
                 event.kind == JournalEventKind::kBreakerHalfOpen ||
                 event.kind == JournalEventKind::kBreakerClose) {
        track.transitions.emplace_back(event.t_ms, event.kind);
      }
    }
    // One gauge track: shaded fault window, a column per sample (rendered as
    // thin bars so the x axis is honest about sampling), peak in the note.
    auto storm_track = [&](const std::vector<std::pair<int64_t, int64_t>>& samples,
                           const std::vector<std::pair<int64_t, JournalEventKind>>& transitions,
                           const std::string& unit) {
      const double width = 720;
      const double plot_h = 96;
      const double base_y = 110;
      int64_t max_t = 1;
      int64_t max_v = 1;
      for (const auto& [t, v] : samples) {
        max_t = std::max(max_t, t);
        max_v = std::max(max_v, v);
      }
      SvgOpen(&out, 740, 130);
      if (fault_begin >= 0 && fault_end > fault_begin) {
        const double x0 = static_cast<double>(fault_begin) / static_cast<double>(max_t) * width;
        const double x1 = static_cast<double>(fault_end) / static_cast<double>(max_t) * width;
        out += "<rect x=\"" + FmtCoord(x0) + "\" y=\"" + FmtCoord(base_y - plot_h) +
               "\" width=\"" + FmtCoord(x1 - x0) + "\" height=\"" + FmtCoord(plot_h) +
               "\" fill=\"var(--status-serious)\" fill-opacity=\"0.15\" data-tip=\"backend "
               "fault window " +
               FmtInt(fault_begin) + "\xe2\x80\x93" + FmtInt(fault_end) + " ms\"/>";
      }
      SvgLine(&out, 0, base_y, width, base_y);
      const double bar_w = std::max(1.0, width / static_cast<double>(samples.size() + 1) - 1.0);
      for (const auto& [t, v] : samples) {
        const double x = static_cast<double>(t) / static_cast<double>(max_t) * width;
        const double h =
            std::max(v > 0 ? 2.0 : 0.0,
                     static_cast<double>(v) / static_cast<double>(max_v) * plot_h);
        if (h > 0) {
          SvgRect(&out, x, base_y - h, bar_w, h, "var(--series-1)", 0,
                  FmtInt(v) + " " + unit + " at t=" + FmtInt(t) + " ms");
        }
      }
      for (const auto& [t, kind] : transitions) {
        const double x = static_cast<double>(t) / static_cast<double>(max_t) * width;
        const char* fill = kind == JournalEventKind::kBreakerOpen    ? "var(--status-critical)"
                           : kind == JournalEventKind::kBreakerClose ? "var(--status-good)"
                                                                     : "var(--series-3)";
        SvgCircle(&out, x, base_y - plot_h - 6, 4, fill,
                  std::string(JournalEventKindName(kind)) + " at t=" + FmtInt(t) + " ms");
      }
      SvgText(&out, 0, 128, "svg-axis", "0 ms");
      SvgText(&out, width, 128, "svg-axis", FmtInt(max_t) + " ms", "end");
      SvgText(&out, width, base_y - plot_h - 2, "svg-value", "peak " + FmtInt(max_v), "end");
    };
    if (!depth.empty()) {
      out += "<h2>Retry storm simulation</h2>";
      out += "<div class=\"legend\"><span><span class=\"key-bar\" "
             "style=\"background:var(--status-serious);opacity:.4\"></span>fault window</span>"
             "<span><span class=\"key\" style=\"background:var(--status-critical)\"></span>"
             "breaker opened</span><span><span class=\"key\" "
             "style=\"background:var(--series-3)\"></span>half-open probe</span>"
             "<span><span class=\"key\" style=\"background:var(--status-good)\"></span>"
             "breaker closed</span></div>";
      out += "<div class=\"card\"><h3>Backend queue depth</h3>";
      storm_track(depth, {}, "queued copies");
      out += "</svg><div class=\"note\">Queued + in-service copies per sample; a queue that "
             "never drains after the shaded fault clears is the metastable signature.</div>"
             "</div>";
      for (const auto& [run_id, track] : storm_edges) {
        if (track.inflight.empty()) {
          continue;
        }
        out += "<div class=\"card\"><h3>" + EscapeHtml(track.location) +
               " \xc2\xb7 in-flight retries</h3>";
        storm_track(track.inflight, track.transitions, "retrying requests");
        out += "</svg><div class=\"note\">Requests mid-retry for this edge; markers are "
               "admission-breaker transitions.</div></div>";
      }
    }
  }

  // --- Repair loop (docs/REPAIR.md) -----------------------------------------
  if (!repair_json.empty()) {
    out += "<h2>Repair loop</h2><div class=\"card\">";
    size_t array_pos = repair_json.find("\"repairs\": [");
    bool any_row = false;
    if (array_pos != std::string_view::npos) {
      std::string body;
      size_t cursor = array_pos;
      while (true) {
        size_t open = repair_json.find('{', cursor);
        if (open == std::string_view::npos) {
          break;
        }
        size_t close = repair_json.find('}', open);
        if (close == std::string_view::npos) {
          break;
        }
        std::string_view row = repair_json.substr(open, close - open + 1);
        cursor = close + 1;
        std::string type = RepairJsonField(row, "type");
        if (type.empty()) {
          continue;
        }
        any_row = true;
        std::string outcome = RepairJsonField(row, "outcome");
        std::string note = RepairJsonField(row, "note");
        body += "<tr><td>" + EscapeHtml(type) + "</td><td>" +
                EscapeHtml(RepairJsonField(row, "file")) + "</td><td>" +
                EscapeHtml(RepairJsonField(row, "coordinator")) + "</td><td>" +
                EscapeHtml(RepairJsonField(row, "template")) + "</td><td>" +
                EscapeHtml(RepairJsonField(row, "error_mode")) + "</td><td>" +
                EscapeHtml(outcome) + (note.empty() ? "" : " \xc2\xb7 " + EscapeHtml(note)) +
                "</td></tr>";
      }
      if (any_row) {
        out += "<table><thead><tr><th>Verdict</th><th>File</th><th>Coordinator</th>"
               "<th>Template</th><th>Error mode</th><th>Outcome</th></tr></thead><tbody>" +
               body + "</tbody></table>";
      }
    }
    if (!any_row) {
      out += "<div class=\"note\">No confirmed verdicts entered the repair loop.</div>";
    }
    out += "<div class=\"note\">fixed = target verdict gone, nothing new, clean suite and "
           "single-fault replay intact \xc2\xb7 not-fixed = verdict persists or no patch "
           "applied \xc2\xb7 regressed = the patch made something worse (docs/REPAIR.md)."
           "</div></div>";
  }

  // --- Embedded sibling artifacts -------------------------------------------
  if (!metrics_json.empty() || !trace_json.empty() || !repair_json.empty()) {
    out += "<h2>Raw artifacts</h2>";
    if (!metrics_json.empty()) {
      out += "<details><summary>Metrics snapshot (" +
             FmtInt(static_cast<int64_t>(metrics_json.size())) + " bytes)</summary><pre>" +
             EscapeHtml(metrics_json) + "</pre></details>";
    }
    if (!trace_json.empty()) {
      out += "<details><summary>Chrome trace (" +
             FmtInt(static_cast<int64_t>(trace_json.size())) + " bytes \xc2\xb7 load in "
             "chrome://tracing or Perfetto)</summary><pre>" +
             EscapeHtml(trace_json) + "</pre></details>";
    }
    if (!repair_json.empty()) {
      out += "<details><summary>Repair report (" +
             FmtInt(static_cast<int64_t>(repair_json.size())) +
             " bytes)</summary><pre>" + EscapeHtml(repair_json) + "</pre></details>";
    }
  }

  out += "</main><script>";
  out += kScript;
  out += "</script></body></html>";
  return out;
}

}  // namespace wasabi
