// Self-contained HTML rendering for `wasabi report` (docs/OBSERVABILITY.md).
//
// RenderHtmlReport turns a collected journal plus its derived retry stats
// into ONE static HTML file: inline CSS and JS only, no external fetches, no
// wall-clock timestamps — the bytes are a pure function of the inputs, so the
// output is golden-testable and identical at any worker count. Charts are
// server-rendered inline SVG; the only scripting is a hover tooltip layer.

#ifndef WASABI_SRC_OBS_REPORT_HTML_H_
#define WASABI_SRC_OBS_REPORT_HTML_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/obs/journal.h"
#include "src/obs/retry_stats.h"

namespace wasabi {

// Renders the dashboard. `events` is the collected journal (export order),
// `stats` its derivation. `metrics_json` / `trace_json` are the sibling
// artifacts' raw bytes — embedded verbatim in collapsible sections when
// non-empty, so the report is a one-file record of the whole run.
// `repair_json` is an optional "wasabi-repair-v1" report (docs/REPAIR.md):
// when non-empty it is rendered as a per-verdict repair-outcome table plus
// the embedded raw JSON; when empty (the default) the output is byte-for-byte
// what the five-argument call produced.
std::string RenderHtmlReport(std::string_view app, const std::vector<JournalEvent>& events,
                             const RetryStatsReport& stats, std::string_view metrics_json,
                             std::string_view trace_json,
                             std::string_view repair_json = std::string_view());

}  // namespace wasabi

#endif  // WASABI_SRC_OBS_REPORT_HTML_H_
