#include "src/obs/retry_stats.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace wasabi {

namespace {

int64_t MinInt64(int64_t a, int64_t b) { return a < b ? a : b; }

// Derive the per-run analytics once every event of the run has been applied.
void FinalizeRun(RunRetryTimeline& run, const RetryStatsOptions& options) {
  const int64_t cap = options.correct_policy_attempts > 0 ? options.correct_policy_attempts : 1;
  run.attempts_observed = run.fires + run.skips;
  if (run.attempts_observed == 0) {
    // The retry location never fired in this run; nothing to amplify.
    run.attempts_needed = 0;
    run.amplification = 1.0;
    run.goodput_steps = run.steps;
    run.wasted_steps = 0;
  } else {
    if (run.completed && run.passed) {
      // Each fire failed one application attempt and the final attempt
      // succeeded; a correct bounded policy would have stopped at `cap`.
      run.attempts_needed = MinInt64(run.fires + 1, cap);
    } else {
      run.attempts_needed = MinInt64(run.attempts_observed, cap);
    }
    run.amplification =
        static_cast<double>(run.attempts_observed) / static_cast<double>(run.attempts_needed);
    if (run.completed && run.passed) {
      // A run that used no more attempts than the allowance wasted nothing;
      // beyond it, steps are prorated by needed/observed.
      run.goodput_steps =
          run.attempts_observed <= run.attempts_needed
              ? run.steps
              : run.steps * run.attempts_needed / run.attempts_observed;
    } else {
      run.goodput_steps = 0;  // A failed run's work is all waste.
    }
    run.wasted_steps = run.steps - run.goodput_steps;
  }
  // Time-to-recover: host backoff charged between a chaos-injected failure
  // and the attempt that finally completed. Runs that never completed (or
  // never saw chaos) have no recovery to measure.
  run.time_to_recover_ms = (run.chaos_failures > 0 && run.completed) ? run.host_backoff_ms : -1;
}

void AccumulateLocation(LocationRetryStats& loc, const RunRetryTimeline& run) {
  if (loc.runs == 0) {
    loc.location = run.location;
    loc.test = run.test;
  }
  ++loc.runs;
  if (run.completed) {
    ++loc.completed_runs;
  }
  if (run.passed) {
    ++loc.passed_runs;
  }
  if (run.quarantined) {
    ++loc.quarantined_runs;
  }
  if (run.chaos_failures > 0 && run.completed) {
    ++loc.recovered_runs;
    loc.time_to_recover_ms_total += run.time_to_recover_ms;
    loc.time_to_recover_ms_max = std::max(loc.time_to_recover_ms_max, run.time_to_recover_ms);
  }
  loc.attempts_observed += run.attempts_observed;
  loc.attempts_needed += run.attempts_needed;
  loc.total_steps += run.steps;
  loc.goodput_steps += run.goodput_steps;
  loc.wasted_steps += run.wasted_steps;
  loc.sleep_ms += run.sleep_ms;
  loc.host_backoff_ms += run.host_backoff_ms;
}

void FinalizeRatios(LocationRetryStats& loc, const std::vector<double>& latencies) {
  loc.amplification = loc.attempts_needed > 0 ? static_cast<double>(loc.attempts_observed) /
                                                    static_cast<double>(loc.attempts_needed)
                                              : 1.0;
  loc.goodput_ratio = loc.total_steps > 0 ? static_cast<double>(loc.goodput_steps) /
                                                static_cast<double>(loc.total_steps)
                                          : 1.0;
  loc.latency_p50_ms = ExactQuantile(latencies, 0.5);
  loc.latency_p90_ms = ExactQuantile(latencies, 0.9);
  loc.latency_p99_ms = ExactQuantile(latencies, 0.99);
}

}  // namespace

double ExactQuantile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  if (lo == hi) {
    return values[lo];
  }
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

RetryStatsReport ComputeRetryStats(const std::vector<JournalEvent>& events,
                                   const RetryStatsOptions& options) {
  // Tests hand-build journals, so do not assume export order.
  std::vector<const JournalEvent*> ordered;
  ordered.reserve(events.size());
  for (const JournalEvent& event : events) {
    if (event.stream == JournalStream::kCampaign) {
      ordered.push_back(&event);
    }
  }
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const JournalEvent* a, const JournalEvent* b) {
                     return a->run_id != b->run_id ? a->run_id < b->run_id : a->seq < b->seq;
                   });

  RetryStatsReport report;
  std::map<uint64_t, size_t> run_index;
  for (const JournalEvent* event : ordered) {
    auto [it, inserted] = run_index.emplace(event->run_id, report.runs.size());
    if (inserted) {
      report.runs.emplace_back();
      RunRetryTimeline& run = report.runs.back();
      run.run_id = event->run_id;
      run.test = event->test;
      run.location = event->location;
      run.k = event->k;
    }
    RunRetryTimeline& run = report.runs[it->second];
    switch (event->kind) {
      case JournalEventKind::kRunBegin:
        break;
      case JournalEventKind::kAttemptBegin:
        break;
      case JournalEventKind::kAttemptEnd:
        run.host_attempts = std::max(run.host_attempts, event->attempt);
        run.completed = true;
        run.final_status = event->detail;
        run.passed = event->detail == "passed";
        run.virtual_ms = event->value;
        break;
      case JournalEventKind::kWork:
        run.steps = event->value;
        break;
      case JournalEventKind::kLoopIterations:
        run.loop_iterations += event->value;
        break;
      case JournalEventKind::kInjectFire:
        ++run.fires;
        run.points.push_back({event->kind, event->attempt, event->t_ms, event->value});
        break;
      case JournalEventKind::kInjectSkip:
        run.skips += event->value;
        break;
      case JournalEventKind::kSleep:
        run.sleep_ms += event->value;
        run.points.push_back({event->kind, event->attempt, event->t_ms, event->value});
        break;
      case JournalEventKind::kBackoffWait:
        run.host_backoff_ms += event->value;
        run.points.push_back({event->kind, event->attempt, event->t_ms, event->value});
        break;
      case JournalEventKind::kHostFailure:
        run.host_attempts = std::max(run.host_attempts, event->attempt);
        if (event->value != 0) {
          ++run.chaos_failures;
        }
        break;
      case JournalEventKind::kBreakerOpen:
        run.breaker_opened = true;
        break;
      case JournalEventKind::kQuarantine:
        run.quarantined = true;
        break;
      case JournalEventKind::kCacheHit:
      case JournalEventKind::kCacheMiss:
      case JournalEventKind::kProbeRepetition:
      case JournalEventKind::kProbeVerdict:
      case JournalEventKind::kQueueDepth:
      case JournalEventKind::kInflightRetries:
      case JournalEventKind::kFaultBegin:
      case JournalEventKind::kFaultEnd:
      case JournalEventKind::kBreakerHalfOpen:
      case JournalEventKind::kBreakerClose:
        break;  // Other streams; never in the campaign stream.
    }
  }

  std::map<std::string, LocationRetryStats> locations;
  std::map<std::string, std::vector<double>> location_latencies;
  std::vector<double> all_latencies;
  for (RunRetryTimeline& run : report.runs) {
    FinalizeRun(run, options);
    AccumulateLocation(locations[run.location], run);
    if (run.completed) {
      location_latencies[run.location].push_back(static_cast<double>(run.virtual_ms));
      all_latencies.push_back(static_cast<double>(run.virtual_ms));
    }
    report.attempts_observed += run.attempts_observed;
    report.attempts_needed += run.attempts_needed;
    report.total_steps += run.steps;
    report.goodput_steps += run.goodput_steps;
    report.wasted_steps += run.wasted_steps;
    if (run.time_to_recover_ms >= 0) {
      report.time_to_recover_ms_total += run.time_to_recover_ms;
      report.time_to_recover_ms_max =
          std::max(report.time_to_recover_ms_max, run.time_to_recover_ms);
    }
  }
  report.campaign_runs = report.runs.size();
  report.amplification = report.attempts_needed > 0
                             ? static_cast<double>(report.attempts_observed) /
                                   static_cast<double>(report.attempts_needed)
                             : 1.0;
  report.goodput_ratio = report.total_steps > 0 ? static_cast<double>(report.goodput_steps) /
                                                      static_cast<double>(report.total_steps)
                                                : 1.0;
  report.latency_p50_ms = ExactQuantile(all_latencies, 0.5);
  report.latency_p90_ms = ExactQuantile(all_latencies, 0.9);
  report.latency_p99_ms = ExactQuantile(all_latencies, 0.99);

  report.locations.reserve(locations.size());
  for (auto& [key, loc] : locations) {
    FinalizeRatios(loc, location_latencies[key]);
    report.locations.push_back(std::move(loc));
  }
  return report;
}

void ExportRetryStats(const RetryStatsReport& report, MetricsRegistry* metrics, Tracer* tracer) {
  if (metrics != nullptr) {
    metrics->SetGauge("retry.amplification", report.amplification);
    metrics->SetGauge("retry.goodput_ratio", report.goodput_ratio);
    metrics->SetGauge("retry.attempts_observed", static_cast<double>(report.attempts_observed));
    metrics->SetGauge("retry.attempts_needed", static_cast<double>(report.attempts_needed));
    metrics->SetGauge("retry.goodput_steps", static_cast<double>(report.goodput_steps));
    metrics->SetGauge("retry.wasted_steps", static_cast<double>(report.wasted_steps));
    metrics->SetGauge("retry.time_to_recover_ms_total",
                      static_cast<double>(report.time_to_recover_ms_total));
    metrics->SetGauge("retry.time_to_recover_ms_max",
                      static_cast<double>(report.time_to_recover_ms_max));
    metrics->SetGauge("retry.latency_p50_ms", report.latency_p50_ms);
    metrics->SetGauge("retry.latency_p90_ms", report.latency_p90_ms);
    metrics->SetGauge("retry.latency_p99_ms", report.latency_p99_ms);
    // Per-run latency distribution through the log2 histogram + quantile
    // estimator, the shape the future wasabid scrape path consumes.
    for (const RunRetryTimeline& run : report.runs) {
      if (run.completed) {
        metrics->Observe("retry.run_virtual_ms", static_cast<double>(run.virtual_ms));
      }
    }
  }
  if (tracer != nullptr) {
    for (const LocationRetryStats& loc : report.locations) {
      tracer->Counter("retry.amplification_x1000", loc.location,
                      static_cast<int64_t>(std::llround(loc.amplification * 1000.0)));
      tracer->Counter("retry.wasted_steps", loc.location, loc.wasted_steps);
    }
  }
}

}  // namespace wasabi
