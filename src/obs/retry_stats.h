// Derived retry analytics over a RetryJournal event stream.
//
// ComputeRetryStats replays a collected journal into per-run retry timelines
// and per-location aggregates: amplification factor (attempts executed ÷
// attempts a correct policy would need), wasted work vs goodput (interpreter
// steps attributed to attempts a correct policy would not have run),
// time-to-recover after transient chaos clears (host backoff charged to runs
// that failed under chaos and later completed), and exact per-run latency
// quantiles over virtual durations. Everything is integer/virtual-time based,
// so the report is byte-identical at any worker count.
//
// ExportRetryStats publishes the aggregates into the metrics snapshot
// (retry.* gauges) and as Chrome-trace counter tracks, and the HTML report
// renderer consumes the structs directly.

#ifndef WASABI_SRC_OBS_RETRY_STATS_H_
#define WASABI_SRC_OBS_RETRY_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/journal.h"

namespace wasabi {

class MetricsRegistry;
class Tracer;

// One point on a run's retry timeline, in virtual time.
struct RetryTimelinePoint {
  JournalEventKind kind = JournalEventKind::kInjectFire;  // fire | sleep | backoff
  int attempt = 0;
  int64_t t_ms = 0;   // Virtual ms (0 for host backoff, which has no clock).
  int64_t value = 0;  // fire index / ms slept / backoff ms.
};

// Everything the journal says about one campaign run.
struct RunRetryTimeline {
  uint64_t run_id = 0;
  std::string test;
  std::string location;
  int k = 0;

  int host_attempts = 0;          // kAttemptEnd events seen.
  bool completed = false;         // Final attempt produced a verdict.
  bool passed = false;            // Final status was "passed".
  std::string final_status;       // TestStatusName of the last attempt.
  bool quarantined = false;
  bool breaker_opened = false;

  int64_t attempts_observed = 0;  // Application-level: fires + budget skips.
  int64_t fires = 0;
  int64_t skips = 0;
  int64_t loop_iterations = 0;
  int64_t steps = 0;              // Interpreter steps of the final attempt.
  int64_t virtual_ms = 0;         // Virtual duration of the final attempt.
  int64_t sleep_ms = 0;           // Application sleeps (in-run backoff).
  int64_t host_backoff_ms = 0;    // Host retry-policy backoff (virtual).
  int chaos_failures = 0;         // Host failures flagged as chaos-injected.

  // Derived per-run analytics (see RetryStatsOptions for the policy model).
  int64_t attempts_needed = 0;
  double amplification = 1.0;
  int64_t goodput_steps = 0;
  int64_t wasted_steps = 0;
  int64_t time_to_recover_ms = -1;  // -1 when the run never recovered.

  std::vector<RetryTimelinePoint> points;
};

// Aggregates over every campaign run at one retry location.
struct LocationRetryStats {
  std::string location;
  std::string test;  // One representative test (first run's).

  uint64_t runs = 0;
  uint64_t completed_runs = 0;
  uint64_t passed_runs = 0;
  uint64_t quarantined_runs = 0;
  uint64_t recovered_runs = 0;  // Chaos-failed at host level, then completed.
  int64_t attempts_observed = 0;
  int64_t attempts_needed = 0;
  int64_t total_steps = 0;
  int64_t goodput_steps = 0;
  int64_t wasted_steps = 0;
  int64_t sleep_ms = 0;
  int64_t host_backoff_ms = 0;

  double amplification = 1.0;    // Σ observed / Σ needed.
  double goodput_ratio = 1.0;    // Σ goodput / Σ steps (1.0 when no steps).
  int64_t time_to_recover_ms_total = 0;
  int64_t time_to_recover_ms_max = 0;
  double latency_p50_ms = 0;     // Exact quantiles over completed runs'
  double latency_p90_ms = 0;     // virtual durations, rank = q*(n-1)
  double latency_p99_ms = 0;     // with linear interpolation.
};

struct RetryStatsOptions {
  // The "correct policy" yardstick for amplification: a bounded retry loop
  // of 3 retries + the final successful attempt, matching the pipeline's own
  // RetryPolicy default and the paper's WHEN prescription. A passing run
  // needs min(fires + 1, cap) application attempts; a failing one is charged
  // min(observed, cap).
  int64_t correct_policy_attempts = 4;
};

struct RetryStatsReport {
  std::vector<RunRetryTimeline> runs;           // Campaign stream, run-id order.
  std::vector<LocationRetryStats> locations;    // Sorted by location key.

  uint64_t campaign_runs = 0;
  int64_t attempts_observed = 0;
  int64_t attempts_needed = 0;
  double amplification = 1.0;
  int64_t total_steps = 0;
  int64_t goodput_steps = 0;
  int64_t wasted_steps = 0;
  double goodput_ratio = 1.0;
  int64_t time_to_recover_ms_total = 0;
  int64_t time_to_recover_ms_max = 0;
  double latency_p50_ms = 0;
  double latency_p90_ms = 0;
  double latency_p99_ms = 0;
};

// Exact quantile over an unsorted sample set: rank = q*(n-1), linearly
// interpolated between the neighbouring order statistics. Returns 0 for an
// empty set. Shared by the stats pass and its tests.
double ExactQuantile(std::vector<double> values, double q);

RetryStatsReport ComputeRetryStats(const std::vector<JournalEvent>& events,
                                   const RetryStatsOptions& options = {});

// Publishes retry.* gauges into `metrics` and per-location counter tracks
// ("retry.amplification_x1000", "retry.wasted_steps") into `tracer`. Either
// sink may be null.
void ExportRetryStats(const RetryStatsReport& report, MetricsRegistry* metrics, Tracer* tracer);

}  // namespace wasabi

#endif  // WASABI_SRC_OBS_RETRY_STATS_H_
