#include "src/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>

namespace wasabi {

namespace {

std::atomic<uint64_t> g_next_tracer_id{1};

// Every thread caches the buffers it registered, keyed by process-unique
// tracer id. Ids are never reused, so a stale entry for a destroyed tracer
// can never alias a live one; it is simply never looked up again.
struct CachedBuffer {
  uint64_t tracer_id = 0;
  void* buffer = nullptr;
};
thread_local std::vector<CachedBuffer> t_buffer_cache;

// Local JSON string escaping. Deliberately duplicated from core/report_json
// (20 lines) so the obs substrate stays dependency-free and linkable from
// every layer, including the ones core itself depends on.
std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(static_cast<char>(c));
        }
        break;
    }
  }
  return out;
}

void AppendArgsJson(std::ostringstream& out, const TraceEvent& event) {
  out << "\"args\":{";
  bool first = true;
  for (const auto& [key, value] : event.int_args) {
    out << (first ? "" : ",") << "\"" << EscapeJson(key) << "\":" << value;
    first = false;
  }
  for (const auto& [key, value] : event.string_args) {
    out << (first ? "" : ",") << "\"" << EscapeJson(key) << "\":\"" << EscapeJson(value) << "\"";
    first = false;
  }
  out << "}";
}

}  // namespace

Tracer::Tracer()
    : tracer_id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

int64_t Tracer::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                               epoch_)
      .count();
}

Tracer::Buffer& Tracer::ThisThreadBuffer() {
  for (const CachedBuffer& cached : t_buffer_cache) {
    if (cached.tracer_id == tracer_id_) {
      return *static_cast<Buffer*>(cached.buffer);
    }
  }
  std::lock_guard<std::mutex> lock(register_mutex_);
  buffers_.push_back(std::make_unique<Buffer>());
  Buffer& buffer = *buffers_.back();
  buffer.tid = static_cast<int>(buffers_.size()) - 1;
  t_buffer_cache.push_back(CachedBuffer{tracer_id_, &buffer});
  return buffer;
}

void Tracer::Record(TraceEvent event) {
  Buffer& buffer = ThisThreadBuffer();
  event.tid = buffer.tid;
  if (event.phase != 'X' && event.start_us == 0) {
    event.start_us = NowUs();
  }
  buffer.events.push_back(std::move(event));
}

void Tracer::Instant(std::string name,
                     std::vector<std::pair<std::string, std::string>> string_args,
                     std::vector<std::pair<std::string, int64_t>> int_args) {
  TraceEvent event;
  event.name = std::move(name);
  event.phase = 'i';
  event.string_args = std::move(string_args);
  event.int_args = std::move(int_args);
  Record(std::move(event));
}

void Tracer::Counter(std::string name, std::string key, int64_t value) {
  TraceEvent event;
  event.name = std::move(name);
  event.phase = 'C';
  event.int_args.emplace_back(std::move(key), value);
  Record(std::move(event));
}

std::vector<TraceEvent> Tracer::Collect() const {
  std::vector<TraceEvent> merged;
  {
    std::lock_guard<std::mutex> lock(register_mutex_);
    size_t total = 0;
    for (const auto& buffer : buffers_) {
      total += buffer->events.size();
    }
    merged.reserve(total);
    for (const auto& buffer : buffers_) {
      merged.insert(merged.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::stable_sort(merged.begin(), merged.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.start_us != b.start_us ? a.start_us < b.start_us : a.tid < b.tid;
  });
  return merged;
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(register_mutex_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->events.size();
  }
  return total;
}

std::string Tracer::ToChromeJson() const {
  std::vector<TraceEvent> events = Collect();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    out << (i > 0 ? ",\n" : "\n");
    out << "{\"name\":\"" << EscapeJson(event.name) << "\",\"ph\":\"" << event.phase
        << "\",\"pid\":1,\"tid\":" << event.tid << ",\"ts\":" << event.start_us;
    if (event.phase == 'X') {
      out << ",\"dur\":" << event.duration_us;
    }
    if (event.phase == 'i') {
      out << ",\"s\":\"t\"";  // Thread-scoped instant.
    }
    out << ",";
    AppendArgsJson(out, event);
    out << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out.str();
}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string name) : tracer_(tracer) {
  if (tracer_ == nullptr) {
    return;
  }
  event_.name = std::move(name);
  event_.phase = 'X';
  event_.start_us = tracer_->NowUs();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) {
    return;
  }
  event_.duration_us = tracer_->NowUs() - event_.start_us;
  tracer_->Record(std::move(event_));
}

void ScopedSpan::AddArg(std::string key, std::string value) {
  if (tracer_ != nullptr) {
    event_.string_args.emplace_back(std::move(key), std::move(value));
  }
}

void ScopedSpan::AddArg(std::string key, int64_t value) {
  if (tracer_ != nullptr) {
    event_.int_args.emplace_back(std::move(key), value);
  }
}

}  // namespace wasabi
