// Zero-dependency tracing substrate for the WASABI pipeline.
//
// A Tracer collects nested spans ("complete" events with a start timestamp
// and a duration), instant events, and counter samples. Recording is
// lock-free on the hot path: every thread appends to its own buffer
// (registered once under a mutex on first use) and buffers are merged —
// sorted by start timestamp — only at collect time, after the workers have
// quiesced. The campaign executor provides the required happens-before edge:
// ParallelFor only returns once every task has completed, so a collect that
// follows it cannot race with a worker's append.
//
// Timestamps are steady-clock microseconds relative to Tracer construction;
// thread ids are small dense integers assigned in registration order, so
// exports are stable enough for tests to assert on.
//
// A null Tracer* means "off" everywhere: ScopedSpan against nullptr performs
// no clock reads and no allocation, so uninstrumented runs pay nothing and
// stay byte-identical to instrumented ones.

#ifndef WASABI_SRC_OBS_TRACE_H_
#define WASABI_SRC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace wasabi {

// One recorded event. `phase` uses the Chrome trace-event phase codes this
// layer emits: 'X' = complete (start + duration), 'i' = instant, 'C' =
// counter sample.
struct TraceEvent {
  std::string name;
  char phase = 'X';
  int64_t start_us = 0;
  int64_t duration_us = 0;  // 'X' events only.
  int tid = 0;
  // Rendered into the Chrome "args" object, strings quoted and numbers raw.
  std::vector<std::pair<std::string, std::string>> string_args;
  std::vector<std::pair<std::string, int64_t>> int_args;
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Microseconds since construction (the trace epoch).
  int64_t NowUs() const;

  // Appends a finished event to the calling thread's buffer. Safe to call
  // concurrently from any number of threads; `event.tid` and, for 'i'/'C'
  // events, a zero `start_us` are filled in here.
  void Record(TraceEvent event);

  // Convenience recorders for the two timestamp-less event kinds.
  void Instant(std::string name,
               std::vector<std::pair<std::string, std::string>> string_args = {},
               std::vector<std::pair<std::string, int64_t>> int_args = {});
  void Counter(std::string name, std::string key, int64_t value);

  // Merge of every thread's buffer, sorted by (start_us, tid). Must not run
  // concurrently with Record; callers collect after parallel phases join.
  std::vector<TraceEvent> Collect() const;

  // Chrome trace-event JSON ("traceEvents" object form), loadable in
  // chrome://tracing and Perfetto. Always one valid JSON object, even with
  // zero events recorded.
  std::string ToChromeJson() const;

  size_t event_count() const;

 private:
  struct Buffer {
    int tid = 0;
    std::vector<TraceEvent> events;
  };

  // The calling thread's buffer, registering one on first use.
  Buffer& ThisThreadBuffer();

  const uint64_t tracer_id_;  // Process-unique; keys the thread-local cache.
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex register_mutex_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

// RAII span: one 'X' event covering construction to destruction. All methods
// are no-ops when constructed against a null tracer.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, std::string name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void AddArg(std::string key, std::string value);
  void AddArg(std::string key, int64_t value);

 private:
  Tracer* tracer_;
  TraceEvent event_;
};

}  // namespace wasabi

#endif  // WASABI_SRC_OBS_TRACE_H_
