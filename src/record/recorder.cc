#include "src/record/recorder.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/lang/digest.h"

namespace wasabi {

namespace {

namespace fs = std::filesystem;

// Splits one line on tabs. Record identifiers (tests, qualified names,
// location keys) never contain tabs, so the split is unambiguous.
std::vector<std::string_view> SplitTabs(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

bool ParseI64(std::string_view text, int64_t* out) {
  std::string buffer(text);
  char* end = nullptr;
  long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (buffer.empty() || end == buffer.c_str() || *end != '\0') {
    return false;
  }
  *out = static_cast<int64_t>(value);
  return true;
}

// One `name\tvalue` header line; fails with a positional diagnostic so a
// corrupted record names the line it died on.
bool ReadHeader(const std::vector<std::string_view>& lines, size_t index,
                std::string_view name, std::string_view* value, std::string* error) {
  if (index >= lines.size()) {
    *error = "record truncated before '" + std::string(name) + "' header";
    return false;
  }
  std::vector<std::string_view> fields = SplitTabs(lines[index]);
  if (fields.size() != 2 || fields[0] != name) {
    *error = "record header line " + std::to_string(index + 1) + " is not '" +
             std::string(name) + "\\t<value>'";
    return false;
  }
  *value = fields[1];
  return true;
}

// The checksum covers every byte before the checksum line itself. Records are
// serialized with exactly one '\n' per line, so rejoining the parsed lines
// reproduces the hashed prefix byte for byte.
uint64_t ChecksumLines(const std::vector<std::string_view>& lines, size_t count) {
  uint64_t hash = mj::kFnvOffsetBasis;
  for (size_t i = 0; i < count; ++i) {
    hash = mj::Fnv1a64(lines[i], hash);
    hash = mj::Fnv1a64("\n", hash);
  }
  return hash;
}

// Splits `text` into lines, requiring a trailing newline on the last one (a
// record without it was truncated mid-line).
bool SplitLines(std::string_view text, std::vector<std::string_view>* lines,
                std::string* error) {
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      *error = "record is truncated (no trailing newline)";
      return false;
    }
    lines->push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  if (lines->empty()) {
    *error = "record is empty";
    return false;
  }
  return true;
}

// Shared version + checksum envelope validation for records and manifests.
// On success `lines` holds the payload lines between the version line and the
// checksum line.
bool ValidateEnvelope(std::string_view text, std::string_view version,
                      std::vector<std::string_view>* lines, std::string* error) {
  std::vector<std::string_view> all;
  if (!SplitLines(text, &all, error)) {
    return false;
  }
  if (all[0] != version) {
    *error = "version mismatch: got '" + std::string(all[0]) + "', want '" +
             std::string(version) + "'";
    return false;
  }
  if (all.size() < 2) {
    *error = "record truncated before checksum";
    return false;
  }
  std::vector<std::string_view> last = SplitTabs(all.back());
  if (last.size() != 2 || last[0] != "checksum") {
    *error = "record truncated (last line is not a checksum)";
    return false;
  }
  uint64_t expected = ChecksumLines(all, all.size() - 1);
  if (std::string(last[1]) != mj::DigestHex(expected)) {
    *error = "checksum mismatch: file is corrupt";
    return false;
  }
  lines->assign(all.begin() + 1, all.end() - 1);
  return true;
}

void AppendChecksum(std::string* out) {
  uint64_t hash = mj::Fnv1a64(*out);
  out->append("checksum\t");
  out->append(mj::DigestHex(hash));
  out->push_back('\n');
}

bool WriteFileAtomic(const fs::path& path, const std::string& text, std::string* error) {
  fs::path tmp = path;
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << text;
    if (!out) {
      *error = "cannot write " + tmp.generic_string();
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    *error = "cannot move " + tmp.generic_string() + " into place: " + ec.message();
    return false;
  }
  return true;
}

bool ReadFileText(const fs::path& path, std::string* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read " + path.generic_string();
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  *out = text.str();
  return true;
}

}  // namespace

// --- RunRecorder ------------------------------------------------------------

void RunRecorder::BeginRun(int64_t run_id, std::string test, std::string location_key,
                           int k, bool degraded_env, int64_t epoch_ms) {
  run_ = RecordedRun{};
  run_.run_id = run_id;
  run_.test = std::move(test);
  run_.location_key = std::move(location_key);
  run_.k = k;
  run_.degraded_env = degraded_env;
  run_.epoch_ms = epoch_ms;
  dispatch_seen_.clear();
  skip_key_.clear();
  skip_count_ = 0;
}

void RunRecorder::Chaos(int attempt, bool faulted) {
  FlushSkip();
  run_.events.push_back("chaos\t" + std::to_string(attempt) + "\t" +
                        (faulted ? "fault" : "ok"));
}

void RunRecorder::AttemptBegin(int attempt) {
  FlushSkip();
  run_.events.push_back("attempt\t" + std::to_string(attempt) + "\tbegin");
}

void RunRecorder::AttemptEnd(int attempt, std::string_view status) {
  FlushSkip();
  run_.events.push_back("attempt\t" + std::to_string(attempt) + "\tend\t" +
                        std::string(status));
}

void RunRecorder::Backoff(int attempt, int64_t ms) {
  FlushSkip();
  run_.events.push_back("backoff\t" + std::to_string(attempt) + "\t" + std::to_string(ms));
}

void RunRecorder::Dispatch(uint32_t site_index, std::string_view cls,
                           std::string_view method) {
  std::string key = std::to_string(site_index) + "\t" + std::string(cls) + "\t" +
                    std::string(method);
  if (!dispatch_seen_.insert(key).second) {
    return;
  }
  FlushSkip();
  run_.events.push_back("dispatch\t" + key);
}

void RunRecorder::Inject(std::string_view callee, std::string_view caller,
                         std::string_view exception, int count) {
  FlushSkip();
  run_.events.push_back("inject\t" + std::string(callee) + "\t" + std::string(caller) +
                        "\t" + std::string(exception) + "\t" + std::to_string(count));
}

void RunRecorder::InjectSkip(std::string_view callee, std::string_view caller,
                             std::string_view exception) {
  std::string key = std::string(callee) + "\t" + std::string(caller) + "\t" +
                    std::string(exception);
  if (skip_count_ > 0 && key == skip_key_) {
    ++skip_count_;
    return;
  }
  FlushSkip();
  skip_key_ = std::move(key);
  skip_count_ = 1;
}

void RunRecorder::HostFailure(int attempt, std::string_view kind, std::string_view detail) {
  FlushSkip();
  run_.events.push_back("host-failure\t" + std::to_string(attempt) + "\t" +
                        std::string(kind) + "\t" + std::string(detail));
}

void RunRecorder::Quarantine(std::string_view kind, std::string_view detail) {
  FlushSkip();
  run_.events.push_back("quarantine\t" + std::string(kind) + "\t" + std::string(detail));
}

void RunRecorder::Verdict(std::string_view text) {
  FlushSkip();
  run_.events.push_back("verdict\t" + std::string(text));
}

RecordedRun RunRecorder::Finish() {
  FlushSkip();
  dispatch_seen_.clear();
  return std::move(run_);
}

void RunRecorder::FlushSkip() {
  if (skip_count_ > 0) {
    run_.events.push_back("inject-skip\t" + skip_key_ + "\tx" +
                          std::to_string(skip_count_));
    skip_key_.clear();
    skip_count_ = 0;
  }
}

// --- Serialization ----------------------------------------------------------

std::string SerializeRecordedRun(const RecordedRun& run) {
  std::string out;
  out.append(kRecordFormatVersion);
  out.push_back('\n');
  out.append("run\t" + std::to_string(run.run_id) + "\n");
  out.append("test\t" + run.test + "\n");
  out.append("location\t" + run.location_key + "\n");
  out.append("k\t" + std::to_string(run.k) + "\n");
  out.append("env\t" + std::string(run.degraded_env ? "1" : "0") + "\n");
  out.append("epoch\t" + std::to_string(run.epoch_ms) + "\n");
  out.append("events\t" + std::to_string(run.events.size()) + "\n");
  for (const std::string& event : run.events) {
    out.append(event);
    out.push_back('\n');
  }
  AppendChecksum(&out);
  return out;
}

bool ParseRecordedRun(std::string_view text, RecordedRun* out, std::string* error) {
  error->clear();
  std::vector<std::string_view> lines;
  if (!ValidateEnvelope(text, kRecordFormatVersion, &lines, error)) {
    return false;
  }
  RecordedRun run;
  std::string_view value;
  int64_t number = 0;
  if (!ReadHeader(lines, 0, "run", &value, error) || !ParseI64(value, &run.run_id)) {
    if (error->empty()) *error = "bad run id";
    return false;
  }
  if (!ReadHeader(lines, 1, "test", &value, error)) {
    return false;
  }
  run.test = std::string(value);
  if (!ReadHeader(lines, 2, "location", &value, error)) {
    return false;
  }
  run.location_key = std::string(value);
  if (!ReadHeader(lines, 3, "k", &value, error) || !ParseI64(value, &number)) {
    if (error->empty()) *error = "bad k";
    return false;
  }
  run.k = static_cast<int>(number);
  if (!ReadHeader(lines, 4, "env", &value, error) || (value != "0" && value != "1")) {
    if (error->empty()) *error = "bad env flag";
    return false;
  }
  run.degraded_env = value == "1";
  if (!ReadHeader(lines, 5, "epoch", &value, error) || !ParseI64(value, &run.epoch_ms)) {
    if (error->empty()) *error = "bad epoch";
    return false;
  }
  if (!ReadHeader(lines, 6, "events", &value, error) || !ParseI64(value, &number) ||
      number < 0) {
    if (error->empty()) *error = "bad event count";
    return false;
  }
  if (lines.size() != 7 + static_cast<size_t>(number)) {
    *error = "event count mismatch: header says " + std::to_string(number) + ", found " +
             std::to_string(lines.size() - 7);
    return false;
  }
  run.events.reserve(static_cast<size_t>(number));
  for (size_t i = 7; i < lines.size(); ++i) {
    run.events.emplace_back(lines[i]);
  }
  *out = std::move(run);
  return true;
}

std::string SerializeRecordManifest(const RecordManifest& manifest) {
  std::string out;
  out.append(kRecordManifestVersion);
  out.push_back('\n');
  out.append("program\t" + manifest.program_digest + "\n");
  out.append("config\t" + manifest.config_digest + "\n");
  for (const RecordManifest::Entry& entry : manifest.runs) {
    out.append("run\t" + std::to_string(entry.run_id) + "\t" + entry.test + "\t" +
               entry.location_key + "\t" + std::to_string(entry.k) + "\n");
  }
  AppendChecksum(&out);
  return out;
}

bool ParseRecordManifest(std::string_view text, RecordManifest* out, std::string* error) {
  std::vector<std::string_view> lines;
  if (!ValidateEnvelope(text, kRecordManifestVersion, &lines, error)) {
    return false;
  }
  RecordManifest manifest;
  std::string_view value;
  if (!ReadHeader(lines, 0, "program", &value, error)) {
    return false;
  }
  manifest.program_digest = std::string(value);
  if (!ReadHeader(lines, 1, "config", &value, error)) {
    return false;
  }
  manifest.config_digest = std::string(value);
  for (size_t i = 2; i < lines.size(); ++i) {
    std::vector<std::string_view> fields = SplitTabs(lines[i]);
    RecordManifest::Entry entry;
    int64_t k = 0;
    if (fields.size() != 5 || fields[0] != "run" || !ParseI64(fields[1], &entry.run_id) ||
        !ParseI64(fields[4], &k)) {
      *error = "bad manifest run line " + std::to_string(i + 2);
      return false;
    }
    entry.test = std::string(fields[2]);
    entry.location_key = std::string(fields[3]);
    entry.k = static_cast<int>(k);
    manifest.runs.push_back(std::move(entry));
  }
  *out = std::move(manifest);
  return true;
}

std::string RecordFileName(int64_t run_id) {
  return "run-" + std::to_string(run_id) + ".rec";
}

// --- Record-directory store -------------------------------------------------

bool WriteRecordDir(const std::string& dir, const RecordManifest& manifest,
                    const std::vector<RecordedRun>& runs, std::string* error) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    *error = "cannot create " + dir + ": " + ec.message();
    return false;
  }
  for (const RecordedRun& run : runs) {
    if (!WriteFileAtomic(fs::path(dir) / RecordFileName(run.run_id),
                         SerializeRecordedRun(run), error)) {
      return false;
    }
  }
  return WriteFileAtomic(fs::path(dir) / "MANIFEST.tsv", SerializeRecordManifest(manifest),
                         error);
}

bool LoadRecordManifest(const std::string& dir, RecordManifest* out, std::string* error) {
  std::string text;
  if (!ReadFileText(fs::path(dir) / "MANIFEST.tsv", &text, error)) {
    return false;
  }
  return ParseRecordManifest(text, out, error);
}

bool LoadRecordedRun(const std::string& dir, int64_t run_id, RecordedRun* out,
                     std::string* error) {
  std::string text;
  if (!ReadFileText(fs::path(dir) / RecordFileName(run_id), &text, error)) {
    return false;
  }
  if (!ParseRecordedRun(text, out, error)) {
    return false;
  }
  if (out->run_id != run_id) {
    *error = "record file for run " + std::to_string(run_id) + " contains run " +
             std::to_string(out->run_id);
    return false;
  }
  return true;
}

}  // namespace wasabi
