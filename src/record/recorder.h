// Single-run record/replay (docs/FLAKINESS.md).
//
// A RunRecorder captures the complete decision stream of ONE injected campaign
// run — chaos draws, host-retry attempts, retry-policy backoff draws,
// dispatch-cache resolutions, injector fire/skip choices, and the final
// verdict — as an ordered list of text events. The stream is a pure function
// of the run (not of worker count, arena warmth, or cache state), which is
// what makes a recorded run independently replayable: re-executing the same
// (run_id, test, location, k) spec under the same perturbation must reproduce
// the stream byte for byte.
//
// Serialized records are versioned and checksummed (FNV-1a 64, the repo-wide
// stable hash): a truncated, bit-flipped, or version-skewed file is rejected
// with a diagnostic, never mis-replayed. A record directory holds one
// `run-<id>.rec` file per run plus a checksummed MANIFEST.tsv binding the runs
// to the program digest and dynamic-config digest they were recorded under.

#ifndef WASABI_SRC_RECORD_RECORDER_H_
#define WASABI_SRC_RECORD_RECORDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace wasabi {

// Bump on ANY change to the record layout: replay of a stale record must fail
// validation, not silently misinterpret fields.
inline constexpr std::string_view kRecordFormatVersion = "wasabi-record-v1";
inline constexpr std::string_view kRecordManifestVersion = "wasabi-record-manifest-v1";

// One run's parsed (or freshly recorded) decision stream.
struct RecordedRun {
  int64_t run_id = 0;
  std::string test;          // "Cls.testX".
  std::string location_key;  // RetryLocation::Key().
  int k = 0;                 // Injection count (1 or 100).
  bool degraded_env = false; // Run executed under the chaos-degraded config.
  int64_t epoch_ms = 0;      // Virtual-clock epoch the run started at.
  std::vector<std::string> events;  // Tab-separated event lines, in order.

  bool operator==(const RecordedRun&) const = default;
};

// The record directory's table of contents. Replay refuses to execute against
// a program or dynamic configuration different from the recorded one — the
// digests are the proof the replayed binary decisions still mean the same
// thing.
struct RecordManifest {
  std::string program_digest;
  std::string config_digest;
  struct Entry {
    int64_t run_id = 0;
    std::string test;
    std::string location_key;
    int k = 0;

    bool operator==(const Entry&) const = default;
  };
  std::vector<Entry> runs;  // In run-id order.

  bool operator==(const RecordManifest&) const = default;
};

// Accumulates one run's decision stream. Single-threaded by construction: a
// campaign run executes on exactly one worker, so the recorder needs no locks.
// Consecutive injector skip decisions for the same point are coalesced into
// one `inject-skip ... xN` event (a k=100 exhausted injector would otherwise
// dominate the stream with thousands of identical lines).
class RunRecorder {
 public:
  void BeginRun(int64_t run_id, std::string test, std::string location_key, int k,
                bool degraded_env, int64_t epoch_ms);

  // Host-level chaos draw for one attempt (before the attempt executes).
  void Chaos(int attempt, bool faulted);
  void AttemptBegin(int attempt);
  void AttemptEnd(int attempt, std::string_view status);
  // Retry-policy backoff charged after a failed attempt.
  void Backoff(int attempt, int64_t ms);
  // Dispatch-cache resolution observed at a call site. Deduplicated per run on
  // (site, class, method): the first use per site/receiver is recorded, which
  // is identical for cold and warm arenas (installs are not — a warm arena may
  // carry entries from earlier runs).
  void Dispatch(uint32_t site_index, std::string_view cls, std::string_view method);
  // Injector decisions: a fire (with the post-increment injection count) or a
  // skip (budget exhausted).
  void Inject(std::string_view callee, std::string_view caller, std::string_view exception,
              int count);
  void InjectSkip(std::string_view callee, std::string_view caller,
                  std::string_view exception);
  // Host-level failure of one attempt (the attempt threw out of the runner —
  // chaos fault or infrastructure exception), as classified by the reduce.
  void HostFailure(int attempt, std::string_view kind, std::string_view detail);
  // The run was given up on (attempts exhausted, circuit open, fail-fast, or
  // quarantine quota). `detail` starting with "skipped:" marks an admission
  // skip, which depends on campaign-wide state and is NOT re-executable in
  // isolation — replay returns the recorded verdict instead.
  void Quarantine(std::string_view kind, std::string_view detail);
  // Final verdict line(s): completed/quarantined plus the oracle-report
  // signature the classifier saw.
  void Verdict(std::string_view text);

  // Flushes any pending coalesced skip and returns the finished run (the
  // recorder is reusable afterwards via BeginRun).
  RecordedRun Finish();

 private:
  void FlushSkip();

  RecordedRun run_;
  std::unordered_set<std::string> dispatch_seen_;
  std::string skip_key_;  // Empty = no pending coalesced skip.
  std::string skip_line_;
  int skip_count_ = 0;
};

// --- Serialization ----------------------------------------------------------
// Text layout (tab-separated fields; identifiers never contain tabs):
//   wasabi-record-v1
//   run   <id>
//   test  <name>
//   location <key>
//   k     <k>
//   env   <0|1>
//   epoch <ms>
//   events <count>
//   <event lines ...>
//   checksum <fnv1a64-hex of everything above>

std::string SerializeRecordedRun(const RecordedRun& run);
bool ParseRecordedRun(std::string_view text, RecordedRun* out, std::string* error);

std::string SerializeRecordManifest(const RecordManifest& manifest);
bool ParseRecordManifest(std::string_view text, RecordManifest* out, std::string* error);

// "run-<id>.rec" — one file per recorded run.
std::string RecordFileName(int64_t run_id);

// --- Record-directory store -------------------------------------------------
// Write is all-or-nothing per file; Load validates version and checksum and
// returns false (with a diagnostic) on any corruption.

bool WriteRecordDir(const std::string& dir, const RecordManifest& manifest,
                    const std::vector<RecordedRun>& runs, std::string* error);
bool LoadRecordManifest(const std::string& dir, RecordManifest* out, std::string* error);
bool LoadRecordedRun(const std::string& dir, int64_t run_id, RecordedRun* out,
                     std::string* error);

}  // namespace wasabi

#endif  // WASABI_SRC_RECORD_RECORDER_H_
